//! # Self-paced Ensemble (SPE) — Rust reproduction
//!
//! A complete, from-scratch Rust implementation of *"Self-paced Ensemble
//! for Highly Imbalanced Massive Data Classification"* (Liu et al.,
//! ICDE 2020), including every substrate the paper's evaluation needs:
//! nine base classifiers, fourteen re-sampling baselines, six imbalance
//! ensembles, imbalanced-classification metrics, and generators for all
//! evaluated datasets.
//!
//! ## Quick start
//!
//! ```
//! use spe::prelude::*;
//!
//! // A highly imbalanced synthetic task (IR = 10).
//! let data = checkerboard(&CheckerboardConfig::small(200, 2_000), 42);
//! let split = train_val_test_split(&data, 0.6, 0.2, 42);
//!
//! // Train SPE with 10 decision-tree members (paper defaults: k = 20
//! // bins, absolute-error hardness). Members train in parallel on the
//! // shared runtime; results are identical for every thread count.
//! let cfg = SelfPacedEnsembleConfig::builder()
//!     .n_estimators(10)
//!     .build()
//!     .expect("valid config");
//! let spe = cfg.try_fit_dataset(&split.train, 42).expect("two classes present");
//!
//! // Score with the paper's criteria. The random-ranking baseline on
//! // this task is the positive prevalence, ≈ 0.09; SPE lands far above
//! // it even at this toy scale (≈ 0.57 at the paper's full 11k scale).
//! let probs = spe.predict_proba(split.test.x());
//! let metrics = MetricSet::evaluate(split.test.y(), &probs);
//! assert!(metrics.aucprc > 0.2);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`runtime`] | shared deterministic thread pool, seed forking |
//! | [`data`] | matrices, datasets, splits, standardization, RNG |
//! | [`metrics`] | AUCPRC, F1, G-mean, MCC, PR/ROC curves |
//! | [`learners`] | KNN, CART, LR, SVM, MLP, AdaBoost, Bagging, RF, GBDT |
//! | [`sampling`] | RandUnder/Over, NearMiss, ENN, Tomek, AllKNN, OSS, NCR, SMOTE, ADASYN, hybrids |
//! | [`ensembles`] | Easy, Cascade, UnderBagging, SMOTEBagging, RUSBoost, SMOTEBoost |
//! | [`core`] | **SPE itself**: hardness, bins, self-paced sampler, ensemble, out-of-core fitting |
//! | [`datasets`] | checkerboard, overlap study, real-world simulators, drifting streams |
//! | [`serve`] | model persistence (save/load envelopes), batched scoring engine |
//! | [`online`] | sliding windows, drift detection, background retrain-and-promote loop |

pub use spe_core as core;
pub use spe_data as data;
pub use spe_datasets as datasets;
pub use spe_ensembles as ensembles;
pub use spe_learners as learners;
pub use spe_metrics as metrics;
pub use spe_online as online;
pub use spe_runtime as runtime;
pub use spe_sampling as sampling;
pub use spe_serve as serve;

/// One-stop imports for applications.
pub mod prelude {
    pub use spe_core::{
        chunk_rows_for_budget, AlphaSchedule, BalancingSchedule, ChunkedFitOptions, FitReport,
        HardnessFn, MemberOutcome, MultiClassSpe, MultiClassSpeConfig, MultiClassStrategy,
        OocReport, SelfPacedEnsemble, SelfPacedEnsembleBuilder, SelfPacedEnsembleConfig,
        SelfPacedSampler,
    };
    pub use spe_data::{
        pack_source, stratified_k_fold, train_val_test_split, BinIndex, Chunk, ChunkedCsv,
        ChunkedSource, ClassIndex, Dataset, Matrix, MatrixView, QuantileSketch, SanitizePolicy,
        SanitizeReport, Sanitizer, SeededRng, ShardManifest, ShardReader, SpeError, Standardizer,
        StratifiedSplit,
    };
    pub use spe_datasets::{
        checkerboard, concept_dataset, credit_fraud_sim, geometric_counts, kddcup_sim,
        multiclass_checkerboard, multiclass_overlap, overlap_study, payment_sim,
        record_linkage_sim, CheckerboardConfig, DriftStreamConfig, DriftingStream, KddVariant,
        MultiClassCheckerboardConfig, MultiClassOverlapConfig, OverlapConfig, REAL_WORLD_SPECS,
    };
    pub use spe_ensembles::{
        BalanceCascade, EasyEnsemble, RusBoost, SmoteBagging, SmoteBoost, UnderBagging,
    };
    pub use spe_learners::{
        AdaBoostConfig, BaggingConfig, DecisionTreeConfig, GaussianNbConfig, GbdtConfig, KnnConfig,
        Learner, LogisticRegressionConfig, MlpConfig, Model, ModelSnapshot, OneVsRestModel,
        RandomForestConfig, SharedLearner, SplitMethod, SvmConfig,
    };
    pub use spe_metrics::{
        aucprc, ConfusionMatrix, MeanStd, MetricSet, MultiConfusion, RunAggregator,
    };
    pub use spe_online::{
        DriftConfig, DriftDetector, DriftEvent, DriftMetric, LiveModel, OnlineConfig, OnlineStatus,
        RetrainLoop, WindowAccumulator, WindowConfig,
    };
    pub use spe_runtime::{fork_seed, fork_seeds, Runtime, TrainingBudget};
    pub use spe_sampling::{
        Adasyn, AllKnn, BorderlineSmote, EditedNearestNeighbours, NearMiss, NearMissVersion,
        NeighbourhoodCleaningRule, NoResampling, OneSideSelection, RandomOverSampler,
        RandomUnderSampler, Sampler, Smote, SmoteEnn, SmoteTomek, TomekLinks,
    };
    pub use spe_serve::{
        load_envelope, load_model, load_model_expecting, load_spe, save_model, EngineConfig,
        EngineConfigBuilder, ModelEnvelope, PendingScore, QuantizedModel, ScoreBackend,
        ScoringEngine, ServeError, ServeStats,
    };
}
