//! `spe_cli` — train and evaluate a Self-paced Ensemble on your own
//! labelled CSV (header row; a `label` column of 0/1, or the last
//! column; empty cells read as 0, the paper's missing-value convention).
//!
//! ```sh
//! # Against a bundled synthetic file:
//! cargo run --release --example spe_cli                        # demo CSV
//! cargo run --release --example spe_cli -- data.csv            # your data
//! cargo run --release --example spe_cli -- data.csv 20 gbdt    # 20 members, GBDT base
//! cargo run --release --example spe_cli -- data.csv 20 gbdt 4  # ... on 4 threads
//! ```
//!
//! Thread count can also come from `SPE_THREADS`; results are identical
//! for every setting.

use spe::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn base_by_name(name: &str) -> SharedLearner {
    match name {
        "knn" => Arc::new(KnnConfig::new(5)),
        "tree" | "dt" => Arc::new(DecisionTreeConfig::with_depth(10)),
        "lr" => Arc::new(LogisticRegressionConfig::default()),
        "svm" => Arc::new(SvmConfig::rbf(1000.0, 1.0)),
        "mlp" => Arc::new(MlpConfig::with_hidden(128)),
        "adaboost" => Arc::new(AdaBoostConfig::new(10)),
        "forest" | "rf" => Arc::new(RandomForestConfig::new(10)),
        "gbdt" => Arc::new(GbdtConfig::new(10)),
        other => panic!("unknown base learner {other:?}; try: knn dt lr svm mlp adaboost rf gbdt"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let path: Option<PathBuf> = args.next().map(PathBuf::from);
    let n_members: usize = args
        .next()
        .map_or(10, |v| v.parse().expect("n must be an integer"));
    let base_name = args.next().unwrap_or_else(|| "dt".into());
    let threads: usize = args
        .next()
        .map_or(0, |v| v.parse().expect("threads must be an integer"));

    // Without a file argument, write and use a demo CSV so the example
    // is runnable out of the box.
    let path = path.unwrap_or_else(|| {
        let demo = std::env::temp_dir().join("spe_cli_demo.csv");
        let data = credit_fraud_sim(20_000, 7);
        spe::data::csv::write_dataset(&demo, &data).expect("write demo CSV");
        println!(
            "no input given — using a generated demo at {}",
            demo.display()
        );
        demo
    });

    // Typed CSV errors carry 1-based line numbers; render them with the
    // file name instead of unwinding.
    let data = spe::data::csv::read_dataset(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    println!(
        "{}: {} rows, {} features, IR = {:.1}:1",
        path.display(),
        data.len(),
        data.n_features(),
        data.imbalance_ratio()
    );

    let split = train_val_test_split(&data, 0.6, 0.2, 0);
    let base = base_by_name(&base_name);
    println!("training SPE with {n_members} x {base_name} members ...");
    let cfg = SelfPacedEnsembleConfig::builder()
        .n_estimators(n_members)
        .base(base)
        .runtime(Runtime::with_threads(threads))
        .build()
        .map_err(|e| format!("bad configuration: {e}"))?;
    let model = cfg
        .try_fit_dataset(&split.train, 0)
        .map_err(|e| format!("cannot train on {}: {e}", path.display()))?;
    let report = model.fit_report();
    if !report.is_clean() {
        println!(
            "note: degraded fit — {} trained, {} retried, {} dropped, {} skipped",
            report.n_trained(),
            report.n_retried(),
            report.n_dropped(),
            report.n_skipped()
        );
    }

    let probs = model.predict_proba(split.test.x());
    let m = MetricSet::evaluate(split.test.y(), &probs);
    println!("\ntest metrics (threshold 0.5):");
    println!("  AUCPRC  {:.4}", m.aucprc);
    println!("  F1      {:.4}", m.f1);
    println!("  G-mean  {:.4}", m.g_mean);
    println!("  MCC     {:.4}", m.mcc);

    let cm = ConfusionMatrix::from_scores(split.test.y(), &probs, 0.5);
    println!(
        "  confusion: TP={} FP={} TN={} FN={}",
        cm.tp, cm.fp, cm.tn, cm.fn_
    );
    Ok(())
}
