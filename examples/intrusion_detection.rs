//! Network intrusion detection at extreme imbalance (KDDCUP-99 style).
//!
//! Reproduces the paper's contrast between the two KDD tasks: DOS vs PRB
//! (IR ≈ 94, loud signature — everything works) and DOS vs R2L
//! (IR ≈ 3449, faint signature — random under-sampling collapses while
//! Cascade and SPE survive, Table IV).
//!
//! ```sh
//! cargo run --release --example intrusion_detection
//! ```

use spe::prelude::*;
use std::sync::Arc;

fn evaluate(name: &str, variant: KddVariant) {
    let data = kddcup_sim(100_000, variant, 3);
    println!(
        "\n=== {name}: {} flows, {} intrusions (IR = {:.0}:1) ===",
        data.len(),
        data.n_positive(),
        data.imbalance_ratio()
    );
    let split = train_val_test_split(&data, 0.6, 0.2, 3);
    let base: SharedLearner = Arc::new(AdaBoostConfig::new(10));

    // RandUnder + AdaBoost10.
    let balanced = RandomUnderSampler::default().resample(&split.train, 5);
    let rand_under = base.fit(balanced.x(), balanced.y(), 5);

    // EasyEnsemble, BalanceCascade, SPE — all with 10 members.
    let easy = EasyEnsemble::new(10).fit(split.train.x(), split.train.y(), 5);
    let cascade =
        BalanceCascade::with_base(10, Arc::clone(&base)).fit(split.train.x(), split.train.y(), 5);
    let spe = SelfPacedEnsembleConfig::builder()
        .n_estimators(10)
        .base(base)
        .build()
        .expect("valid config")
        .fit_dataset(&split.train, 5);

    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "method", "AUCPRC", "F1", "GM", "MCC"
    );
    for (m_name, probs) in [
        ("RandUnder", rand_under.predict_proba(split.test.x())),
        ("Easy10", easy.predict_proba(split.test.x())),
        ("Cascade10", cascade.predict_proba(split.test.x())),
        ("SPE10", spe.predict_proba(split.test.x())),
    ] {
        let m = MetricSet::evaluate(split.test.y(), &probs);
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            m_name, m.aucprc, m.f1, m.g_mean, m.mcc
        );
    }
}

fn main() {
    evaluate("KDDCUP DOS vs PRB", KddVariant::DosVsPrb);
    evaluate("KDDCUP DOS vs R2L", KddVariant::DosVsR2l);
    println!("\nThe PRB task is easy at any IR; the R2L task separates the");
    println!("methods exactly as the paper's Table IV does.");
}
