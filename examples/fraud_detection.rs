//! Fraud detection: the paper's motivating scenario (§I).
//!
//! Trains SPE over three very different base classifiers on the
//! simulated Credit Fraud task (IR ≈ 579:1) and contrasts each with the
//! same classifier trained on a randomly under-sampled set — showing the
//! framework's model-adaptive behaviour: the hardness distribution is
//! computed w.r.t. *the classifier being boosted*.
//!
//! ```sh
//! cargo run --release --example fraud_detection
//! ```

use spe::prelude::*;
use std::sync::Arc;

fn main() {
    let data = credit_fraud_sim(40_000, 7);
    println!(
        "credit-fraud sim: {} transactions, {} frauds (IR = {:.0}:1)",
        data.len(),
        data.n_positive(),
        data.imbalance_ratio()
    );
    let split = train_val_test_split(&data, 0.6, 0.2, 7);

    let bases: Vec<(&str, SharedLearner)> = vec![
        ("KNN", Arc::new(KnnConfig::new(5))),
        ("DT", Arc::new(DecisionTreeConfig::with_depth(10))),
        ("LR", Arc::new(LogisticRegressionConfig::default())),
    ];

    println!(
        "\n{:<6} {:>16} {:>16}",
        "base", "RandUnder AUCPRC", "SPE-10 AUCPRC"
    );
    for (name, base) in bases {
        // Random under-sampling baseline.
        let balanced = RandomUnderSampler::default().resample(&split.train, 1);
        let plain = base.fit(balanced.x(), balanced.y(), 1);
        let auc_plain = aucprc(split.test.y(), &plain.predict_proba(split.test.x()));

        // SPE around the same base classifier.
        let spe = SelfPacedEnsembleConfig::builder()
            .n_estimators(10)
            .base(base)
            .build()
            .expect("valid config")
            .try_fit_dataset(&split.train, 1)
            .expect("train split has both classes");
        let auc_spe = aucprc(split.test.y(), &spe.predict_proba(split.test.x()));

        println!("{name:<6} {auc_plain:>16.3} {auc_spe:>16.3}");
    }

    println!("\nEach base classifier improves under SPE because the");
    println!("under-sampling adapts to that classifier's own hardness map.");
}
