//! Model serving: train once, persist, and score online with the
//! batched engine — including a zero-downtime model swap.
//!
//! The flow mirrors a production fraud pipeline: fit SPE on yesterday's
//! transactions, save the model to disk, load it in a serving process,
//! score traffic through the micro-batching [`ScoringEngine`], then
//! retrain on fresh data and hot-swap the new model under live load.
//!
//! ```sh
//! cargo run --release --example model_serving
//! ```

use spe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let day1 = credit_fraud_sim(20_000, 7);
    let day2 = credit_fraud_sim(20_000, 8);
    println!(
        "training on {} transactions ({} frauds, IR = {:.0}:1)",
        day1.len(),
        day1.n_positive(),
        day1.imbalance_ratio()
    );

    // Fit and persist. The envelope records free-form metadata and a
    // checksum; the save is atomic (temp file + rename).
    let cfg = SelfPacedEnsembleConfig::builder()
        .n_estimators(10)
        .build()?;
    let model = cfg.try_fit_dataset(&day1, 42)?;
    let path = std::env::temp_dir().join("model_serving_example.spe");
    save_model(
        &path,
        &model,
        vec![
            ("dataset".into(), "credit_fraud_sim".into()),
            ("trained_rows".into(), day1.len().to_string()),
        ],
    )?;
    println!(
        "saved {} members to {} ({} bytes)",
        model.len(),
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // A serving process would start here: load the typed ensemble back
    // (alphas and all) and put it behind the batching engine. `Auto`
    // compiles tree-shaped models down to the u8-quantized kernel.
    let loaded = load_spe(&path)?;
    assert_eq!(loaded.alphas(), model.alphas());
    let serve_cfg = EngineConfig::builder()
        .max_batch(256)
        .backend(ScoreBackend::Auto)
        .build()?;
    let engine = ScoringEngine::start(Box::new(loaded), day2.x().cols(), serve_cfg)?;
    println!("engine backend: {:?}", engine.backend());

    // Online traffic: single-row submissions coalesce into batches.
    let pending: Vec<_> = (0..256)
        .map(|i| engine.submit(day2.x().row(i)))
        .collect::<Result<_, _>>()?;
    let frauds_flagged = pending
        .into_iter()
        .map(PendingScore::wait)
        .collect::<Result<Vec<_>, _>>()?
        .iter()
        .filter(|&&p| p >= 0.5)
        .count();
    println!("online path: scored 256 rows, {frauds_flagged} flagged");

    // Bulk traffic: whole matrices bypass the queue and fan out across
    // the shared thread pool directly.
    let probs = engine.score_matrix(day2.x())?;
    println!(
        "bulk path:   scored {} rows, max probability {:.3}",
        probs.len(),
        probs.iter().cloned().fold(0.0f64, f64::max)
    );

    // Day-2 retrain rolls out with zero downtime: in-flight batches
    // finish on the old model, later batches see the new one.
    let retrained = cfg.try_fit_dataset(&day2, 43)?;
    engine.swap_model(Box::new(retrained))?;
    let p = engine.submit(day2.x().row(0))?.wait()?;
    println!("after hot swap: first row scores {p:.3}");

    let stats = engine.stats();
    println!(
        "stats: {} requests in {} batches (+{} direct rows), \
         queue high-water {}, batch latency p50 {}us p99 {}us, {} swap(s)",
        stats.requests,
        stats.batches,
        stats.direct_rows,
        stats.queue_high_water,
        stats.p50_batch_latency_us,
        stats.p99_batch_latency_us,
        stats.model_swaps
    );

    std::fs::remove_file(&path)?;
    Ok(())
}
