//! Plugging a custom classifier into SPE.
//!
//! The paper stresses that SPE "can be easily adapted to most existing
//! learning methods". This example implements a from-scratch Gaussian
//! Naive Bayes classifier, wires it into the `Learner`/`Model` traits,
//! and lets SPE boost it — no changes to the framework needed.
//!
//! (The library also ships a production version of this classifier as
//! `spe::learners::GaussianNbConfig`; the point here is showing how
//! little code a new `Learner` takes.)
//!
//! ```sh
//! cargo run --release --example custom_learner
//! ```

use spe::prelude::*;
use std::sync::Arc;

/// Gaussian Naive Bayes: per-class, per-feature normal likelihoods with
/// weighted moment estimates.
#[derive(Clone, Debug, Default)]
struct GaussianNb;

struct NbModel {
    /// Per class: (log prior, per-feature mean, per-feature variance).
    classes: [(f64, Vec<f64>, Vec<f64>); 2],
}

impl Model for NbModel {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        x.iter_rows()
            .map(|row| {
                let ll: Vec<f64> = self
                    .classes
                    .iter()
                    .map(|(prior, mean, var)| {
                        let mut l = *prior;
                        for ((&v, &m), &s2) in row.iter().zip(mean).zip(var) {
                            let d = v - m;
                            l += -0.5 * (d * d / s2 + s2.ln());
                        }
                        l
                    })
                    .collect();
                // P(y=1 | x) via the log-sum-exp of the two class scores.
                let m = ll[0].max(ll[1]);
                let e0 = (ll[0] - m).exp();
                let e1 = (ll[1] - m).exp();
                e1 / (e0 + e1)
            })
            .collect()
    }
}

impl Learner for GaussianNb {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        _seed: u64,
    ) -> Box<dyn Model> {
        let d = x.cols();
        let mut classes = [
            (0.0, vec![0.0; d], vec![0.0; d]),
            (0.0, vec![0.0; d], vec![0.0; d]),
        ];
        let mut totals = [0.0, 0.0];
        for (i, row) in x.iter_rows().enumerate() {
            let w = weights.map_or(1.0, |w| w[i]);
            let c = usize::from(y[i] != 0);
            totals[c] += w;
            for (m, &v) in classes[c].1.iter_mut().zip(row) {
                *m += w * v;
            }
        }
        for c in 0..2 {
            for m in &mut classes[c].1 {
                *m /= totals[c].max(1e-12);
            }
        }
        for (i, row) in x.iter_rows().enumerate() {
            let w = weights.map_or(1.0, |w| w[i]);
            let c = usize::from(y[i] != 0);
            for ((s2, &m), &v) in classes[c].2.iter_mut().zip(&classes[c].1).zip(row) {
                let dv = v - m;
                *s2 += w * dv * dv;
            }
        }
        let grand_total = totals[0] + totals[1];
        for c in 0..2 {
            classes[c].0 = (totals[c].max(1e-12) / grand_total).ln();
            for s2 in &mut classes[c].2 {
                *s2 = (*s2 / totals[c].max(1e-12)).max(1e-6);
            }
        }
        Box::new(NbModel { classes })
    }

    fn name(&self) -> &'static str {
        "GaussianNB"
    }
}

fn main() {
    let data = credit_fraud_sim(40_000, 11);
    println!(
        "credit-fraud sim: {} rows, IR = {:.0}:1",
        data.len(),
        data.imbalance_ratio()
    );
    let split = train_val_test_split(&data, 0.6, 0.2, 11);

    // Naive Bayes straight on the imbalanced data.
    let solo = GaussianNb.fit(split.train.x(), split.train.y(), 0);
    let auc_solo = aucprc(split.test.y(), &solo.predict_proba(split.test.x()));

    // The same classifier inside SPE: each member sees a different
    // self-paced majority subset and the soft vote sharpens the ranking.
    let spe = SelfPacedEnsembleConfig::builder()
        .n_estimators(10)
        .base(Arc::new(GaussianNb))
        .build()
        .expect("valid config")
        .fit_dataset(&split.train, 0);
    let auc_spe = aucprc(split.test.y(), &spe.predict_proba(split.test.x()));

    println!("GaussianNB alone : AUCPRC = {auc_solo:.3}");
    println!("SPE(GaussianNB)  : AUCPRC = {auc_spe:.3}");
    println!("\nAny type implementing `Learner` plugs into SPE without");
    println!("touching the framework.");
}
