//! Quickstart: train a Self-paced Ensemble on an imbalanced synthetic
//! task and compare it against a single tree and random under-sampling.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spe::prelude::*;

fn main() {
    // The paper's checkerboard dataset: 1,000 minority vs 10,000
    // majority samples drawn from 16 alternating Gaussian cells.
    let data = checkerboard(&CheckerboardConfig::default(), 42);
    println!(
        "dataset: {} samples, {} features, IR = {:.1}:1",
        data.len(),
        data.n_features(),
        data.imbalance_ratio()
    );

    let split = train_val_test_split(&data, 0.6, 0.2, 42);

    // Baseline 1: a single decision tree on the raw imbalanced data.
    let tree = DecisionTreeConfig::default();
    let plain = tree.fit(split.train.x(), split.train.y(), 0);

    // Baseline 2: the same tree after random under-sampling.
    let balanced = RandomUnderSampler::default().resample(&split.train, 0);
    let rand_under = tree.fit(balanced.x(), balanced.y(), 0);

    // SPE with 10 tree members (paper defaults: k = 20 bins, absolute
    // error hardness). The builder validates at `build()`, and
    // `try_fit_dataset` reports degenerate data as an error value.
    let spe = SelfPacedEnsembleConfig::builder()
        .n_estimators(10)
        .build()
        .expect("valid config")
        .try_fit_dataset(&split.train, 0)
        .expect("train split has both classes");

    println!(
        "\n{:<12} {:>8} {:>8} {:>8} {:>8}",
        "method", "AUCPRC", "F1", "GM", "MCC"
    );
    for (name, probs) in [
        ("tree", plain.predict_proba(split.test.x())),
        ("rand-under", rand_under.predict_proba(split.test.x())),
        ("SPE-10", spe.predict_proba(split.test.x())),
    ] {
        let m = MetricSet::evaluate(split.test.y(), &probs);
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            name, m.aucprc, m.f1, m.g_mean, m.mcc
        );
    }

    println!(
        "\nself-paced factor schedule: {:?}",
        spe.alphas()
            .iter()
            .map(|a| (a * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
