#!/usr/bin/env bash
# Full local CI gate: build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q -p spe-learners --features fault-injection (fault-injection suite)"
cargo test -q -p spe-learners --features fault-injection

echo "==> cargo test -q --doc"
cargo test -q --doc

echo "==> cargo bench --no-run (criterion suite compiles)"
cargo bench --no-run

echo "==> bench_train --quick (smoke; temp cwd so BENCH_train.json is untouched)"
cargo build --release -p spe-bench --bin bench_train
repo_root="$(pwd)"
smoke_dir="$(mktemp -d)"
(cd "$smoke_dir" && "$repo_root/target/release/bench_train" --quick)
rm -rf "$smoke_dir"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI green"
