#!/usr/bin/env bash
# Full local CI gate: build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI green"
