#!/usr/bin/env bash
# Full local CI gate: build, tests, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q -p spe-learners --features fault-injection (fault-injection suite)"
cargo test -q -p spe-learners --features fault-injection

echo "==> cargo test -q --test persistence (save/load round-trip suite)"
cargo test -q --test persistence

echo "==> cargo test -q --test quantized (u8 kernel bit-exactness suite)"
cargo test -q --test quantized

echo "==> cargo test -q --doc"
cargo test -q --doc

echo "==> cargo bench --no-run (criterion suite compiles)"
cargo bench --no-run

echo "==> bench_train --quick (smoke; temp cwd so BENCH_train.json is untouched)"
cargo build --release -p spe-bench --bin bench_train
repo_root="$(pwd)"
smoke_dir="$(mktemp -d)"
(cd "$smoke_dir" && "$repo_root/target/release/bench_train" --quick)
rm -rf "$smoke_dir"

echo "==> bench_oocore --smoke (out-of-core vs in-memory AUCPRC parity <= 0.005)"
cargo build --release -p spe-bench --bin bench_oocore
oocore_dir="$(mktemp -d)"
(cd "$oocore_dir" && "$repo_root/target/release/bench_oocore" --smoke)
rm -rf "$oocore_dir"
grep -q '"oocore"' BENCH_train.json
grep -q '"rss_budget_ratio"' BENCH_train.json

echo "==> bench_online --smoke (mid-stream drift -> promoted retrain -> AUCPRC recovery)"
cargo build --release -p spe-bench --bin bench_online
online_dir="$(mktemp -d)"
(cd "$online_dir" && "$repo_root/target/release/bench_online" --smoke)
rm -rf "$online_dir"
grep -q '"online"' BENCH_train.json
grep -q '"recovery_ms"' BENCH_train.json

echo "==> spe_score chunked round trip (CSV stream vs packed shards must fit identical models)"
cargo build --release -p spe-serve --bin spe_score
ooc_dir="$(mktemp -d)"
spe_score_bin="$repo_root/target/release/spe_score"
"$spe_score_bin" gen  --out "$ooc_dir/data.csv" --rows 4000 --seed 9
"$spe_score_bin" pack --input "$ooc_dir/data.csv" --out "$ooc_dir/shards" --rows-per-shard 700
"$spe_score_bin" fit-save --train "$ooc_dir/data.csv" --out "$ooc_dir/csv.spe" \
                          --chunked --chunk-rows 700 --members 5
"$spe_score_bin" fit-save --train "$ooc_dir/shards" --out "$ooc_dir/shard.spe" \
                          --chunked --members 5
"$spe_score_bin" load-score --model "$ooc_dir/csv.spe"   --input "$ooc_dir/data.csv" --out "$ooc_dir/p1.csv"
"$spe_score_bin" load-score --model "$ooc_dir/shard.spe" --input "$ooc_dir/data.csv" --out "$ooc_dir/p2.csv"
cmp "$ooc_dir/p1.csv" "$ooc_dir/p2.csv"
rm -rf "$ooc_dir"

echo "==> bench_serve --smoke (quantized backend selected + BENCH_serve.json schema)"
cargo build --release -p spe-bench --bin bench_serve
serve_dir="$(mktemp -d)"
(cd "$serve_dir" && "$repo_root/target/release/bench_serve" --smoke)
grep -q '"quantized"' "$serve_dir/BENCH_serve.json"
grep -q '"speedup_quantized_batch64"' "$serve_dir/BENCH_serve.json"

echo "==> bench_server --smoke (overload shedding + breaker isolation over TCP, server JSON section)"
cargo build --release -p spe-bench --bin bench_server
(cd "$serve_dir" && "$repo_root/target/release/bench_server" --smoke)
grep -q '"server"' "$serve_dir/BENCH_serve.json"
grep -q '"shed_rate"' "$serve_dir/BENCH_serve.json"
grep -q '"p99_request_us"' "$serve_dir/BENCH_serve.json"
rm -rf "$serve_dir"

echo "==> spe_score round trip (fit-save vs load-score predictions must be bit-identical)"
cargo build --release -p spe-serve --bin spe_score
score_dir="$(mktemp -d)"
spe_score="$repo_root/target/release/spe_score"
"$spe_score" gen        --out "$score_dir/data.csv" --rows 2000 --seed 7
"$spe_score" fit-save   --train "$score_dir/data.csv" --out "$score_dir/model.spe" \
                        --members 5 --preds "$score_dir/p1.csv"
"$spe_score" load-score --model "$score_dir/model.spe" --input "$score_dir/data.csv" \
                        --out "$score_dir/p2.csv"
"$spe_score" inspect    --model "$score_dir/model.spe"
cmp "$score_dir/p1.csv" "$score_dir/p2.csv"

echo "==> spe_server gate (network failure-mode contract: 429 shed, 504 deadline, breaker + self-heal, shadow promote)"
cargo build --release -p spe-server --bin spe_server
"$repo_root/target/release/spe_server" gate --model "$score_dir/model.spe" --data "$score_dir/data.csv"
rm -rf "$score_dir"

echo "==> spe_server online-gate (drifted feedback -> promoted retrain in /metrics, zero scoring downtime)"
"$repo_root/target/release/spe_server" online-gate

echo "==> multi-class smoke gate (4-class fit -> save -> serve one request -> per-class recall floor)"
mc_dir="$(mktemp -d)"
"$spe_score" gen        --out "$mc_dir/mc.csv" --rows 3000 --seed 13 --classes 4
"$spe_score" fit-save   --train "$mc_dir/mc.csv" --out "$mc_dir/mc.spe" \
                        --members 5 --preds "$mc_dir/p1.csv"
"$spe_score" load-score --model "$mc_dir/mc.spe" --input "$mc_dir/mc.csv" --out "$mc_dir/p2.csv"
cmp "$mc_dir/p1.csv" "$mc_dir/p2.csv"
"$spe_score" inspect    --model "$mc_dir/mc.spe" | grep -q "classes:  4"
# Per-class recall floor: argmax over the four class_<c> probability
# columns must recover each true label on >= 50% of its rows.
awk -F, '
  NR == FNR { if (FNR > 1) label[FNR-1] = $NF + 0; next }
  FNR > 1 {
    best = 0; bp = $1
    for (i = 2; i <= NF; i++) if ($i > bp) { bp = $i; best = i - 1 }
    t = label[FNR-1]; total[t]++; if (best == t) hit[t]++
  }
  END {
    bad = 0
    for (c = 0; c < 4; c++) {
      r = (total[c] ? hit[c] / total[c] : 0)
      printf "  class %d recall %.3f (%d/%d)\n", c, r, hit[c], total[c]
      if (r < 0.5) bad = 1
    }
    if (bad) { print "  per-class recall floor (0.5) violated"; exit 1 }
  }
' "$mc_dir/mc.csv" "$mc_dir/p2.csv"
# Serve the 4-class model and push one request through the real server:
# the response must be a k-wide distribution, not a scalar score.
"$repo_root/target/release/spe_server" serve --features 2 --model mc="$mc_dir/mc.spe" \
    --addr 127.0.0.1:0 --port-file "$mc_dir/addr.txt" &
mc_server_pid=$!
for _ in $(seq 1 100); do [ -s "$mc_dir/addr.txt" ] && break; sleep 0.05; done
[ -s "$mc_dir/addr.txt" ] || { kill "$mc_server_pid"; echo "spe_server never wrote its port file"; exit 1; }
mc_addr="$(cat "$mc_dir/addr.txt")"
mc_host="${mc_addr%:*}"; mc_port="${mc_addr##*:}"
mc_body="0.5,0.5"
exec 3<>"/dev/tcp/$mc_host/$mc_port"
printf 'POST /score/mc HTTP/1.1\r\ncontent-length: %s\r\nconnection: close\r\n\r\n%s' \
    "${#mc_body}" "$mc_body" >&3
mc_resp="$(cat <&3)"
exec 3<&- 3>&-
echo "$mc_resp" | grep -q '"n_classes":4' || { kill "$mc_server_pid"; echo "k-wide score response missing: $mc_resp"; exit 1; }
exec 3<>"/dev/tcp/$mc_host/$mc_port"
printf 'POST /admin/shutdown HTTP/1.1\r\ncontent-length: 0\r\nconnection: close\r\n\r\n' >&3
cat <&3 >/dev/null
exec 3<&- 3>&-
wait "$mc_server_pid"
rm -rf "$mc_dir"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI green"
