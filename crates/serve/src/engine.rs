//! Micro-batching scoring engine.
//!
//! Single-row scoring of an ensemble is overhead-dominated: every call
//! pays trait-object dispatch per member plus a handful of short-lived
//! allocations, and none of it parallelizes. The engine amortizes that
//! by queueing incoming rows and scoring them in batches — a dedicated
//! scheduler thread drains the queue whenever `max_batch` rows are
//! waiting or the oldest row has waited `max_delay`, whichever comes
//! first. Batches are scored through the model's batch entry point,
//! which fans out across the shared `spe-runtime` pool.
//!
//! The model lives behind an `RwLock`ed registry slot, so a retrained
//! model can be hot-swapped with [`ScoringEngine::swap_model`] while
//! requests are in flight: in-flight batches finish on the Arc they
//! already cloned, later batches pick up the new model. Nothing blocks
//! for longer than the pointer swap.
//!
//! Scoring runs on one of two backends selected by [`ScoreBackend`]:
//! the plain f64 path through the model itself, or the
//! [quantized](crate::quantize) u8 kernel compiled from the model's
//! snapshot. Both produce bit-identical probabilities; `Auto` (the
//! default) quantizes when the model supports it and silently keeps the
//! f64 path otherwise.

use crate::error::ServeError;
use crate::quantize::QuantizedModel;
use crossbeam::deque::Injector;
use parking_lot::{Condvar, Mutex, RwLock};
use spe_data::{Matrix, MatrixView};
use spe_learners::Model;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which kernel the engine scores with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScoreBackend {
    /// Always traverse the model's own f64 representation.
    F64,
    /// Require the quantized u8 kernel; [`ScoringEngine::start`] and
    /// [`ScoringEngine::swap_model`] fail with
    /// [`ServeError::Unquantizable`] if the model cannot compile.
    Quantized,
    /// Use the quantized kernel when the model compiles, the f64 path
    /// otherwise. [`ScoringEngine::backend`] reports which one won.
    #[default]
    Auto,
}

/// Tuning knobs for the [`ScoringEngine`]. Build with
/// [`EngineConfig::builder`], which validates the parameters instead of
/// clamping them; `EngineConfig::default()` is the builder's default.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Rows per batch at which the scheduler flushes immediately.
    pub max_batch: usize,
    /// Longest a queued row waits before its (possibly short) batch is
    /// flushed anyway. Bounds tail latency under light load.
    pub max_delay: Duration,
    /// Queue capacity; submissions beyond it fail fast with
    /// [`ServeError::QueueFull`] so overload backpressures the caller
    /// instead of growing an unbounded buffer.
    pub queue_capacity: usize,
    /// Scoring kernel selection.
    pub backend: ScoreBackend,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            queue_capacity: 1024,
            backend: ScoreBackend::Auto,
        }
    }
}

impl EngineConfig {
    /// Starts a builder with the default configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Chainable builder for [`EngineConfig`], in the style of
/// `SelfPacedEnsembleConfig::builder()`: setters accumulate, `build`
/// validates and reports problems as [`ServeError::InvalidConfig`].
#[derive(Clone, Debug, Default)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Rows per batch at which the scheduler flushes immediately.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Longest a queued row waits before its batch is flushed anyway.
    pub fn max_delay(mut self, max_delay: Duration) -> Self {
        self.config.max_delay = max_delay;
        self
    }

    /// Queue capacity before submissions fail with `QueueFull`.
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.config.queue_capacity = queue_capacity;
        self
    }

    /// Scoring kernel selection.
    pub fn backend(mut self, backend: ScoreBackend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<EngineConfig, ServeError> {
        let c = &self.config;
        if c.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be at least 1".into(),
            ));
        }
        if c.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity must be at least 1".into(),
            ));
        }
        if c.queue_capacity < c.max_batch {
            return Err(ServeError::InvalidConfig(format!(
                "queue_capacity ({}) must hold at least one full batch ({})",
                c.queue_capacity, c.max_batch
            )));
        }
        Ok(self.config)
    }
}

/// Rolling latency window: enough batches to estimate a stable p99
/// without unbounded growth.
const LATENCY_WINDOW: usize = 4096;

/// Counters published by [`ScoringEngine::stats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Rows accepted through [`ScoringEngine::submit`].
    pub requests: u64,
    /// Batches flushed by the scheduler.
    pub batches: u64,
    /// Rows scored through the direct [`ScoringEngine::score_matrix`]
    /// path (these bypass the queue and are not in `requests`).
    pub direct_rows: u64,
    /// Deepest the queue has ever been at submission time.
    pub queue_high_water: usize,
    /// Median batch service time (queue drain + scoring), microseconds.
    /// Zero until the first batch completes.
    pub p50_batch_latency_us: u64,
    /// 99th-percentile batch service time, microseconds.
    pub p99_batch_latency_us: u64,
    /// Times a new model was installed via hot swap.
    pub model_swaps: u64,
}

/// Mutable statistics shared between submitters and the scheduler.
struct StatsInner {
    requests: AtomicU64,
    batches: AtomicU64,
    direct_rows: AtomicU64,
    queue_high_water: AtomicUsize,
    model_swaps: AtomicU64,
    /// Rolling window of batch service times in µs.
    latencies: Mutex<Vec<u64>>,
}

impl StatsInner {
    fn new() -> Self {
        Self {
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            direct_rows: AtomicU64::new(0),
            queue_high_water: AtomicUsize::new(0),
            model_swaps: AtomicU64::new(0),
            latencies: Mutex::new(Vec::new()),
        }
    }

    fn record_batch(&self, elapsed: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut lat = self.latencies.lock();
        if lat.len() == LATENCY_WINDOW {
            // Overwrite round-robin so the window tracks recent batches.
            let i = (self.batches.load(Ordering::Relaxed) as usize) % LATENCY_WINDOW;
            lat[i] = us;
        } else {
            lat.push(us);
        }
    }

    fn raise_high_water(&self, depth: usize) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServeStats {
        let mut lat = self.latencies.lock().clone();
        lat.sort_unstable();
        let pct = |q: f64| -> u64 {
            if lat.is_empty() {
                return 0;
            }
            let idx = ((lat.len() - 1) as f64 * q).round() as usize;
            lat[idx]
        };
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            direct_rows: self.direct_rows.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            p50_batch_latency_us: pct(0.50),
            p99_batch_latency_us: pct(0.99),
            model_swaps: self.model_swaps.load(Ordering::Relaxed),
        }
    }
}

/// One queued scoring request.
struct Request {
    row: Vec<f64>,
    slot: Arc<Slot>,
}

/// Rendezvous cell a submitter blocks on until the scheduler fills it.
struct Slot {
    result: Mutex<Option<Result<f64, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, value: Result<f64, ServeError>) {
        *self.result.lock() = Some(value);
        self.ready.notify_all();
    }
}

/// Handle to one in-flight [`ScoringEngine::submit`] request.
#[must_use = "wait() on the pending score to get the probability"]
pub struct PendingScore {
    slot: Arc<Slot>,
}

impl PendingScore {
    /// Blocks until the scheduler scores this row's batch.
    ///
    /// Always completes: engine shutdown drains the queue, scoring (or
    /// failing) every accepted request before the scheduler exits.
    pub fn wait(self) -> Result<f64, ServeError> {
        let mut guard = self.slot.result.lock();
        loop {
            if let Some(res) = guard.take() {
                return res;
            }
            self.slot.ready.wait(&mut guard);
        }
    }

    /// Non-blocking poll; `None` while the batch is still pending.
    pub fn try_take(&self) -> Option<Result<f64, ServeError>> {
        self.slot.result.lock().take()
    }

    /// Blocks at most `timeout`, returning
    /// [`ServeError::DeadlineExceeded`] if the batch has not completed
    /// by then.
    ///
    /// This is the deadline-propagation primitive for network serving:
    /// a client-supplied timeout bounds the wait, so a wedged model can
    /// never hang a connection. On timeout the row stays in its batch
    /// and is still scored internally — the result is simply discarded
    /// when the abandoned slot drops.
    pub fn wait_timeout(self, timeout: Duration) -> Result<f64, ServeError> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.slot.result.lock();
        loop {
            if let Some(res) = guard.take() {
                return res;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ServeError::DeadlineExceeded);
            }
            // A spurious wake or a timeout that raced the fill both land
            // back at the `take` above, so no result is ever lost.
            let _ = self.slot.ready.wait_for(&mut guard, remaining);
        }
    }
}

/// The served model plus its (optional) quantized compilation; both
/// swap atomically under the registry lock so a batch never mixes
/// kernels from different models.
struct ServingSlot {
    model: Arc<dyn Model>,
    quantized: Option<Arc<QuantizedModel>>,
}

impl ServingSlot {
    /// Resolves `backend` for `model`: compiles the quantized kernel
    /// when requested (hard failure for `Quantized`, silent f64
    /// fallback for `Auto`).
    fn resolve(
        model: Arc<dyn Model>,
        n_features: usize,
        backend: ScoreBackend,
    ) -> Result<Self, ServeError> {
        // Width gate first: a model that cannot score rows of the
        // engine's width is rejected at install/swap time with a typed
        // error, never discovered later as garbage scores. Covers both
        // `start` and `swap_model` (both resolve through here).
        let bound = model.feature_bound();
        if !bound.admits(n_features) {
            return Err(ServeError::ModelWidthMismatch {
                expected: n_features,
                model: bound,
            });
        }
        let compile = || -> Result<QuantizedModel, ServeError> {
            let snap = model.snapshot().ok_or_else(|| {
                ServeError::Unquantizable("model does not support snapshots".into())
            })?;
            QuantizedModel::compile(&snap, n_features)
        };
        let quantized = match backend {
            ScoreBackend::F64 => None,
            ScoreBackend::Quantized => Some(Arc::new(compile()?)),
            ScoreBackend::Auto => compile().ok().map(Arc::new),
        };
        Ok(Self { model, quantized })
    }

    /// The scorer batches should run on.
    fn active(&self) -> Arc<dyn Model> {
        match &self.quantized {
            Some(q) => Arc::clone(q) as Arc<dyn Model>,
            None => Arc::clone(&self.model),
        }
    }
}

/// State shared between the engine handle and its scheduler thread.
struct Shared {
    queue: Injector<Request>,
    model: RwLock<ServingSlot>,
    /// Scheduler wake signal: set when work arrives or on shutdown.
    wake: Mutex<bool>,
    wake_cv: Condvar,
    stopping: AtomicBool,
    stats: StatsInner,
    config: EngineConfig,
    n_features: usize,
    /// Class count the engine serves, fixed by the initial model; swaps
    /// must match it so response rows never change width mid-stream.
    n_classes: usize,
}

/// Batched scoring engine over a hot-swappable model.
///
/// Dropping the engine performs a graceful shutdown: no new requests
/// are accepted, already-queued rows are scored, and the scheduler
/// thread is joined.
pub struct ScoringEngine {
    shared: Arc<Shared>,
    scheduler: Option<JoinHandle<()>>,
}

impl ScoringEngine {
    /// Starts an engine serving `model` for rows of `n_features`.
    ///
    /// Fails with [`ServeError::InvalidConfig`] on out-of-range
    /// parameters (hand-built configs bypassing
    /// [`EngineConfig::builder`] are re-validated here), with
    /// [`ServeError::Unquantizable`] when `config.backend` demands the
    /// quantized kernel and the model cannot compile, and with
    /// [`ServeError::Io`] if the scheduler thread cannot spawn.
    pub fn start(
        model: Box<dyn Model>,
        n_features: usize,
        config: EngineConfig,
    ) -> Result<Self, ServeError> {
        let config = EngineConfigBuilder { config }.build()?;
        let slot = ServingSlot::resolve(Arc::from(model), n_features, config.backend)?;
        let n_classes = slot.model.n_classes();
        let shared = Arc::new(Shared {
            queue: Injector::new(),
            model: RwLock::new(slot),
            wake: Mutex::new(false),
            wake_cv: Condvar::new(),
            stopping: AtomicBool::new(false),
            stats: StatsInner::new(),
            config,
            n_features,
            n_classes,
        });
        let worker = Arc::clone(&shared);
        let scheduler = std::thread::Builder::new()
            .name("spe-serve-scheduler".into())
            .spawn(move || scheduler_loop(&worker))
            .map_err(|e| ServeError::Io(format!("failed to spawn scheduler thread: {e}")))?;
        Ok(Self {
            shared,
            scheduler: Some(scheduler),
        })
    }

    /// The backend the *current* model actually scores on — `Quantized`
    /// only when a compiled kernel is installed. An `Auto` engine
    /// reports what auto-selection picked.
    pub fn backend(&self) -> ScoreBackend {
        if self.shared.model.read().quantized.is_some() {
            ScoreBackend::Quantized
        } else {
            ScoreBackend::F64
        }
    }

    /// Enqueues one row for batched scoring.
    ///
    /// Fails fast with [`ServeError::QueueFull`] at capacity and
    /// [`ServeError::RowWidthMismatch`] on a wrong-width row; neither
    /// consumes queue space.
    pub fn submit(&self, row: &[f64]) -> Result<PendingScore, ServeError> {
        if self.shared.stopping.load(Ordering::Acquire) {
            return Err(ServeError::EngineStopped);
        }
        if row.len() != self.shared.n_features {
            return Err(ServeError::RowWidthMismatch {
                expected: self.shared.n_features,
                got: row.len(),
            });
        }
        let depth = self.shared.queue.len();
        if depth >= self.shared.config.queue_capacity {
            return Err(ServeError::QueueFull {
                capacity: self.shared.config.queue_capacity,
            });
        }
        let slot = Arc::new(Slot::new());
        self.shared.queue.push(Request {
            row: row.to_vec(),
            slot: Arc::clone(&slot),
        });
        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.stats.raise_high_water(depth + 1);
        notify(&self.shared);
        Ok(PendingScore { slot })
    }

    /// Scores a whole matrix synchronously, bypassing the queue.
    ///
    /// Rows fan out across the shared runtime in contiguous chunks; the
    /// output is bit-identical to scoring the matrix in one call.
    pub fn score_matrix(&self, x: &Matrix) -> Result<Vec<f64>, ServeError> {
        let mut out = vec![0.0; x.rows()];
        self.score_into(x.view(), &mut out)?;
        Ok(out)
    }

    /// Scores a borrowed row block into a caller-owned buffer — the
    /// zero-alloc serving path.
    ///
    /// Steady-state scoring through this entry allocates nothing: the
    /// input is a view, the output is the caller's slice, and the
    /// backend's per-batch scratch is thread-local. Small batches skip
    /// the fan-out machinery entirely; larger ones split across the
    /// shared runtime in contiguous chunks. Chunk geometry mirrors
    /// `par_chunks` (≥64 rows, ≤4 chunks/thread); per-row results are
    /// chunk-independent, so the output is bit-identical for every
    /// thread count and batch split.
    pub fn score_into(&self, x: MatrixView<'_>, out: &mut [f64]) -> Result<(), ServeError> {
        if self.shared.stopping.load(Ordering::Acquire) {
            return Err(ServeError::EngineStopped);
        }
        if x.cols() != self.shared.n_features && x.rows() > 0 {
            return Err(ServeError::RowWidthMismatch {
                expected: self.shared.n_features,
                got: x.cols(),
            });
        }
        if out.len() != x.rows() {
            return Err(ServeError::OutputLengthMismatch {
                expected: x.rows(),
                got: out.len(),
            });
        }
        let model = self.shared.model.read().active();
        let threads = spe_runtime::current_threads().max(1);
        let chunk_len = x.rows().div_ceil(threads * 4).max(64);
        if threads <= 1 || x.rows() <= chunk_len {
            // One worker (or one chunk) gains nothing from splitting —
            // score the whole block in place.
            model.predict_proba_into(x, out);
        } else {
            let mut chunks: Vec<&mut [f64]> = out.chunks_mut(chunk_len).collect();
            spe_runtime::par_for_each_mut(&mut chunks, |i, chunk| {
                let start = i * chunk_len;
                model.predict_proba_into(x.rows_range(start..start + chunk.len()), chunk);
            });
        }
        self.shared
            .stats
            .direct_rows
            .fetch_add(x.rows() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Installs a new model; later batches score against it.
    ///
    /// In-flight batches finish on the model they already hold, so
    /// there is no downtime and no torn batch. The configured
    /// [`ScoreBackend`] is re-resolved for the new model; on a
    /// `Quantized` engine a model that cannot compile is rejected and
    /// the old model keeps serving.
    pub fn swap_model(&self, model: Box<dyn Model>) -> Result<(), ServeError> {
        // Class gate, symmetric to the feature-width gate in `resolve`:
        // a swap target scoring a different number of classes would
        // change every k-wide response row's width under live clients.
        if model.n_classes() != self.shared.n_classes {
            return Err(ServeError::ModelClassMismatch {
                expected: self.shared.n_classes,
                got: model.n_classes(),
            });
        }
        let slot = ServingSlot::resolve(
            Arc::from(model),
            self.shared.n_features,
            self.shared.config.backend,
        )?;
        *self.shared.model.write() = slot;
        self.shared
            .stats
            .model_swaps
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Rows currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// The configured queue capacity (admission controllers watermark
    /// against this).
    pub fn queue_capacity(&self) -> usize {
        self.shared.config.queue_capacity
    }

    /// The configured flush batch size.
    pub fn max_batch(&self) -> usize {
        self.shared.config.max_batch
    }

    /// Row width this engine was started for.
    pub fn n_features(&self) -> usize {
        self.shared.n_features
    }

    /// Classes per response row, fixed by the model the engine started
    /// with (2 for every binary model).
    pub fn n_classes(&self) -> usize {
        self.shared.n_classes
    }

    /// Scores a whole matrix into row-major `[rows × n_classes]`
    /// probability distributions, bypassing the queue.
    pub fn score_classes_matrix(&self, x: &Matrix) -> Result<Vec<f64>, ServeError> {
        let mut out = vec![0.0; x.rows() * self.shared.n_classes];
        self.score_classes_into(x.view(), &mut out)?;
        Ok(out)
    }

    /// K-wide twin of [`ScoringEngine::score_into`]: writes each row's
    /// full class distribution into the caller's row-major
    /// `[rows × n_classes]` buffer. Chunk geometry (and therefore the
    /// bit pattern of every probability) matches the scalar path.
    pub fn score_classes_into(&self, x: MatrixView<'_>, out: &mut [f64]) -> Result<(), ServeError> {
        if self.shared.stopping.load(Ordering::Acquire) {
            return Err(ServeError::EngineStopped);
        }
        if x.cols() != self.shared.n_features && x.rows() > 0 {
            return Err(ServeError::RowWidthMismatch {
                expected: self.shared.n_features,
                got: x.cols(),
            });
        }
        let k = self.shared.n_classes;
        if out.len() != x.rows() * k {
            return Err(ServeError::OutputLengthMismatch {
                expected: x.rows() * k,
                got: out.len(),
            });
        }
        let model = self.shared.model.read().active();
        let threads = spe_runtime::current_threads().max(1);
        let chunk_len = x.rows().div_ceil(threads * 4).max(64);
        if threads <= 1 || x.rows() <= chunk_len {
            model.predict_proba_k_into(x, out);
        } else {
            let mut chunks: Vec<&mut [f64]> = out.chunks_mut(chunk_len * k).collect();
            spe_runtime::par_for_each_mut(&mut chunks, |i, chunk| {
                let start = i * chunk_len;
                model.predict_proba_k_into(x.rows_range(start..start + chunk.len() / k), chunk);
            });
        }
        self.shared
            .stats
            .direct_rows
            .fetch_add(x.rows() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }
}

impl Drop for ScoringEngine {
    fn drop(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        notify(&self.shared);
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        // The scheduler scored everything it saw, but a submit can race
        // the stop flag and push after its final drain. Fail those
        // stragglers with a typed error so no waiter is ever left
        // blocked on a dead engine.
        while let Some(req) = self.shared.queue.steal().success() {
            req.slot.fill(Err(ServeError::Shutdown));
        }
    }
}

fn notify(shared: &Shared) {
    let mut flag = shared.wake.lock();
    *flag = true;
    shared.wake_cv.notify_all();
}

/// Pops up to `limit` requests off the injector.
fn drain(queue: &Injector<Request>, batch: &mut Vec<Request>, limit: usize) {
    while batch.len() < limit {
        match queue.steal().success() {
            Some(req) => batch.push(req),
            None => break,
        }
    }
}

fn scheduler_loop(shared: &Shared) {
    let max_batch = shared.config.max_batch;
    // Buffers reused across batches: requests, the gathered row-major
    // feature block and the probability output. Steady-state scoring
    // allocates nothing per batch.
    let mut batch: Vec<Request> = Vec::with_capacity(max_batch);
    let mut rows: Vec<f64> = Vec::with_capacity(max_batch * shared.n_features);
    let mut probs: Vec<f64> = Vec::with_capacity(max_batch);
    loop {
        // Sleep until work or shutdown.
        {
            let mut flag = shared.wake.lock();
            while !*flag && !shared.stopping.load(Ordering::Acquire) && shared.queue.is_empty() {
                shared.wake_cv.wait(&mut flag);
            }
            *flag = false;
        }
        let stopping = shared.stopping.load(Ordering::Acquire);
        if stopping && shared.queue.is_empty() {
            return;
        }

        let started = Instant::now();
        batch.clear();
        drain(&shared.queue, &mut batch, max_batch);
        if batch.is_empty() {
            continue;
        }
        // Unless flushing is already warranted, linger up to max_delay
        // from first dequeue so near-simultaneous submitters coalesce
        // into one batch.
        while batch.len() < max_batch && !shared.stopping.load(Ordering::Acquire) {
            let elapsed = started.elapsed();
            if elapsed >= shared.config.max_delay {
                break;
            }
            let mut flag = shared.wake.lock();
            if !*flag {
                shared
                    .wake_cv
                    .wait_for(&mut flag, shared.config.max_delay - elapsed);
            }
            *flag = false;
            drop(flag);
            drain(&shared.queue, &mut batch, max_batch);
        }

        score_batch(shared, &batch, &mut rows, &mut probs, started);
    }
}

fn score_batch(
    shared: &Shared,
    batch: &[Request],
    rows: &mut Vec<f64>,
    probs: &mut Vec<f64>,
    started: Instant,
) {
    // Gather the rows into the reusable row-major buffer and score
    // through `predict_proba_into` — no owned `Matrix`, no per-batch
    // output vector.
    rows.clear();
    for req in batch {
        rows.extend_from_slice(&req.row);
    }
    probs.clear();
    probs.resize(batch.len(), 0.0);
    let x = MatrixView::from_slice(rows, batch.len(), shared.n_features);
    let model = shared.model.read().active();
    // A misbehaving custom model (wrong output length, internal panic)
    // must fail the batch with a typed error, not kill the scheduler
    // thread and hang every waiter.
    let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        model.predict_proba_into(x, probs);
    }));
    // Record before filling any slot: a waiter released by `fill` may
    // read the stats immediately and must already see this batch.
    shared.stats.record_batch(started.elapsed());
    if scored.is_err() {
        for req in batch {
            req.slot.fill(Err(ServeError::Corrupt(
                "model panicked while scoring the batch".into(),
            )));
        }
        return;
    }
    for (req, &p) in batch.iter().zip(probs.iter()) {
        req.slot.fill(Ok(p));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_learners::traits::ConstantModel;

    /// Model that reports each row's first feature as its probability —
    /// makes result/request alignment checkable.
    struct Echo;
    impl Model for Echo {
        fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
            x.iter_rows().map(|r| r[0]).collect()
        }
    }

    fn engine(model: Box<dyn Model>) -> ScoringEngine {
        ScoringEngine::start(model, 2, EngineConfig::default()).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn submit_scores_through_the_batcher() {
        let e = engine(Box::new(Echo));
        let pending: Vec<_> = (0..10)
            .map(|i| {
                e.submit(&[f64::from(i) / 10.0, 0.0])
                    .unwrap_or_else(|err| panic!("{err}"))
            })
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            let got = p.wait().unwrap_or_else(|err| panic!("{err}"));
            assert!((got - i as f64 / 10.0).abs() < 1e-12);
        }
        let stats = e.stats();
        assert_eq!(stats.requests, 10);
        assert!(stats.batches >= 1);
        assert!(stats.queue_high_water >= 1);
    }

    #[test]
    fn wrong_width_row_rejected() {
        let e = engine(Box::new(ConstantModel(0.5)));
        assert_eq!(
            e.submit(&[1.0]).map(|_| ()),
            Err(ServeError::RowWidthMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            e.score_matrix(&Matrix::zeros(3, 5)).map(|_| ()),
            Err(ServeError::RowWidthMismatch {
                expected: 2,
                got: 5
            })
        );
    }

    /// Scores correctly but slowly — keeps the scheduler busy so tests
    /// can fill the queue deterministically.
    struct Slow;
    impl Model for Slow {
        fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
            std::thread::sleep(Duration::from_millis(40));
            vec![0.5; x.rows()]
        }
    }

    #[test]
    fn queue_overflow_backpressures() {
        let cfg = EngineConfig::builder()
            .queue_capacity(4)
            .max_batch(1)
            .max_delay(Duration::ZERO)
            .build()
            .unwrap_or_else(|e| panic!("{e}"));
        let e = ScoringEngine::start(Box::new(Slow), 1, cfg).unwrap_or_else(|e| panic!("{e}"));
        // First row gets pulled into a (slow) batch almost immediately.
        let mut pending = vec![e.submit(&[0.0]).unwrap_or_else(|err| panic!("{err}"))];
        std::thread::sleep(Duration::from_millis(10));
        // The scheduler is now asleep inside predict_proba; these four
        // fill the queue and the next submit must shed load.
        let mut overflowed = false;
        for _ in 0..32 {
            match e.submit(&[0.0]) {
                Ok(p) => pending.push(p),
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 4);
                    overflowed = true;
                    break;
                }
                Err(other) => panic!("{other}"),
            }
        }
        assert!(overflowed, "queue never filled");
        drop(e); // shutdown drains the queue...
        for p in pending {
            assert_eq!(p.wait(), Ok(0.5)); // ...so every accepted row resolves
        }
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let e = engine(Box::new(ConstantModel(0.25)));
        let pending: Vec<_> = (0..32)
            .map(|_| e.submit(&[0.0, 0.0]).unwrap_or_else(|err| panic!("{err}")))
            .collect();
        drop(e);
        for p in pending {
            assert_eq!(p.wait(), Ok(0.25));
        }
    }

    #[test]
    fn submit_after_drop_is_rejected() {
        let e = engine(Box::new(ConstantModel(0.5)));
        let shared = Arc::clone(&e.shared);
        drop(e);
        assert!(shared.stopping.load(Ordering::Acquire));
    }

    #[test]
    fn hot_swap_changes_later_scores() {
        let e = engine(Box::new(ConstantModel(0.1)));
        let before = e.submit(&[0.0, 0.0]).unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(before.wait(), Ok(0.1));
        e.swap_model(Box::new(ConstantModel(0.9)))
            .unwrap_or_else(|err| panic!("{err}"));
        let after = e.submit(&[0.0, 0.0]).unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(after.wait(), Ok(0.9));
        assert_eq!(e.stats().model_swaps, 1);
    }

    #[test]
    fn score_matrix_matches_direct_prediction() {
        let e = engine(Box::new(Echo));
        let x = Matrix::from_vec(4, 2, vec![0.1, 0.0, 0.2, 0.0, 0.3, 0.0, 0.4, 0.0]);
        let got = e.score_matrix(&x).unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(got, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(e.stats().direct_rows, 4);
        // Empty input short-circuits without a width check.
        assert_eq!(
            e.score_matrix(&Matrix::zeros(0, 0))
                .unwrap_or_else(|err| panic!("{err}")),
            Vec::<f64>::new()
        );
    }

    #[test]
    fn score_into_matches_score_matrix_and_checks_buffer() {
        let e = engine(Box::new(Echo));
        let x = Matrix::from_vec(4, 2, vec![0.1, 0.0, 0.2, 0.0, 0.3, 0.0, 0.4, 0.0]);
        let mut buf = vec![0.0; 4];
        e.score_into(x.view(), &mut buf)
            .unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(
            buf,
            e.score_matrix(&x).unwrap_or_else(|err| panic!("{err}"))
        );
        let mut short = vec![0.0; 3];
        assert!(matches!(
            e.score_into(x.view(), &mut short),
            Err(ServeError::OutputLengthMismatch {
                expected: 4,
                got: 3
            })
        ));
        let wide = Matrix::from_vec(1, 3, vec![0.1, 0.2, 0.3]);
        let mut one = vec![0.0; 1];
        assert!(matches!(
            e.score_into(wide.view(), &mut one),
            Err(ServeError::RowWidthMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn latency_percentiles_populate() {
        let e = engine(Box::new(Echo));
        for _ in 0..5 {
            let p = e.submit(&[0.5, 0.0]).unwrap_or_else(|err| panic!("{err}"));
            let _ = p.wait();
        }
        let s = e.stats();
        assert!(s.p50_batch_latency_us <= s.p99_batch_latency_us);
    }

    #[test]
    fn builder_rejects_bad_params() {
        let zero_batch = EngineConfig::builder().max_batch(0).build();
        assert!(matches!(zero_batch, Err(ServeError::InvalidConfig(_))));
        let zero_queue = EngineConfig::builder().queue_capacity(0).build();
        assert!(matches!(zero_queue, Err(ServeError::InvalidConfig(_))));
        let queue_lt_batch = EngineConfig::builder()
            .max_batch(64)
            .queue_capacity(8)
            .build();
        assert!(matches!(queue_lt_batch, Err(ServeError::InvalidConfig(_))));
        // `start` re-validates so a hand-built struct literal can't
        // smuggle a bad config past the builder.
        let cfg = EngineConfig {
            max_batch: 0,
            ..EngineConfig::default()
        };
        assert!(matches!(
            ScoringEngine::start(Box::new(Echo), 2, cfg).map(|_| ()),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn backend_selection_and_fallback() {
        // Echo has no snapshot: Quantized is a hard error, Auto falls
        // back to the f64 path and keeps serving.
        let want_quantized = EngineConfig::builder()
            .backend(ScoreBackend::Quantized)
            .build()
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(matches!(
            ScoringEngine::start(Box::new(Echo), 2, want_quantized).map(|_| ()),
            Err(ServeError::Unquantizable(_))
        ));
        let e = engine(Box::new(Echo));
        assert_eq!(e.backend(), ScoreBackend::F64);
        let p = e.submit(&[0.75, 0.0]).unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(p.wait(), Ok(0.75));
        // A quantizable swap target upgrades the slot in place.
        e.swap_model(Box::new(ConstantModel(0.5)))
            .unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(e.backend(), ScoreBackend::Quantized);
        let p = e.submit(&[0.1, 0.2]).unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(p.wait(), Ok(0.5));
    }

    #[test]
    fn swap_failure_keeps_old_model_serving() {
        let cfg = EngineConfig::builder()
            .backend(ScoreBackend::Quantized)
            .build()
            .unwrap_or_else(|e| panic!("{e}"));
        let e = ScoringEngine::start(Box::new(ConstantModel(0.3)), 2, cfg)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(matches!(
            e.swap_model(Box::new(Echo)),
            Err(ServeError::Unquantizable(_))
        ));
        assert_eq!(e.stats().model_swaps, 0);
        let p = e.submit(&[0.0, 0.0]).unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(p.wait(), Ok(0.3));
    }

    #[test]
    fn wait_timeout_returns_deadline_exceeded_then_result_is_discarded() {
        let cfg = EngineConfig::builder()
            .max_batch(1)
            .max_delay(Duration::ZERO)
            .build()
            .unwrap_or_else(|e| panic!("{e}"));
        let e = ScoringEngine::start(Box::new(Slow), 1, cfg).unwrap_or_else(|e| panic!("{e}"));
        // Slow sleeps 40ms per batch; a 2ms deadline must miss.
        let p = e.submit(&[0.0]).unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(
            p.wait_timeout(Duration::from_millis(2)),
            Err(ServeError::DeadlineExceeded)
        );
        // The engine is not poisoned: a generous deadline succeeds.
        let p = e.submit(&[0.0]).unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(p.wait_timeout(Duration::from_secs(10)), Ok(0.5));
    }

    #[test]
    fn concurrent_submitters_racing_drop_never_hang() {
        // Regression: a submit that wins the stopping-flag race but
        // pushes after the scheduler's final drain must still resolve —
        // with Ok (scheduler saw it) or the typed Shutdown error (drop
        // drained it) — never block forever.
        for _ in 0..20 {
            let e = Arc::new(engine(Box::new(ConstantModel(0.5))));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let eng = Arc::clone(&e);
                handles.push(std::thread::spawn(move || {
                    let mut outcomes = Vec::new();
                    for _ in 0..50 {
                        match eng.submit(&[0.0, 0.0]) {
                            Ok(p) => outcomes.push(p),
                            Err(ServeError::EngineStopped) => break,
                            Err(ServeError::QueueFull { .. }) => continue,
                            Err(other) => panic!("{other}"),
                        }
                    }
                    for p in outcomes {
                        match p.wait() {
                            Ok(v) => assert_eq!(v, 0.5),
                            Err(ServeError::Shutdown) => {}
                            Err(other) => panic!("{other}"),
                        }
                    }
                }));
            }
            drop(e); // submitters hold their own Arcs; last one drops the engine
            for h in handles {
                h.join().unwrap_or_else(|_| panic!("submitter panicked"));
            }
        }
    }

    /// Model claiming an exact 5-feature width, for install-gate tests.
    struct Wide;
    impl Model for Wide {
        fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
            vec![0.5; x.rows()]
        }
        fn feature_bound(&self) -> spe_learners::FeatureBound {
            spe_learners::FeatureBound::Exact(5)
        }
    }

    #[test]
    fn width_mismatched_model_rejected_at_start_and_swap() {
        assert!(matches!(
            ScoringEngine::start(Box::new(Wide), 2, EngineConfig::default()).map(|_| ()),
            Err(ServeError::ModelWidthMismatch { expected: 2, .. })
        ));
        let e = engine(Box::new(ConstantModel(0.5)));
        assert!(matches!(
            e.swap_model(Box::new(Wide)),
            Err(ServeError::ModelWidthMismatch { expected: 2, .. })
        ));
        // The rejected swap left the old model serving.
        assert_eq!(e.stats().model_swaps, 0);
        let p = e.submit(&[0.0, 0.0]).unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(p.wait(), Ok(0.5));
    }

    fn tri_class() -> Box<dyn Model> {
        Box::new(spe_learners::OneVsRestModel::new(vec![
            Box::new(ConstantModel(0.2)),
            Box::new(ConstantModel(0.3)),
            Box::new(ConstantModel(0.5)),
        ]))
    }

    #[test]
    fn class_mismatched_swap_rejected() {
        let e = engine(Box::new(ConstantModel(0.5)));
        assert_eq!(e.n_classes(), 2);
        assert!(matches!(
            e.swap_model(tri_class()),
            Err(ServeError::ModelClassMismatch {
                expected: 2,
                got: 3
            })
        ));
        assert_eq!(e.stats().model_swaps, 0);
        let p = e.submit(&[0.0, 0.0]).unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(p.wait(), Ok(0.5));
    }

    #[test]
    fn score_classes_emits_full_distributions() {
        let e = ScoringEngine::start(tri_class(), 2, EngineConfig::default())
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(e.n_classes(), 3);
        let x = Matrix::zeros(2, 2);
        let dist = e
            .score_classes_matrix(&x)
            .unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(dist, vec![0.2, 0.3, 0.5, 0.2, 0.3, 0.5]);
        // A same-k swap is accepted.
        e.swap_model(tri_class())
            .unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(e.stats().model_swaps, 1);
        // Binary engines expand the scalar probability to [1-p, p].
        let b = engine(Box::new(ConstantModel(0.25)));
        assert_eq!(
            b.score_classes_matrix(&Matrix::zeros(1, 2))
                .unwrap_or_else(|err| panic!("{err}")),
            vec![0.75, 0.25]
        );
        // The buffer must hold rows * k slots.
        let mut short = vec![0.0; 4];
        assert!(matches!(
            e.score_classes_into(x.view(), &mut short),
            Err(ServeError::OutputLengthMismatch {
                expected: 6,
                got: 4
            })
        ));
    }

    /// Model that panics while scoring — the batch must resolve to
    /// `Corrupt` errors instead of hanging every waiter.
    struct Panicky;
    impl Model for Panicky {
        fn predict_proba_view(&self, _x: MatrixView<'_>) -> Vec<f64> {
            panic!("boom");
        }
    }

    #[test]
    fn panicking_model_fails_the_batch_not_the_engine() {
        let e = engine(Box::new(Panicky));
        let p = e.submit(&[0.0, 0.0]).unwrap_or_else(|err| panic!("{err}"));
        assert!(matches!(p.wait(), Err(ServeError::Corrupt(_))));
        // Scheduler survived; a healthy swap restores service.
        e.swap_model(Box::new(ConstantModel(0.6)))
            .unwrap_or_else(|err| panic!("{err}"));
        let p = e.submit(&[0.0, 0.0]).unwrap_or_else(|err| panic!("{err}"));
        assert_eq!(p.wait(), Ok(0.6));
    }
}
