//! The on-disk model format: a versioned, checksummed envelope around a
//! serialized [`ModelSnapshot`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [0..4)      magic  b"SPEM"
//! [4..N-8)    body:  format_version u32
//!                    n_classes      u32       (version >= 2 only)
//!                    model_kind     String
//!                    metadata       Vec<(String, String)>
//!                    payload        Vec<u8>   (ModelSnapshot encoding)
//! [N-8..N)    checksum u64 — FNV-1a over bytes [0..N-8)
//! ```
//!
//! Version 2 added the `n_classes` header field so `inspect` and
//! serving-side class-width gates need not decode the payload; version 1
//! files (all binary by construction) still decode, reading as
//! `n_classes = 2`.
//!
//! The checksum is verified **before** any payload decoding, so flipped
//! bits surface as [`ServeError::ChecksumMismatch`] rather than as a
//! confusing decode error deep inside the snapshot codec. Saves are
//! atomic: bytes go to a `.tmp` sibling first and are `rename`d into
//! place, so a crash mid-write can never leave a half-written model at
//! the target path.

use crate::error::ServeError;
use serde::{DecodeError, Deserialize, Reader, Serialize, Writer};
use spe_learners::persist::ModelSnapshot;
use spe_learners::Model;
use std::fs;
use std::path::Path;

/// First four bytes of every model file.
pub const MAGIC: [u8; 4] = *b"SPEM";

/// Envelope revision this build writes. Revisions `1..=FORMAT_VERSION`
/// are all readable.
pub const FORMAT_VERSION: u32 = 2;

/// FNV-1a 64-bit hash — tiny, dependency-free and good enough to catch
/// bit rot and truncation (it is not a cryptographic signature).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A model snapshot plus the header fields stored alongside it.
pub struct ModelEnvelope {
    /// Model kind tag (`"SPE"`, `"DT"`, ...) — duplicated from the
    /// snapshot so `inspect` and kind checks need not decode the payload.
    pub model_kind: String,
    /// How many classes the model scores — duplicated from the snapshot
    /// for the same reason. Version-1 files decode as 2.
    pub n_classes: usize,
    /// Free-form key/value pairs recorded at save time (trained-on row
    /// counts, seeds, ...). Order is preserved.
    pub metadata: Vec<(String, String)>,
    /// The serializable model.
    pub snapshot: ModelSnapshot,
}

impl ModelEnvelope {
    /// Wraps a snapshot, stamping its kind string and class count.
    pub fn new(snapshot: ModelSnapshot, metadata: Vec<(String, String)>) -> Self {
        Self {
            model_kind: snapshot.kind().to_string(),
            n_classes: snapshot.n_classes(),
            metadata,
            snapshot,
        }
    }

    /// Encodes the envelope to its on-disk byte representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u32(self.n_classes as u32);
        self.model_kind.serialize(&mut w);
        self.metadata.serialize(&mut w);
        self.snapshot.to_bytes().serialize(&mut w);
        let mut bytes = w.into_bytes();
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Decodes an envelope, verifying magic and checksum first.
    pub fn decode(bytes: &[u8]) -> Result<Self, ServeError> {
        // Smallest possible file: magic + version + three empty
        // length-prefixed fields + checksum.
        if bytes.len() < MAGIC.len() + 8 {
            return Err(ServeError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(ServeError::Corrupt("bad magic (not a model file)".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let found = u64::from_le_bytes(tail.try_into().unwrap_or_default());
        let expected = fnv1a(body);
        if expected != found {
            return Err(ServeError::ChecksumMismatch { expected, found });
        }
        let mut r = Reader::new(&body[MAGIC.len()..]);
        let version = r.get_u32().map_err(decode_err)?;
        if !(1..=FORMAT_VERSION).contains(&version) {
            return Err(ServeError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        // Version 1 predates multi-class models: every v1 file is
        // binary, so the missing header field is exactly 2.
        let n_classes = if version >= 2 {
            r.get_u32().map_err(decode_err)? as usize
        } else {
            2
        };
        let model_kind = String::deserialize(&mut r).map_err(decode_err)?;
        let metadata = Vec::<(String, String)>::deserialize(&mut r).map_err(decode_err)?;
        let payload = Vec::<u8>::deserialize(&mut r).map_err(decode_err)?;
        if !r.is_exhausted() {
            return Err(ServeError::Corrupt(format!(
                "{} trailing bytes after payload",
                r.remaining()
            )));
        }
        let snapshot = ModelSnapshot::from_bytes(&payload).map_err(decode_err)?;
        if snapshot.kind() != model_kind {
            return Err(ServeError::Corrupt(format!(
                "header says {model_kind}, payload holds {}",
                snapshot.kind()
            )));
        }
        if snapshot.n_classes() != n_classes {
            return Err(ServeError::Corrupt(format!(
                "header says {n_classes} classes, payload holds {}",
                snapshot.n_classes()
            )));
        }
        Ok(Self {
            model_kind,
            n_classes,
            metadata,
            snapshot,
        })
    }
}

fn decode_err(e: DecodeError) -> ServeError {
    match e {
        DecodeError::Eof => ServeError::Truncated,
        DecodeError::Invalid(msg) => ServeError::Corrupt(msg),
    }
}

/// Writes `bytes` to `path` atomically: a `.tmp` sibling in the same
/// directory is written and fsynced, then renamed over the target.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let res = (|| {
        fs::write(&tmp, bytes)?;
        let f = fs::File::open(&tmp)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if res.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    res.map_err(ServeError::from)
}

/// Snapshots `model` and saves it to `path` in one step.
///
/// Returns [`ServeError::UnsupportedModel`] when the model has no
/// snapshot representation.
pub fn save_model(
    path: &Path,
    model: &dyn Model,
    metadata: Vec<(String, String)>,
) -> Result<(), ServeError> {
    let snapshot = model.snapshot().ok_or(ServeError::UnsupportedModel)?;
    save_snapshot(path, snapshot, metadata)
}

/// Saves an already-taken snapshot to `path`.
pub fn save_snapshot(
    path: &Path,
    snapshot: ModelSnapshot,
    metadata: Vec<(String, String)>,
) -> Result<(), ServeError> {
    atomic_write(path, &ModelEnvelope::new(snapshot, metadata).encode())
}

/// Loads and validates the envelope at `path`.
pub fn load_envelope(path: &Path) -> Result<ModelEnvelope, ServeError> {
    ModelEnvelope::decode(&fs::read(path)?)
}

/// Loads the model at `path`, restored to a scoring `Box<dyn Model>`.
pub fn load_model(path: &Path) -> Result<Box<dyn Model>, ServeError> {
    Ok(load_envelope(path)?.snapshot.restore())
}

/// Like [`load_model`] but fails with [`ServeError::KindMismatch`]
/// unless the stored kind is `expected` (e.g. `"SPE"`).
pub fn load_model_expecting(path: &Path, expected: &str) -> Result<Box<dyn Model>, ServeError> {
    let env = load_envelope(path)?;
    if env.model_kind != expected {
        return Err(ServeError::KindMismatch {
            expected: expected.to_string(),
            found: env.model_kind,
        });
    }
    Ok(env.snapshot.restore())
}

/// Loads a typed [`SelfPacedEnsemble`](spe_core::SelfPacedEnsemble) —
/// the envelope must hold an `"SPE"` snapshot.
pub fn load_spe(path: &Path) -> Result<spe_core::SelfPacedEnsemble, ServeError> {
    let env = load_envelope(path)?;
    if env.model_kind != "SPE" {
        return Err(ServeError::KindMismatch {
            expected: "SPE".into(),
            found: env.model_kind,
        });
    }
    spe_core::SelfPacedEnsemble::from_snapshot(env.snapshot).map_err(ServeError::from)
}
