//! Typed errors for the persistence and serving layers.

use spe_data::SpeError;
use spe_learners::FeatureBound;
use std::fmt;

/// Everything that can go wrong saving, loading or serving a model.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// An underlying I/O failure (rendered, to keep the type `Clone`).
    Io(String),
    /// The file is structurally not a model envelope (bad magic,
    /// trailing garbage, malformed payload, ...).
    Corrupt(String),
    /// The file ends before the envelope does.
    Truncated,
    /// The stored checksum disagrees with the bytes — bit rot or a
    /// partial overwrite. Reported *before* any payload decoding runs.
    ChecksumMismatch {
        /// Checksum recomputed from the file bytes.
        expected: u64,
        /// Checksum stored in the file.
        found: u64,
    },
    /// The envelope was written by a newer format revision.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
    /// The envelope holds a different model kind than the caller asked
    /// for (e.g. expected `"SPE"`, found `"DT"`).
    KindMismatch {
        /// Kind the caller required.
        expected: String,
        /// Kind stored in the envelope.
        found: String,
    },
    /// The model does not implement snapshotting (MLP, AdaBoost, Naive
    /// Bayes and user-defined models return `None` from
    /// `Model::snapshot`).
    UnsupportedModel,
    /// The scoring queue is at capacity; the caller should shed load or
    /// retry after a delay.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The engine has been stopped; no further requests are accepted.
    EngineStopped,
    /// A scoring request's feature count disagrees with the engine's.
    RowWidthMismatch {
        /// Feature count the engine was built for.
        expected: usize,
        /// Feature count of the offending row.
        got: usize,
    },
    /// A caller-owned output buffer does not hold one slot per row of
    /// the batch being scored.
    OutputLengthMismatch {
        /// Rows in the batch (slots required).
        expected: usize,
        /// Length of the buffer the caller passed.
        got: usize,
    },
    /// A training-side error bubbled through a fit-then-save pipeline.
    Train(SpeError),
    /// An engine configuration parameter is out of range (rejected by
    /// `EngineConfig::builder()` instead of being silently clamped).
    InvalidConfig(String),
    /// The model cannot be compiled to the quantized backend (no
    /// snapshot, an unsupported member kind, or a feature tested
    /// against more distinct thresholds than a u8 code can carry).
    Unquantizable(String),
    /// A scoring request's deadline elapsed before its batch completed.
    /// The row may still be scored internally; the result is discarded.
    DeadlineExceeded,
    /// The engine shut down after accepting this request but before
    /// scoring it (a submit racing the final drain). Waiters are woken
    /// with this instead of blocking forever.
    Shutdown,
    /// The model installed via `start`/`swap_model` cannot score rows of
    /// the engine's configured width — rejected up front instead of
    /// producing garbage scores (or panics) on live traffic.
    ModelWidthMismatch {
        /// Row width the engine serves.
        expected: usize,
        /// What the offending model requires.
        model: FeatureBound,
    },
    /// The model installed via `swap_model` outputs a different number
    /// of classes than the engine was started with — rejected up front
    /// so clients never see response rows change width mid-stream.
    ModelClassMismatch {
        /// Class count the engine serves.
        expected: usize,
        /// Class count of the offending model.
        got: usize,
    },
    /// The model's circuit breaker is open after consecutive scoring
    /// failures; requests are rejected until a half-open probe succeeds.
    CircuitOpen {
        /// Suggested client back-off until the next probe window.
        retry_after_ms: u64,
    },
    /// No model registered under the requested name.
    UnknownModel(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "I/O error: {msg}"),
            ServeError::Corrupt(msg) => write!(f, "corrupt model file: {msg}"),
            ServeError::Truncated => write!(f, "model file is truncated"),
            ServeError::ChecksumMismatch { expected, found } => write!(
                f,
                "checksum mismatch: file says {found:#018x}, bytes hash to {expected:#018x}"
            ),
            ServeError::UnsupportedVersion { found, supported } => write!(
                f,
                "model format version {found} is newer than supported version {supported}"
            ),
            ServeError::KindMismatch { expected, found } => {
                write!(f, "expected a {expected} model, file holds {found}")
            }
            ServeError::UnsupportedModel => {
                write!(f, "model does not support persistence (no snapshot)")
            }
            ServeError::QueueFull { capacity } => {
                write!(f, "scoring queue is full ({capacity} requests)")
            }
            ServeError::EngineStopped => write!(f, "scoring engine is stopped"),
            ServeError::RowWidthMismatch { expected, got } => {
                write!(f, "row has {got} features, engine expects {expected}")
            }
            ServeError::OutputLengthMismatch { expected, got } => {
                write!(
                    f,
                    "output buffer holds {got} slots, batch has {expected} rows"
                )
            }
            ServeError::Train(e) => write!(f, "training failed: {e}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid engine config: {msg}"),
            ServeError::Unquantizable(msg) => {
                write!(f, "model cannot use the quantized backend: {msg}")
            }
            ServeError::DeadlineExceeded => write!(f, "scoring deadline exceeded"),
            ServeError::Shutdown => write!(f, "engine shut down before scoring the request"),
            ServeError::ModelWidthMismatch { expected, model } => {
                write!(
                    f,
                    "model requires {model}, engine serves rows of {expected}"
                )
            }
            ServeError::ModelClassMismatch { expected, got } => {
                write!(f, "model outputs {got} classes, engine serves {expected}")
            }
            ServeError::CircuitOpen { retry_after_ms } => {
                write!(
                    f,
                    "circuit breaker is open; retry after {retry_after_ms} ms"
                )
            }
            ServeError::UnknownModel(name) => write!(f, "no model registered as {name:?}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl From<SpeError> for ServeError {
    fn from(e: SpeError) -> Self {
        ServeError::Train(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        assert!(ServeError::Truncated.to_string().contains("truncated"));
        assert!(ServeError::ChecksumMismatch {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("checksum mismatch"));
        assert!(ServeError::UnsupportedVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains("version 9"));
        assert!(ServeError::KindMismatch {
            expected: "SPE".into(),
            found: "DT".into()
        }
        .to_string()
        .contains("expected a SPE"));
        assert!(ServeError::QueueFull { capacity: 4 }
            .to_string()
            .contains("full"));
        let io: ServeError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert_eq!(io, ServeError::Io("gone".into()));
        let tr: ServeError = SpeError::EmptyDataset.into();
        assert!(tr.to_string().contains("training failed"));
        assert!(ServeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(ServeError::Shutdown.to_string().contains("shut down"));
        assert!(ServeError::ModelWidthMismatch {
            expected: 30,
            model: FeatureBound::Exact(7)
        }
        .to_string()
        .contains("exactly 7"));
        assert!(ServeError::ModelClassMismatch {
            expected: 2,
            got: 5
        }
        .to_string()
        .contains("5 classes"));
        assert!(ServeError::CircuitOpen {
            retry_after_ms: 250
        }
        .to_string()
        .contains("250 ms"));
        assert!(ServeError::UnknownModel("fraud".into())
            .to_string()
            .contains("fraud"));
    }
}
