//! Quantized u8 inference kernel: the serving-side twin of the
//! training-side histogram engine.
//!
//! [`QuantizedModel::compile`] takes a [`ModelSnapshot`] of a decision
//! tree, a GBDT, or an SPE/soft-vote ensemble of those and re-expresses
//! every split threshold as a **u8 bin code** against a per-feature cut
//! grid harvested from the trees themselves. Scoring a batch then costs
//! one f64→u8 encode pass per column plus branch-free u8 comparisons in
//! the traversal loop — one 64-byte cache line of codes serves 64 rows,
//! where the f64 path pulled 8 bytes per row per split.
//!
//! # Exactness
//!
//! The kernel is **bit-exact**, not approximately equal, to the f64
//! path. The cut grid for feature `f` is the sorted set of *distinct
//! thresholds* the compiled trees actually test on `f` (signed zero
//! normalized to `+0.0`, which `<=` cannot distinguish anyway). Each
//! split's threshold `t` therefore *is* `cuts[f][b]` for some `b`, and
//! the training-side invariant from `spe_data::binning` applies
//! verbatim:
//!
//! ```text
//! encode(cuts, v) <= b  ⟺  v <= cuts[b]      for every v, incl. NaN
//! ```
//!
//! so comparing the u8 code against `b` routes every row — including
//! `NaN`s, which encode past the last cut and go right — to exactly the
//! leaf the f64 comparison picks. Member outputs are then reduced by
//! replaying the floating-point operation order of the source model
//! (`Σ` in member order, one divide for the soft-vote mean; `f0 +
//! Σ η·leaf` then the sigmoid for GBDT), so the final probabilities are
//! identical bit patterns.
//!
//! A feature tested with more than 255 distinct thresholds cannot be
//! coded in a u8; compilation reports that (and unsupported member
//! kinds) as [`ServeError::Unquantizable`], which the engine's `Auto`
//! backend treats as "stay on the f64 path".

use crate::error::ServeError;
use spe_data::{binning, MatrixView};
use spe_learners::{sigmoid, FeatureBound, GbdtModel, Model, ModelSnapshot, NodeView, TreeModel};
use std::cell::Cell;

/// Rows scored per encode-then-traverse block: codes for a block
/// (`256 rows × d features` u8) stay L1/L2-resident while every tree
/// walks them.
const ROW_BLOCK: usize = 256;

/// One flat node. Children are explicit arena indices; leaves point at
/// themselves, so the traversal loop can run a fixed `depth` iterations
/// per row with no branch — once a row reaches a leaf, further steps
/// are no-ops.
#[derive(Clone, Copy, Debug)]
struct QNode {
    left: u32,
    right: u32,
    /// Feature whose code is compared (0 for leaves; reading code
    /// column 0 is always in bounds because a tree with any split
    /// implies at least one feature).
    feature: u32,
    /// Threshold as an index into the feature's cut grid: code `<= bin`
    /// goes left, exactly when `value <= cuts[feature][bin]`.
    bin: u8,
}

/// One compiled tree: root offset into the shared arena plus its depth
/// (the fixed traversal trip count), and which evaluation strategy the
/// compiler picked for it.
#[derive(Clone, Copy, Debug)]
struct QTree {
    root: u32,
    depth: u32,
    kind: TreeKind,
}

/// How a compiled tree is evaluated.
#[derive(Clone, Copy, Debug)]
enum TreeKind {
    /// Level-synchronous bitmask evaluation (QuickScorer-style) for
    /// trees with at most 64 leaves: apply every *failed* split's
    /// leaf-mask, then the lowest surviving bit is the exit leaf. No
    /// pointer chasing — each split node is one load + compare + masked
    /// AND, fully pipelined across a row lane group.
    Masked {
        /// Range into [`QuantizedModel::masked`].
        nodes: (u32, u32),
        /// Start of this tree's leaf values in [`QuantizedModel::leaves`].
        leaves: u32,
    },
    /// Fixed-depth pointer walk from `root` — fallback for trees whose
    /// leaf count overflows a u64 mask.
    Walk,
}

/// One split node in the bitmask form. `mask` clears the leaves of the
/// node's left subtree and is applied exactly when the node's test
/// fails (`code > bin`, i.e. `value > threshold` — the row goes right,
/// so no left-subtree leaf can be its exit). NaN codes compare greater
/// than every bin, failing every test on the row's path — the same
/// "send right" routing the f64 tree applies.
#[derive(Clone, Copy, Debug)]
struct MaskNode {
    mask: u64,
    feature: u32,
    bin: u8,
}

/// How a member turns its accumulated raw score into a probability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Link {
    /// Probability-space trees / constants: the score is the output.
    Identity,
    /// GBDT: logistic link over the boosted log-odds score.
    Sigmoid,
}

/// One ensemble member: a contiguous run of compiled trees plus the
/// scalar frame (`bias + Σ scale·leaf`, then the link) that replays the
/// member's own floating-point evaluation order.
#[derive(Clone, Debug)]
struct Member {
    trees: std::ops::Range<usize>,
    /// Per-tree multiplier: GBDT shrinkage η, 1.0 for plain trees.
    scale: f64,
    /// Starting score: GBDT base score `f0`, the constant itself for
    /// constant members, 0.0 otherwise.
    bias: f64,
    link: Link,
}

/// Reusable per-thread buffers for [`QuantizedModel::predict_proba_into`]:
/// the u8 code block and the per-member score block. Taken (not
/// borrowed) from the thread-local so re-entrant scoring stays correct.
#[derive(Default)]
struct Scratch {
    codes: Vec<u8>,
    member: Vec<f64>,
}

thread_local! {
    static SCRATCH: Cell<Scratch> = Cell::new(Scratch::default());
}

/// A model compiled to the quantized flat representation.
///
/// Compiled from (and carrying) a [`ModelSnapshot`], so it persists
/// through the standard SPEM envelope: `snapshot()` returns the source
/// snapshot and re-compilation after a round trip is deterministic.
pub struct QuantizedModel {
    n_features: usize,
    /// Per-feature ascending cut grids; `cuts[f][b]` is the `b`-th
    /// distinct threshold the trees test feature `f` against.
    cuts: Vec<Vec<f64>>,
    /// All trees' nodes, arena-concatenated.
    nodes: Vec<QNode>,
    /// Leaf payload per node (0.0 for split nodes).
    values: Vec<f64>,
    /// Bitmask-form split nodes of all `Masked` trees, concatenated
    /// (grouped by feature within each tree for cache locality).
    masked: Vec<MaskNode>,
    /// Leaf values of all `Masked` trees, left-to-right per tree.
    leaves: Vec<f64>,
    trees: Vec<QTree>,
    members: Vec<Member>,
    /// Whether the top level is a soft-vote ensemble (divide by member
    /// count) or a single model (score passes through unchanged).
    ensemble: bool,
    /// True when every ensemble member is a bare single tree
    /// (`bias = +0.0`, `scale = 1.0`, identity link — the SPE shape):
    /// member scores are then the leaf values themselves, so trees can
    /// accumulate straight into the output with no per-member buffer.
    direct: bool,
    /// `direct` and every tree compiled to the bitmask form: the whole
    /// forest evaluates in one fused register-blocked pass.
    fused: bool,
    /// One compiled sub-kernel per class for a `MultiClass` source —
    /// empty for every binary model. When non-empty the flat fields
    /// above are unused; scoring runs each sub-kernel and normalizes
    /// per row exactly like `OneVsRestModel`.
    per_class: Vec<QuantizedModel>,
    source: ModelSnapshot,
}

impl QuantizedModel {
    /// Compiles `snapshot` for rows of `n_features` features.
    ///
    /// Supported shapes: `Constant`, `Tree`, `Gbdt`, and one level of
    /// `SoftVote` / `SelfPaced` over those. Anything else — and any
    /// feature with more than 255 distinct split thresholds — returns
    /// [`ServeError::Unquantizable`].
    pub fn compile(snapshot: &ModelSnapshot, n_features: usize) -> Result<Self, ServeError> {
        if let ModelSnapshot::MultiClass { per_class } = snapshot {
            // Each class scorer compiles independently; any class that
            // cannot fails the whole model (a half-quantized one-vs-rest
            // set would not be bit-exact).
            let kernels = per_class
                .iter()
                .map(|s| Self::compile(s, n_features))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Self {
                n_features,
                cuts: Vec::new(),
                nodes: Vec::new(),
                values: Vec::new(),
                masked: Vec::new(),
                leaves: Vec::new(),
                trees: Vec::new(),
                members: Vec::new(),
                ensemble: false,
                direct: false,
                fused: false,
                per_class: kernels,
                source: snapshot.clone(),
            });
        }
        let (specs, ensemble) = member_specs(snapshot)?;
        let cuts = harvest_cuts(&specs, n_features)?;

        let (nodes, values, masked, leaves, trees, members) = {
            let mut c = Compiler {
                cuts: &cuts,
                nodes: Vec::new(),
                values: Vec::new(),
                masked: Vec::new(),
                leaves: Vec::new(),
                trees: Vec::new(),
            };
            let mut members = Vec::with_capacity(specs.len());
            for spec in &specs {
                members.push(match *spec {
                    MemberSpec::Constant(p) => Member {
                        trees: c.trees.len()..c.trees.len(),
                        scale: 1.0,
                        bias: p,
                        link: Link::Identity,
                    },
                    MemberSpec::Tree(t) => {
                        let start = c.trees.len();
                        c.push_tree(t.n_nodes(), |i| t.node(i));
                        Member {
                            trees: start..start + 1,
                            scale: 1.0,
                            bias: 0.0,
                            link: Link::Identity,
                        }
                    }
                    MemberSpec::Gbdt(g) => {
                        let start = c.trees.len();
                        for t in g.trees() {
                            c.push_tree(t.n_nodes(), |i| t.node(i));
                        }
                        Member {
                            trees: start..start + g.trees().len(),
                            scale: g.shrinkage(),
                            bias: g.base_score(),
                            link: Link::Sigmoid,
                        }
                    }
                });
            }
            (c.nodes, c.values, c.masked, c.leaves, c.trees, members)
        };
        let direct = ensemble
            && members.iter().all(|m| {
                m.trees.len() == 1
                    && m.scale.to_bits() == 1.0f64.to_bits()
                    && m.bias.to_bits() == 0
                    && m.link == Link::Identity
            });
        let fused = direct
            && trees
                .iter()
                .all(|t| matches!(t.kind, TreeKind::Masked { .. }));

        Ok(Self {
            n_features,
            cuts,
            nodes,
            values,
            masked,
            leaves,
            trees,
            members,
            ensemble,
            direct,
            fused,
            per_class: Vec::new(),
            source: snapshot.clone(),
        })
    }

    /// Feature count the model was compiled for.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total compiled trees across all members (summed over class
    /// sub-kernels for a multi-class model).
    pub fn n_trees(&self) -> usize {
        if self.per_class.is_empty() {
            self.trees.len()
        } else {
            self.per_class.iter().map(Self::n_trees).sum()
        }
    }

    /// Ensemble member count (1 for a single compiled model; summed over
    /// class sub-kernels for a multi-class model).
    pub fn n_members(&self) -> usize {
        if self.per_class.is_empty() {
            self.members.len()
        } else {
            self.per_class.iter().map(Self::n_members).sum()
        }
    }

    /// Largest cut-grid size across features — how much of the u8 range
    /// the thresholds actually use.
    pub fn max_cuts(&self) -> usize {
        let own = self.cuts.iter().map(Vec::len).max().unwrap_or(0);
        self.per_class
            .iter()
            .map(Self::max_cuts)
            .fold(own, usize::max)
    }

    /// Scores one encode-sized block of rows.
    fn score_block(&self, x: MatrixView<'_>, out: &mut [f64], scratch: &mut Scratch) {
        let rows = x.rows();
        scratch.codes.clear();
        scratch.codes.resize(rows * self.n_features, 0);
        binning::encode_batch_into(&self.cuts, x, &mut scratch.codes);

        if !self.ensemble {
            // Single model: its score *is* the output, no mean.
            self.eval_member(&self.members[0], &scratch.codes, rows, out);
            return;
        }
        out.fill(0.0);
        if self.fused {
            // Every member is a bare single `Masked` tree: one fused
            // pass keeps each row group's running sum in registers
            // across all trees instead of re-reading `out` per tree.
            self.eval_forest(&scratch.codes, rows, out);
        } else if self.direct {
            // Every member is a bare tree (`0.0 + 1.0·leaf` is exactly
            // `leaf`), so accumulate the trees straight into `out` —
            // no per-member buffer fill / add pass.
            for m in &self.members {
                self.accumulate_tree(self.trees[m.trees.start], &scratch.codes, rows, 1.0, out);
            }
        } else {
            scratch.member.clear();
            scratch.member.resize(rows, 0.0);
            for m in &self.members {
                self.eval_member(m, &scratch.codes, rows, &mut scratch.member);
                for (o, &p) in out.iter_mut().zip(&scratch.member) {
                    *o += p;
                }
            }
        }
        let k = self.members.len() as f64;
        for o in out.iter_mut() {
            *o /= k;
        }
    }

    /// Evaluates one member into `out` (`bias`, `+= scale·leaf` per tree
    /// in order, then the link) — the same op sequence the f64 model
    /// runs, so the result is bit-identical.
    fn eval_member(&self, m: &Member, codes: &[u8], rows: usize, out: &mut [f64]) {
        out.fill(m.bias);
        for t in &self.trees[m.trees.clone()] {
            self.accumulate_tree(*t, codes, rows, m.scale, out);
        }
        if m.link == Link::Sigmoid {
            for o in out.iter_mut() {
                *o = sigmoid(*o);
            }
        }
    }

    /// Fused direct-ensemble kernel: for each 16-row group, runs every
    /// tree's bitmask evaluation and accumulates the leaf sum in a
    /// register block, storing into `out` once per group. The per-row
    /// addition order (tree order, starting from `0.0`) is exactly the
    /// order [`Self::accumulate_tree`] produces, so the result is
    /// bit-identical. Requires `self.fused`.
    fn eval_forest(&self, codes: &[u8], rows: usize, out: &mut [f64]) {
        let mut r = 0;
        while r + 16 <= rows {
            let mut acc = [0.0f64; 16];
            for t in &self.trees {
                let TreeKind::Masked {
                    nodes: (lo, hi),
                    leaves,
                } = t.kind
                else {
                    unreachable!("fused model holds only masked trees")
                };
                let masked = &self.masked[lo as usize..hi as usize];
                let leaves = &self.leaves[leaves as usize..];
                let mut m = [u64::MAX; 16];
                for n in masked {
                    let base = n.feature as usize * rows + r;
                    let c: [u8; 16] = codes[base..base + 16].try_into().unwrap();
                    for (lane, &code) in m.iter_mut().zip(&c) {
                        *lane &= n.mask | u64::from(code <= n.bin).wrapping_neg();
                    }
                }
                for (a, lane) in acc.iter_mut().zip(&m) {
                    *a += 1.0 * leaves[lane.trailing_zeros() as usize];
                }
            }
            out[r..r + 16].copy_from_slice(&acc);
            r += 16;
        }
        while r < rows {
            let mut a = 0.0;
            for t in &self.trees {
                let TreeKind::Masked {
                    nodes: (lo, hi),
                    leaves,
                } = t.kind
                else {
                    unreachable!("fused model holds only masked trees")
                };
                let mut live = u64::MAX;
                for n in &self.masked[lo as usize..hi as usize] {
                    if codes[n.feature as usize * rows + r] > n.bin {
                        live &= n.mask;
                    }
                }
                a += 1.0 * self.leaves[leaves as usize + live.trailing_zeros() as usize];
            }
            out[r] = a;
            r += 1;
        }
    }

    /// Adds `scale · leaf(row)` of one tree to `out`, dispatching on the
    /// tree's compiled evaluation strategy.
    fn accumulate_tree(&self, t: QTree, codes: &[u8], rows: usize, scale: f64, out: &mut [f64]) {
        match t.kind {
            TreeKind::Masked {
                nodes: (lo, hi),
                leaves,
            } => eval_masked(
                &self.masked[lo as usize..hi as usize],
                &self.leaves[leaves as usize..],
                codes,
                rows,
                scale,
                out,
            ),
            TreeKind::Walk => eval_tree(&self.nodes, &self.values, t, codes, rows, scale, out),
        }
    }
}

impl Model for QuantizedModel {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        let mut out = vec![0.0; x.rows()];
        self.predict_proba_into(x, &mut out);
        out
    }

    fn predict_proba_into(&self, x: MatrixView<'_>, out: &mut [f64]) {
        assert_eq!(out.len(), x.rows(), "output buffer must match row count");
        assert!(
            x.cols() == self.n_features || x.rows() == 0,
            "row has {} features, model compiled for {}",
            x.cols(),
            self.n_features
        );
        if !self.per_class.is_empty() {
            // Scalar view of a multi-class model: 1 − P(class 0), the
            // same collapse `OneVsRestModel::predict_proba_view` applies.
            let k = self.per_class.len();
            let mut full = vec![0.0; x.rows() * k];
            self.predict_proba_k_into(x, &mut full);
            for (o, row) in out.iter_mut().zip(full.chunks_exact(k)) {
                *o = 1.0 - row[0];
            }
            return;
        }
        let mut scratch = SCRATCH.with(Cell::take);
        let mut start = 0;
        while start < x.rows() {
            let end = (start + ROW_BLOCK).min(x.rows());
            self.score_block(x.rows_range(start..end), &mut out[start..end], &mut scratch);
            start = end;
        }
        SCRATCH.with(|c| c.set(scratch));
    }

    fn n_classes(&self) -> usize {
        if self.per_class.is_empty() {
            2
        } else {
            self.per_class.len()
        }
    }

    fn predict_proba_k_into(&self, x: MatrixView<'_>, out: &mut [f64]) {
        if self.per_class.is_empty() {
            // Binary: scalar score expanded to [1-p, p], exactly the
            // Model trait's default (re-stated because this override
            // shadows it).
            let rows = x.rows();
            assert_eq!(
                out.len(),
                rows * 2,
                "output buffer must hold rows * n_classes values"
            );
            self.predict_proba_into(x, &mut out[..rows]);
            for i in (0..rows).rev() {
                let p = out[i];
                out[2 * i + 1] = p;
                out[2 * i] = 1.0 - p;
            }
            return;
        }
        // Multi-class: replay OneVsRestModel::predict_proba_k_into with
        // each f64 scorer swapped for its bit-exact compiled kernel —
        // identical raw scores, identical normalization op order,
        // identical output bits.
        let k = self.per_class.len();
        let rows = x.rows();
        assert_eq!(
            out.len(),
            rows * k,
            "output buffer must hold rows * n_classes values"
        );
        let mut scratch = vec![0.0; rows];
        for (c, kernel) in self.per_class.iter().enumerate() {
            kernel.predict_proba_into(x, &mut scratch);
            for (i, &p) in scratch.iter().enumerate() {
                out[i * k + c] = p;
            }
        }
        for row in out.chunks_exact_mut(k) {
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                for p in row.iter_mut() {
                    *p /= sum;
                }
            } else {
                row.fill(1.0 / k as f64);
            }
        }
    }

    fn feature_bound(&self) -> FeatureBound {
        // The cut grids were laid out for exactly this width; encoding a
        // different one would misalign every feature column.
        FeatureBound::Exact(self.n_features)
    }

    /// The *source* snapshot: a quantized model persists as the model it
    /// was compiled from, so SPEM round trips re-compile bit-identically
    /// with no new envelope format.
    fn snapshot(&self) -> Option<ModelSnapshot> {
        Some(self.source.clone())
    }
}

/// Bitmask evaluation of one tree over a block: every row starts with
/// all leaves live (`u64::MAX`); each *failed* split test ANDs away its
/// left subtree's leaves; the lowest surviving bit is the exit leaf.
///
/// The nodes are visited unconditionally — no pointer chasing, no
/// data-dependent loads — and sixteen row lanes share each node's
/// single load, so the loop is one compare + masked AND per (node,
/// row), fully pipelined. Nodes are feature-grouped, so the sixteen
/// `codes` reads per node hit one cache line and consecutive nodes
/// often reuse it.
fn eval_masked(
    masked: &[MaskNode],
    leaves: &[f64],
    codes: &[u8],
    rows: usize,
    scale: f64,
    acc: &mut [f64],
) {
    let mut r = 0;
    while r + 16 <= rows {
        let mut m = [u64::MAX; 16];
        for n in masked {
            let base = n.feature as usize * rows + r;
            let c: [u8; 16] = codes[base..base + 16].try_into().unwrap();
            for (lane, &code) in m.iter_mut().zip(&c) {
                // Branchless select: all-ones when the test passes
                // (keep every leaf), the node mask when it fails.
                *lane &= n.mask | u64::from(code <= n.bin).wrapping_neg();
            }
        }
        for (a, lane) in acc[r..r + 16].iter_mut().zip(&m) {
            *a += scale * leaves[lane.trailing_zeros() as usize];
        }
        r += 16;
    }
    while r < rows {
        let mut live = u64::MAX;
        for n in masked {
            if codes[n.feature as usize * rows + r] > n.bin {
                live &= n.mask;
            }
        }
        acc[r] += scale * leaves[live.trailing_zeros() as usize];
        r += 1;
    }
}

/// Walks `depth` levels for four rows at once (plus a scalar tail) and
/// accumulates `scale * leaf` into `acc`. Leaves self-loop, so the trip
/// count is fixed and the inner step compiles to a branch-free select.
fn eval_tree(
    nodes: &[QNode],
    values: &[f64],
    tree: QTree,
    codes: &[u8],
    rows: usize,
    scale: f64,
    acc: &mut [f64],
) {
    let root = tree.root as usize;
    let depth = tree.depth as usize;
    if depth == 0 {
        let v = scale * values[root];
        for a in acc.iter_mut() {
            *a += v;
        }
        return;
    }
    #[inline(always)]
    fn step(nodes: &[QNode], codes: &[u8], rows: usize, r: usize, i: usize) -> usize {
        let n = nodes[i];
        let c = codes[n.feature as usize * rows + r];
        (if c <= n.bin { n.left } else { n.right }) as usize
    }
    let mut r = 0;
    // Four independent traversal lanes hide the code-load latency.
    while r + 4 <= rows {
        let (mut i0, mut i1, mut i2, mut i3) = (root, root, root, root);
        for _ in 0..depth {
            i0 = step(nodes, codes, rows, r, i0);
            i1 = step(nodes, codes, rows, r + 1, i1);
            i2 = step(nodes, codes, rows, r + 2, i2);
            i3 = step(nodes, codes, rows, r + 3, i3);
        }
        acc[r] += scale * values[i0];
        acc[r + 1] += scale * values[i1];
        acc[r + 2] += scale * values[i2];
        acc[r + 3] += scale * values[i3];
        r += 4;
    }
    while r < rows {
        let mut i = root;
        for _ in 0..depth {
            i = step(nodes, codes, rows, r, i);
        }
        acc[r] += scale * values[i];
        r += 1;
    }
}

/// A member of the compiled model, borrowed from the snapshot.
enum MemberSpec<'a> {
    Constant(f64),
    Tree(&'a TreeModel),
    Gbdt(&'a GbdtModel),
}

/// Flattens the snapshot into quantizable members; the bool says
/// whether soft-vote mean semantics apply at the top level.
fn member_specs(snapshot: &ModelSnapshot) -> Result<(Vec<MemberSpec<'_>>, bool), ServeError> {
    fn leaf_spec(s: &ModelSnapshot) -> Result<MemberSpec<'_>, ServeError> {
        match s {
            ModelSnapshot::Constant(p) => Ok(MemberSpec::Constant(*p)),
            ModelSnapshot::Tree(t) => Ok(MemberSpec::Tree(t)),
            ModelSnapshot::Gbdt(g) => Ok(MemberSpec::Gbdt(g)),
            other => Err(ServeError::Unquantizable(format!(
                "{} members have no quantized form",
                other.kind()
            ))),
        }
    }
    match snapshot {
        ModelSnapshot::SoftVote(members) => Ok((
            members.iter().map(leaf_spec).collect::<Result<_, _>>()?,
            true,
        )),
        ModelSnapshot::SelfPaced { members, .. } => Ok((
            members.iter().map(leaf_spec).collect::<Result<_, _>>()?,
            true,
        )),
        single => Ok((vec![leaf_spec(single)?], false)),
    }
}

/// Normalizes `-0.0` to `+0.0`: IEEE `<=` cannot tell them apart, and a
/// grid ordered by `total_cmp` must not contain both.
#[inline]
fn normalize_zero(t: f64) -> f64 {
    if t == 0.0 {
        0.0
    } else {
        t
    }
}

/// Collects the distinct split thresholds per feature into sorted cut
/// grids, validating feature indices and the 255-cut u8 budget.
fn harvest_cuts(specs: &[MemberSpec<'_>], n_features: usize) -> Result<Vec<Vec<f64>>, ServeError> {
    let mut per_feature: Vec<Vec<f64>> = vec![Vec::new(); n_features];
    let mut add = |feature: usize, threshold: f64| -> Result<(), ServeError> {
        if feature >= n_features {
            return Err(ServeError::Unquantizable(format!(
                "tree tests feature {feature}, engine serves {n_features} features"
            )));
        }
        if threshold.is_nan() {
            return Err(ServeError::Unquantizable(
                "tree has a NaN split threshold".into(),
            ));
        }
        per_feature[feature].push(normalize_zero(threshold));
        Ok(())
    };
    for spec in specs {
        match spec {
            MemberSpec::Constant(_) => {}
            MemberSpec::Tree(t) => {
                for i in 0..t.n_nodes() {
                    if let NodeView::Split {
                        feature, threshold, ..
                    } = t.node(i)
                    {
                        add(feature, threshold)?;
                    }
                }
            }
            MemberSpec::Gbdt(g) => {
                for t in g.trees() {
                    for i in 0..t.n_nodes() {
                        if let NodeView::Split {
                            feature, threshold, ..
                        } = t.node(i)
                        {
                            add(feature, threshold)?;
                        }
                    }
                }
            }
        }
    }
    for (f, cuts) in per_feature.iter_mut().enumerate() {
        cuts.sort_unstable_by(|a, b| a.total_cmp(b));
        cuts.dedup();
        if cuts.len() >= binning::MAX_BINS {
            return Err(ServeError::Unquantizable(format!(
                "feature {f} is tested against {} distinct thresholds (u8 codes allow {})",
                cuts.len(),
                binning::MAX_BINS - 1
            )));
        }
    }
    Ok(per_feature)
}

/// Accumulates flattened trees into the shared arena.
struct Compiler<'a> {
    cuts: &'a [Vec<f64>],
    nodes: Vec<QNode>,
    values: Vec<f64>,
    masked: Vec<MaskNode>,
    leaves: Vec<f64>,
    trees: Vec<QTree>,
}

impl Compiler<'_> {
    /// Cut-grid index of `threshold` on `feature` (harvested earlier,
    /// so the lookup cannot miss).
    fn bin_of(&self, feature: usize, threshold: f64) -> u8 {
        let t = normalize_zero(threshold);
        self.cuts[feature]
            .binary_search_by(|c| c.total_cmp(&t))
            .unwrap_or_else(|_| unreachable!("threshold harvested into the grid")) as u8
    }

    /// Flattens one source tree (exposed as `node(i)` views over a
    /// parent-before-child arena) into the shared arena, keeping its
    /// node order and remapping thresholds to cut-grid indices. Trees
    /// with at most 64 leaves additionally get the bitmask form, which
    /// the evaluator prefers.
    fn push_tree(&mut self, n_nodes: usize, node: impl Fn(usize) -> NodeView) {
        let base = self.nodes.len() as u32;
        for i in 0..n_nodes {
            match node(i) {
                NodeView::Leaf { value } => {
                    let me = base + i as u32;
                    self.nodes.push(QNode {
                        left: me,
                        right: me,
                        feature: 0,
                        bin: 0,
                    });
                    self.values.push(value);
                }
                NodeView::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let bin = self.bin_of(feature, threshold);
                    self.nodes.push(QNode {
                        left: base + left as u32,
                        right: base + right as u32,
                        feature: feature as u32,
                        bin,
                    });
                    self.values.push(0.0);
                }
            }
        }
        let depth = tree_depth(&node, 0);
        let kind = self.build_masked(&node).unwrap_or(TreeKind::Walk);
        self.trees.push(QTree {
            root: base,
            depth: depth as u32,
            kind,
        });
    }

    /// Builds the bitmask form of the tree rooted at source index 0, or
    /// `None` when its leaf count overflows a u64 mask.
    fn build_masked(&mut self, node: &impl Fn(usize) -> NodeView) -> Option<TreeKind> {
        // In-order walk: number leaves left-to-right, record each split
        // node with the leaf range of its left subtree.
        fn walk(
            c: &Compiler<'_>,
            node: &impl Fn(usize) -> NodeView,
            i: usize,
            leaves: &mut Vec<f64>,
            splits: &mut Vec<MaskNode>,
        ) -> Option<(u32, u32)> {
            match node(i) {
                NodeView::Leaf { value } => {
                    if leaves.len() == 64 {
                        return None;
                    }
                    let s = leaves.len() as u32;
                    leaves.push(value);
                    Some((s, s + 1))
                }
                NodeView::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let (l0, l1) = walk(c, node, left, leaves, splits)?;
                    let (_, r1) = walk(c, node, right, leaves, splits)?;
                    // Left subtree holds < 64 leaves (the right one has
                    // at least one), so the shift cannot overflow.
                    let bits = ((1u64 << (l1 - l0)) - 1) << l0;
                    splits.push(MaskNode {
                        mask: !bits,
                        feature: feature as u32,
                        bin: c.bin_of(feature, threshold),
                    });
                    Some((l0, r1))
                }
            }
        }
        let mut leaves = Vec::new();
        let mut splits = Vec::new();
        walk(self, node, 0, &mut leaves, &mut splits)?;
        // Feature-major order: consecutive nodes reuse the same code
        // cache line. The masks are ANDs, so order does not affect the
        // selected leaf.
        splits.sort_unstable_by_key(|n| (n.feature, n.bin));
        let lo = self.masked.len() as u32;
        let leaf_start = self.leaves.len() as u32;
        self.masked.extend_from_slice(&splits);
        self.leaves.extend_from_slice(&leaves);
        Some(TreeKind::Masked {
            nodes: (lo, self.masked.len() as u32),
            leaves: leaf_start,
        })
    }
}

/// Depth of the subtree at `i` (0 for a lone leaf).
fn tree_depth(node: &impl Fn(usize) -> NodeView, i: usize) -> usize {
    match node(i) {
        NodeView::Leaf { .. } => 0,
        NodeView::Split { left, right, .. } => {
            1 + tree_depth(node, left).max(tree_depth(node, right))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::Matrix;
    use spe_learners::{DecisionTreeConfig, GbdtConfig, Learner};

    #[test]
    #[ignore]
    fn profile_encode_vs_traverse() {
        let train = spe_datasets::credit_fraud_sim(40_000, 7);
        let score = spe_datasets::credit_fraud_sim(20_000, 8);
        let cfg = spe_core::SelfPacedEnsembleConfig::builder()
            .n_estimators(10)
            .build()
            .unwrap();
        let model = cfg.try_fit_dataset(&train, 42).unwrap();
        let q = QuantizedModel::compile(&model.snapshot().unwrap(), 30).unwrap();
        eprintln!(
            "trees={} members={} max_cuts={} nodes={} depths={:?}",
            q.n_trees(),
            q.n_members(),
            q.max_cuts(),
            q.nodes.len(),
            q.trees.iter().map(|t| t.depth).collect::<Vec<_>>()
        );
        let per_feature: Vec<usize> = q.cuts.iter().map(Vec::len).collect();
        eprintln!("cuts per feature: {per_feature:?}");
        let x = score.x().view();
        let rows = x.rows();
        let mut codes = vec![0u8; rows * 30];
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            binning::encode_batch_into(&q.cuts, x, &mut codes);
        }
        let enc = t0.elapsed().as_secs_f64() / 10.0;
        let mut out = vec![0.0; rows];
        let mut member = vec![0.0; rows];
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            out.fill(0.0);
            for m in &q.members {
                member.fill(m.bias);
                for t in &q.trees[m.trees.clone()] {
                    eval_tree(&q.nodes, &q.values, *t, &codes, rows, m.scale, &mut member);
                }
                for (o, &p) in out.iter_mut().zip(&member) {
                    *o += p;
                }
            }
        }
        let trav = t0.elapsed().as_secs_f64() / 10.0;
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            out.fill(0.0);
            for m in &q.members {
                q.eval_member(m, &codes, rows, &mut member);
                for (o, &p) in out.iter_mut().zip(&member) {
                    *o += p;
                }
            }
        }
        let masked = t0.elapsed().as_secs_f64() / 10.0;
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            q.predict_proba_into(x, &mut out);
        }
        let full = t0.elapsed().as_secs_f64() / 10.0;
        eprintln!(
            "encode {:.1}ns/row  walk {:.1}ns/row  masked {:.1}ns/row  full {:.1}ns/row",
            enc * 1e9 / rows as f64,
            trav * 1e9 / rows as f64,
            masked * 1e9 / rows as f64,
            full * 1e9 / rows as f64
        );
    }

    fn two_blob_data(n: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = spe_data::SeededRng::new(seed);
        let mut x = Matrix::with_capacity(n, 3);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = u8::from(i % 7 == 0);
            let c = f64::from(label) * 1.5;
            x.push_row(&[
                rng.normal(c, 1.0),
                rng.normal(-c, 0.8),
                // A low-cardinality column exercises repeated thresholds.
                (i % 4) as f64,
            ]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn tree_is_bit_exact() {
        let (x, y) = two_blob_data(600, 3);
        let tree = DecisionTreeConfig::with_depth(6).fit(&x, &y, 1);
        let snap = tree.snapshot().unwrap();
        let q = QuantizedModel::compile(&snap, x.cols()).unwrap();
        assert_eq!(q.predict_proba(&x), tree.predict_proba(&x));
    }

    #[test]
    fn gbdt_is_bit_exact() {
        let (x, y) = two_blob_data(500, 5);
        let g = GbdtConfig::new(8).fit(&x, &y, 2);
        let snap = g.snapshot().unwrap();
        let q = QuantizedModel::compile(&snap, x.cols()).unwrap();
        assert_eq!(q.predict_proba(&x), g.predict_proba(&x));
    }

    #[test]
    fn nan_rows_follow_the_f64_path() {
        let (x, y) = two_blob_data(400, 7);
        let tree = DecisionTreeConfig::with_depth(5).fit(&x, &y, 1);
        let q = QuantizedModel::compile(&tree.snapshot().unwrap(), x.cols()).unwrap();
        let mut probe = x.row_range(0..8);
        let cols = probe.cols();
        for i in 0..probe.rows() {
            probe.row_mut(i)[i % cols] = f64::NAN;
        }
        assert_eq!(q.predict_proba(&probe), tree.predict_proba(&probe));
    }

    #[test]
    fn constant_and_empty_batches_work() {
        let snap = ModelSnapshot::Constant(0.25);
        let q = QuantizedModel::compile(&snap, 4).unwrap();
        assert_eq!(q.predict_proba(&Matrix::zeros(3, 4)), vec![0.25; 3]);
        assert_eq!(q.predict_proba(&Matrix::zeros(0, 4)), Vec::<f64>::new());
    }

    #[test]
    fn unsupported_members_report_unquantizable() {
        let snap = ModelSnapshot::SoftVote(vec![
            ModelSnapshot::Constant(0.5),
            ModelSnapshot::SoftVote(vec![ModelSnapshot::Constant(0.5)]),
        ]);
        assert!(matches!(
            QuantizedModel::compile(&snap, 2),
            Err(ServeError::Unquantizable(_))
        ));
    }

    #[test]
    fn too_many_thresholds_overflow_the_u8_budget() {
        // 300 stumps, each splitting feature 0 at a distinct threshold.
        let members: Vec<ModelSnapshot> = (0..300)
            .map(|i| {
                let x =
                    Matrix::from_vec(2, 1, vec![f64::from(i) / 300.0, f64::from(i) / 300.0 + 2.0]);
                let t = DecisionTreeConfig::stump().fit(&x, &[0, 1], 1);
                t.snapshot().unwrap()
            })
            .collect();
        let snap = ModelSnapshot::SoftVote(members);
        let err = QuantizedModel::compile(&snap, 1).map(|_| ()).unwrap_err();
        assert!(matches!(err, ServeError::Unquantizable(_)), "{err}");
        assert!(err.to_string().contains("distinct thresholds"), "{err}");
    }

    #[test]
    fn multiclass_is_bit_exact_against_one_vs_rest() {
        // Three per-class tree scorers assembled one-vs-rest; the
        // compiled kernel must reproduce every probability bit.
        let (x, y) = two_blob_data(600, 11);
        let scorers: Vec<Box<dyn Model>> = (0..3)
            .map(|c| {
                let binary: Vec<u8> = y
                    .iter()
                    .map(|&l| u8::from(usize::from(l) == c % 2))
                    .collect();
                DecisionTreeConfig::with_depth(4).fit(&x, &binary, c as u64)
            })
            .collect();
        let ovr = spe_learners::OneVsRestModel::new(scorers);
        let snap = ovr.snapshot().unwrap();
        assert_eq!(snap.kind(), "MultiClass");
        let q = QuantizedModel::compile(&snap, x.cols()).unwrap();
        assert_eq!(q.n_classes(), 3);
        assert!(q.n_trees() >= 3);
        assert_eq!(q.predict_proba_k(&x), ovr.predict_proba_k(&x));
        assert_eq!(q.predict_proba(&x), ovr.predict_proba(&x));
        assert_eq!(q.predict_class(&x), ovr.predict_class(&x));
    }

    #[test]
    fn multiclass_with_unquantizable_member_reports_unquantizable() {
        let snap = ModelSnapshot::MultiClass {
            per_class: vec![
                ModelSnapshot::Constant(0.5),
                ModelSnapshot::SoftVote(vec![ModelSnapshot::SoftVote(vec![
                    ModelSnapshot::Constant(0.5),
                ])]),
            ],
        };
        assert!(matches!(
            QuantizedModel::compile(&snap, 2),
            Err(ServeError::Unquantizable(_))
        ));
    }

    #[test]
    fn block_boundaries_are_seamless() {
        let (x, y) = two_blob_data(ROW_BLOCK + 37, 9);
        let tree = DecisionTreeConfig::with_depth(4).fit(&x, &y, 3);
        let q = QuantizedModel::compile(&tree.snapshot().unwrap(), x.cols()).unwrap();
        assert_eq!(q.predict_proba(&x), tree.predict_proba(&x));
    }
}
