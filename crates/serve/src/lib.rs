//! Model persistence and batched inference for trained SPE models.
//!
//! Training (`spe-core`) produces a model; this crate gets it to
//! production and back:
//!
//! - [`envelope`] — a versioned, checksummed on-disk format around the
//!   [`ModelSnapshot`](spe_learners::ModelSnapshot) taken from any
//!   built-in model. Saves are atomic (temp file + rename); loads
//!   verify the checksum *before* decoding and report corruption,
//!   truncation, version skew and kind mismatches as distinct
//!   [`ServeError`] variants.
//! - [`engine`] — a micro-batching [`ScoringEngine`]: callers submit
//!   single rows, a scheduler thread coalesces them into batches
//!   (flushing on size or delay) and scores them through the shared
//!   `spe-runtime` pool. The served model sits behind a hot-swap
//!   registry slot so retrained models roll out with zero downtime.
//! - [`quantize`] — a u8-quantized tree kernel. Tree-shaped snapshots
//!   (DT, GBDT, SPE, soft-vote) compile into flat node arrays whose
//!   split thresholds are bin codes against a serving-side cut grid;
//!   each batch is encoded to u8 once and traversed batch-major. The
//!   engine picks it automatically ([`ScoreBackend::Auto`]) and the
//!   scores are bit-identical to the f64 path.
//!
//! ```no_run
//! use spe_serve::{save_model, load_spe, EngineConfig, ScoreBackend, ScoringEngine};
//! # fn demo(model: &dyn spe_learners::Model) -> Result<(), spe_serve::ServeError> {
//! let path = std::path::Path::new("fraud.spe");
//! save_model(path, model, vec![("trained_on".into(), "2026-08".into())])?;
//! let loaded = load_spe(path)?;
//! let config = EngineConfig::builder()
//!     .max_batch(256)
//!     .backend(ScoreBackend::Auto)
//!     .build()?;
//! let engine = ScoringEngine::start(Box::new(loaded), 30, config)?;
//! let p = engine.submit(&[0.0; 30])?.wait()?;
//! # let _ = p; Ok(())
//! # }
//! ```

pub mod engine;
pub mod envelope;
pub mod error;
pub mod quantize;

pub use engine::{
    EngineConfig, EngineConfigBuilder, PendingScore, ScoreBackend, ScoringEngine, ServeStats,
};
pub use envelope::{
    fnv1a, load_envelope, load_model, load_model_expecting, load_spe, save_model, save_snapshot,
    ModelEnvelope, FORMAT_VERSION, MAGIC,
};
pub use error::ServeError;
pub use quantize::QuantizedModel;

#[cfg(test)]
mod tests {
    use super::*;
    use spe_core::SelfPacedEnsembleConfig;
    use spe_data::Dataset;
    use spe_datasets::credit_fraud_sim;
    use spe_learners::{DecisionTreeConfig, Learner, Model};
    use std::path::PathBuf;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spe-serve-test-{}-{name}", std::process::id()));
        p
    }

    fn small_fraud() -> Dataset {
        credit_fraud_sim(2000, 7)
    }

    #[test]
    fn spe_round_trip_is_bit_identical() {
        let data = small_fraud();
        let model = SelfPacedEnsembleConfig::default().fit_dataset(&data, 42);
        let path = tmp_path("spe-roundtrip.spe");
        save_model(&path, &model, vec![("rows".into(), data.len().to_string())])
            .unwrap_or_else(|e| panic!("{e}"));
        let loaded = load_spe(&path).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(loaded.len(), model.len());
        assert_eq!(loaded.alphas(), model.alphas());
        assert_eq!(
            loaded.predict_proba(data.x()),
            model.predict_proba(data.x())
        );
        let env = load_envelope(&path).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(env.model_kind, "SPE");
        assert_eq!(env.metadata[0].0, "rows");
        std::fs::remove_file(&path).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn kind_gate_rejects_other_models() {
        let data = small_fraud();
        let tree = DecisionTreeConfig::with_depth(3).fit(data.x(), data.y(), 1);
        let path = tmp_path("kind-gate.spe");
        save_model(&path, tree.as_ref(), Vec::new()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            load_spe(&path).map(|_| ()),
            Err(ServeError::KindMismatch {
                expected: "SPE".into(),
                found: "DT".into()
            })
        );
        assert!(load_model_expecting(&path, "DT").is_ok());
        std::fs::remove_file(&path).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn engine_serves_a_loaded_model() {
        let data = small_fraud();
        let model = SelfPacedEnsembleConfig::default().fit_dataset(&data, 3);
        let path = tmp_path("engine.spe");
        save_model(&path, &model, Vec::new()).unwrap_or_else(|e| panic!("{e}"));
        let loaded = load_model(&path).unwrap_or_else(|e| panic!("{e}"));
        let engine = ScoringEngine::start(loaded, data.x().cols(), EngineConfig::default())
            .unwrap_or_else(|e| panic!("{e}"));
        // A loaded SPE is tree-shaped, so `Auto` must select the
        // quantized backend — and still agree bit-for-bit with the
        // model's own f64 path.
        assert_eq!(engine.backend(), ScoreBackend::Quantized);
        let want = model.predict_proba(data.x());
        // Batched direct path.
        let got = engine
            .score_matrix(data.x())
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(got, want);
        // Queued single-row path agrees too.
        let pending: Vec<_> = (0..16)
            .map(|i| {
                engine
                    .submit(data.x().row(i))
                    .unwrap_or_else(|e| panic!("{e}"))
            })
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            assert_eq!(p.wait(), Ok(want[i]));
        }
        std::fs::remove_file(&path).unwrap_or_else(|e| panic!("{e}"));
    }
}
