//! `spe_score` — fit, persist, inspect and batch-score SPE models from
//! the command line.
//!
//! ```sh
//! spe_score gen        --out data.csv [--rows 4000] [--seed 7] [--classes K]
//! spe_score fit-save   --train data.csv --out model.spe
//!                      [--members 10] [--seed 42] [--preds preds.csv]
//! spe_score fit-save   --train data.csv --out model.spe --chunked
//!                      [--chunk-rows 65536] [--members 10] [--seed 42]
//! spe_score pack       --input data.csv --out shards/ [--rows-per-shard 65536]
//! spe_score load-score --model model.spe --input data.csv --out preds.csv
//! spe_score inspect    --model model.spe
//! ```
//!
//! `fit-save --preds` and `load-score` write the same prediction format
//! (one `probability` column for binary models, one `class_<c>` column
//! per class for multi-class ones), so `cmp` between the two files is
//! the canonical save→load bit-identity check used by `ci.sh`.
//!
//! Training files with labels beyond `{0, 1}` take the multi-class
//! path: labels are mapped to dense class ids (recorded in the model's
//! metadata as `class_labels`), a k-way SPE is fit, and predictions are
//! full per-class distributions. Binary files flow through the exact
//! same code they always did.
//!
//! `--chunked` fits out-of-core: the training file is streamed twice
//! (quantile-sketch pass, then u8-encode pass) and never loaded whole.
//! `--train` may then also name a shard directory written by `pack`.

use spe_core::{ChunkedFitOptions, MultiClassSpeConfig, SelfPacedEnsembleConfig};
use spe_data::csv::{read_dataset_indexed, write_csv};
use spe_data::{pack_source, ChunkedCsv, ChunkedSource, ShardReader};
use spe_learners::{DecisionTreeConfig, Model, SplitMethod};
use spe_serve::{load_envelope, load_model, save_model, ServeError};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage:
  spe_score gen        --out <data.csv> [--rows N] [--seed S] [--classes K]
  spe_score fit-save   --train <data.csv> --out <model.spe> [--members N] [--seed S] [--preds <preds.csv>]
  spe_score fit-save   --train <data.csv|shard-dir> --out <model.spe> --chunked [--chunk-rows N] [--members N] [--seed S]
  spe_score pack       --input <data.csv> --out <shard-dir> [--rows-per-shard N]
  spe_score load-score --model <model.spe> --input <data.csv> --out <preds.csv>
  spe_score inspect    --model <model.spe>";

/// Minimal `--flag value` parser over the args after the subcommand.
/// A flag followed by another flag (or nothing) is boolean `true`.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let name = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got {:?}", argv[i]))?;
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    pairs.push((name.to_string(), v.clone()));
                    i += 2;
                }
                _ => {
                    pairs.push((name.to_string(), "true".to_string()));
                    i += 1;
                }
            }
        }
        Ok(Self { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn path(&self, name: &str) -> Result<PathBuf, String> {
        Ok(PathBuf::from(self.require(name)?))
    }

    fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} wants an integer, got {v:?}")),
        }
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} wants an integer, got {v:?}")),
        }
    }
}

fn write_predictions(path: &Path, probs: &[f64]) -> std::io::Result<()> {
    let rows: Vec<Vec<f64>> = probs.iter().map(|&p| vec![p]).collect();
    write_csv(path, &["probability"], &rows)
}

/// Writes row-major `[rows × k]` class distributions, one `class_<c>`
/// column per class.
fn write_class_predictions(path: &Path, proba: &[f64], k: usize) -> std::io::Result<()> {
    let headers: Vec<String> = (0..k).map(|c| format!("class_{c}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<f64>> = proba.chunks_exact(k).map(<[f64]>::to_vec).collect();
    write_csv(path, &header_refs, &rows)
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let out = flags.path("out")?;
    let rows = flags.usize_or("rows", 4000)?;
    let seed = flags.u64_or("seed", 7)?;
    let classes = flags.usize_or("classes", 2)?;
    let data = if classes == 2 {
        spe_datasets::credit_fraud_sim(rows, seed)
    } else {
        if !(3..=256).contains(&classes) {
            return Err(format!("--classes wants 2..=256, got {classes}"));
        }
        // Geometric 4:1 imbalance; the largest class sized so the total
        // lands near --rows (the series sums to ~4/3 of the base).
        let cfg =
            spe_datasets::MultiClassCheckerboardConfig::geometric(classes, (rows * 3) / 4, 4.0);
        spe_datasets::multiclass_checkerboard(&cfg, seed)
    };
    spe_data::csv::write_dataset(&out, &data).map_err(|e| e.to_string())?;
    if data.n_classes() == 2 {
        let pos = data.y().iter().filter(|&&l| l != 0).count();
        eprintln!(
            "wrote {} rows x {} features ({pos} positive) to {}",
            data.len(),
            data.x().cols(),
            out.display()
        );
    } else {
        eprintln!(
            "wrote {} rows x {} features ({} classes, counts {:?}) to {}",
            data.len(),
            data.x().cols(),
            data.n_classes(),
            data.class_counts(),
            out.display()
        );
    }
    Ok(())
}

/// Opens `--train` as a chunk stream: a directory is a shard dir from
/// `pack`, anything else is streamed CSV.
fn open_chunked(train: &Path, chunk_rows: usize) -> Result<Box<dyn ChunkedSource>, String> {
    if train.is_dir() {
        Ok(Box::new(
            ShardReader::open(train).map_err(|e| e.to_string())?,
        ))
    } else {
        Ok(Box::new(
            ChunkedCsv::open(train, chunk_rows).map_err(|e| e.to_string())?,
        ))
    }
}

fn cmd_fit_save_chunked(flags: &Flags) -> Result<(), String> {
    if flags.get("preds").is_some() {
        return Err("--preds is incompatible with --chunked (the training \
                    data is never materialized); use load-score instead"
            .into());
    }
    let train = flags.path("train")?;
    let out = flags.path("out")?;
    let members = flags.usize_or("members", 10)?;
    let seed = flags.u64_or("seed", 42)?;
    let chunk_rows = flags.usize_or("chunk-rows", 65_536)?;
    let mut source = open_chunked(&train, chunk_rows)?;
    // The out-of-core path trains against shared bin codes, so the base
    // must be histogram-capable; pin it explicitly.
    let cfg = SelfPacedEnsembleConfig::builder()
        .n_estimators(members)
        .base(Arc::new(DecisionTreeConfig {
            split_method: SplitMethod::Histogram,
            ..DecisionTreeConfig::default()
        }))
        .build()
        .map_err(|e| e.to_string())?;
    let (model, ooc) = cfg
        .try_fit_chunked(source.as_mut(), &ChunkedFitOptions::default(), seed)
        .map_err(|e| ServeError::from(e).to_string())?;
    let metadata = vec![
        ("trained_rows".into(), ooc.rows.to_string()),
        ("features".into(), source.n_features().to_string()),
        ("members".into(), model.len().to_string()),
        ("seed".into(), seed.to_string()),
        ("mode".into(), "chunked".into()),
        ("chunks".into(), ooc.chunks.to_string()),
        ("spill_bytes".into(), ooc.spill_bytes.to_string()),
    ];
    save_model(&out, &model, metadata).map_err(|e| e.to_string())?;
    eprintln!(
        "fit {} members out-of-core on {} rows ({} chunks, {} spill bytes), saved to {}",
        model.len(),
        ooc.rows,
        ooc.chunks,
        ooc.spill_bytes,
        out.display()
    );
    Ok(())
}

fn cmd_fit_save(flags: &Flags) -> Result<(), String> {
    if flags.get("chunked").is_some() {
        return cmd_fit_save_chunked(flags);
    }
    let train = flags.path("train")?;
    let out = flags.path("out")?;
    let members = flags.usize_or("members", 10)?;
    let seed = flags.u64_or("seed", 42)?;
    let (data, classes) = read_dataset_indexed(&train).map_err(|e| e.to_string())?;
    if data.n_classes() > 2 {
        let cfg = MultiClassSpeConfig::new(members);
        let model = cfg
            .try_fit_dataset(&data, seed)
            .map_err(|e| ServeError::from(e).to_string())?;
        let metadata = vec![
            ("trained_rows".into(), data.len().to_string()),
            ("features".into(), data.x().cols().to_string()),
            ("members".into(), members.to_string()),
            ("seed".into(), seed.to_string()),
            ("classes".into(), data.n_classes().to_string()),
            ("class_labels".into(), classes.mapping_string()),
        ];
        save_model(&out, &model, metadata).map_err(|e| e.to_string())?;
        eprintln!(
            "fit a {}-class SPE ({} members per class) on {} rows, saved to {}",
            data.n_classes(),
            members,
            data.len(),
            out.display()
        );
        if let Some(preds) = flags.get("preds") {
            let proba = model.predict_proba_k(data.x());
            write_class_predictions(Path::new(preds), &proba, data.n_classes())
                .map_err(|e| e.to_string())?;
            eprintln!("wrote {} training-set predictions to {preds}", data.len());
        }
        return Ok(());
    }
    let cfg = SelfPacedEnsembleConfig::builder()
        .n_estimators(members)
        .build()
        .map_err(|e| e.to_string())?;
    let model = cfg
        .try_fit_dataset(&data, seed)
        .map_err(|e| ServeError::from(e).to_string())?;
    let metadata = vec![
        ("trained_rows".into(), data.len().to_string()),
        ("features".into(), data.x().cols().to_string()),
        ("members".into(), model.len().to_string()),
        ("seed".into(), seed.to_string()),
    ];
    save_model(&out, &model, metadata).map_err(|e| e.to_string())?;
    eprintln!(
        "fit {} members on {} rows, saved to {}",
        model.len(),
        data.len(),
        out.display()
    );
    if let Some(preds) = flags.get("preds") {
        let probs = model.predict_proba(data.x());
        write_predictions(Path::new(preds), &probs).map_err(|e| e.to_string())?;
        eprintln!("wrote {} training-set predictions to {preds}", probs.len());
    }
    Ok(())
}

fn cmd_pack(flags: &Flags) -> Result<(), String> {
    let input = flags.path("input")?;
    let out = flags.path("out")?;
    let rows_per_shard = flags.usize_or("rows-per-shard", 65_536)?;
    let mut source = ChunkedCsv::open(&input, rows_per_shard).map_err(|e| e.to_string())?;
    let manifest = pack_source(&mut source, &out, rows_per_shard).map_err(|e| e.to_string())?;
    eprintln!(
        "packed {} rows x {} features into {} shards ({} rows each) at {}",
        manifest.total_rows,
        manifest.n_features,
        manifest.n_shards,
        manifest.rows_per_shard,
        out.display()
    );
    Ok(())
}

fn cmd_load_score(flags: &Flags) -> Result<(), String> {
    let model_path = flags.path("model")?;
    let input = flags.path("input")?;
    let out = flags.path("out")?;
    let model = load_model(&model_path).map_err(|e| e.to_string())?;
    let (data, _) = read_dataset_indexed(&input).map_err(|e| e.to_string())?;
    // The *model's* class count picks the prediction format, so a file
    // that happens to only exercise two labels still scores k-wide
    // under a multi-class model (and cmp-matches fit-save --preds).
    let k = model.n_classes();
    if k > 2 {
        let proba = model.predict_proba_k(data.x());
        write_class_predictions(&out, &proba, k).map_err(|e| e.to_string())?;
    } else {
        let probs = model.predict_proba(data.x());
        write_predictions(&out, &probs).map_err(|e| e.to_string())?;
    }
    eprintln!(
        "scored {} rows with {} -> {}",
        data.len(),
        model_path.display(),
        out.display()
    );
    Ok(())
}

fn cmd_inspect(flags: &Flags) -> Result<(), String> {
    let model_path = flags.path("model")?;
    let bytes = std::fs::read(&model_path).map_err(|e| e.to_string())?;
    let env = load_envelope(&model_path).map_err(|e| e.to_string())?;
    println!("file:     {}", model_path.display());
    println!("size:     {} bytes", bytes.len());
    println!("format:   v{}", spe_serve::FORMAT_VERSION);
    println!("kind:     {}", env.model_kind);
    println!("members:  {}", env.snapshot.n_members());
    println!("classes:  {}", env.n_classes);
    // The raw-label → class-id mapping, when fit-save recorded one
    // (binary models map identically and skip it).
    if let Some((_, labels)) = env.metadata.iter().find(|(k, _)| k == "class_labels") {
        println!("labels:   {labels}");
    }
    for (k, v) in &env.metadata {
        println!("meta:     {k} = {v}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(&argv[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("spe_score: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "pack" => cmd_pack(&flags),
        "fit-save" => cmd_fit_save(&flags),
        "load-score" => cmd_load_score(&flags),
        "inspect" => cmd_inspect(&flags),
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("spe_score: {e}");
            ExitCode::FAILURE
        }
    }
}
