//! `spe_score` — fit, persist, inspect and batch-score SPE models from
//! the command line.
//!
//! ```sh
//! spe_score gen        --out data.csv [--rows 4000] [--seed 7]
//! spe_score fit-save   --train data.csv --out model.spe
//!                      [--members 10] [--seed 42] [--preds preds.csv]
//! spe_score fit-save   --train data.csv --out model.spe --chunked
//!                      [--chunk-rows 65536] [--members 10] [--seed 42]
//! spe_score pack       --input data.csv --out shards/ [--rows-per-shard 65536]
//! spe_score load-score --model model.spe --input data.csv --out preds.csv
//! spe_score inspect    --model model.spe
//! ```
//!
//! `fit-save --preds` and `load-score` write the same prediction format
//! (one `probability` column), so `cmp` between the two files is the
//! canonical save→load bit-identity check used by `ci.sh`.
//!
//! `--chunked` fits out-of-core: the training file is streamed twice
//! (quantile-sketch pass, then u8-encode pass) and never loaded whole.
//! `--train` may then also name a shard directory written by `pack`.

use spe_core::{ChunkedFitOptions, SelfPacedEnsembleConfig};
use spe_data::csv::{read_dataset, write_csv};
use spe_data::{pack_source, ChunkedCsv, ChunkedSource, ShardReader};
use spe_learners::{DecisionTreeConfig, Model, SplitMethod};
use spe_serve::{load_envelope, load_model, save_model, ServeError};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage:
  spe_score gen        --out <data.csv> [--rows N] [--seed S]
  spe_score fit-save   --train <data.csv> --out <model.spe> [--members N] [--seed S] [--preds <preds.csv>]
  spe_score fit-save   --train <data.csv|shard-dir> --out <model.spe> --chunked [--chunk-rows N] [--members N] [--seed S]
  spe_score pack       --input <data.csv> --out <shard-dir> [--rows-per-shard N]
  spe_score load-score --model <model.spe> --input <data.csv> --out <preds.csv>
  spe_score inspect    --model <model.spe>";

/// Minimal `--flag value` parser over the args after the subcommand.
/// A flag followed by another flag (or nothing) is boolean `true`.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let name = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got {:?}", argv[i]))?;
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    pairs.push((name.to_string(), v.clone()));
                    i += 2;
                }
                _ => {
                    pairs.push((name.to_string(), "true".to_string()));
                    i += 1;
                }
            }
        }
        Ok(Self { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn path(&self, name: &str) -> Result<PathBuf, String> {
        Ok(PathBuf::from(self.require(name)?))
    }

    fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} wants an integer, got {v:?}")),
        }
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} wants an integer, got {v:?}")),
        }
    }
}

fn write_predictions(path: &Path, probs: &[f64]) -> std::io::Result<()> {
    let rows: Vec<Vec<f64>> = probs.iter().map(|&p| vec![p]).collect();
    write_csv(path, &["probability"], &rows)
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let out = flags.path("out")?;
    let rows = flags.usize_or("rows", 4000)?;
    let seed = flags.u64_or("seed", 7)?;
    let data = spe_datasets::credit_fraud_sim(rows, seed);
    spe_data::csv::write_dataset(&out, &data).map_err(|e| e.to_string())?;
    let pos = data.y().iter().filter(|&&l| l != 0).count();
    eprintln!(
        "wrote {} rows x {} features ({pos} positive) to {}",
        data.len(),
        data.x().cols(),
        out.display()
    );
    Ok(())
}

/// Opens `--train` as a chunk stream: a directory is a shard dir from
/// `pack`, anything else is streamed CSV.
fn open_chunked(train: &Path, chunk_rows: usize) -> Result<Box<dyn ChunkedSource>, String> {
    if train.is_dir() {
        Ok(Box::new(
            ShardReader::open(train).map_err(|e| e.to_string())?,
        ))
    } else {
        Ok(Box::new(
            ChunkedCsv::open(train, chunk_rows).map_err(|e| e.to_string())?,
        ))
    }
}

fn cmd_fit_save_chunked(flags: &Flags) -> Result<(), String> {
    if flags.get("preds").is_some() {
        return Err("--preds is incompatible with --chunked (the training \
                    data is never materialized); use load-score instead"
            .into());
    }
    let train = flags.path("train")?;
    let out = flags.path("out")?;
    let members = flags.usize_or("members", 10)?;
    let seed = flags.u64_or("seed", 42)?;
    let chunk_rows = flags.usize_or("chunk-rows", 65_536)?;
    let mut source = open_chunked(&train, chunk_rows)?;
    // The out-of-core path trains against shared bin codes, so the base
    // must be histogram-capable; pin it explicitly.
    let cfg = SelfPacedEnsembleConfig::builder()
        .n_estimators(members)
        .base(Arc::new(DecisionTreeConfig {
            split_method: SplitMethod::Histogram,
            ..DecisionTreeConfig::default()
        }))
        .build()
        .map_err(|e| e.to_string())?;
    let (model, ooc) = cfg
        .try_fit_chunked(source.as_mut(), &ChunkedFitOptions::default(), seed)
        .map_err(|e| ServeError::from(e).to_string())?;
    let metadata = vec![
        ("trained_rows".into(), ooc.rows.to_string()),
        ("features".into(), source.n_features().to_string()),
        ("members".into(), model.len().to_string()),
        ("seed".into(), seed.to_string()),
        ("mode".into(), "chunked".into()),
        ("chunks".into(), ooc.chunks.to_string()),
        ("spill_bytes".into(), ooc.spill_bytes.to_string()),
    ];
    save_model(&out, &model, metadata).map_err(|e| e.to_string())?;
    eprintln!(
        "fit {} members out-of-core on {} rows ({} chunks, {} spill bytes), saved to {}",
        model.len(),
        ooc.rows,
        ooc.chunks,
        ooc.spill_bytes,
        out.display()
    );
    Ok(())
}

fn cmd_fit_save(flags: &Flags) -> Result<(), String> {
    if flags.get("chunked").is_some() {
        return cmd_fit_save_chunked(flags);
    }
    let train = flags.path("train")?;
    let out = flags.path("out")?;
    let members = flags.usize_or("members", 10)?;
    let seed = flags.u64_or("seed", 42)?;
    let data = read_dataset(&train).map_err(|e| e.to_string())?;
    let cfg = SelfPacedEnsembleConfig::builder()
        .n_estimators(members)
        .build()
        .map_err(|e| e.to_string())?;
    let model = cfg
        .try_fit_dataset(&data, seed)
        .map_err(|e| ServeError::from(e).to_string())?;
    let metadata = vec![
        ("trained_rows".into(), data.len().to_string()),
        ("features".into(), data.x().cols().to_string()),
        ("members".into(), model.len().to_string()),
        ("seed".into(), seed.to_string()),
    ];
    save_model(&out, &model, metadata).map_err(|e| e.to_string())?;
    eprintln!(
        "fit {} members on {} rows, saved to {}",
        model.len(),
        data.len(),
        out.display()
    );
    if let Some(preds) = flags.get("preds") {
        let probs = model.predict_proba(data.x());
        write_predictions(Path::new(preds), &probs).map_err(|e| e.to_string())?;
        eprintln!("wrote {} training-set predictions to {preds}", probs.len());
    }
    Ok(())
}

fn cmd_pack(flags: &Flags) -> Result<(), String> {
    let input = flags.path("input")?;
    let out = flags.path("out")?;
    let rows_per_shard = flags.usize_or("rows-per-shard", 65_536)?;
    let mut source = ChunkedCsv::open(&input, rows_per_shard).map_err(|e| e.to_string())?;
    let manifest = pack_source(&mut source, &out, rows_per_shard).map_err(|e| e.to_string())?;
    eprintln!(
        "packed {} rows x {} features into {} shards ({} rows each) at {}",
        manifest.total_rows,
        manifest.n_features,
        manifest.n_shards,
        manifest.rows_per_shard,
        out.display()
    );
    Ok(())
}

fn cmd_load_score(flags: &Flags) -> Result<(), String> {
    let model_path = flags.path("model")?;
    let input = flags.path("input")?;
    let out = flags.path("out")?;
    let model = load_model(&model_path).map_err(|e| e.to_string())?;
    let data = read_dataset(&input).map_err(|e| e.to_string())?;
    let probs = model.predict_proba(data.x());
    write_predictions(&out, &probs).map_err(|e| e.to_string())?;
    eprintln!(
        "scored {} rows with {} -> {}",
        probs.len(),
        model_path.display(),
        out.display()
    );
    Ok(())
}

fn cmd_inspect(flags: &Flags) -> Result<(), String> {
    let model_path = flags.path("model")?;
    let bytes = std::fs::read(&model_path).map_err(|e| e.to_string())?;
    let env = load_envelope(&model_path).map_err(|e| e.to_string())?;
    println!("file:     {}", model_path.display());
    println!("size:     {} bytes", bytes.len());
    println!("format:   v{}", spe_serve::FORMAT_VERSION);
    println!("kind:     {}", env.model_kind);
    println!("members:  {}", env.snapshot.n_members());
    for (k, v) in &env.metadata {
        println!("meta:     {k} = {v}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(&argv[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("spe_score: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "pack" => cmd_pack(&flags),
        "fit-save" => cmd_fit_save(&flags),
        "load-score" => cmd_load_score(&flags),
        "inspect" => cmd_inspect(&flags),
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("spe_score: {e}");
            ExitCode::FAILURE
        }
    }
}
