//! `spe_score` — fit, persist, inspect and batch-score SPE models from
//! the command line.
//!
//! ```sh
//! spe_score gen        --out data.csv [--rows 4000] [--seed 7]
//! spe_score fit-save   --train data.csv --out model.spe
//!                      [--members 10] [--seed 42] [--preds preds.csv]
//! spe_score load-score --model model.spe --input data.csv --out preds.csv
//! spe_score inspect    --model model.spe
//! ```
//!
//! `fit-save --preds` and `load-score` write the same prediction format
//! (one `probability` column), so `cmp` between the two files is the
//! canonical save→load bit-identity check used by `ci.sh`.

use spe_core::SelfPacedEnsembleConfig;
use spe_data::csv::{read_dataset, write_csv};
use spe_learners::Model;
use spe_serve::{load_envelope, load_model, save_model, ServeError};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage:
  spe_score gen        --out <data.csv> [--rows N] [--seed S]
  spe_score fit-save   --train <data.csv> --out <model.spe> [--members N] [--seed S] [--preds <preds.csv>]
  spe_score load-score --model <model.spe> --input <data.csv> --out <preds.csv>
  spe_score inspect    --model <model.spe>";

/// Minimal `--flag value` parser over the args after the subcommand.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got {flag:?}"))?;
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Self { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn path(&self, name: &str) -> Result<PathBuf, String> {
        Ok(PathBuf::from(self.require(name)?))
    }

    fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} wants an integer, got {v:?}")),
        }
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} wants an integer, got {v:?}")),
        }
    }
}

fn write_predictions(path: &Path, probs: &[f64]) -> std::io::Result<()> {
    let rows: Vec<Vec<f64>> = probs.iter().map(|&p| vec![p]).collect();
    write_csv(path, &["probability"], &rows)
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let out = flags.path("out")?;
    let rows = flags.usize_or("rows", 4000)?;
    let seed = flags.u64_or("seed", 7)?;
    let data = spe_datasets::credit_fraud_sim(rows, seed);
    spe_data::csv::write_dataset(&out, &data).map_err(|e| e.to_string())?;
    let pos = data.y().iter().filter(|&&l| l != 0).count();
    eprintln!(
        "wrote {} rows x {} features ({pos} positive) to {}",
        data.len(),
        data.x().cols(),
        out.display()
    );
    Ok(())
}

fn cmd_fit_save(flags: &Flags) -> Result<(), String> {
    let train = flags.path("train")?;
    let out = flags.path("out")?;
    let members = flags.usize_or("members", 10)?;
    let seed = flags.u64_or("seed", 42)?;
    let data = read_dataset(&train).map_err(|e| e.to_string())?;
    let cfg = SelfPacedEnsembleConfig::builder()
        .n_estimators(members)
        .build()
        .map_err(|e| e.to_string())?;
    let model = cfg
        .try_fit_dataset(&data, seed)
        .map_err(|e| ServeError::from(e).to_string())?;
    let metadata = vec![
        ("trained_rows".into(), data.len().to_string()),
        ("features".into(), data.x().cols().to_string()),
        ("members".into(), model.len().to_string()),
        ("seed".into(), seed.to_string()),
    ];
    save_model(&out, &model, metadata).map_err(|e| e.to_string())?;
    eprintln!(
        "fit {} members on {} rows, saved to {}",
        model.len(),
        data.len(),
        out.display()
    );
    if let Some(preds) = flags.get("preds") {
        let probs = model.predict_proba(data.x());
        write_predictions(Path::new(preds), &probs).map_err(|e| e.to_string())?;
        eprintln!("wrote {} training-set predictions to {preds}", probs.len());
    }
    Ok(())
}

fn cmd_load_score(flags: &Flags) -> Result<(), String> {
    let model_path = flags.path("model")?;
    let input = flags.path("input")?;
    let out = flags.path("out")?;
    let model = load_model(&model_path).map_err(|e| e.to_string())?;
    let data = read_dataset(&input).map_err(|e| e.to_string())?;
    let probs = model.predict_proba(data.x());
    write_predictions(&out, &probs).map_err(|e| e.to_string())?;
    eprintln!(
        "scored {} rows with {} -> {}",
        probs.len(),
        model_path.display(),
        out.display()
    );
    Ok(())
}

fn cmd_inspect(flags: &Flags) -> Result<(), String> {
    let model_path = flags.path("model")?;
    let bytes = std::fs::read(&model_path).map_err(|e| e.to_string())?;
    let env = load_envelope(&model_path).map_err(|e| e.to_string())?;
    println!("file:     {}", model_path.display());
    println!("size:     {} bytes", bytes.len());
    println!("format:   v{}", spe_serve::FORMAT_VERSION);
    println!("kind:     {}", env.model_kind);
    println!("members:  {}", env.snapshot.n_members());
    for (k, v) in &env.metadata {
        println!("meta:     {k} = {v}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(&argv[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("spe_score: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "fit-save" => cmd_fit_save(&flags),
        "load-score" => cmd_load_score(&flags),
        "inspect" => cmd_inspect(&flags),
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("spe_score: {e}");
            ExitCode::FAILURE
        }
    }
}
