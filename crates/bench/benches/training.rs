//! Criterion bench: end-to-end training cost of SPE vs the ensemble
//! baselines (the efficiency claim of §VI-C: SPE touches only
//! `2·|P|·n` samples while SMOTE-based ensembles touch millions).

use criterion::{criterion_group, criterion_main, Criterion};
use spe_core::SelfPacedEnsembleConfig;
use spe_data::train_val_test_split;
use spe_datasets::credit_fraud_sim;
use spe_ensembles::{RusBoost, SmoteBagging, UnderBagging};
use spe_learners::traits::{Learner, SharedLearner};
use spe_learners::DecisionTreeConfig;
use spe_sampling::Sampler;
use std::hint::black_box;
use std::sync::Arc;

fn bench_ensemble_training(c: &mut Criterion) {
    let data = credit_fraud_sim(8_000, 1);
    let split = train_val_test_split(&data, 0.6, 0.2, 1);
    let train = split.train;
    let c45: SharedLearner = Arc::new(DecisionTreeConfig::c45(10));

    let mut group = c.benchmark_group("train_credit8k_n10");
    group.measurement_time(std::time::Duration::from_secs(8));
    group.sample_size(10);
    group.bench_function("SPE10", |b| {
        let cfg = SelfPacedEnsembleConfig::with_base(10, Arc::clone(&c45));
        b.iter(|| black_box(cfg.fit_dataset(&train, 2)));
    });
    group.bench_function("UnderBagging10", |b| {
        let cfg = UnderBagging::with_base(10, Arc::clone(&c45));
        b.iter(|| black_box(cfg.fit(train.x(), train.y(), 2)));
    });
    group.bench_function("RUSBoost10", |b| {
        let cfg = RusBoost {
            n_rounds: 10,
            base: Arc::clone(&c45),
        };
        b.iter(|| black_box(cfg.fit(train.x(), train.y(), 2)));
    });
    group.bench_function("SMOTEBagging10", |b| {
        let cfg = SmoteBagging {
            n_estimators: 10,
            base: Arc::clone(&c45),
            k: 5,
        };
        b.iter(|| black_box(cfg.fit(train.x(), train.y(), 2)));
    });
    group.finish();
}

fn bench_base_learners(c: &mut Criterion) {
    // Single-model fit cost on one balanced SPE-style subset — the unit
    // of work every under-sampling ensemble repeats n times.
    let data = credit_fraud_sim(8_000, 3);
    let balanced = spe_sampling::RandomUnderSampler::default().resample(&data, 3);
    let mut group = c.benchmark_group("base_fit_balanced_subset");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    let learners: Vec<(&str, Box<dyn Learner>)> = vec![
        ("DT", Box::new(DecisionTreeConfig::with_depth(10))),
        ("KNN", Box::new(spe_learners::KnnConfig::new(5))),
        (
            "LR",
            Box::new(spe_learners::LogisticRegressionConfig::default()),
        ),
        ("GBDT10", Box::new(spe_learners::GbdtConfig::new(10))),
        (
            "AdaBoost10",
            Box::new(spe_learners::AdaBoostConfig::new(10)),
        ),
    ];
    for (name, l) in &learners {
        group.bench_function(*name, |b| {
            b.iter(|| black_box(l.fit(balanced.x(), balanced.y(), 4)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ensemble_training, bench_base_learners);
criterion_main!(benches);
