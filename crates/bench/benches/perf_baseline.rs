//! Criterion perf baseline for the histogram training path: single-tree
//! fit (exact vs histogram engines), end-to-end SPE fit over both
//! engines, hardness evaluation, and batch prediction.
//!
//! Companion to the `bench_train` binary, which measures the same
//! exact-vs-histogram contrast at acceptance scale (100k rows) and
//! writes `BENCH_train.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use spe_core::{HardnessFn, SelfPacedEnsembleConfig};
use spe_datasets::{checkerboard, CheckerboardConfig};
use spe_learners::traits::{Learner, Model, SharedLearner};
use spe_learners::{DecisionTreeConfig, SplitMethod};
use std::hint::black_box;
use std::sync::Arc;

fn board(n_minority: usize, n_majority: usize, seed: u64) -> spe_data::Dataset {
    checkerboard(
        &CheckerboardConfig {
            grid: 4,
            n_minority,
            n_majority,
            cov: 0.1,
        },
        seed,
    )
}

fn tree_cfg(method: SplitMethod) -> DecisionTreeConfig {
    DecisionTreeConfig {
        max_depth: 10,
        split_method: method,
        ..DecisionTreeConfig::default()
    }
}

fn bench_tree_fit(c: &mut Criterion) {
    let data = board(2_000, 18_000, 1);
    let mut group = c.benchmark_group("tree_fit_20k");
    group.sample_size(10);
    group.bench_function("exact", |b| {
        let cfg = tree_cfg(SplitMethod::Exact);
        b.iter(|| black_box(cfg.fit(data.x(), data.y(), 2)));
    });
    group.bench_function("histogram", |b| {
        let cfg = tree_cfg(SplitMethod::Histogram);
        b.iter(|| black_box(cfg.fit(data.x(), data.y(), 2)));
    });
    group.finish();
}

fn bench_spe_fit(c: &mut Criterion) {
    let data = board(1_000, 9_000, 3);
    let mut group = c.benchmark_group("spe_fit_10k_n10");
    group.sample_size(10);
    for (name, method) in [
        ("exact", SplitMethod::Exact),
        ("histogram", SplitMethod::Histogram),
    ] {
        let base: SharedLearner = Arc::new(tree_cfg(method));
        let cfg = SelfPacedEnsembleConfig::with_base(10, base);
        group.bench_function(name, |b| {
            b.iter(|| black_box(cfg.fit_dataset(&data, 4)));
        });
    }
    group.finish();
}

fn bench_hardness_eval(c: &mut Criterion) {
    // Hardness of every majority sample w.r.t. the running ensemble —
    // recomputed once per SPE iteration (Algorithm 1, line 5).
    let n = 100_000;
    let probas: Vec<f64> = (0..n).map(|i| (i % 1000) as f64 / 1000.0).collect();
    let labels: Vec<u8> = vec![0; n];
    let mut group = c.benchmark_group("hardness_eval_100k");
    group.bench_function("absolute_error", |b| {
        b.iter(|| black_box(HardnessFn::AbsoluteError.eval_batch(&probas, &labels)));
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = board(1_000, 9_000, 5);
    let base: SharedLearner = Arc::new(tree_cfg(SplitMethod::Histogram));
    let model = SelfPacedEnsembleConfig::with_base(10, base).fit_dataset(&data, 6);
    let mut group = c.benchmark_group("predict_10k_n10");
    group.sample_size(10);
    group.bench_function("predict_proba", |b| {
        b.iter(|| black_box(model.predict_proba(data.x())));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tree_fit,
    bench_spe_fit,
    bench_hardness_eval,
    bench_predict
);
criterion_main!(benches);
