//! Criterion bench: brute-force vs kd-tree k-NN across dimensionality.
//!
//! Quantifies why the workspace's re-samplers default to the parallel
//! brute-force kernel: the kd-tree wins decisively in 2-D, but its
//! pruning collapses near d ≈ 30 (the Credit Fraud width), where a
//! straight scan with good cache behaviour is as fast or faster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spe_data::{Matrix, SeededRng};
use spe_learners::kdtree::KdTree;
use spe_learners::neighbors::knn_query;
use std::hint::black_box;

fn random_matrix(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = SeededRng::new(seed);
    Matrix::from_vec(n, d, (0..n * d).map(|_| rng.uniform()).collect())
}

fn bench_dimensionality(c: &mut Criterion) {
    let n = 5_000;
    let k = 5;
    let mut group = c.benchmark_group("knn_query_5k");
    group.measurement_time(std::time::Duration::from_secs(8));
    group.sample_size(20);
    for d in [2usize, 10, 30] {
        let m = random_matrix(n, d, d as u64);
        let tree = KdTree::build(&m);
        let mut rng = SeededRng::new(99);
        let queries: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..d).map(|_| rng.uniform()).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("brute", d), &d, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(knn_query(&m, q, k, None));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("kdtree", d), &d, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(tree.query(q, k, None));
                }
            });
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdtree_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for n in [5_000usize, 20_000] {
        let m = random_matrix(n, 10, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| black_box(KdTree::build(m)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dimensionality, bench_build);
criterion_main!(benches);
