//! Criterion bench: re-sampling wall time (the Time(s) column of
//! Table V). The point the paper makes — distance-based methods cost
//! orders of magnitude more than random/SPE sampling and the gap grows
//! with dataset size — shows directly in these numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spe_core::SelfPacedSampler;
use spe_data::SeededRng;
use spe_datasets::credit_fraud_sim;
use spe_sampling::{
    EditedNearestNeighbours, NearMiss, NeighbourhoodCleaningRule, RandomOverSampler,
    RandomUnderSampler, Sampler, Smote, TomekLinks,
};
use std::hint::black_box;

fn bench_resamplers(c: &mut Criterion) {
    let data = credit_fraud_sim(6_000, 1);
    let mut group = c.benchmark_group("resampling_6k");
    group.measurement_time(std::time::Duration::from_secs(8));
    group.sample_size(10);

    let fast: Vec<(&str, Box<dyn Sampler>)> = vec![
        ("RandUnder", Box::new(RandomUnderSampler::default())),
        ("RandOver", Box::new(RandomOverSampler::default())),
        ("SMOTE", Box::new(Smote::default())),
    ];
    for (name, s) in &fast {
        group.bench_function(BenchmarkId::new("fast", *name), |b| {
            b.iter(|| black_box(s.resample(&data, 7)));
        });
    }

    let distance_based: Vec<(&str, Box<dyn Sampler>)> = vec![
        ("NearMiss", Box::new(NearMiss::default())),
        ("ENN", Box::new(EditedNearestNeighbours::default())),
        ("TomekLink", Box::new(TomekLinks)),
        ("Clean", Box::new(NeighbourhoodCleaningRule::default())),
    ];
    for (name, s) in &distance_based {
        group.bench_function(BenchmarkId::new("distance", *name), |b| {
            b.iter(|| black_box(s.resample(&data, 7)));
        });
    }
    group.finish();
}

fn bench_self_paced_sampler(c: &mut Criterion) {
    // The SPE sampling step itself: binning + quota + draw over a large
    // majority hardness vector. This is the per-iteration overhead SPE
    // adds on top of base-model training.
    let mut rng = SeededRng::new(3);
    let hardness: Vec<f64> = (0..300_000).map(|_| rng.uniform()).collect();
    let sampler = SelfPacedSampler { k_bins: 20 };
    c.bench_function("self_paced_sample_300k", |b| {
        let mut r = SeededRng::new(4);
        b.iter(|| black_box(sampler.sample(&hardness, 0.5, 1_000, &mut r)));
    });
}

fn bench_scaling(c: &mut Criterion) {
    // Quadratic blow-up of a distance-based cleaner vs linear SPE-style
    // random sampling, across dataset sizes.
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for n in [1_000usize, 2_000, 4_000] {
        let data = credit_fraud_sim(n, 2);
        group.bench_with_input(BenchmarkId::new("ENN", n), &data, |b, d| {
            let s = EditedNearestNeighbours::default();
            b.iter(|| black_box(s.resample(d, 5)));
        });
        group.bench_with_input(BenchmarkId::new("RandUnder", n), &data, |b, d| {
            let s = RandomUnderSampler::default();
            b.iter(|| black_box(s.resample(d, 5)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_resamplers,
    bench_self_paced_sampler,
    bench_scaling
);
criterion_main!(benches);
