//! Method registry: builds the (name, fit-function) pairs each table
//! compares, mirroring the paper's method lineups.

use spe_core::SelfPacedEnsembleConfig;
use spe_data::Dataset;
use spe_ensembles::{BalanceCascade, UnderBagging};
use spe_learners::traits::{Learner, Model, SharedLearner};
use spe_metrics::MetricSet;
use spe_sampling::Sampler;
use std::sync::Arc;

/// A trainable method: dataset + seed → trained model. `Send + Sync` so
/// cross-validation folds can train on the shared runtime concurrently.
pub type FitFn = Box<dyn Fn(&Dataset, u64) -> Box<dyn Model> + Send + Sync>;

/// Sampler followed by a single classifier (`RandUnder`, `Clean`,
/// `SMOTE`, ... rows of Tables II/IV/V).
pub fn resample_then_fit(sampler: impl Sampler + 'static, base: SharedLearner) -> FitFn {
    Box::new(move |data, seed| {
        let resampled = sampler.resample(data, seed);
        base.fit(resampled.x(), resampled.y(), seed)
    })
}

/// `Easy_n`-style under-bagging around the given base classifier (the
/// paper's Table II/IV "Easy" columns pair it with each canonical
/// classifier; with AdaBoost members it is literally EasyEnsemble).
pub fn underbag_with(n: usize, base: SharedLearner) -> FitFn {
    Box::new(move |data, seed| {
        UnderBagging::with_base(n, Arc::clone(&base)).fit(data.x(), data.y(), seed)
    })
}

/// `Cascade_n` around the given base classifier.
pub fn cascade_with(n: usize, base: SharedLearner) -> FitFn {
    Box::new(move |data, seed| {
        BalanceCascade::with_base(n, Arc::clone(&base)).fit(data.x(), data.y(), seed)
    })
}

/// `SPE_n` around the given base classifier (paper defaults: k = 20,
/// absolute-error hardness).
pub fn spe_with(n: usize, base: SharedLearner) -> FitFn {
    Box::new(move |data, seed| {
        let cfg = SelfPacedEnsembleConfig::builder()
            .n_estimators(n)
            .base(Arc::clone(&base))
            .build()
            .expect("valid SPE config");
        Box::new(cfg.fit_dataset(data, seed))
    })
}

/// Any `Learner` as a method.
pub fn learner_fit(learner: impl Learner + 'static) -> FitFn {
    Box::new(move |data, seed| learner.fit(data.x(), data.y(), seed))
}

/// The six-method lineup of Tables II and IV, around one base
/// classifier. `with_distance_methods = false` drops Clean/SMOTE (the
/// paper marks them "-" on the large / categorical datasets).
pub fn paper_method_lineup(
    base: SharedLearner,
    n: usize,
    with_distance_methods: bool,
) -> Vec<(String, FitFn)> {
    use spe_sampling::{NeighbourhoodCleaningRule, RandomUnderSampler, Smote};
    let mut out: Vec<(String, FitFn)> = vec![(
        "RandUnder".into(),
        resample_then_fit(RandomUnderSampler::default(), Arc::clone(&base)),
    )];
    if with_distance_methods {
        out.push((
            "Clean".into(),
            resample_then_fit(NeighbourhoodCleaningRule::default(), Arc::clone(&base)),
        ));
        out.push((
            "SMOTE".into(),
            resample_then_fit(Smote::default(), Arc::clone(&base)),
        ));
    }
    out.push((format!("Easy{n}"), underbag_with(n, Arc::clone(&base))));
    out.push((format!("Cascade{n}"), cascade_with(n, Arc::clone(&base))));
    out.push((format!("SPE{n}"), spe_with(n, base)));
    out
}

/// Trains on `train` and evaluates all four paper criteria on `test`.
pub fn train_eval(fit: &FitFn, train: &Dataset, test: &Dataset, seed: u64) -> MetricSet {
    let model = fit(train, seed);
    MetricSet::evaluate(test.y(), &model.predict_proba(test.x()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::{Matrix, SeededRng};
    use spe_learners::DecisionTreeConfig;

    fn toy(seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(220, 2);
        let mut y = Vec::new();
        for _ in 0..200 {
            x.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]);
            y.push(0);
        }
        for _ in 0..20 {
            x.push_row(&[rng.normal(2.0, 0.5), rng.normal(2.0, 0.5)]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn lineup_has_expected_names() {
        let base: SharedLearner = Arc::new(DecisionTreeConfig::default());
        let with = paper_method_lineup(Arc::clone(&base), 10, true);
        let names: Vec<&str> = with.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "RandUnder",
                "Clean",
                "SMOTE",
                "Easy10",
                "Cascade10",
                "SPE10"
            ]
        );
        let without = paper_method_lineup(base, 10, false);
        assert_eq!(without.len(), 4);
    }

    #[test]
    fn every_lineup_method_trains_and_scores() {
        let base: SharedLearner = Arc::new(DecisionTreeConfig::with_depth(4));
        let train = toy(1);
        let test = toy(2);
        for (name, fit) in paper_method_lineup(base, 3, true) {
            let m = train_eval(&fit, &train, &test, 3);
            assert!(m.aucprc > 0.0, "{name}");
        }
    }
}
