//! Table VI: 6 ensemble methods × n ∈ {10, 20, 50} base classifiers on
//! the simulated Credit Fraud task, with C4.5 base models — four
//! metrics plus the total number of training samples consumed.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin table6 [-- --runs 5 --scale 1.0]
//! ```

use spe_bench::harness::{Args, ExperimentTable};
use spe_core::SelfPacedEnsembleConfig;
use spe_data::train_val_test_split;
use spe_datasets::credit_fraud_sim;
use spe_ensembles::{BalanceCascade, RusBoost, SmoteBagging, SmoteBoost, UnderBagging};
use spe_learners::traits::{Learner, SharedLearner};
use spe_learners::DecisionTreeConfig;
use spe_metrics::{MeanStd, MetricSet, RunAggregator};
use std::sync::Arc;

fn main() {
    let args = Args::parse(5);
    let n_rows = args.sized(40_000);
    let c45: SharedLearner = Arc::new(DecisionTreeConfig::c45(10));

    let sizes = if args.quick {
        vec![10]
    } else {
        vec![10, 20, 50]
    };
    let mut table = ExperimentTable::new(
        "table6",
        &[
            "n",
            "Metric",
            "RUSBoost",
            "SMOTEBoost",
            "UnderBagging",
            "SMOTEBagging",
            "Cascade",
            "SPE",
        ],
    );

    for &n in &sizes {
        eprintln!("[table6] n = {n} ...");
        let methods: Vec<(&str, Box<dyn Learner>)> = vec![
            (
                "RUSBoost",
                Box::new(RusBoost {
                    n_rounds: n,
                    base: Arc::clone(&c45),
                }),
            ),
            (
                "SMOTEBoost",
                Box::new(SmoteBoost {
                    n_rounds: n,
                    base: Arc::clone(&c45),
                    k: 5,
                }),
            ),
            (
                "UnderBagging",
                Box::new(UnderBagging::with_base(n, Arc::clone(&c45))),
            ),
            (
                "SMOTEBagging",
                Box::new(SmoteBagging {
                    n_estimators: n,
                    base: Arc::clone(&c45),
                    k: 5,
                }),
            ),
            (
                "Cascade",
                Box::new(BalanceCascade::with_base(n, Arc::clone(&c45))),
            ),
            (
                "SPE",
                Box::new(SelfPacedEnsembleConfig::with_base(n, Arc::clone(&c45))),
            ),
        ];
        let mut aggs: Vec<RunAggregator> = methods.iter().map(|_| RunAggregator::new()).collect();
        let mut sample_counts: Vec<f64> = vec![0.0; methods.len()];

        for run in 0..args.runs {
            let seed = 4000 + run as u64;
            let data = credit_fraud_sim(n_rows, seed);
            let split = train_val_test_split(&data, 0.6, 0.2, seed);
            let n_pos = split.train.n_positive();
            let n_neg = split.train.n_negative();
            for (mi, ((name, learner), agg)) in methods.iter().zip(&mut aggs).enumerate() {
                let model = learner.fit(split.train.x(), split.train.y(), seed);
                let probs = model.predict_proba(split.test.x());
                agg.push(MetricSet::evaluate(split.test.y(), &probs));
                sample_counts[mi] = match *name {
                    "SMOTEBoost" => ((n_pos + n_neg + n_pos) * n) as f64,
                    "SMOTEBagging" => (2 * n_neg * n) as f64,
                    _ => (2 * n_pos * n) as f64,
                };
            }
        }

        for (mi, metric) in MetricSet::NAMES.iter().enumerate() {
            let mut row = vec![format!("{n}"), (*metric).to_string()];
            for agg in &aggs {
                let vals: Vec<f64> = agg.runs().iter().map(|m| m.as_array()[mi]).collect();
                row.push(MeanStd::of(&vals).to_string());
            }
            table.push_row(row);
        }
        let mut row = vec![format!("{n}"), "#Sample".to_string()];
        row.extend(sample_counts.iter().map(|&c| format!("{c:.0}")));
        table.push_row(row);
    }

    table.finish(&format!(
        "Table VI: ensemble methods with C4.5 base on credit-fraud sim (n_rows={n_rows}, {} runs)",
        args.runs
    ));
}
