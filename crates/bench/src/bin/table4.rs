//! Table IV: generalized performance (AUCPRC/F1/GM/MCC) of 6 imbalance
//! methods on the five simulated real-world datasets, using the paper's
//! model pairings (Table III).
//!
//! Like the paper, Clean/SMOTE are only run where a meaningful distance
//! metric exists and the cost is tractable (Credit Fraud); the large
//! mixed-feature datasets keep those cells as "--".
//!
//! ```sh
//! cargo run --release -p spe-bench --bin table4 [-- --runs 10 --scale 1.0]
//! ```

use spe_bench::harness::{Args, ExperimentTable};
use spe_bench::methods::{paper_method_lineup, train_eval};
use spe_data::train_val_test_split;
use spe_datasets::{credit_fraud_sim, kddcup_sim, payment_sim, record_linkage_sim, KddVariant};
use spe_learners::traits::SharedLearner;
use spe_learners::{AdaBoostConfig, DecisionTreeConfig, GbdtConfig, KnnConfig, MlpConfig};
use spe_metrics::{MeanStd, MetricSet, RunAggregator};
use std::sync::Arc;

struct Task {
    dataset: &'static str,
    model: &'static str,
    base: SharedLearner,
    n_samples: usize,
    distance_methods: bool,
    generate: fn(usize, u64) -> spe_data::Dataset,
}

fn main() {
    let args = Args::parse(5);
    let tasks: Vec<Task> = vec![
        Task {
            dataset: "Credit Fraud",
            model: "KNN",
            base: Arc::new(KnnConfig::new(5)),
            n_samples: 40_000,
            distance_methods: true,
            generate: credit_fraud_sim,
        },
        Task {
            dataset: "Credit Fraud",
            model: "DT",
            base: Arc::new(DecisionTreeConfig::with_depth(10)),
            n_samples: 60_000,
            distance_methods: true,
            generate: credit_fraud_sim,
        },
        Task {
            dataset: "Credit Fraud",
            model: "MLP",
            base: Arc::new(MlpConfig::with_hidden(128)),
            n_samples: 60_000,
            distance_methods: true,
            generate: credit_fraud_sim,
        },
        Task {
            dataset: "KDDCUP (DOS vs. PRB)",
            model: "AdaBoost10",
            base: Arc::new(AdaBoostConfig::new(10)),
            n_samples: 120_000,
            distance_methods: false,
            generate: |n, s| kddcup_sim(n, KddVariant::DosVsPrb, s),
        },
        Task {
            dataset: "KDDCUP (DOS vs. R2L)",
            model: "AdaBoost10",
            base: Arc::new(AdaBoostConfig::new(10)),
            n_samples: 200_000,
            distance_methods: false,
            generate: |n, s| kddcup_sim(n, KddVariant::DosVsR2l, s),
        },
        Task {
            dataset: "Record Linkage",
            model: "GBDT10",
            base: Arc::new(GbdtConfig::new(10)),
            n_samples: 120_000,
            distance_methods: false,
            generate: record_linkage_sim,
        },
        Task {
            dataset: "Payment Simulation",
            model: "GBDT10",
            base: Arc::new(GbdtConfig::new(10)),
            n_samples: 150_000,
            distance_methods: false,
            generate: payment_sim,
        },
    ];

    let mut table = ExperimentTable::new(
        "table4",
        &[
            "Dataset",
            "Model",
            "Metric",
            "RandUnder",
            "Clean",
            "SMOTE",
            "Easy10",
            "Cascade10",
            "SPE10",
        ],
    );

    for task in tasks {
        eprintln!("[table4] {} / {} ...", task.dataset, task.model);
        let methods = paper_method_lineup(Arc::clone(&task.base), 10, task.distance_methods);
        let mut aggs: Vec<RunAggregator> = methods.iter().map(|_| RunAggregator::new()).collect();
        for run in 0..args.runs {
            let seed = 2000 + run as u64;
            let data = (task.generate)(args.sized(task.n_samples), seed);
            let split = train_val_test_split(&data, 0.6, 0.2, seed);
            for ((_, fit), agg) in methods.iter().zip(&mut aggs) {
                agg.push(train_eval(fit, &split.train, &split.test, seed));
            }
        }
        // One output row per metric, in the paper's order.
        for (mi, metric) in MetricSet::NAMES.iter().enumerate() {
            let mut row = vec![
                task.dataset.to_string(),
                task.model.to_string(),
                (*metric).to_string(),
            ];
            // Column layout is fixed; fill "--" where methods were skipped.
            let mut cells: Vec<String> = Vec::new();
            let mut agg_iter = aggs.iter();
            for col in [
                "RandUnder",
                "Clean",
                "SMOTE",
                "Easy10",
                "Cascade10",
                "SPE10",
            ] {
                let skipped = !task.distance_methods && (col == "Clean" || col == "SMOTE");
                if skipped {
                    cells.push("--".into());
                } else {
                    let agg = agg_iter.next().expect("method/agg mismatch");
                    let vals: Vec<f64> = agg.runs().iter().map(|m| m.as_array()[mi]).collect();
                    cells.push(MeanStd::of(&vals).to_string());
                }
            }
            row.extend(cells);
            table.push_row(row);
        }
    }

    table.finish(&format!(
        "Table IV: 6 methods x 5 simulated real-world tasks ({} runs)",
        args.runs
    ));
}
