//! Fig. 2: classification-hardness distributions on overlapped vs
//! non-overlapped datasets, under growing imbalance ratio, w.r.t. KNN
//! and AdaBoost classifiers.
//!
//! The paper's claim: in the non-overlapped regime the number of hard
//! samples stays constant as IR grows; in the overlapped regime it
//! explodes — and the distribution is classifier-specific.
//!
//! Outputs a per-bin histogram CSV plus a printed summary of the
//! hard-sample count per (regime, IR, classifier).
//!
//! ```sh
//! cargo run --release -p spe-bench --bin fig2
//! ```

use spe_bench::harness::{Args, ExperimentTable};
use spe_core::{HardnessBins, HardnessFn};
use spe_datasets::{overlap_study, OverlapConfig};
use spe_learners::traits::SharedLearner;
use spe_learners::{AdaBoostConfig, KnnConfig};
use std::sync::Arc;

fn main() {
    let args = Args::parse(1);
    let classifiers: Vec<(&str, SharedLearner)> = vec![
        ("KNN", Arc::new(KnnConfig::new(5))),
        ("AdaBoost", Arc::new(AdaBoostConfig::new(10))),
    ];
    let irs = [5.0, 10.0, 25.0, 50.0];
    let k_bins = 10;

    let mut summary = ExperimentTable::new(
        "fig2_summary",
        &["Regime", "IR", "Classifier", "HardSamples", "HardFraction"],
    );
    let mut hist = ExperimentTable::new(
        "fig2_histogram",
        &[
            "Regime",
            "IR",
            "Classifier",
            "Bin",
            "Population",
            "Contribution",
        ],
    );

    for overlapped in [false, true] {
        let regime = if overlapped { "overlapped" } else { "disjoint" };
        for &ir in &irs {
            let cfg = OverlapConfig {
                n_minority: args.sized(200),
                imbalance_ratio: ir,
                overlapped,
            };
            let data = overlap_study(&cfg, 7);
            for (clf_name, base) in &classifiers {
                let model = base.fit(data.x(), data.y(), 7);
                let probs = model.predict_proba(data.x());
                let hardness = HardnessFn::AbsoluteError.eval_batch(&probs, data.y());
                let bins = HardnessBins::cut(&hardness, k_bins);
                for (b, s) in bins.stats().iter().enumerate() {
                    hist.push_row(vec![
                        regime.into(),
                        format!("{ir}"),
                        (*clf_name).into(),
                        format!("{b}"),
                        format!("{}", s.population),
                        format!("{:.3}", s.contribution),
                    ]);
                }
                let hard = hardness.iter().filter(|&&h| h > 0.5).count();
                summary.push_row(vec![
                    regime.into(),
                    format!("{ir}"),
                    (*clf_name).into(),
                    format!("{hard}"),
                    format!("{:.4}", hard as f64 / hardness.len() as f64),
                ]);
            }
        }
    }

    hist.save().expect("save histogram CSV");
    summary.finish("Fig. 2: hard-sample growth with IR (hardness > 0.5)");
    println!("(full per-bin histograms in target/experiments/fig2_histogram.csv)");
}
