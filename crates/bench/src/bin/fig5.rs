//! Fig. 5: training curves (test AUCPRC vs iteration) of SPE and
//! BalanceCascade on checkerboards with covariance 0.05 / 0.10 / 0.15.
//!
//! Reproduces the paper's robustness claim: as overlap grows, Cascade's
//! curve turns downward in late iterations (it overfits noise) while
//! SPE keeps improving.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin fig5 [-- --runs 10]
//! ```

use spe_bench::harness::{Args, ExperimentTable};
use spe_core::SelfPacedEnsembleConfig;
use spe_data::train_val_test_split;
use spe_datasets::{checkerboard, CheckerboardConfig};
use spe_ensembles::BalanceCascade;
use spe_learners::traits::SharedLearner;
use spe_learners::DecisionTreeConfig;
use spe_metrics::{aucprc, MeanStd};
use std::sync::Arc;

fn main() {
    let args = Args::parse(10);
    let n_members = 10;
    let base: SharedLearner = Arc::new(DecisionTreeConfig::with_depth(10));

    let mut table = ExperimentTable::new(
        "fig5",
        &[
            "cov",
            "iteration",
            "SPE",
            "SPE_std",
            "Cascade",
            "Cascade_std",
        ],
    );

    for cov in [0.05, 0.10, 0.15] {
        eprintln!("[fig5] cov = {cov} ...");
        let cfg = CheckerboardConfig {
            n_minority: args.sized(1_000),
            n_majority: args.sized(10_000),
            cov,
            ..CheckerboardConfig::default()
        };
        let mut spe_curves: Vec<Vec<f64>> = vec![Vec::new(); n_members];
        let mut cascade_curves: Vec<Vec<f64>> = vec![Vec::new(); n_members];

        for run in 0..args.runs {
            let seed = 6000 + run as u64;
            let data = checkerboard(&cfg, seed);
            let split = train_val_test_split(&data, 0.6, 0.2, seed);

            let spe = SelfPacedEnsembleConfig::with_base(n_members, Arc::clone(&base))
                .fit_dataset(&split.train, seed);
            let cascade = BalanceCascade::with_base(n_members, Arc::clone(&base))
                .fit_dataset(&split.train, seed);

            for i in 1..=n_members {
                let p_spe = spe.predict_proba_prefix(split.test.x(), i);
                spe_curves[i - 1].push(aucprc(split.test.y(), &p_spe));
                let p_cas = cascade.predict_proba_prefix(split.test.x(), i);
                cascade_curves[i - 1].push(aucprc(split.test.y(), &p_cas));
            }
        }

        for i in 0..n_members {
            let s = MeanStd::of(&spe_curves[i]);
            let c = MeanStd::of(&cascade_curves[i]);
            table.push_row(vec![
                format!("{cov}"),
                format!("{}", i + 1),
                format!("{:.4}", s.mean),
                format!("{:.4}", s.std),
                format!("{:.4}", c.mean),
                format!("{:.4}", c.std),
            ]);
        }
    }

    table.finish(&format!(
        "Fig. 5: SPE vs Cascade training curves under overlap ({} runs)",
        args.runs
    ));
}
