//! Out-of-core training benchmark: a 50-member SPE fit on a synthetic
//! stream whose dense form is ≥ 10x the configured chunk budget, so the
//! fit *cannot* materialize the data. Asserts the memory claim (peak
//! RSS under 2x the chunk budget) and records AUCPRC on a held-out
//! draw; results merge into `BENCH_train.json` as an `oocore` section.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin bench_oocore             # full
//! cargo run --release -p spe-bench --bin bench_oocore -- --smoke  # CI gate
//! ```
//!
//! Full mode defaults to 2.5M x 30 rows (≈ 600 MB dense) against a
//! 56 MiB budget (a 10.2x beyond-RAM ratio). The paper-scale target:
//! `--rows 50000000 --budget-mb 1200` streams 50M x 30 (≈ 12 GB dense)
//! with the same 10x headroom. `--smoke` instead checks *quality*: a
//! small stream is fit both out-of-core (with an artificially tiny
//! budget, forcing many chunks and a real spill) and in memory on the
//! materialized equivalent, and the held-out AUCPRC of the two models
//! must agree within 0.005 — the sketch grid must not cost accuracy.

use spe_bench::harness::{merge_bench_section, peak_rss_bytes};
use spe_core::{chunk_rows_for_budget, ChunkedFitOptions, SelfPacedEnsembleConfig};
use spe_datasets::{StreamConfig, SyntheticStream};
use spe_learners::traits::{Model, SharedLearner};
use spe_learners::{DecisionTreeConfig, SplitMethod};
use spe_metrics::aucprc;
use std::sync::Arc;
use std::time::Instant;

const TRAIN_SEED: u64 = 11;
const TEST_SEED: u64 = 12;
const FIT_SEED: u64 = 42;

struct Opts {
    smoke: bool,
    rows: u64,
    features: usize,
    budget_mb: usize,
    members: usize,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        smoke: false,
        rows: 2_500_000,
        features: 30,
        budget_mb: 56,
        members: 50,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("{name} needs an integer"))
        };
        match a.as_str() {
            "--smoke" => o.smoke = true,
            "--rows" => o.rows = num("--rows")?,
            "--features" => o.features = num("--features")? as usize,
            "--budget-mb" => o.budget_mb = num("--budget-mb")? as usize,
            "--members" => o.members = num("--members")? as usize,
            other => {
                return Err(format!(
                    "unknown argument {other}; supported: --smoke --rows N --features N --budget-mb N --members N"
                ))
            }
        }
    }
    Ok(o)
}

fn hist_base() -> SharedLearner {
    Arc::new(DecisionTreeConfig {
        max_depth: 10,
        min_samples_leaf: 16,
        split_method: SplitMethod::Histogram,
        ..DecisionTreeConfig::default()
    })
}

fn stream_cfg(rows: u64, features: usize, minority: f64, chunk_rows: usize) -> StreamConfig {
    StreamConfig {
        rows,
        features,
        minority_fraction: minority,
        chunk_rows,
        ..StreamConfig::default()
    }
}

/// Quality gate: out-of-core and in-memory fits of the same small data
/// must land within 0.005 AUCPRC of each other on a held-out draw.
fn smoke() -> Result<(), Box<dyn std::error::Error>> {
    let budget_bytes = 1 << 20; // 1 MiB: tiny, to force many chunks.
    let features = 10;
    let chunk_rows = chunk_rows_for_budget(budget_bytes, features);
    // 5% minority: enough positives (~1000) that both fits converge to
    // a well-determined model — the gate measures grid drift, not the
    // variance of starved trees.
    let cfg = stream_cfg(20_000, features, 0.05, chunk_rows);
    let mut stream = SyntheticStream::new(cfg, TRAIN_SEED);
    let spe_cfg = SelfPacedEnsembleConfig::with_base(10, hist_base());

    eprintln!(
        "bench_oocore --smoke: {} rows x {features}, {} rows/chunk",
        cfg.rows, chunk_rows
    );
    // Capacity >= rows makes the sketch exact, so the remaining delta
    // isolates the streaming machinery (chunking, spill, bin-space
    // scoring) from sketch compaction noise — at 20k rows a compacted
    // grid shifts individual tree splits enough to move AUCPRC ~0.01
    // in either direction, which is member variance, not quality loss.
    // The compaction error bound itself is property-tested separately.
    let opts = ChunkedFitOptions {
        sketch_capacity: 32_768,
        ..ChunkedFitOptions::default()
    };
    let (ooc_model, report) = spe_cfg.try_fit_chunked(&mut stream, &opts, FIT_SEED)?;
    assert!(
        report.chunks >= 4,
        "smoke budget must force a multi-chunk fit, got {} chunks",
        report.chunks
    );
    assert!(report.spill_bytes > 0, "smoke fit must exercise the spill");

    let train = SyntheticStream::materialize(cfg, TRAIN_SEED);
    let mem_model = spe_cfg.try_fit_dataset(&train, FIT_SEED)?;

    let test =
        SyntheticStream::materialize(stream_cfg(10_000, features, 0.05, chunk_rows), TEST_SEED);
    let ooc_auc = aucprc(test.y(), &ooc_model.predict_proba(test.x()));
    let mem_auc = aucprc(test.y(), &mem_model.predict_proba(test.x()));
    let delta = (ooc_auc - mem_auc).abs();
    eprintln!(
        "  out-of-core AUCPRC {ooc_auc:.4} vs in-memory {mem_auc:.4} (delta {delta:.4}, {} chunks, {} spill bytes)",
        report.chunks, report.spill_bytes
    );
    if delta > 0.005 {
        eprintln!("FAIL: out-of-core AUCPRC drifted more than 0.005 from the in-memory fit");
        std::process::exit(1);
    }
    eprintln!("smoke OK");
    Ok(())
}

fn full(o: &Opts) -> Result<(), Box<dyn std::error::Error>> {
    let budget_bytes = o.budget_mb * (1 << 20);
    let chunk_rows = chunk_rows_for_budget(budget_bytes, o.features);
    let dense_bytes = o.rows * o.features as u64 * 8;
    let ratio = dense_bytes as f64 / budget_bytes as f64;
    assert!(
        ratio >= 10.0,
        "full mode must be beyond-RAM: dense/budget ratio {ratio:.1} < 10 \
         (raise --rows or lower --budget-mb)"
    );
    let cfg = stream_cfg(o.rows, o.features, 0.01, chunk_rows);
    let mut stream = SyntheticStream::new(cfg, TRAIN_SEED);
    let spe_cfg = SelfPacedEnsembleConfig::with_base(o.members, hist_base());
    eprintln!(
        "bench_oocore: {} rows x {} (dense {:.0} MiB, {ratio:.1}x the {} MiB budget), {} members, {} rows/chunk",
        o.rows,
        o.features,
        dense_bytes as f64 / (1024.0 * 1024.0),
        o.budget_mb,
        o.members,
        chunk_rows
    );

    let t0 = Instant::now();
    let (model, report) =
        spe_cfg.try_fit_chunked(&mut stream, &ChunkedFitOptions::default(), FIT_SEED)?;
    let fit_seconds = t0.elapsed().as_secs_f64();
    // Read the high-water mark before the held-out set is materialized:
    // the claim under test is the *fit's* footprint.
    let peak_rss = peak_rss_bytes();
    let rss_ratio = peak_rss as f64 / budget_bytes as f64;
    eprintln!(
        "  fit {} members in {fit_seconds:.1}s over {} chunks ({} spill bytes); peak RSS {:.1} MiB = {rss_ratio:.2}x budget",
        model.len(),
        report.chunks,
        report.spill_bytes,
        peak_rss as f64 / (1024.0 * 1024.0)
    );
    assert!(
        peak_rss == 0 || peak_rss < 2 * budget_bytes as u64,
        "peak RSS {peak_rss} exceeds 2x the {budget_bytes}-byte chunk budget"
    );

    let test =
        SyntheticStream::materialize(stream_cfg(50_000, o.features, 0.01, chunk_rows), TEST_SEED);
    let auc = aucprc(test.y(), &model.predict_proba(test.x()));
    eprintln!("  held-out AUCPRC {auc:.4} on {} rows", test.len());

    let section = format!(
        "{{\n    \"rows\": {},\n    \"features\": {},\n    \"members\": {},\n    \"chunk_budget_bytes\": {budget_bytes},\n    \"chunk_rows\": {chunk_rows},\n    \"dense_bytes\": {dense_bytes},\n    \"beyond_ram_ratio\": {ratio:.2},\n    \"fit_seconds\": {fit_seconds:.2},\n    \"peak_rss_bytes\": {peak_rss},\n    \"rss_budget_ratio\": {rss_ratio:.3},\n    \"chunks\": {},\n    \"spill_bytes\": {},\n    \"n_minority\": {},\n    \"max_rank_error\": {:.6},\n    \"aucprc\": {auc:.6}\n  }}",
        report.rows,
        o.features,
        model.len(),
        report.chunks,
        report.spill_bytes,
        report.n_minority,
        report.max_rank_error
    );
    let out = std::path::Path::new("BENCH_train.json");
    merge_bench_section(out, "oocore", &section)?;
    eprintln!("-> {} (oocore section)", out.display());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_opts().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if opts.smoke {
        smoke()
    } else {
        full(&opts)
    }
}
