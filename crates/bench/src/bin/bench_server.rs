//! Network serving benchmark: multi-connection load against a live
//! `spe-server`, measuring the failure-mode contract under fire. The
//! results merge into `BENCH_serve.json` as a `server` section (run
//! `bench_serve` first in the same directory to get both halves in one
//! file).
//!
//! Claims under test:
//!
//! - **Steady state** — a modest client fleet scores through the full
//!   TCP + admission + deadline path without shedding a single request.
//! - **Overload** — with in-flight demand at 2x the queue capacity, the
//!   server sheds with fast 429s instead of queueing into collapse, and
//!   the post-overload p99 drops back below the overload p99.
//! - **Isolation** — a wedged model trips its circuit breaker (deadline
//!   misses, then fast 503 rejects) while a healthy model on the same
//!   server answers every request.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin bench_server             # full
//! cargo run --release -p spe-bench --bin bench_server -- --quick  # small
//! cargo run --release -p spe-bench --bin bench_server -- --smoke  # CI gate
//! ```

use httpd::ClientConn;
use spe_bench::harness::Args;
use spe_core::SelfPacedEnsembleConfig;
use spe_data::MatrixView;
use spe_learners::Model;
use spe_serve::EngineConfig;
use spe_server::{BreakerConfig, RegistryConfig, SpeServer};
use std::time::{Duration, Instant};

const QUEUE_CAPACITY: usize = 256;
const WATERMARK_FRACTION: f64 = 0.9;
const THROTTLE: Duration = Duration::from_millis(20);

/// A model with a fixed per-batch service delay — stands in for an
/// expensive model so the overload phase can outrun the queue without
/// needing a huge client fleet.
struct Throttled(f64);
impl Model for Throttled {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        std::thread::sleep(THROTTLE);
        vec![self.0; x.rows()]
    }
}

/// A model wedged hard enough that every sane deadline misses.
struct Wedged;
impl Model for Wedged {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        std::thread::sleep(Duration::from_millis(50));
        vec![0.5; x.rows()]
    }
}

#[derive(Clone, Debug, Default)]
struct PhaseStats {
    ok: u64,
    shed: u64,
    deadline_misses: u64,
    circuit_open: u64,
    other: u64,
    /// Client-observed latency of each 200, microseconds.
    latencies_us: Vec<u64>,
}

impl PhaseStats {
    fn requests(&self) -> u64 {
        self.ok + self.shed + self.deadline_misses + self.circuit_open + self.other
    }

    fn shed_rate(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }

    fn percentile(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut lat = self.latencies_us.clone();
        lat.sort_unstable();
        lat[((lat.len() - 1) as f64 * q).round() as usize]
    }

    fn merge(&mut self, other: PhaseStats) {
        self.ok += other.ok;
        self.shed += other.shed;
        self.deadline_misses += other.deadline_misses;
        self.circuit_open += other.circuit_open;
        self.other += other.other;
        self.latencies_us.extend(other.latencies_us);
    }

    fn json(&self, clients: usize, rows_per_request: usize) -> String {
        format!(
            "{{\n      \"clients\": {clients},\n      \"rows_per_request\": {rows_per_request},\n      \"requests\": {},\n      \"ok\": {},\n      \"shed\": {},\n      \"deadline_misses\": {},\n      \"circuit_open\": {},\n      \"shed_rate\": {:.4},\n      \"p50_request_us\": {},\n      \"p99_request_us\": {}\n    }}",
            self.requests(),
            self.ok,
            self.shed,
            self.deadline_misses,
            self.circuit_open,
            self.shed_rate(),
            self.percentile(0.50),
            self.percentile(0.99)
        )
    }
}

/// `clients` threads, each sending `requests` scoring posts of `body`
/// to `model` with the given deadline, classifying every response.
fn run_phase(
    addr: &str,
    model: &str,
    clients: usize,
    requests: usize,
    body: &str,
    timeout_ms: u64,
) -> PhaseStats {
    let path = format!("/score/{model}");
    let timeout = timeout_ms.to_string();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.to_string();
            let path = path.clone();
            let timeout = timeout.clone();
            let body = body.to_string();
            std::thread::spawn(move || {
                let mut conn = ClientConn::connect(&addr).unwrap_or_else(|e| panic!("{e}"));
                let mut stats = PhaseStats::default();
                for _ in 0..requests {
                    let t0 = Instant::now();
                    let resp = conn
                        .request(
                            "POST",
                            &path,
                            &[("x-timeout-ms", &timeout)],
                            body.as_bytes(),
                            Duration::from_secs(30),
                        )
                        .unwrap_or_else(|e| panic!("{e}"));
                    let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    match resp.status {
                        200 => {
                            stats.ok += 1;
                            stats.latencies_us.push(us);
                        }
                        429 => stats.shed += 1,
                        504 => stats.deadline_misses += 1,
                        503 => stats.circuit_open += 1,
                        _ => stats.other += 1,
                    }
                }
                stats
            })
        })
        .collect();
    let mut total = PhaseStats::default();
    for h in handles {
        total.merge(
            h.join()
                .unwrap_or_else(|_| panic!("client thread panicked")),
        );
    }
    total
}

fn csv_body(x: &spe_data::Matrix, rows: usize) -> String {
    let mut out = String::new();
    for i in 0..rows {
        let fields: Vec<String> = x.row(i % x.rows()).iter().map(f64::to_string).collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    argv.retain(|a| a != "--smoke");
    let mut args = Args::try_parse_from(1, &argv)?;
    args.quick |= smoke;
    let (train_rows, members, requests) = if args.quick {
        (4_000, 5, 30)
    } else {
        (args.sized(20_000), 10, 150)
    };

    let train = spe_datasets::credit_fraud_sim(train_rows, 7);
    let score = spe_datasets::credit_fraud_sim(1_000, 8);
    let n_features = score.x().cols();
    let model = SelfPacedEnsembleConfig::builder()
        .n_estimators(members)
        .build()?
        .try_fit_dataset(&train, 42)?;

    let mut config = RegistryConfig::new(n_features);
    config.engine = EngineConfig::builder()
        .max_batch(64)
        .max_delay(Duration::from_millis(2))
        .queue_capacity(QUEUE_CAPACITY)
        .build()?;
    config.watermark_fraction = WATERMARK_FRACTION;
    config.breaker = BreakerConfig {
        threshold: 5,
        cooldown: Duration::from_millis(400),
    };
    let watermark = (QUEUE_CAPACITY as f64 * WATERMARK_FRACTION) as usize;

    let server = SpeServer::start("127.0.0.1:0", 12, config)?;
    let registry = server.registry();
    registry.register_model("live", Box::new(model))?;
    registry.register_model("throttled", Box::new(Throttled(0.5)))?;
    registry.register_model("wedged", Box::new(Wedged))?;
    let addr = server.addr().to_string();
    eprintln!(
        "bench_server: {} on {} ({} features, queue {QUEUE_CAPACITY}, watermark {watermark})",
        if args.quick { "quick" } else { "full" },
        addr,
        n_features
    );

    let body16 = csv_body(score.x(), 16);
    let body64 = csv_body(score.x(), 64);
    let body1 = csv_body(score.x(), 1);

    // Steady state: 4 clients x 16 rows keeps at most 64 rows in
    // flight, far under the watermark — nothing may shed.
    eprintln!("steady phase: 4 clients x {requests} requests x 16 rows ...");
    let steady = run_phase(&addr, "live", 4, requests, &body16, 2_000);
    eprintln!(
        "  ok {} shed {} p50 {}us p99 {}us",
        steady.ok,
        steady.shed,
        steady.percentile(0.5),
        steady.percentile(0.99)
    );
    assert_eq!(steady.shed, 0, "steady load must never shed");
    assert_eq!(steady.ok, steady.requests(), "steady load must all score");

    // Overload: 8 clients x 64 rows = 512 rows of in-flight demand
    // against a 256-row queue (2x capacity) on a deliberately slow
    // model. The watermark sheds the excess with fast 429s.
    eprintln!("overload phase: 8 clients x {requests} requests x 64 rows (2x queue capacity) ...");
    let overload = run_phase(&addr, "throttled", 8, requests, &body64, 10_000);
    eprintln!(
        "  ok {} shed {} ({:.0}%) p50 {}us p99 {}us",
        overload.ok,
        overload.shed,
        overload.shed_rate() * 100.0,
        overload.percentile(0.5),
        overload.percentile(0.99)
    );
    assert!(
        overload.shed > 0,
        "2x-capacity demand must shed at the watermark"
    );
    assert!(
        overload.ok > 0,
        "shedding must protect some throughput, not replace it"
    );

    // Recovery: the same steady fleet right after the burst. The p99
    // must fall back below the overload p99 — the queue drained instead
    // of staying saturated.
    eprintln!("recovery phase: 4 clients x {requests} requests x 16 rows ...");
    let recovery = run_phase(&addr, "live", 4, requests, &body16, 2_000);
    eprintln!(
        "  ok {} shed {} p50 {}us p99 {}us",
        recovery.ok,
        recovery.shed,
        recovery.percentile(0.5),
        recovery.percentile(0.99)
    );
    assert!(
        recovery.percentile(0.99) < overload.percentile(0.99),
        "post-overload p99 ({}us) must recover below the overload p99 ({}us)",
        recovery.percentile(0.99),
        overload.percentile(0.99)
    );

    // Breaker: tight deadlines against the wedged model turn into 504s
    // until the circuit opens, then fast 503s — while the live model
    // answers every concurrent request.
    eprintln!("breaker phase: wedged model under 10ms deadlines + healthy traffic ...");
    let wedged_reqs = requests.min(40);
    let healthy_handle = {
        let addr = addr.clone();
        let body = body16.clone();
        std::thread::spawn(move || run_phase(&addr, "live", 2, wedged_reqs, &body, 2_000))
    };
    let wedged = run_phase(&addr, "wedged", 2, wedged_reqs, &body1, 10);
    let healthy = healthy_handle
        .join()
        .unwrap_or_else(|_| panic!("healthy traffic thread panicked"));
    eprintln!(
        "  wedged: {} deadline misses, {} fast rejects; healthy: {}/{} ok",
        wedged.deadline_misses,
        wedged.circuit_open,
        healthy.ok,
        healthy.requests()
    );
    assert!(
        wedged.circuit_open > 0,
        "the wedged model's breaker must trip to fast rejects"
    );
    assert_eq!(
        healthy.ok,
        healthy.requests(),
        "the healthy model must be untouched by the wedged one"
    );

    let section = format!
        (
        "{{\n    \"queue_capacity\": {QUEUE_CAPACITY},\n    \"watermark\": {watermark},\n    \"throttle_ms\": {},\n    \"steady\": {},\n    \"overload\": {},\n    \"recovery\": {},\n    \"wedged\": {},\n    \"healthy_during_wedge\": {}\n  }}",
        THROTTLE.as_millis(),
        steady.json(4, 16),
        overload.json(8, 64),
        recovery.json(4, 16),
        wedged.json(2, 1),
        healthy.json(2, 16)
    );
    spe_bench::harness::merge_bench_section(
        std::path::Path::new("BENCH_serve.json"),
        "server",
        &section,
    )?;
    eprintln!(
        "overload shed rate {:.0}%, recovery p99 {}us (overload {}us) -> BENCH_serve.json (server section)",
        overload.shed_rate() * 100.0,
        recovery.percentile(0.99),
        overload.percentile(0.99)
    );

    server.stop();
    Ok(())
}
