//! Ablation study (beyond the paper): which ingredient of Algorithm 1
//! carries the performance?
//!
//! Variants compared on the checkerboard and the Credit Fraud sim:
//!
//! - `SPE`           — the full algorithm (α = tan(iπ/2n));
//! - `harmonize`     — α ≡ 0 (hardness harmonization only);
//! - `uniform-bins`  — α ≡ 10⁶ (near-uniform bin weights from the start);
//! - `random`        — ignore hardness entirely (≈ UnderBagging);
//! - hardness functions AE/SE/CE under the full schedule.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin ablation [-- --runs 5]
//! ```

use spe_bench::harness::{Args, ExperimentTable};
use spe_core::{AlphaSchedule, HardnessFn, SelfPacedEnsembleConfig};
use spe_data::train_val_test_split;
use spe_datasets::{checkerboard, credit_fraud_sim, CheckerboardConfig};
use spe_learners::traits::{Model, SharedLearner};
use spe_learners::DecisionTreeConfig;
use spe_metrics::{aucprc, MeanStd};
use std::sync::Arc;

fn main() {
    let args = Args::parse(5);
    let base: SharedLearner = Arc::new(DecisionTreeConfig::with_depth(10));
    let variants: Vec<(&str, AlphaSchedule, HardnessFn)> = vec![
        (
            "SPE (full)",
            AlphaSchedule::SelfPaced,
            HardnessFn::AbsoluteError,
        ),
        (
            "harmonize (alpha=0)",
            AlphaSchedule::Constant(0.0),
            HardnessFn::AbsoluteError,
        ),
        (
            "uniform-bins (alpha=1e6)",
            AlphaSchedule::Constant(1e6),
            HardnessFn::AbsoluteError,
        ),
        (
            "random (no hardness)",
            AlphaSchedule::Uniform,
            HardnessFn::AbsoluteError,
        ),
        (
            "SPE + squared error",
            AlphaSchedule::SelfPaced,
            HardnessFn::SquaredError,
        ),
        (
            "SPE + cross entropy",
            AlphaSchedule::SelfPaced,
            HardnessFn::CrossEntropy,
        ),
    ];

    let mut table = ExperimentTable::new("ablation", &["Variant", "Checkerboard", "CreditFraud"]);

    let mut cells: Vec<[Vec<f64>; 2]> = variants.iter().map(|_| [Vec::new(), Vec::new()]).collect();
    for run in 0..args.runs {
        let seed = 9000 + run as u64;
        let datasets = [
            checkerboard(
                &CheckerboardConfig {
                    n_minority: args.sized(1_000),
                    n_majority: args.sized(10_000),
                    ..CheckerboardConfig::default()
                },
                seed,
            ),
            credit_fraud_sim(args.sized(40_000), seed),
        ];
        for (di, data) in datasets.iter().enumerate() {
            let split = train_val_test_split(data, 0.6, 0.2, seed);
            for ((_, schedule, hardness), cell) in variants.iter().zip(&mut cells) {
                let cfg = SelfPacedEnsembleConfig::builder()
                    .n_estimators(10)
                    .k_bins(20)
                    .hardness(*hardness)
                    .base(Arc::clone(&base))
                    .alpha_schedule(*schedule)
                    .build()
                    .expect("valid ablation config");
                let model = cfg.fit_dataset(&split.train, seed);
                cell[di].push(aucprc(split.test.y(), &model.predict_proba(split.test.x())));
            }
        }
        eprintln!("[ablation] run {run} done");
    }

    for ((name, _, _), cell) in variants.iter().zip(&cells) {
        table.push_row(vec![
            (*name).to_string(),
            MeanStd::of(&cell[0]).to_string(),
            MeanStd::of(&cell[1]).to_string(),
        ]);
    }

    table.finish(&format!(
        "Ablation: Algorithm 1 ingredients, AUCPRC ({} runs)",
        args.runs
    ));
}
