//! Fig. 6: visualization data for five imbalance methods on the
//! checkerboard — the (re-sampled) training sets they actually fit on,
//! and each final model's predicted-probability field over a grid.
//!
//! Outputs:
//! - `fig6_train_<method>[_iterN].csv` — training points (x0, x1, label)
//! - `fig6_proba_<method>.csv`        — grid probability field
//!
//! ```sh
//! cargo run --release -p spe-bench --bin fig6
//! ```

use spe_bench::harness::{experiments_dir, Args};
use spe_core::SelfPacedEnsembleConfig;
use spe_data::csv::{write_csv, write_dataset};
use spe_data::{train_val_test_split, Dataset, Matrix, SeededRng};
use spe_datasets::{checkerboard, CheckerboardConfig};
use spe_learners::traits::{Model, SharedLearner};
use spe_learners::DecisionTreeConfig;
use spe_sampling::{NeighbourhoodCleaningRule, Sampler, Smote};
use std::path::Path;
use std::sync::Arc;

/// Evaluates a model's probability field on a `res x res` grid spanning
/// the checkerboard and writes `x0,x1,proba` rows.
fn write_proba_field(dir: &Path, name: &str, model: &dyn Model, res: usize) -> std::io::Result<()> {
    let mut grid = Matrix::with_capacity(res * res, 2);
    for i in 0..res {
        for j in 0..res {
            let x0 = -0.5 + 5.0 * (i as f64) / (res as f64 - 1.0);
            let x1 = -0.5 + 5.0 * (j as f64) / (res as f64 - 1.0);
            grid.push_row(&[x0, x1]);
        }
    }
    let probs = model.predict_proba(&grid);
    let rows: Vec<Vec<f64>> = grid
        .iter_rows()
        .zip(&probs)
        .map(|(r, &p)| vec![r[0], r[1], p])
        .collect();
    write_csv(
        &dir.join(format!("fig6_proba_{name}.csv")),
        &["x0", "x1", "proba"],
        &rows,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(1);
    let dir = experiments_dir();
    let res = 60;
    let seed = 13;
    let cfg = CheckerboardConfig {
        n_minority: args.sized(1_000),
        n_majority: args.sized(10_000),
        ..CheckerboardConfig::default()
    };
    let data = checkerboard(&cfg, seed);
    let split = train_val_test_split(&data, 0.6, 0.2, seed);
    let base: SharedLearner = Arc::new(DecisionTreeConfig::with_depth(10));

    // Clean and SMOTE: dump the resampled set and the single model.
    for (name, sampler) in [
        (
            "clean",
            Box::new(NeighbourhoodCleaningRule::default()) as Box<dyn Sampler>,
        ),
        ("smote", Box::new(Smote::default())),
    ] {
        let resampled = sampler.resample(&split.train, seed);
        write_dataset(&dir.join(format!("fig6_train_{name}.csv")), &resampled)?;
        let model = base.fit(resampled.x(), resampled.y(), seed);
        write_proba_field(&dir, name, model.as_ref(), res)?;
        println!("fig6: {name} ({} training samples)", resampled.len());
    }

    // Easy (under-bagging): dump the 5th and 10th bag.
    {
        let idx = split.train.class_index();
        let mut rng = SeededRng::new(seed);
        let mut models: Vec<Box<dyn Model>> = Vec::new();
        for m in 1..=10usize {
            let mut keep = rng.sample_from(&idx.majority, idx.minority.len());
            keep.extend_from_slice(&idx.minority);
            let bag = split.train.select(&keep);
            if m == 5 || m == 10 {
                write_dataset(&dir.join(format!("fig6_train_easy_iter{m}.csv")), &bag)?;
            }
            models.push(base.fit(bag.x(), bag.y(), seed + m as u64));
        }
        let ensemble = spe_learners::ensemble::SoftVoteEnsemble::new(models);
        write_proba_field(&dir, "easy", &ensemble, res)?;
        println!("fig6: easy (10 bags)");
    }

    // Cascade and SPE: use the traced fits.
    {
        let cascade = spe_ensembles::BalanceCascade::with_base(10, Arc::clone(&base));
        let model = cascade.fit_dataset(&split.train, seed);
        write_proba_field(&dir, "cascade", &model, res)?;
        println!("fig6: cascade");
    }
    {
        let spe_cfg = SelfPacedEnsembleConfig::with_base(10, Arc::clone(&base));
        let (model, trace) = spe_cfg.try_fit_dataset_traced(&split.train, seed)?;
        // Reconstruct the training sets of the 5th and 10th member.
        let idx = split.train.class_index();
        for m in [5usize, 10] {
            let sel = &trace.selections[m - 1];
            let mut keep: Vec<usize> = sel.iter().map(|&p| trace.majority_rows[p]).collect();
            keep.extend_from_slice(&idx.minority);
            let subset: Dataset = split.train.select(&keep);
            write_dataset(&dir.join(format!("fig6_train_spe_iter{m}.csv")), &subset)?;
        }
        write_proba_field(&dir, "spe", &model, res)?;
        println!("fig6: spe (traced iterations 5 and 10)");
    }

    println!("Fig. 6 artifacts written to {}", dir.display());
    Ok(())
}
