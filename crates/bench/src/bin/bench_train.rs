//! Wall-clock training benchmark: exact vs histogram split engines on a
//! 50-member SPE over a 100k-row synthetic imbalanced dataset, with
//! AUCPRC measured on a held-out draw so the speedup is accompanied by a
//! quality check. Results land in `BENCH_train.json`.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin bench_train            # full
//! cargo run --release -p spe-bench --bin bench_train -- --quick # smoke
//! ```

use spe_bench::harness::Args;
use spe_core::SelfPacedEnsembleConfig;
use spe_data::{Dataset, Matrix, SeededRng};
use spe_datasets::{checkerboard, CheckerboardConfig};
use spe_learners::traits::{Model, SharedLearner};
use spe_learners::{DecisionTreeConfig, SplitMethod};
use spe_metrics::aucprc;
use std::sync::Arc;
use std::time::Instant;

/// Checkerboard with `extra` appended standard-normal noise features, so
/// the split search has realistic width (10 features total).
fn noisy_board(n_minority: usize, n_majority: usize, extra: usize, seed: u64) -> Dataset {
    let base = checkerboard(
        &CheckerboardConfig {
            grid: 4,
            n_minority,
            n_majority,
            cov: 0.1,
        },
        seed,
    );
    let mut rng = SeededRng::new(seed ^ 0x5EED);
    let mut x = Matrix::with_capacity(base.len(), 2 + extra);
    for row in base.x().iter_rows() {
        let mut r = row.to_vec();
        for _ in 0..extra {
            r.push(rng.normal(0.0, 1.0));
        }
        x.push_row(&r);
    }
    Dataset::new(x, base.y().to_vec())
}

struct RunResult {
    fit_seconds: f64,
    aucprc: f64,
    members: usize,
}

fn run(method: SplitMethod, n_estimators: usize, train: &Dataset, test: &Dataset) -> RunResult {
    // `min_samples_leaf` keeps deep trees from shattering the noise
    // features sample-by-sample; without it the exact engine's
    // per-sample thresholds overfit this dataset and the two engines
    // measure different models rather than different split searches.
    let base: SharedLearner = Arc::new(DecisionTreeConfig {
        max_depth: 10,
        min_samples_leaf: 16,
        split_method: method,
        ..DecisionTreeConfig::default()
    });
    let cfg = SelfPacedEnsembleConfig::with_base(n_estimators, base);
    let t0 = Instant::now();
    let model = cfg.fit_dataset(train, 7);
    let fit_seconds = t0.elapsed().as_secs_f64();
    let auc = aucprc(test.y(), &model.predict_proba(test.x()));
    RunResult {
        fit_seconds,
        aucprc: auc,
        members: model.len(),
    }
}

fn json_block(name: &str, r: &RunResult) -> String {
    format!(
        "  \"{name}\": {{\n    \"fit_seconds\": {:.4},\n    \"aucprc\": {:.6},\n    \"members\": {}\n  }}",
        r.fit_seconds, r.aucprc, r.members
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(1);
    let (n_min, n_maj, n_estimators) = if args.quick {
        (500, 4_500, 5)
    } else {
        (args.sized(10_000), args.sized(90_000), 50)
    };
    let train = noisy_board(n_min, n_maj, 8, 11);
    let test = noisy_board(n_min, n_maj, 8, 12);
    eprintln!(
        "bench_train: {} rows x {} features, {} members, {} thread(s)",
        train.len(),
        train.x().cols(),
        n_estimators,
        spe_runtime::current_threads()
    );

    eprintln!("fitting exact ...");
    let exact = run(SplitMethod::Exact, n_estimators, &train, &test);
    eprintln!(
        "  exact: {:.2}s, AUCPRC {:.4}",
        exact.fit_seconds, exact.aucprc
    );
    eprintln!("fitting histogram ...");
    let hist = run(SplitMethod::Histogram, n_estimators, &train, &test);
    eprintln!(
        "  histogram: {:.2}s, AUCPRC {:.4}",
        hist.fit_seconds, hist.aucprc
    );

    let speedup = exact.fit_seconds / hist.fit_seconds.max(1e-9);
    let delta = (exact.aucprc - hist.aucprc).abs();
    let json = format!(
        "{{\n  \"dataset\": {{\n    \"rows\": {},\n    \"features\": {},\n    \"n_minority\": {},\n    \"n_majority\": {}\n  }},\n  \"n_estimators\": {},\n  \"threads\": {},\n{},\n{},\n  \"speedup\": {:.3},\n  \"aucprc_delta\": {:.6}\n}}\n",
        train.len(),
        train.x().cols(),
        n_min,
        n_maj,
        n_estimators,
        spe_runtime::current_threads(),
        json_block("exact", &exact),
        json_block("histogram", &hist),
        speedup,
        delta
    );
    let out = std::path::Path::new("BENCH_train.json");
    std::fs::write(out, &json)?;
    eprintln!(
        "speedup {speedup:.2}x, AUCPRC delta {delta:.4} -> {}",
        out.display()
    );
    Ok(())
}
