//! Wall-clock training benchmark: exact vs histogram split engines on a
//! 50-member SPE over a 100k-row synthetic imbalanced dataset, with
//! AUCPRC measured on a held-out draw so the speedup is accompanied by a
//! quality check. A second histogram fit on an 8-thread runtime is
//! recorded next to the single-thread entries, along with the process's
//! peak RSS. Results merge into `BENCH_train.json` key by key, so an
//! `oocore` section from `bench_oocore` survives a re-run.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin bench_train            # full
//! cargo run --release -p spe-bench --bin bench_train -- --quick # smoke
//! ```

use spe_bench::harness::{merge_bench_section, peak_rss_bytes, Args};
use spe_core::{MultiClassSpeConfig, SelfPacedEnsembleConfig};
use spe_data::{Dataset, Matrix, SeededRng};
use spe_datasets::{
    checkerboard, multiclass_checkerboard, CheckerboardConfig, MultiClassCheckerboardConfig,
};
use spe_learners::traits::{Model, SharedLearner};
use spe_learners::{DecisionTreeConfig, SplitMethod};
use spe_metrics::{aucprc, MultiConfusion};
use spe_runtime::Runtime;
use std::sync::Arc;
use std::time::Instant;

const MT_THREADS: usize = 8;
/// Classes in the multi-class benchmark dataset.
const MC_CLASSES: usize = 4;
/// Geometric imbalance ratio between adjacent classes (class `c` has
/// `ratio` times fewer rows than class `c - 1`).
const MC_RATIO: f64 = 10.0;

/// Checkerboard with `extra` appended standard-normal noise features, so
/// the split search has realistic width (10 features total).
fn noisy_board(n_minority: usize, n_majority: usize, extra: usize, seed: u64) -> Dataset {
    let base = checkerboard(
        &CheckerboardConfig {
            grid: 4,
            n_minority,
            n_majority,
            cov: 0.1,
        },
        seed,
    );
    let mut rng = SeededRng::new(seed ^ 0x5EED);
    let mut x = Matrix::with_capacity(base.len(), 2 + extra);
    for row in base.x().iter_rows() {
        let mut r = row.to_vec();
        for _ in 0..extra {
            r.push(rng.normal(0.0, 1.0));
        }
        x.push_row(&r);
    }
    Dataset::new(x, base.y().to_vec())
}

struct RunResult {
    fit_seconds: f64,
    aucprc: f64,
    members: usize,
}

fn run(
    method: SplitMethod,
    n_estimators: usize,
    threads: usize,
    train: &Dataset,
    test: &Dataset,
) -> RunResult {
    // `min_samples_leaf` keeps deep trees from shattering the noise
    // features sample-by-sample; without it the exact engine's
    // per-sample thresholds overfit this dataset and the two engines
    // measure different models rather than different split searches.
    let base: SharedLearner = Arc::new(DecisionTreeConfig {
        max_depth: 10,
        min_samples_leaf: 16,
        split_method: method,
        ..DecisionTreeConfig::default()
    });
    let cfg = SelfPacedEnsembleConfig {
        runtime: Runtime::with_threads(threads),
        ..SelfPacedEnsembleConfig::with_base(n_estimators, base)
    };
    let t0 = Instant::now();
    let model = cfg.fit_dataset(train, 7);
    let fit_seconds = t0.elapsed().as_secs_f64();
    let auc = aucprc(test.y(), &model.predict_proba(test.x()));
    RunResult {
        fit_seconds,
        aucprc: auc,
        members: model.len(),
    }
}

struct MultiResult {
    rows: usize,
    class_counts: Vec<usize>,
    fit_seconds: f64,
    macro_f1: f64,
    per_class_recall: Vec<f64>,
}

/// One-vs-rest SPE on a geometrically imbalanced 4-class checkerboard,
/// scored with class-aware metrics on a held-out draw.
fn run_multiclass(n_estimators: usize, n_largest: usize) -> MultiResult {
    let gen_cfg = MultiClassCheckerboardConfig::geometric(MC_CLASSES, n_largest, MC_RATIO);
    let class_counts = gen_cfg.class_counts.clone();
    let train = multiclass_checkerboard(&gen_cfg, 21);
    let test = multiclass_checkerboard(&gen_cfg, 22);
    let base: SharedLearner = Arc::new(DecisionTreeConfig {
        max_depth: 8,
        min_samples_leaf: 8,
        split_method: SplitMethod::Histogram,
        ..DecisionTreeConfig::default()
    });
    let cfg = MultiClassSpeConfig {
        binary: SelfPacedEnsembleConfig::with_base(n_estimators, base),
        ..MultiClassSpeConfig::default()
    };
    let t0 = Instant::now();
    let model = cfg
        .try_fit_dataset(&train, 7)
        .unwrap_or_else(|e| panic!("multi-class fit failed: {e}"));
    let fit_seconds = t0.elapsed().as_secs_f64();
    let pred = model.predict_class(test.x());
    let cm = MultiConfusion::from_labels(test.y(), &pred, MC_CLASSES);
    MultiResult {
        rows: train.len(),
        class_counts,
        fit_seconds,
        macro_f1: cm.macro_f1(),
        per_class_recall: cm.per_class_recall(),
    }
}

fn json_usize_array(v: &[usize]) -> String {
    let items: Vec<String> = v.iter().map(|n| n.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn json_f64_array(v: &[f64]) -> String {
    let items: Vec<String> = v.iter().map(|x| format!("{x:.6}")).collect();
    format!("[{}]", items.join(", "))
}

fn json_block(r: &RunResult) -> String {
    format!(
        "{{\n    \"fit_seconds\": {:.4},\n    \"aucprc\": {:.6},\n    \"members\": {}\n  }}",
        r.fit_seconds, r.aucprc, r.members
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(1);
    let (n_min, n_maj, n_estimators) = if args.quick {
        (500, 4_500, 5)
    } else {
        (args.sized(10_000), args.sized(90_000), 50)
    };
    let train = noisy_board(n_min, n_maj, 8, 11);
    let test = noisy_board(n_min, n_maj, 8, 12);
    eprintln!(
        "bench_train: {} rows x {} features, {} members",
        train.len(),
        train.x().cols(),
        n_estimators,
    );

    eprintln!("fitting exact (1 thread) ...");
    let exact = run(SplitMethod::Exact, n_estimators, 1, &train, &test);
    eprintln!(
        "  exact: {:.2}s, AUCPRC {:.4}",
        exact.fit_seconds, exact.aucprc
    );
    eprintln!("fitting histogram (1 thread) ...");
    let hist = run(SplitMethod::Histogram, n_estimators, 1, &train, &test);
    eprintln!(
        "  histogram: {:.2}s, AUCPRC {:.4}",
        hist.fit_seconds, hist.aucprc
    );
    eprintln!("fitting histogram ({MT_THREADS} threads) ...");
    let hist_mt = run(
        SplitMethod::Histogram,
        n_estimators,
        MT_THREADS,
        &train,
        &test,
    );
    eprintln!(
        "  histogram x{MT_THREADS}: {:.2}s, AUCPRC {:.4}",
        hist_mt.fit_seconds, hist_mt.aucprc
    );
    // Determinism contract: the thread count may only change the clock.
    assert_eq!(
        hist.aucprc.to_bits(),
        hist_mt.aucprc.to_bits(),
        "histogram fit must be bit-identical across thread counts"
    );

    eprintln!("fitting {MC_CLASSES}-class one-vs-rest SPE ...");
    let mc_largest = if args.quick { 800 } else { args.sized(20_000) };
    let mc = run_multiclass(n_estimators, mc_largest);
    eprintln!(
        "  multiclass: {:.2}s, macro-F1 {:.4}, per-class recall {:?}",
        mc.fit_seconds, mc.macro_f1, mc.per_class_recall
    );

    let speedup = exact.fit_seconds / hist.fit_seconds.max(1e-9);
    let mt_speedup = hist.fit_seconds / hist_mt.fit_seconds.max(1e-9);
    let delta = (exact.aucprc - hist.aucprc).abs();
    let peak_rss = peak_rss_bytes();
    let dataset = format!(
        "{{\n    \"rows\": {},\n    \"features\": {},\n    \"n_minority\": {},\n    \"n_majority\": {}\n  }}",
        train.len(),
        train.x().cols(),
        n_min,
        n_maj
    );
    let hist_mt_json = format!(
        "{{\n    \"threads\": {MT_THREADS},\n    \"fit_seconds\": {:.4},\n    \"aucprc\": {:.6},\n    \"members\": {},\n    \"speedup_vs_1thread\": {:.3}\n  }}",
        hist_mt.fit_seconds, hist_mt.aucprc, hist_mt.members, mt_speedup
    );
    // Merge key by key instead of rewriting the file, so the `oocore`
    // section written by `bench_oocore` survives.
    let out = std::path::Path::new("BENCH_train.json");
    for (key, section) in [
        ("dataset", dataset),
        ("n_estimators", n_estimators.to_string()),
        ("threads", "1".to_string()),
        ("exact", json_block(&exact)),
        ("histogram", json_block(&hist)),
        ("histogram_mt", hist_mt_json),
        ("speedup", format!("{speedup:.3}")),
        ("aucprc_delta", format!("{delta:.6}")),
        ("peak_rss_bytes", peak_rss.to_string()),
        (
            "multiclass",
            format!(
                "{{\n    \"classes\": {MC_CLASSES},\n    \"rows\": {},\n    \"class_counts\": {},\n    \"members_per_class\": {n_estimators},\n    \"fit_seconds\": {:.4},\n    \"macro_f1\": {:.6},\n    \"per_class_recall\": {}\n  }}",
                mc.rows,
                json_usize_array(&mc.class_counts),
                mc.fit_seconds,
                mc.macro_f1,
                json_f64_array(&mc.per_class_recall)
            ),
        ),
    ] {
        merge_bench_section(out, key, &section)?;
    }
    eprintln!(
        "speedup {speedup:.2}x (x{MT_THREADS} threads {mt_speedup:.2}x), AUCPRC delta {delta:.4}, peak RSS {:.1} MiB -> {}",
        peak_rss as f64 / (1024.0 * 1024.0),
        out.display()
    );
    Ok(())
}
