//! Fig. 7: generalized AUCPRC of ensemble methods as the number of base
//! classifiers n grows (paper: 1..100), on the Credit Fraud and Payment
//! Simulation tasks.
//!
//! Like the paper, SMOTE-based ensembles are only run on Credit Fraud
//! (they are computationally disproportionate on the larger mixed-type
//! Payment data); pass `--quick` to cap n at 20.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin fig7 [-- --runs 3]
//! ```

use spe_bench::harness::{Args, ExperimentTable};
use spe_core::SelfPacedEnsembleConfig;
use spe_data::train_val_test_split;
use spe_datasets::{credit_fraud_sim, payment_sim};
use spe_ensembles::{BalanceCascade, RusBoost, SmoteBagging, SmoteBoost, UnderBagging};
use spe_learners::traits::{Learner, SharedLearner};
use spe_learners::DecisionTreeConfig;
use spe_metrics::{aucprc, MeanStd};
use std::sync::Arc;

fn main() {
    let args = Args::parse(3);
    let sizes: Vec<usize> = if args.quick {
        vec![1, 2, 5, 10, 20]
    } else {
        vec![1, 2, 5, 10, 20, 50, 100]
    };
    let c45: SharedLearner = Arc::new(DecisionTreeConfig::c45(10));

    let mut table = ExperimentTable::new("fig7", &["Dataset", "Method", "n", "AUCPRC", "std"]);

    for (dataset_name, n_rows, with_smote) in [
        ("Credit Fraud", args.sized(40_000), true),
        ("Payment Simulation", args.sized(100_000), false),
    ] {
        for &n in &sizes {
            eprintln!("[fig7] {dataset_name}, n = {n} ...");
            let mut methods: Vec<(&str, Box<dyn Learner>)> = vec![
                (
                    "SPE",
                    Box::new(SelfPacedEnsembleConfig::with_base(n, Arc::clone(&c45))),
                ),
                (
                    "Cascade",
                    Box::new(BalanceCascade::with_base(n, Arc::clone(&c45))),
                ),
                (
                    "UnderBagging",
                    Box::new(UnderBagging::with_base(n, Arc::clone(&c45))),
                ),
                (
                    "RUSBoost",
                    Box::new(RusBoost {
                        n_rounds: n,
                        base: Arc::clone(&c45),
                    }),
                ),
            ];
            if with_smote {
                methods.push((
                    "SMOTEBagging",
                    Box::new(SmoteBagging {
                        n_estimators: n,
                        base: Arc::clone(&c45),
                        k: 5,
                    }),
                ));
                methods.push((
                    "SMOTEBoost",
                    Box::new(SmoteBoost {
                        n_rounds: n,
                        base: Arc::clone(&c45),
                        k: 5,
                    }),
                ));
            }
            let mut aucs: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
            for run in 0..args.runs {
                let seed = 7000 + run as u64;
                let data = if dataset_name == "Credit Fraud" {
                    credit_fraud_sim(n_rows, seed)
                } else {
                    payment_sim(n_rows, seed)
                };
                let split = train_val_test_split(&data, 0.6, 0.2, seed);
                for ((_, learner), store) in methods.iter().zip(&mut aucs) {
                    let model = learner.fit(split.train.x(), split.train.y(), seed);
                    store.push(aucprc(split.test.y(), &model.predict_proba(split.test.x())));
                }
            }
            for ((name, _), store) in methods.iter().zip(&aucs) {
                let ms = MeanStd::of(store);
                table.push_row(vec![
                    dataset_name.into(),
                    (*name).into(),
                    format!("{n}"),
                    format!("{:.4}", ms.mean),
                    format!("{:.4}", ms.std),
                ]);
            }
        }
    }

    table.finish(&format!(
        "Fig. 7: AUCPRC vs number of base classifiers ({} runs)",
        args.runs
    ));
}
