//! Fig. 3: how the self-paced factor α shapes the under-sampled majority
//! subset on the Payment Simulation dataset.
//!
//! For the original majority set and for subsets drawn at α = 0,
//! α = 0.1 and α → ∞, prints the per-bin population and hardness
//! contribution (the paper's paired log-scale bar charts).
//!
//! ```sh
//! cargo run --release -p spe-bench --bin fig3
//! ```

use spe_bench::harness::{Args, ExperimentTable};
use spe_core::{HardnessBins, SelfPacedEnsembleConfig, SelfPacedSampler};
use spe_data::{train_val_test_split, SeededRng};
use spe_datasets::payment_sim;
use spe_learners::DecisionTreeConfig;
use std::sync::Arc;

fn main() {
    let args = Args::parse(1);
    let k = 20;
    let data = payment_sim(args.sized(150_000), 11);
    let split = train_val_test_split(&data, 0.6, 0.2, 11);

    // Hardness w.r.t. a trained SPE ensemble (the trace records the
    // hardness used at the last self-paced iteration).
    let cfg = SelfPacedEnsembleConfig::with_base(10, Arc::new(DecisionTreeConfig::with_depth(10)));
    let (_, trace) = cfg.fit_dataset_traced(&split.train, 11);
    let hardness = trace.hardness.last().expect("trace has iterations").clone();
    let n_pos = split.train.n_positive();

    let mut table = ExperimentTable::new("fig3", &["Subset", "Bin", "Population", "Contribution"]);

    // (a) Original majority set.
    let bins = HardnessBins::cut(&hardness, k);
    for (b, s) in bins.stats().iter().enumerate() {
        table.push_row(vec![
            "original".into(),
            format!("{b}"),
            format!("{}", s.population),
            format!("{:.4}", s.contribution),
        ]);
    }

    // (b)(c)(d) Self-paced subsets at the paper's three α values.
    let sampler = SelfPacedSampler { k_bins: k };
    for (name, alpha) in [("alpha=0", 0.0), ("alpha=0.1", 0.1), ("alpha=inf", 1e12)] {
        let mut rng = SeededRng::new(11);
        let outcome = sampler.sample(&hardness, alpha, n_pos, &mut rng);
        let sub: Vec<f64> = outcome.selected.iter().map(|&i| hardness[i]).collect();
        // Bin the subset with the *same* bin edges by reusing the cut
        // over the full range (subset values are a subset of hardness).
        let mut pop = vec![0usize; k];
        let mut contrib = vec![0.0; k];
        let (lo, hi) = bins.range();
        let width = (hi - lo).max(1e-12);
        for &h in &sub {
            let b = ((((h - lo) / width) * k as f64) as usize).min(k - 1);
            pop[b] += 1;
            contrib[b] += h;
        }
        for b in 0..k {
            table.push_row(vec![
                name.into(),
                format!("{b}"),
                format!("{}", pop[b]),
                format!("{:.4}", contrib[b]),
            ]);
        }
        println!(
            "{name}: selected {} of {} majority samples",
            sub.len(),
            hardness.len()
        );
    }

    table.finish("Fig. 3: self-paced under-sampling vs alpha (payment sim)");
}
