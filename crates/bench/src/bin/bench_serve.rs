//! Serving benchmark: single-row scoring versus the batched engine
//! paths on a trained SPE, plus the quantized u8 kernel and the
//! submit-path latency distribution. Results land in `BENCH_serve.json`.
//!
//! Claims under test: batching amortizes per-call dispatch overhead and
//! unlocks the thread pool (batch-64 should clear 3x single-row), and
//! the quantized kernel clears at least 3x the batched f64 path at
//! serving batch sizes while producing bit-identical scores.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin bench_serve             # full
//! cargo run --release -p spe-bench --bin bench_serve -- --quick  # small
//! cargo run --release -p spe-bench --bin bench_serve -- --smoke  # CI gate
//! ```
//!
//! `--smoke` runs the quick settings, asserts that auto-selection put
//! the engine on the quantized backend and that both backends agree
//! bit-for-bit, then writes the JSON and exits.

use spe_bench::harness::Args;
use spe_core::SelfPacedEnsembleConfig;
use spe_data::Matrix;
use spe_learners::Model;
use spe_serve::{EngineConfig, ScoreBackend, ScoringEngine};
use std::time::Instant;

fn rows_per_sec(rows: usize, secs: f64) -> f64 {
    rows as f64 / secs.max(1e-9)
}

/// Scores `x` one row at a time through plain `predict_proba` — the
/// floor an application scoring events directly on the model would pay.
fn raw_single_row_secs(model: &dyn Model, x: &Matrix) -> f64 {
    let t0 = Instant::now();
    let mut acc = 0.0;
    for i in 0..x.rows() {
        acc += model.predict_proba(&x.row_range(i..i + 1))[0];
    }
    let secs = t0.elapsed().as_secs_f64();
    assert!(acc.is_finite());
    secs
}

/// Scores `x` through the engine's zero-alloc direct path in
/// `batch`-row slices — borrowed input views, one reused output buffer.
/// `batch = 1` is the per-event serving baseline the batched calls are
/// compared against — same interface, different request shape.
fn batched_secs(engine: &ScoringEngine, x: &Matrix, batch: usize) -> f64 {
    let mut out = vec![0.0; batch.min(x.rows())];
    let t0 = Instant::now();
    let mut start = 0;
    while start < x.rows() {
        let end = (start + batch).min(x.rows());
        engine
            .score_into(x.view_rows(start..end), &mut out[..end - start])
            .unwrap_or_else(|e| panic!("{e}"));
        start = end;
    }
    t0.elapsed().as_secs_f64()
}

/// Best-of-`reps` wall time — single-core CI boxes jitter enough that
/// one cold pass can swing a throughput ratio by tens of percent.
fn best_of<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    (0..reps).map(|_| run()).fold(f64::INFINITY, f64::min)
}

fn engine_with(model: Box<dyn Model>, n_features: usize, backend: ScoreBackend) -> ScoringEngine {
    let cfg = EngineConfig::builder()
        .backend(backend)
        .build()
        .unwrap_or_else(|e| panic!("{e}"));
    ScoringEngine::start(model, n_features, cfg).unwrap_or_else(|e| panic!("{e}"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--smoke` is a bench_serve-local flag; strip it before the shared
    // harness parser (which rejects unknown arguments) sees the argv.
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    argv.retain(|a| a != "--smoke");
    let mut args = Args::try_parse_from(1, &argv)?;
    args.quick |= smoke;
    let (train_rows, score_rows, members) = if args.quick {
        (4_000, 1_000, 5)
    } else {
        (args.sized(40_000), args.sized(20_000), 10)
    };
    let train = spe_datasets::credit_fraud_sim(train_rows, 7);
    let score = spe_datasets::credit_fraud_sim(score_rows, 8);
    eprintln!(
        "bench_serve: {} train rows, {} score rows x {} features, {} members, {} thread(s)",
        train.len(),
        score.len(),
        score.x().cols(),
        members,
        spe_runtime::current_threads()
    );

    let cfg = SelfPacedEnsembleConfig::builder()
        .n_estimators(members)
        .build()?;
    let model = cfg.try_fit_dataset(&train, 42)?;
    let n_features = score.x().cols();
    // Two engines over the same trained model: the f64 reference path
    // and the u8-quantized kernel the redesigned API selects by default.
    let engine = engine_with(
        Box::new(cfg.try_fit_dataset(&train, 42)?),
        n_features,
        ScoreBackend::F64,
    );
    let quantized = engine_with(
        Box::new(cfg.try_fit_dataset(&train, 42)?),
        n_features,
        ScoreBackend::Auto,
    );
    assert_eq!(
        quantized.backend(),
        ScoreBackend::Quantized,
        "auto-selection must pick the quantized backend for a tree-shaped SPE"
    );
    // Exactness gate: the quantized kernel must reproduce the f64 path
    // bit for bit before any throughput number means anything.
    let want = engine.score_matrix(score.x())?;
    let got = quantized.score_matrix(score.x())?;
    assert_eq!(got, want, "quantized scores diverge from the f64 path");
    eprintln!("quantized backend selected; scores bit-identical to f64 path");

    let reps = if args.quick { 2 } else { 3 };

    eprintln!("scoring single-row (raw model) ...");
    let raw_single_secs = best_of(reps, || raw_single_row_secs(&model, score.x()));
    let raw_single_rps = rows_per_sec(score.len(), raw_single_secs);
    eprintln!("  {raw_single_rps:.0} rows/s");

    eprintln!("scoring single-row (engine, batch=1) ...");
    let single_secs = best_of(reps, || batched_secs(&engine, score.x(), 1));
    let single_rps = rows_per_sec(score.len(), single_secs);
    eprintln!("  {single_rps:.0} rows/s");

    let mut batch_results = Vec::new();
    let mut quantized_results = Vec::new();
    for batch in [64usize, 256, 4096] {
        eprintln!("scoring batched f64 ({batch}) ...");
        let secs = best_of(reps, || batched_secs(&engine, score.x(), batch));
        let rps = rows_per_sec(score.len(), secs);
        eprintln!("  {rps:.0} rows/s ({:.2}x single-row)", rps / single_rps);
        batch_results.push((batch, secs, rps));

        eprintln!("scoring quantized ({batch}) ...");
        let qsecs = best_of(reps, || batched_secs(&quantized, score.x(), batch));
        let qrps = rows_per_sec(score.len(), qsecs);
        eprintln!("  {qrps:.0} rows/s ({:.2}x f64 batched)", qrps / rps);
        quantized_results.push((batch, qsecs, qrps, qrps / rps.max(1e-9)));
    }

    // Submit-path micro-batching: queue rows one by one and let the
    // scheduler coalesce them, then read its latency percentiles.
    eprintln!("scoring via submit queue ...");
    let submit_rows = score.len().min(2_000);
    let t0 = Instant::now();
    let mut pending = Vec::with_capacity(submit_rows);
    for i in 0..submit_rows {
        // On QueueFull, do what a real client under backpressure does:
        // back off briefly and retry.
        loop {
            match engine.submit(score.x().row(i)) {
                Ok(p) => break pending.push(p),
                Err(spe_serve::ServeError::QueueFull { .. }) => {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                Err(e) => panic!("{e}"),
            }
        }
    }
    for p in pending {
        p.wait().unwrap_or_else(|e| panic!("{e}"));
    }
    let submit_secs = t0.elapsed().as_secs_f64();
    let submit_rps = submit_rows as f64 / submit_secs.max(1e-9);
    let stats = engine.stats();
    eprintln!(
        "  {submit_rps:.0} rows/s in {} batches, p50 {}us p99 {}us",
        stats.batches, stats.p50_batch_latency_us, stats.p99_batch_latency_us
    );

    let speedup64 = batch_results[0].2 / single_rps.max(1e-9);
    let qspeedup64 = quantized_results[0].3;
    let batches_json: Vec<String> = batch_results
        .iter()
        .map(|(batch, secs, rps)| {
            format!(
                "    {{\n      \"batch\": {batch},\n      \"seconds\": {secs:.4},\n      \"rows_per_sec\": {rps:.1},\n      \"speedup_vs_single\": {:.3}\n    }}",
                rps / single_rps.max(1e-9)
            )
        })
        .collect();
    let quantized_json: Vec<String> = quantized_results
        .iter()
        .map(|(batch, secs, rps, speedup)| {
            format!(
                "    {{\n      \"batch\": {batch},\n      \"seconds\": {secs:.4},\n      \"rows_per_sec\": {rps:.1},\n      \"speedup_vs_f64_batched\": {speedup:.3}\n    }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"score_rows\": {},\n  \"features\": {},\n  \"members\": {},\n  \"threads\": {},\n  \"single_row_raw_model\": {{\n    \"seconds\": {:.4},\n    \"rows_per_sec\": {:.1}\n  }},\n  \"single_row\": {{\n    \"seconds\": {:.4},\n    \"rows_per_sec\": {:.1}\n  }},\n  \"batched\": [\n{}\n  ],\n  \"quantized\": [\n{}\n  ],\n  \"submit_queue\": {{\n    \"rows\": {},\n    \"rows_per_sec\": {:.1},\n    \"batches\": {},\n    \"p50_batch_latency_us\": {},\n    \"p99_batch_latency_us\": {},\n    \"queue_high_water\": {}\n  }},\n  \"speedup_batch64\": {:.3},\n  \"speedup_quantized_batch64\": {:.3}\n}}\n",
        score.len(),
        score.x().cols(),
        members,
        spe_runtime::current_threads(),
        raw_single_secs,
        raw_single_rps,
        single_secs,
        single_rps,
        batches_json.join(",\n"),
        quantized_json.join(",\n"),
        submit_rows,
        submit_rps,
        stats.batches,
        stats.p50_batch_latency_us,
        stats.p99_batch_latency_us,
        stats.queue_high_water,
        speedup64,
        qspeedup64
    );
    let out = std::path::Path::new("BENCH_serve.json");
    std::fs::write(out, &json)?;
    eprintln!(
        "batch-64 speedup {speedup64:.2}x, quantized batch-64 {qspeedup64:.2}x vs f64 -> {}",
        out.display()
    );
    Ok(())
}
