//! Table VII: AUCPRC of 6 ensemble methods under missing values —
//! 0/25/50/75% of all feature cells (train AND test) replaced with 0.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin table7 [-- --runs 5 --scale 1.0]
//! ```

use spe_bench::harness::{Args, ExperimentTable};
use spe_core::SelfPacedEnsembleConfig;
use spe_data::missing::with_missing;
use spe_data::train_val_test_split;
use spe_datasets::credit_fraud_sim;
use spe_ensembles::{BalanceCascade, RusBoost, SmoteBagging, SmoteBoost, UnderBagging};
use spe_learners::traits::{Learner, SharedLearner};
use spe_learners::DecisionTreeConfig;
use spe_metrics::{aucprc, MeanStd};
use std::sync::Arc;

fn main() {
    let args = Args::parse(5);
    let n_rows = args.sized(40_000);
    let c45: SharedLearner = Arc::new(DecisionTreeConfig::c45(10));
    let n = 10;

    let methods: Vec<(&str, Box<dyn Learner>)> = vec![
        (
            "RUSBoost10",
            Box::new(RusBoost {
                n_rounds: n,
                base: Arc::clone(&c45),
            }),
        ),
        (
            "SMOTEBoost10",
            Box::new(SmoteBoost {
                n_rounds: n,
                base: Arc::clone(&c45),
                k: 5,
            }),
        ),
        (
            "UnderBagging10",
            Box::new(UnderBagging::with_base(n, Arc::clone(&c45))),
        ),
        (
            "SMOTEBagging10",
            Box::new(SmoteBagging {
                n_estimators: n,
                base: Arc::clone(&c45),
                k: 5,
            }),
        ),
        (
            "Cascade10",
            Box::new(BalanceCascade::with_base(n, Arc::clone(&c45))),
        ),
        (
            "SPE10",
            Box::new(SelfPacedEnsembleConfig::with_base(n, Arc::clone(&c45))),
        ),
    ];

    let ratios = [0.0, 0.25, 0.5, 0.75];
    let mut table = ExperimentTable::new(
        "table7",
        &[
            "MissingRatio",
            "RUSBoost10",
            "SMOTEBoost10",
            "UnderBagging10",
            "SMOTEBagging10",
            "Cascade10",
            "SPE10",
        ],
    );

    for &ratio in &ratios {
        eprintln!("[table7] missing ratio {:.0}% ...", ratio * 100.0);
        let mut aucs: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
        for run in 0..args.runs {
            let seed = 5000 + run as u64;
            let data = credit_fraud_sim(n_rows, seed);
            let split = train_val_test_split(&data, 0.6, 0.2, seed);
            // §VI-C3: values go missing in both training and test data.
            let train = with_missing(&split.train, ratio, seed);
            let test = with_missing(&split.test, ratio, seed.wrapping_add(1));
            for ((_, learner), store) in methods.iter().zip(&mut aucs) {
                let model = learner.fit(train.x(), train.y(), seed);
                store.push(aucprc(test.y(), &model.predict_proba(test.x())));
            }
        }
        let mut row = vec![format!("{:.0}%", ratio * 100.0)];
        row.extend(aucs.iter().map(|a| MeanStd::of(a).to_string()));
        table.push_row(row);
    }

    table.finish(&format!(
        "Table VII: AUCPRC under missing values, credit-fraud sim (n_rows={n_rows}, {} runs)",
        args.runs
    ));
}
