//! Fig. 8: sensitivity of SPE₁₀ to its two remaining hyper-parameters —
//! the number of hardness bins k (1..50) and the hardness function
//! (absolute error / squared error / cross entropy) — on the Credit
//! Fraud and Payment Simulation tasks.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin fig8 [-- --runs 5]
//! ```

use spe_bench::harness::{Args, ExperimentTable};
use spe_core::{HardnessFn, SelfPacedEnsembleConfig};
use spe_data::train_val_test_split;
use spe_datasets::{credit_fraud_sim, payment_sim};
use spe_learners::traits::{Model, SharedLearner};
use spe_learners::DecisionTreeConfig;
use spe_metrics::{aucprc, MeanStd};
use std::sync::Arc;

fn main() {
    let args = Args::parse(5);
    let ks: Vec<usize> = if args.quick {
        vec![1, 5, 20, 50]
    } else {
        vec![1, 2, 3, 5, 10, 15, 20, 30, 40, 50]
    };
    let hardness_fns = [
        HardnessFn::AbsoluteError,
        HardnessFn::SquaredError,
        HardnessFn::CrossEntropy,
    ];
    let base: SharedLearner = Arc::new(DecisionTreeConfig::with_depth(10));

    let mut table = ExperimentTable::new("fig8", &["Dataset", "Hardness", "k", "AUCPRC", "std"]);

    for (dataset_name, n_rows) in [
        ("Credit Fraud", args.sized(40_000)),
        ("Payment Simulation", args.sized(100_000)),
    ] {
        eprintln!("[fig8] {dataset_name} ...");
        for &h in &hardness_fns {
            for &k in &ks {
                let mut aucs = Vec::new();
                for run in 0..args.runs {
                    let seed = 8000 + run as u64;
                    let data = if dataset_name == "Credit Fraud" {
                        credit_fraud_sim(n_rows, seed)
                    } else {
                        payment_sim(n_rows, seed)
                    };
                    let split = train_val_test_split(&data, 0.6, 0.2, seed);
                    let cfg = SelfPacedEnsembleConfig::builder()
                        .n_estimators(10)
                        .base(Arc::clone(&base))
                        .k_bins(k)
                        .hardness(h)
                        .build()
                        .expect("valid fig8 config");
                    let model = cfg.fit_dataset(&split.train, seed);
                    aucs.push(aucprc(split.test.y(), &model.predict_proba(split.test.x())));
                }
                let ms = MeanStd::of(&aucs);
                table.push_row(vec![
                    dataset_name.into(),
                    h.short_name().into(),
                    format!("{k}"),
                    format!("{:.4}", ms.mean),
                    format!("{:.4}", ms.std),
                ]);
            }
        }
    }

    table.finish(&format!(
        "Fig. 8: SPE10 sensitivity to bins k and hardness function ({} runs)",
        args.runs
    ));
}
