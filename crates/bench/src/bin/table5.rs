//! Table V: 12 re-sampling methods × 5 classifiers on the simulated
//! Credit Fraud task — AUCPRC, number of training samples, and
//! re-sampling wall time.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin table5 [-- --runs 3 --scale 1.0]
//! ```

use spe_bench::harness::{Args, ExperimentTable};
use spe_bench::methods::spe_with;
use spe_data::{train_val_test_split, Dataset};
use spe_datasets::credit_fraud_sim;
use spe_learners::traits::SharedLearner;
use spe_learners::{
    AdaBoostConfig, DecisionTreeConfig, GbdtConfig, KnnConfig, LogisticRegressionConfig,
};
use spe_metrics::{aucprc, MeanStd};
use spe_sampling::{
    Adasyn, AllKnn, BorderlineSmote, EditedNearestNeighbours, NearMiss, NeighbourhoodCleaningRule,
    NoResampling, OneSideSelection, RandomOverSampler, RandomUnderSampler, Sampler, Smote,
    SmoteEnn, SmoteTomek, TomekLinks,
};
use std::sync::Arc;
use std::time::Instant;

fn samplers() -> Vec<(&'static str, &'static str, Box<dyn Sampler>)> {
    vec![
        ("No re-sampling", "ORG", Box::new(NoResampling)),
        (
            "Under-sampling",
            "RandUnder",
            Box::new(RandomUnderSampler::default()),
        ),
        ("Under-sampling", "NearMiss", Box::new(NearMiss::default())),
        (
            "Under-sampling",
            "Clean",
            Box::new(NeighbourhoodCleaningRule::default()),
        ),
        (
            "Under-sampling",
            "ENN",
            Box::new(EditedNearestNeighbours::default()),
        ),
        ("Under-sampling", "TomekLink", Box::new(TomekLinks)),
        ("Under-sampling", "AllKNN", Box::new(AllKnn::default())),
        ("Under-sampling", "OSS", Box::new(OneSideSelection)),
        (
            "Over-sampling",
            "RandOver",
            Box::new(RandomOverSampler::default()),
        ),
        ("Over-sampling", "SMOTE", Box::new(Smote::default())),
        ("Over-sampling", "ADASYN", Box::new(Adasyn::default())),
        (
            "Over-sampling",
            "BorderSMOTE",
            Box::new(BorderlineSmote::default()),
        ),
        ("Hybrid-sampling", "SMOTEENN", Box::new(SmoteEnn::default())),
        (
            "Hybrid-sampling",
            "SMOTETomek",
            Box::new(SmoteTomek::default()),
        ),
    ]
}

fn classifiers() -> Vec<(&'static str, SharedLearner)> {
    vec![
        ("LR", Arc::new(LogisticRegressionConfig::default())),
        ("KNN", Arc::new(KnnConfig::new(5))),
        ("DT", Arc::new(DecisionTreeConfig::with_depth(10))),
        ("AdaBoost10", Arc::new(AdaBoostConfig::new(10))),
        ("GBDT10", Arc::new(GbdtConfig::new(10))),
    ]
}

fn main() {
    let args = Args::parse(3);
    let n = args.sized(40_000);

    let clfs = classifiers();
    let mut table = ExperimentTable::new(
        "table5",
        &[
            "Category",
            "Method",
            "LR",
            "KNN",
            "DT",
            "AdaBoost10",
            "GBDT10",
            "#Sample",
            "Time(s)",
        ],
    );

    // Per method: AUCPRC per classifier per run, plus sample counts and
    // resampling times.
    struct Acc {
        aucs: Vec<Vec<f64>>,
        n_samples: Vec<f64>,
        times: Vec<f64>,
    }
    let methods = samplers();
    let mut accs: Vec<Acc> = methods
        .iter()
        .map(|_| Acc {
            aucs: vec![Vec::new(); clfs.len()],
            n_samples: Vec::new(),
            times: Vec::new(),
        })
        .collect();
    // SPE row accumulators.
    let mut spe_aucs: Vec<Vec<f64>> = vec![Vec::new(); clfs.len()];
    let mut spe_samples: Vec<f64> = Vec::new();

    for run in 0..args.runs {
        let seed = 3000 + run as u64;
        let data = credit_fraud_sim(n, seed);
        let split = train_val_test_split(&data, 0.6, 0.2, seed);
        eprintln!(
            "[table5] run {run}: train {} samples, |P| = {}",
            split.train.len(),
            split.train.n_positive()
        );
        for ((_, name, sampler), acc) in methods.iter().zip(&mut accs) {
            let t0 = Instant::now();
            let resampled: Dataset = sampler.resample(&split.train, seed);
            let elapsed = t0.elapsed().as_secs_f64();
            eprintln!(
                "[table5]   {name}: {} samples, {elapsed:.2}s",
                resampled.len()
            );
            acc.times.push(elapsed);
            acc.n_samples.push(resampled.len() as f64);
            for ((_, base), auc_store) in clfs.iter().zip(&mut acc.aucs) {
                let model = base.fit(resampled.x(), resampled.y(), seed);
                auc_store.push(aucprc(split.test.y(), &model.predict_proba(split.test.x())));
            }
        }
        // SPE10 row (under-sampling + ensemble).
        spe_samples.push((2 * split.train.n_positive() * 10) as f64);
        for ((_, base), auc_store) in clfs.iter().zip(&mut spe_aucs) {
            let fit = spe_with(10, Arc::clone(base));
            let model = fit(&split.train, seed);
            auc_store.push(aucprc(split.test.y(), &model.predict_proba(split.test.x())));
        }
    }

    for ((category, name, _), acc) in methods.iter().zip(&accs) {
        let mut row = vec![(*category).to_string(), (*name).to_string()];
        row.extend(acc.aucs.iter().map(|a| MeanStd::of(a).to_string()));
        row.push(format!("{:.0}", MeanStd::of(&acc.n_samples).mean));
        row.push(format!("{:.2}", MeanStd::of(&acc.times).mean));
        table.push_row(row);
    }
    let mut row = vec!["Under-sampling + Ensemble".to_string(), "SPE10".to_string()];
    row.extend(spe_aucs.iter().map(|a| MeanStd::of(a).to_string()));
    row.push(format!("{:.0}x10", MeanStd::of(&spe_samples).mean / 10.0));
    row.push("(per-member, see bench `resampling`)".to_string());
    table.push_row(row);

    table.finish(&format!(
        "Table V: AUCPRC of re-sampling methods on credit-fraud sim (n={n}, {} runs)",
        args.runs
    ));
}
