//! Fig. 4: dumps one checkerboard dataset (the paper's illustration of
//! the synthetic task) to CSV for plotting.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin fig4
//! ```

use spe_bench::harness::{experiments_dir, Args};
use spe_data::csv::write_dataset;
use spe_datasets::{checkerboard, CheckerboardConfig};

fn main() {
    let args = Args::parse(1);
    let cfg = CheckerboardConfig {
        n_minority: args.sized(1_000),
        n_majority: args.sized(10_000),
        ..CheckerboardConfig::default()
    };
    let data = checkerboard(&cfg, 42);
    let path = experiments_dir().join("fig4_checkerboard.csv");
    write_dataset(&path, &data).expect("write dataset CSV");
    println!(
        "Fig. 4: checkerboard dataset (|P|={}, |N|={}, cov={}) → {}",
        data.n_positive(),
        data.n_negative(),
        cfg.cov,
        path.display()
    );
}
