//! Online drift-recovery benchmark: a served SPE incumbent faces a
//! mid-stream checkerboard parity flip while the `spe-online` retrain
//! loop watches the labeled feedback. Measures AUCPRC on the drifted
//! concept before/at/after the flip and the **time to recovery** — the
//! wall-clock from the flip entering the loop until the live engine's
//! AUCPRC on the new concept clears the recovery bar — at 1 and 8
//! retrain threads. Results merge into `BENCH_train.json` as an
//! `online` section.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin bench_online             # full
//! cargo run --release -p spe-bench --bin bench_online -- --smoke  # CI gate
//! ```
//!
//! `--smoke` runs the single-thread configuration only and asserts the
//! recovery actually happened (degraded AUCPRC below 0.4, recovered
//! above the 0.7 bar), so CI catches a broken loop, not just a schema.

use spe_bench::harness::merge_bench_section;
use spe_core::SelfPacedEnsembleConfig;
use spe_datasets::{concept_dataset, DriftStreamConfig, DriftingStream};
use spe_metrics::aucprc;
use spe_online::{DriftConfig, DriftMetric, LiveModel, OnlineConfig, RetrainLoop, WindowConfig};
use spe_serve::{EngineConfig, ScoringEngine};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Live AUCPRC on the drifted concept that counts as recovered.
const RECOVERY_BAR: f64 = 0.7;
const RUN_DEADLINE: Duration = Duration::from_secs(120);

struct Opts {
    smoke: bool,
    members: usize,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        smoke: false,
        members: 8,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => o.smoke = true,
            "--members" => {
                o.members = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--members needs an integer")?;
            }
            other => {
                return Err(format!(
                    "unknown argument {other}; supported: --smoke --members N"
                ))
            }
        }
    }
    Ok(o)
}

fn stream_cfg() -> DriftStreamConfig {
    DriftStreamConfig {
        rows: 500_000,
        features: 4,
        minority_fraction: 0.15,
        batch_rows: 250,
        grid: 4,
        cov: 0.01,
        drift_at: 1_000,
    }
}

fn online_config(threads: usize, members: usize) -> OnlineConfig {
    OnlineConfig {
        window: WindowConfig {
            majority_capacity: 1_200,
            minority_capacity: 300,
        },
        holdout: WindowConfig {
            majority_capacity: 400,
            minority_capacity: 80,
        },
        holdout_every: 4,
        drift: DriftConfig {
            metric: DriftMetric::Aucprc,
            batch: 100,
            reference_batches: 2,
            threshold: 0.15,
            patience: 1,
        },
        min_rows: 300,
        retrain_interval: Some(Duration::from_millis(300)),
        min_improvement: 0.01,
        members,
        train_budget: Some(Duration::from_secs(20)),
        threads: Some(threads),
        seed: 99,
    }
}

struct RunResult {
    auc_before: f64,
    auc_degraded: f64,
    auc_recovered: f64,
    recovery_ms: u128,
    retrains_attempted: u64,
    retrains_promoted: u64,
    drift_events: u64,
}

/// One drift-recovery episode at the given retrain-thread count.
fn run_once(threads: usize, members: usize) -> Result<RunResult, String> {
    let cfg = stream_cfg();
    let train_a = concept_dataset(&cfg, 11, 4_000, false);
    let test_a = concept_dataset(&cfg, 21, 2_000, false);
    let test_b = concept_dataset(&cfg, 22, 2_000, true);
    let incumbent = SelfPacedEnsembleConfig::new(members).fit_dataset(&train_a, 12);
    let engine = Arc::new(
        ScoringEngine::start(Box::new(incumbent), cfg.features, EngineConfig::default())
            .map_err(|e| e.to_string())?,
    );
    let score = |x: &spe_data::Matrix| engine.score_matrix(x).map_err(|e| e.to_string());
    let auc_before = aucprc(test_a.y(), &score(test_a.x())?);
    let auc_degraded = aucprc(test_b.y(), &score(test_b.x())?);

    let host: Arc<dyn LiveModel> = Arc::new(Arc::clone(&engine));
    let retrain = RetrainLoop::start(host, cfg.features, online_config(threads, members))
        .map_err(|e| e.to_string())?;

    // Feed the stream; the clock starts when the flip enters the loop.
    let mut stream = DriftingStream::new(cfg, 23);
    let deadline = Instant::now() + RUN_DEADLINE;
    let mut drift_fed: Option<Instant> = None;
    let (auc_recovered, recovery_ms) = loop {
        if Instant::now() > deadline {
            return Err(format!(
                "no recovery within {RUN_DEADLINE:?}; status: {:?}",
                retrain.status()
            ));
        }
        if let Some((x, y)) = stream.next_batch() {
            retrain.ingest(x, y).map_err(|e| e.to_string())?;
        }
        if drift_fed.is_none() && stream.position() > cfg.drift_at {
            drift_fed = Some(Instant::now());
        }
        if let Some(flip) = drift_fed {
            let auc = aucprc(test_b.y(), &score(test_b.x())?);
            if auc >= RECOVERY_BAR {
                break (auc, flip.elapsed().as_millis());
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let status = retrain.status();
    Ok(RunResult {
        auc_before,
        auc_degraded,
        auc_recovered,
        recovery_ms,
        retrains_attempted: status.retrains_attempted,
        retrains_promoted: status.retrains_promoted,
        drift_events: status.drift_events,
    })
}

fn run_json(r: &RunResult) -> String {
    format!(
        "{{\"auc_before\":{:.4},\"auc_degraded\":{:.4},\"auc_recovered\":{:.4},\"recovery_ms\":{},\"retrains_attempted\":{},\"retrains_promoted\":{},\"drift_events\":{}}}",
        r.auc_before,
        r.auc_degraded,
        r.auc_recovered,
        r.recovery_ms,
        r.retrains_attempted,
        r.retrains_promoted,
        r.drift_events
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_opts()?;
    let members = if opts.smoke { 5 } else { opts.members };
    let thread_counts: &[usize] = if opts.smoke { &[1] } else { &[1, 8] };

    let mut entries = Vec::new();
    for &threads in thread_counts {
        eprintln!("bench_online: {threads} retrain thread(s), {members} members");
        let r = run_once(threads, members)?;
        eprintln!(
            "  AUCPRC before {:.3} -> degraded {:.3} -> recovered {:.3} in {} ms \
             ({} retrains, {} promoted, {} drift events)",
            r.auc_before,
            r.auc_degraded,
            r.auc_recovered,
            r.recovery_ms,
            r.retrains_attempted,
            r.retrains_promoted,
            r.drift_events
        );
        if opts.smoke {
            // The smoke gate checks the loop did real work, not just
            // that the schema landed.
            assert!(
                r.auc_degraded < 0.4,
                "flip must degrade the incumbent: {:.3}",
                r.auc_degraded
            );
            assert!(r.retrains_promoted >= 1, "no retrain was promoted");
            assert!(r.drift_events >= 1, "drift never fired");
        }
        entries.push(format!("\"{threads}\":{}", run_json(&r)));
    }

    let cfg = stream_cfg();
    let section = format!(
        "{{\"features\":{},\"members\":{},\"recovery_bar\":{RECOVERY_BAR},\"threads\":{{{}}}}}",
        cfg.features,
        members,
        entries.join(",")
    );
    let out = Path::new("BENCH_train.json");
    merge_bench_section(out, "online", &section)?;
    eprintln!(
        "bench_online: merged `online` section into {}",
        out.display()
    );
    Ok(())
}
