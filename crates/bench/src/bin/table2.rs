//! Table II: generalized AUCPRC on the checkerboard dataset — 6
//! imbalance methods × 8 canonical classifiers.
//!
//! ```sh
//! cargo run --release -p spe-bench --bin table2 [-- --runs 10 --scale 1.0]
//! ```

use spe_bench::harness::{Args, ExperimentTable};
use spe_bench::methods::paper_method_lineup;
use spe_data::train_val_test_split;
use spe_datasets::{checkerboard, CheckerboardConfig};
use spe_learners::traits::SharedLearner;
use spe_learners::{
    AdaBoostConfig, BaggingConfig, DecisionTreeConfig, GbdtConfig, KnnConfig, MlpConfig,
    RandomForestConfig, SvmConfig,
};
use spe_metrics::MeanStd;
use std::sync::Arc;

fn main() {
    let args = Args::parse(10);
    // Paper hyper-parameters (Table II, "Hyper" column).
    let classifiers: Vec<(&str, &str, SharedLearner)> = vec![
        ("KNN", "k_neighbors=5", Arc::new(KnnConfig::new(5))),
        (
            "DT",
            "max_depth=10",
            Arc::new(DecisionTreeConfig::with_depth(10)),
        ),
        (
            "MLP",
            "hidden_unit=128",
            Arc::new(MlpConfig::with_hidden(128)),
        ),
        ("SVM", "C=1000", Arc::new(SvmConfig::rbf(1000.0, 1.0))),
        (
            "AdaBoost10",
            "n_estimator=10",
            Arc::new(AdaBoostConfig::new(10)),
        ),
        (
            "Bagging10",
            "n_estimator=10",
            Arc::new(BaggingConfig::new(10)),
        ),
        (
            "RandForest10",
            "n_estimator=10",
            Arc::new(RandomForestConfig::new(10)),
        ),
        ("GBDT10", "boost_rounds=10", Arc::new(GbdtConfig::new(10))),
    ];

    let cfg = CheckerboardConfig {
        n_minority: args.sized(1_000),
        n_majority: args.sized(10_000),
        ..CheckerboardConfig::default()
    };

    let mut table = ExperimentTable::new(
        "table2",
        &[
            "Model",
            "Hyper",
            "RandUnder",
            "Clean",
            "SMOTE",
            "Easy10",
            "Cascade10",
            "SPE10",
        ],
    );

    for (model_name, hyper, base) in classifiers {
        eprintln!("[table2] {model_name} ...");
        let methods = paper_method_lineup(base, 10, true);
        let mut cells: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
        for run in 0..args.runs {
            let seed = 1000 + run as u64;
            let data = checkerboard(&cfg, seed);
            let split = train_val_test_split(&data, 0.6, 0.2, seed);
            for ((_, fit), cell) in methods.iter().zip(&mut cells) {
                let model = fit(&split.train, seed);
                let probs = model.predict_proba(split.test.x());
                cell.push(spe_metrics::aucprc(split.test.y(), &probs));
            }
        }
        let mut row = vec![model_name.to_string(), hyper.to_string()];
        row.extend(cells.iter().map(|c| MeanStd::of(c).to_string()));
        table.push_row(row);
    }

    table.finish(&format!(
        "Table II: AUCPRC on checkerboard (|P|={}, |N|={}, {} runs)",
        cfg.n_minority, cfg.n_majority, args.runs
    ));
}
