//! CLI args, table rendering, CSV output and cross-validation for
//! experiment binaries.

use crate::methods::FitFn;
use spe_data::{stratified_k_fold, Dataset, SanitizePolicy, Sanitizer, SpeError};
use spe_metrics::MetricSet;
use std::path::PathBuf;

/// Common experiment arguments.
#[derive(Clone, Debug)]
pub struct Args {
    /// Independent repetitions.
    pub runs: usize,
    /// Dataset-size multiplier.
    pub scale: f64,
    /// Reduced settings for smoke runs.
    pub quick: bool,
}

impl Args {
    /// Parses `--runs N`, `--scale F` and `--quick` from `std::env`.
    /// `default_runs` differs per experiment (heavier ones default
    /// lower; the paper's protocol is 10).
    ///
    /// Exits the process with a friendly message (status 2) on a bad
    /// command line; use [`Args::try_parse_from`] for an error value.
    pub fn parse(default_runs: usize) -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::try_parse_from(default_runs, &argv).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!("usage: [--runs N] [--scale F] [--quick]");
            std::process::exit(2);
        })
    }

    /// Parses experiment arguments from an explicit argv slice,
    /// reporting problems as [`SpeError::InvalidConfig`] instead of
    /// panicking.
    pub fn try_parse_from(default_runs: usize, argv: &[String]) -> Result<Self, SpeError> {
        let mut out = Self {
            runs: default_runs,
            scale: 1.0,
            quick: false,
        };
        let mut args = argv.iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--runs" => {
                    out.runs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| SpeError::InvalidConfig("--runs needs an integer".into()))?;
                }
                "--scale" => {
                    out.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| SpeError::InvalidConfig("--scale needs a number".into()))?;
                }
                "--quick" => out.quick = true,
                other => {
                    return Err(SpeError::InvalidConfig(format!(
                        "unknown argument {other}; supported: --runs N --scale F --quick"
                    )));
                }
            }
        }
        if out.runs == 0 {
            return Err(SpeError::InvalidConfig("--runs must be positive".into()));
        }
        // NaN must fail too, so test the accepting range rather than `<= 0`.
        if out.scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(SpeError::InvalidConfig("--scale must be positive".into()));
        }
        Ok(out)
    }

    /// Applies the size multiplier to a default sample count.
    pub fn sized(&self, default: usize) -> usize {
        (((default as f64) * self.scale).round() as usize).max(100)
    }
}

/// Stratified k-fold cross-validation, folds trained in parallel on the
/// shared runtime.
///
/// Returns one [`MetricSet`] per fold, in fold order. Each fold trains
/// on its own seed forked from `seed` with [`spe_runtime::fork_seed`],
/// so the result is bit-identical for every thread count (including
/// `SPE_THREADS=1`).
pub fn cross_validate(fit: &FitFn, data: &Dataset, k: usize, seed: u64) -> Vec<MetricSet> {
    try_cross_validate(fit, data, k, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant [`cross_validate`]: rejects dirty input up front with
/// a typed error and converts a panic inside any fold into
/// [`SpeError::Panicked`] naming the fold, instead of unwinding through
/// (and aborting) the whole benchmark run.
pub fn try_cross_validate(
    fit: &FitFn,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Result<Vec<MetricSet>, SpeError> {
    // Benchmarks never want silent repair: a non-finite cell in a
    // generated dataset is a bug upstream, so always Reject.
    Sanitizer::new(SanitizePolicy::Reject).sanitize(data)?;
    let folds = stratified_k_fold(data, k, seed);
    let fold_seeds = spe_runtime::fork_seeds(seed, folds.len());
    spe_runtime::try_par_map_indexed(folds.len(), |i| {
        let (train, test) = &folds[i];
        let model = fit(train, fold_seeds[i]);
        MetricSet::evaluate(test.y(), &model.predict_proba(test.x()))
    })
    .into_iter()
    .enumerate()
    .map(|(i, r)| {
        r.map_err(|p| SpeError::Panicked {
            context: format!("cv fold {i}"),
            message: p.message,
        })
    })
    .collect()
}

/// Peak resident set size of this process in bytes — the high-water
/// mark over the whole process lifetime (`VmHWM` from
/// `/proc/self/status`). Returns 0 on platforms without procfs, so
/// callers should treat 0 as "unknown", not "tiny".
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kib: u64 = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return kib * 1024;
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Merges `"key": section` into the top-level object of a benchmark
/// JSON file, replacing any existing entry for `key` (so re-running a
/// section-producing bench is idempotent) and creating the file if it
/// does not exist. `section` must itself be a JSON value.
///
/// This is string surgery, not a JSON parser: it assumes the file is
/// the object our benches write (brace-free strings, `key` unique in
/// the document).
pub fn merge_bench_section(
    path: &std::path::Path,
    key: &str,
    section: &str,
) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| String::from("{}"));
    let base = remove_json_key(&existing, key);
    let trimmed = base.trim_end();
    let json = match trimmed.strip_suffix('}') {
        Some(head) => {
            let head = head.trim_end();
            let sep = if head.ends_with('{') { "" } else { "," };
            format!("{head}{sep}\n  \"{key}\": {section}\n}}\n")
        }
        None => format!("{{\n  \"{key}\": {section}\n}}\n"),
    };
    std::fs::write(path, json)
}

/// Removes `"key": <value>` (object or scalar) plus its separating
/// comma from a JSON document. Returns the input unchanged when the
/// key is absent.
fn remove_json_key(json: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let Some(start) = json.find(&needle) else {
        return json.to_string();
    };
    let bytes = json.as_bytes();
    let mut i = start + needle.len();
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    let mut end = i;
    if end < bytes.len() && bytes[end] == b'{' {
        let mut depth = 0usize;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
    } else {
        while end < bytes.len() && !matches!(bytes[end], b',' | b'}' | b'\n') {
            end += 1;
        }
    }
    // Take the comma that separated this entry from its neighbour:
    // the trailing one if the entry wasn't last, else the leading one.
    let mut head_cut = start;
    let mut j = end;
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b',' {
        end = j + 1;
        // Also take the entry's own indentation and leading newline so
        // removal doesn't leave a blank line behind.
        while head_cut > 0 && matches!(bytes[head_cut - 1], b' ' | b'\t') {
            head_cut -= 1;
        }
        if head_cut > 0 && bytes[head_cut - 1] == b'\n' {
            head_cut -= 1;
        }
    } else {
        let mut k = start;
        while k > 0 && bytes[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k > 0 && bytes[k - 1] == b',' {
            head_cut = k - 1;
        }
    }
    format!("{}{}", &json[..head_cut], &json[end..])
}

/// Directory for experiment CSVs (`target/experiments`).
pub fn experiments_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; workspace target is two up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("target").join("experiments")
}

/// An experiment result table: fixed columns, appendable string rows,
/// renderable to stdout and CSV.
#[derive(Clone, Debug)]
pub struct ExperimentTable {
    id: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates a table with the experiment id (used as the CSV name).
    pub fn new(id: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(j, h)| {
                self.rows
                    .iter()
                    .map(|r| r[j].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            println!("{}", joined.join("  "));
        };
        line(&self.headers);
        for r in &self.rows {
            line(r);
        }
    }

    /// Writes `target/experiments/<id>.csv`.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let path = experiments_dir().join(format!("{}.csv", self.id));
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        spe_data::csv::write_csv_strings(&path, &headers, &self.rows)?;
        Ok(path)
    }

    /// Prints and saves, logging the CSV path.
    pub fn finish(&self, title: &str) {
        self.print(title);
        match self.save() {
            Ok(p) => println!("→ saved {}", p.display()),
            Err(e) => eprintln!("! failed to save CSV: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip() {
        let mut t = ExperimentTable::new("unit-test-table", &["a", "b"]);
        t.push_row(vec!["1".into(), "x".into()]);
        t.push_row(vec!["22".into(), "yy".into()]);
        let path = t.save().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert!(text.contains("22,yy"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = ExperimentTable::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn cross_validate_runs_every_fold_deterministically() {
        use crate::methods::learner_fit;
        use spe_data::{Matrix, SeededRng};
        use spe_learners::DecisionTreeConfig;

        let mut rng = SeededRng::new(5);
        let mut x = Matrix::with_capacity(240, 2);
        let mut y = Vec::new();
        for _ in 0..200 {
            x.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]);
            y.push(0);
        }
        for _ in 0..40 {
            x.push_row(&[rng.normal(2.0, 0.5), rng.normal(2.0, 0.5)]);
            y.push(1);
        }
        let data = Dataset::new(x, y);

        let fit = learner_fit(DecisionTreeConfig::with_depth(3));
        let a = cross_validate(&fit, &data, 4, 9);
        assert_eq!(a.len(), 4);
        for m in &a {
            assert!(m.aucprc > 0.0);
        }
        // Same seed → bit-identical metrics regardless of scheduling.
        let b = cross_validate(&fit, &data, 4, 9);
        for (ma, mb) in a.iter().zip(&b) {
            assert_eq!(ma.aucprc.to_bits(), mb.aucprc.to_bits());
            assert_eq!(ma.f1.to_bits(), mb.f1.to_bits());
        }
    }

    #[test]
    fn try_cross_validate_reports_fold_panics_and_dirty_data() {
        use spe_data::Matrix;
        use spe_learners::traits::Model;

        let mut x = Matrix::with_capacity(40, 1);
        let mut y = Vec::new();
        for i in 0..40 {
            x.push_row(&[i as f64]);
            y.push(u8::from(i % 4 == 0));
        }
        let data = Dataset::new(x, y);

        let boom: FitFn = Box::new(|_train: &Dataset, _seed: u64| -> Box<dyn Model> {
            panic!("fold exploded");
        });
        let err = try_cross_validate(&boom, &data, 4, 1).unwrap_err();
        assert!(matches!(err, SpeError::Panicked { .. }));
        assert!(err.to_string().contains("cv fold"));
        assert!(err.to_string().contains("fold exploded"));

        let mut dirty = data.clone();
        dirty.x_mut().row_mut(3)[0] = f64::NAN;
        let fit: FitFn = Box::new(|_train: &Dataset, _seed: u64| -> Box<dyn Model> {
            unreachable!("sanitizer must reject before any fold runs")
        });
        assert_eq!(
            try_cross_validate(&fit, &dirty, 4, 1).unwrap_err(),
            SpeError::NonFiniteFeature { row: 3, col: 0 }
        );
    }

    #[test]
    fn try_parse_from_reports_bad_args() {
        let ok = Args::try_parse_from(3, &["--runs".into(), "5".into(), "--quick".into()]).unwrap();
        assert_eq!(ok.runs, 5);
        assert!(ok.quick);
        for argv in [
            vec!["--runs".to_string()],
            vec!["--runs".to_string(), "abc".to_string()],
            vec!["--scale".to_string(), "0".to_string()],
            vec!["--bogus".to_string()],
        ] {
            assert!(
                matches!(
                    Args::try_parse_from(3, &argv),
                    Err(SpeError::InvalidConfig(_))
                ),
                "{argv:?}"
            );
        }
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            // Any live process has touched at least a megabyte.
            assert!(rss > 1 << 20, "VmHWM parse broke: {rss}");
        }
    }

    #[test]
    fn merge_bench_section_creates_appends_and_replaces() {
        let dir = std::env::temp_dir().join(format!("spe-merge-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");

        // Create from nothing.
        merge_bench_section(&path, "alpha", "{\n    \"v\": 1\n  }").unwrap();
        let t = std::fs::read_to_string(&path).unwrap();
        assert!(t.contains("\"alpha\""), "{t}");

        // Append a second key, keep the first.
        merge_bench_section(&path, "beta", "{\n    \"v\": 2\n  }").unwrap();
        let t = std::fs::read_to_string(&path).unwrap();
        assert!(t.contains("\"alpha\"") && t.contains("\"beta\""), "{t}");

        // Replace, not duplicate, on re-run.
        merge_bench_section(&path, "alpha", "{\n    \"v\": 9\n  }").unwrap();
        let t = std::fs::read_to_string(&path).unwrap();
        assert_eq!(t.matches("\"alpha\"").count(), 1, "{t}");
        assert!(t.contains("\"v\": 9") && t.contains("\"v\": 2"), "{t}");
        // Still a balanced object.
        assert_eq!(
            t.matches('{').count(),
            t.matches('}').count(),
            "unbalanced braces: {t}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_json_key_handles_first_middle_last() {
        let doc = "{\n  \"a\": { \"x\": 1 },\n  \"b\": 2,\n  \"c\": { \"y\": { \"z\": 3 } }\n}\n";
        for key in ["a", "b", "c"] {
            let out = remove_json_key(doc, key);
            assert!(!out.contains(&format!("\"{key}\"")), "{key}: {out}");
            assert_eq!(out.matches('{').count(), out.matches('}').count(), "{out}");
            assert!(
                !out.contains("\n  \n") && !out.contains("\n\n"),
                "removal left a blank line: {out:?}"
            );
        }
        assert_eq!(remove_json_key(doc, "missing"), doc);
    }

    #[test]
    fn sized_scales_and_floors() {
        let a = Args {
            runs: 1,
            scale: 0.5,
            quick: false,
        };
        assert_eq!(a.sized(10_000), 5_000);
        assert_eq!(a.sized(50), 100);
    }
}
