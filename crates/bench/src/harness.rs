//! CLI args, table rendering, CSV output and cross-validation for
//! experiment binaries.

use crate::methods::FitFn;
use spe_data::{stratified_k_fold, Dataset};
use spe_metrics::MetricSet;
use std::path::PathBuf;

/// Common experiment arguments.
#[derive(Clone, Debug)]
pub struct Args {
    /// Independent repetitions.
    pub runs: usize,
    /// Dataset-size multiplier.
    pub scale: f64,
    /// Reduced settings for smoke runs.
    pub quick: bool,
}

impl Args {
    /// Parses `--runs N`, `--scale F` and `--quick` from `std::env`.
    /// `default_runs` differs per experiment (heavier ones default
    /// lower; the paper's protocol is 10).
    pub fn parse(default_runs: usize) -> Self {
        let mut out = Self {
            runs: default_runs,
            scale: 1.0,
            quick: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--runs" => {
                    out.runs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--runs needs an integer");
                }
                "--scale" => {
                    out.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a number");
                }
                "--quick" => out.quick = true,
                other => panic!("unknown argument {other}; supported: --runs N --scale F --quick"),
            }
        }
        assert!(out.runs > 0, "--runs must be positive");
        assert!(out.scale > 0.0, "--scale must be positive");
        out
    }

    /// Applies the size multiplier to a default sample count.
    pub fn sized(&self, default: usize) -> usize {
        (((default as f64) * self.scale).round() as usize).max(100)
    }
}

/// Stratified k-fold cross-validation, folds trained in parallel on the
/// shared runtime.
///
/// Returns one [`MetricSet`] per fold, in fold order. Each fold trains
/// on its own seed forked from `seed` with [`spe_runtime::fork_seed`],
/// so the result is bit-identical for every thread count (including
/// `SPE_THREADS=1`).
pub fn cross_validate(fit: &FitFn, data: &Dataset, k: usize, seed: u64) -> Vec<MetricSet> {
    let folds = stratified_k_fold(data, k, seed);
    let fold_seeds = spe_runtime::fork_seeds(seed, folds.len());
    spe_runtime::par_map_indexed(folds.len(), |i| {
        let (train, test) = &folds[i];
        let model = fit(train, fold_seeds[i]);
        MetricSet::evaluate(test.y(), &model.predict_proba(test.x()))
    })
}

/// Directory for experiment CSVs (`target/experiments`).
pub fn experiments_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; workspace target is two up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("target").join("experiments")
}

/// An experiment result table: fixed columns, appendable string rows,
/// renderable to stdout and CSV.
#[derive(Clone, Debug)]
pub struct ExperimentTable {
    id: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates a table with the experiment id (used as the CSV name).
    pub fn new(id: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(j, h)| {
                self.rows
                    .iter()
                    .map(|r| r[j].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            println!("{}", joined.join("  "));
        };
        line(&self.headers);
        for r in &self.rows {
            line(r);
        }
    }

    /// Writes `target/experiments/<id>.csv`.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let path = experiments_dir().join(format!("{}.csv", self.id));
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        spe_data::csv::write_csv_strings(&path, &headers, &self.rows)?;
        Ok(path)
    }

    /// Prints and saves, logging the CSV path.
    pub fn finish(&self, title: &str) {
        self.print(title);
        match self.save() {
            Ok(p) => println!("→ saved {}", p.display()),
            Err(e) => eprintln!("! failed to save CSV: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip() {
        let mut t = ExperimentTable::new("unit-test-table", &["a", "b"]);
        t.push_row(vec!["1".into(), "x".into()]);
        t.push_row(vec!["22".into(), "yy".into()]);
        let path = t.save().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert!(text.contains("22,yy"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = ExperimentTable::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn cross_validate_runs_every_fold_deterministically() {
        use crate::methods::learner_fit;
        use spe_data::{Matrix, SeededRng};
        use spe_learners::DecisionTreeConfig;

        let mut rng = SeededRng::new(5);
        let mut x = Matrix::with_capacity(240, 2);
        let mut y = Vec::new();
        for _ in 0..200 {
            x.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]);
            y.push(0);
        }
        for _ in 0..40 {
            x.push_row(&[rng.normal(2.0, 0.5), rng.normal(2.0, 0.5)]);
            y.push(1);
        }
        let data = Dataset::new(x, y);

        let fit = learner_fit(DecisionTreeConfig::with_depth(3));
        let a = cross_validate(&fit, &data, 4, 9);
        assert_eq!(a.len(), 4);
        for m in &a {
            assert!(m.aucprc > 0.0);
        }
        // Same seed → bit-identical metrics regardless of scheduling.
        let b = cross_validate(&fit, &data, 4, 9);
        for (ma, mb) in a.iter().zip(&b) {
            assert_eq!(ma.aucprc.to_bits(), mb.aucprc.to_bits());
            assert_eq!(ma.f1.to_bits(), mb.f1.to_bits());
        }
    }

    #[test]
    fn sized_scales_and_floors() {
        let a = Args {
            runs: 1,
            scale: 0.5,
            quick: false,
        };
        assert_eq!(a.sized(10_000), 5_000);
        assert_eq!(a.sized(50), 100);
    }
}
