//! Experiment harness: shared plumbing for the one-binary-per-table/
//! figure regenerators (see `src/bin/`) and the Criterion micro-benches.
//!
//! Every binary accepts:
//!
//! - `--runs N` — independent seeded repetitions (tables report
//!   mean ± std, like the paper's "10 independent runs"),
//! - `--scale F` — multiplies the default dataset sizes,
//! - `--quick` — cut-down settings for smoke runs.
//!
//! Outputs go to stdout (aligned text, same rows/columns as the paper)
//! and `target/experiments/<id>.csv`.

pub mod harness;
pub mod methods;

pub use harness::{Args, ExperimentTable};
pub use methods::{spe_with, underbag_with, FitFn};
