//! Classification hardness functions (paper §IV and §VI-C4).
//!
//! A hardness function must be *decomposable*: the dataset-level error is
//! the sum of per-sample values. The paper evaluates three and finds SPE
//! robust to the choice (Fig. 8); Absolute Error is the default.

/// Decomposable per-sample error functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HardnessFn {
    /// `|F(x) − y|` (the paper's default).
    AbsoluteError,
    /// `(F(x) − y)²` (Brier score).
    SquaredError,
    /// `−y·log F(x) − (1−y)·log(1−F(x))`, clamped for stability.
    CrossEntropy,
}

impl HardnessFn {
    /// Hardness of one sample given the ensemble probability `proba` of
    /// the positive class and the true label.
    #[inline]
    pub fn eval(self, proba: f64, label: u8) -> f64 {
        let y = f64::from(label);
        match self {
            HardnessFn::AbsoluteError => (proba - y).abs(),
            HardnessFn::SquaredError => (proba - y) * (proba - y),
            HardnessFn::CrossEntropy => {
                let p = proba.clamp(1e-12, 1.0 - 1e-12);
                -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
            }
        }
    }

    /// K-way hardness of one sample given the ensemble probability
    /// `p_true` assigned to the sample's *own* class: the sample is
    /// treated as the "positive" of its class and every other class as
    /// the rest, i.e. `eval(1 − p_true, 0)`. For `k = 2` a majority
    /// sample with positive-class probability `p` has
    /// `p_true = 1 − p`, so this reduces bit-exactly to `eval(p, 0)` —
    /// the binary loop's hardness.
    #[inline]
    pub fn eval_class(self, p_true: f64) -> f64 {
        self.eval(1.0 - p_true, 0)
    }

    /// Hardness of a batch.
    pub fn eval_batch(self, probas: &[f64], labels: &[u8]) -> Vec<f64> {
        assert_eq!(probas.len(), labels.len(), "length mismatch");
        probas
            .iter()
            .zip(labels)
            .map(|(&p, &l)| self.eval(p, l))
            .collect()
    }

    /// Short name used in Fig. 8 ("AE" / "SE" / "CE").
    pub fn short_name(self) -> &'static str {
        match self {
            HardnessFn::AbsoluteError => "AE",
            HardnessFn::SquaredError => "SE",
            HardnessFn::CrossEntropy => "CE",
        }
    }

    /// Whether values are bounded in `[0, 1]` (AE/SE) or unbounded (CE).
    pub fn bounded(self) -> bool {
        !matches!(self, HardnessFn::CrossEntropy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_zero_hardness() {
        for h in [
            HardnessFn::AbsoluteError,
            HardnessFn::SquaredError,
            HardnessFn::CrossEntropy,
        ] {
            assert!(h.eval(1.0, 1) < 1e-9, "{h:?}");
            assert!(h.eval(0.0, 0) < 1e-9, "{h:?}");
        }
    }

    #[test]
    fn wrong_prediction_is_hard() {
        assert!((HardnessFn::AbsoluteError.eval(0.0, 1) - 1.0).abs() < 1e-12);
        assert!((HardnessFn::SquaredError.eval(0.0, 1) - 1.0).abs() < 1e-12);
        assert!(HardnessFn::CrossEntropy.eval(0.0, 1) > 10.0);
    }

    #[test]
    fn ae_vs_se_ordering() {
        // For errors < 1, SE < AE; both rank samples identically.
        let ae = HardnessFn::AbsoluteError.eval(0.7, 0);
        let se = HardnessFn::SquaredError.eval(0.7, 0);
        assert!((ae - 0.7).abs() < 1e-12);
        assert!((se - 0.49).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_clamps_extremes() {
        let h = HardnessFn::CrossEntropy.eval(1.0, 0);
        assert!(h.is_finite());
        assert!(h > 20.0);
    }

    #[test]
    fn batch_matches_scalar() {
        let p = [0.1, 0.9, 0.5];
        let y = [0, 1, 1];
        let batch = HardnessFn::SquaredError.eval_batch(&p, &y);
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(b, HardnessFn::SquaredError.eval(p[i], y[i]));
        }
    }

    #[test]
    fn class_hardness_reduces_to_binary_majority_hardness() {
        for h in [
            HardnessFn::AbsoluteError,
            HardnessFn::SquaredError,
            HardnessFn::CrossEntropy,
        ] {
            for p in [0.0, 0.1, 0.5, 0.93, 1.0] {
                // Majority sample (label 0) scored p for the positive
                // class holds p_true = 1 - p of its own class. Equal up
                // to the 1 - (1 - p) rounding of the complement.
                assert!(
                    (h.eval_class(1.0 - p) - h.eval(p, 0)).abs() < 1e-12,
                    "{h:?} p={p}"
                );
            }
            // Confident-and-right is easy, confident-and-wrong is hard.
            assert!(h.eval_class(0.99) < h.eval_class(0.01), "{h:?}");
        }
    }

    #[test]
    fn metadata() {
        assert_eq!(HardnessFn::AbsoluteError.short_name(), "AE");
        assert!(HardnessFn::AbsoluteError.bounded());
        assert!(!HardnessFn::CrossEntropy.bounded());
    }
}
