//! Per-member training outcomes for a fault-tolerant SPE fit.
//!
//! Algorithm 1 trains `n` base classifiers sequentially. With fault
//! isolation enabled (always, since it is free on the healthy path),
//! each member's fit runs inside `catch_unwind` and may be retried with
//! a fresh seed; [`FitReport`] records what happened to every member
//! slot so callers can distinguish "10/10 trained" from "7/10 trained,
//! 3 dropped after retries" — both of which return `Ok`.

use spe_data::{SanitizeReport, SpeError};

/// What happened to one ensemble member slot during training.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemberOutcome {
    /// Trained successfully on the first attempt.
    Trained,
    /// Trained successfully after one or more failed attempts;
    /// `attempts` is the total number of fit attempts used (≥ 2).
    Retried {
        /// Total fit attempts, including the final successful one.
        attempts: usize,
    },
    /// Every attempt failed; the slot contributes no model. Carries the
    /// error from the last attempt.
    Dropped {
        /// Why the final attempt failed.
        error: SpeError,
    },
    /// Never attempted: the wall-clock training budget was already
    /// exhausted when this slot came up.
    Skipped,
}

/// Per-member record of one (possibly degraded) SPE training run.
///
/// Produced alongside the trained ensemble and retrievable via
/// `SelfPacedEnsemble::fit_report`. An `Ok` fit guarantees
/// [`FitReport::n_trained`] ≥ the configured `min_members`; anything
/// less surfaces as [`SpeError::TrainingFailed`] instead.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FitReport {
    /// Outcome of each member slot, in training order
    /// (`members.len()` = configured `n_estimators`).
    pub members: Vec<MemberOutcome>,
    /// What the input sanitizer found/repaired before training.
    pub sanitize: SanitizeReport,
    /// True when the wall-clock budget expired at any point during the
    /// fit (some members may have been `Skipped` or internally
    /// truncated their training loops).
    pub budget_exhausted: bool,
}

impl FitReport {
    /// Members that produced a model (first try or after retries).
    pub fn n_trained(&self) -> usize {
        self.members
            .iter()
            .filter(|m| matches!(m, MemberOutcome::Trained | MemberOutcome::Retried { .. }))
            .count()
    }

    /// Members that trained but needed more than one attempt.
    pub fn n_retried(&self) -> usize {
        self.members
            .iter()
            .filter(|m| matches!(m, MemberOutcome::Retried { .. }))
            .count()
    }

    /// Members dropped after exhausting their retries.
    pub fn n_dropped(&self) -> usize {
        self.members
            .iter()
            .filter(|m| matches!(m, MemberOutcome::Dropped { .. }))
            .count()
    }

    /// Members never attempted because the budget had expired.
    pub fn n_skipped(&self) -> usize {
        self.members
            .iter()
            .filter(|m| matches!(m, MemberOutcome::Skipped))
            .count()
    }

    /// True when every member trained first-try and the input needed no
    /// repairs — the report a healthy run produces.
    pub fn is_clean(&self) -> bool {
        self.sanitize.is_clean()
            && !self.budget_exhausted
            && self
                .members
                .iter()
                .all(|m| matches!(m, MemberOutcome::Trained))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_partition_the_members() {
        let report = FitReport {
            members: vec![
                MemberOutcome::Trained,
                MemberOutcome::Retried { attempts: 2 },
                MemberOutcome::Dropped {
                    error: SpeError::EmptyDataset,
                },
                MemberOutcome::Skipped,
                MemberOutcome::Trained,
            ],
            ..FitReport::default()
        };
        assert_eq!(report.n_trained(), 3);
        assert_eq!(report.n_retried(), 1);
        assert_eq!(report.n_dropped(), 1);
        assert_eq!(report.n_skipped(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn all_trained_clean_input_is_clean() {
        let report = FitReport {
            members: vec![MemberOutcome::Trained; 4],
            ..FitReport::default()
        };
        assert!(report.is_clean());
    }
}
