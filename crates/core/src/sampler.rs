//! The self-paced under-sampling step (Algorithm 1, lines 5–9).
//!
//! Given the hardness of every majority sample, the sampler bins them,
//! weights bin ℓ by `p_ℓ = 1 / (h_ℓ + α)` and draws a per-bin quota
//! proportional to `p_ℓ`, without replacement. Quotas exceeding a bin's
//! population are redistributed to the remaining bins (largest-remainder
//! style), matching the authors' reference implementation and keeping
//! the subset size at the target whenever enough majority samples exist.

use crate::bins::HardnessBins;
use spe_data::SeededRng;

/// Self-paced factor `α = tan(i·π / 2n)` for iteration `i` of `n`
/// (Algorithm 1, line 7). `i = 0` gives 0; `i → n` diverges, so callers
/// use `i ∈ [0, n−1]`.
pub fn self_paced_factor(iteration: usize, n_estimators: usize) -> f64 {
    assert!(n_estimators > 0, "need at least one estimator");
    let ratio = iteration as f64 / n_estimators as f64;
    (ratio * std::f64::consts::FRAC_PI_2).tan()
}

/// How α evolves across iterations — the ablation axis of `DESIGN.md`.
///
/// The paper's Algorithm 1 uses [`AlphaSchedule::SelfPaced`]; the other
/// variants isolate the contribution of each ingredient:
///
/// - `Constant(0.0)` — pure hardness harmonization at every iteration
///   (the paper's Fig. 3(b) regime, which "still leaves a lot of trivial
///   samples"),
/// - `Constant(large)` — near-uniform bin weights from the start (easy
///   skeleton dominates, hard samples never get focus),
/// - `Uniform` — skip hardness entirely and under-sample uniformly at
///   random each iteration (reduces SPE to UnderBagging).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AlphaSchedule {
    /// Paper schedule: `α = tan(iπ/2n)`.
    SelfPaced,
    /// Fixed α at every self-paced iteration.
    Constant(f64),
    /// Ignore hardness; uniform random majority subsets.
    Uniform,
}

impl AlphaSchedule {
    /// The α used at iteration `i` of `n`, or `None` for uniform random
    /// sampling.
    pub fn alpha(self, iteration: usize, n_estimators: usize) -> Option<f64> {
        match self {
            AlphaSchedule::SelfPaced => Some(self_paced_factor(iteration, n_estimators)),
            AlphaSchedule::Constant(a) => Some(a),
            AlphaSchedule::Uniform => None,
        }
    }
}

/// How many samples of each class a multi-class self-paced iteration
/// trains on — the k-way generalization of the paper's "|P| majority
/// samples" rule (which is exactly [`BalancingSchedule::Uniform`] at
/// `k = 2`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BalancingSchedule {
    /// Every class is under-sampled to the smallest class's count at
    /// every iteration — fully balanced subsets throughout.
    Uniform,
    /// Linear interpolation from the original class distribution toward
    /// the uniform target as iterations progress: iteration `i` of `n`
    /// uses fraction `(i + 1) / n` of the way to balanced. Early members
    /// see (near-)original skew, late members see balanced data —
    /// self-pacing applied to the class distribution itself.
    Progressive,
    /// Explicit per-class target counts (length `k`), each clamped to
    /// the class's available count at draw time.
    Custom(Vec<usize>),
}

impl BalancingSchedule {
    /// Per-class target counts for iteration `i` of `n`, given the
    /// observed per-class `counts`.
    ///
    /// Targets never exceed the observed counts and never drop below 1
    /// for a non-empty class (a class must not vanish from a subset).
    ///
    /// # Panics
    /// Panics when `n == 0`, `i >= n`, or a `Custom` schedule's length
    /// disagrees with `counts.len()`.
    pub fn targets(&self, counts: &[usize], iteration: usize, n_estimators: usize) -> Vec<usize> {
        assert!(n_estimators > 0, "need at least one estimator");
        assert!(
            iteration < n_estimators,
            "iteration {iteration} out of range for {n_estimators} estimators"
        );
        let min_count = counts.iter().copied().filter(|&c| c > 0).min().unwrap_or(0);
        match self {
            BalancingSchedule::Uniform => counts
                .iter()
                .map(|&c| if c == 0 { 0 } else { min_count })
                .collect(),
            BalancingSchedule::Progressive => {
                let t = (iteration + 1) as f64 / n_estimators as f64;
                counts
                    .iter()
                    .map(|&c| {
                        if c == 0 {
                            0
                        } else {
                            let interp = c as f64 + t * (min_count as f64 - c as f64);
                            (interp.round() as usize).clamp(1, c)
                        }
                    })
                    .collect()
            }
            BalancingSchedule::Custom(targets) => {
                assert_eq!(
                    targets.len(),
                    counts.len(),
                    "custom schedule must name a target per class"
                );
                targets
                    .iter()
                    .zip(counts)
                    .map(|(&t, &c)| if c == 0 { 0 } else { t.clamp(1, c) })
                    .collect()
            }
        }
    }
}

/// Self-paced under-sampler over a hardness distribution.
#[derive(Clone, Copy, Debug)]
pub struct SelfPacedSampler {
    /// Number of hardness bins `k` (paper default: 20).
    pub k_bins: usize,
}

impl Default for SelfPacedSampler {
    fn default() -> Self {
        Self { k_bins: 20 }
    }
}

/// Outcome of one self-paced sampling step, kept for diagnostics and the
/// Fig. 3 experiment.
#[derive(Clone, Debug)]
pub struct SampleOutcome {
    /// Selected positions into the hardness slice.
    pub selected: Vec<usize>,
    /// Per-bin quota actually drawn.
    pub per_bin: Vec<usize>,
    /// Unnormalized bin weights `p_ℓ` (0 for empty bins).
    pub weights: Vec<f64>,
}

impl SelfPacedSampler {
    /// Draws `target` positions (without replacement) from the hardness
    /// distribution using self-paced factor `alpha`.
    ///
    /// When `target >= hardness.len()` every position is returned.
    pub fn sample(
        &self,
        hardness: &[f64],
        alpha: f64,
        target: usize,
        rng: &mut SeededRng,
    ) -> SampleOutcome {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let n = hardness.len();
        if target >= n {
            return SampleOutcome {
                selected: (0..n).collect(),
                per_bin: vec![n],
                weights: vec![1.0],
            };
        }
        let bins = HardnessBins::cut(hardness, self.k_bins);
        let members = bins.members();
        let weights: Vec<f64> = bins
            .stats()
            .iter()
            .map(|s| {
                if s.population == 0 {
                    0.0
                } else {
                    1.0 / (s.mean_hardness + alpha).max(1e-12)
                }
            })
            .collect();
        let per_bin = allocate_quota(&weights, &members, target);
        let mut selected = Vec::with_capacity(target);
        for (quota, member) in per_bin.iter().zip(&members) {
            if *quota == 0 {
                continue;
            }
            selected.extend(rng.sample_from(member, *quota));
        }
        SampleOutcome {
            selected,
            per_bin,
            weights,
        }
    }
}

/// Splits `target` draws across bins proportionally to `weights`,
/// clamping each bin to its population and redistributing the shortfall.
fn allocate_quota(weights: &[f64], members: &[Vec<usize>], target: usize) -> Vec<usize> {
    let k = weights.len();
    let mut quota = vec![0usize; k];
    let mut remaining = target;
    // Iterate: proportional allocation over bins with spare capacity.
    // Terminates because each round either fills `remaining` or saturates
    // at least one bin.
    let mut active: Vec<usize> = (0..k).filter(|&l| !members[l].is_empty()).collect();
    while remaining > 0 && !active.is_empty() {
        let w_total: f64 = active.iter().map(|&l| weights[l]).sum();
        if w_total <= 0.0 {
            break;
        }
        // Real-valued shares with largest-remainder rounding.
        let mut shares: Vec<(usize, f64)> = active
            .iter()
            .map(|&l| (l, weights[l] / w_total * remaining as f64))
            .collect();
        let mut allocated = 0usize;
        let mut saturated = Vec::new();
        for &mut (l, share) in &mut shares {
            let cap = members[l].len() - quota[l];
            let take = (share.floor() as usize).min(cap);
            quota[l] += take;
            allocated += take;
            if quota[l] == members[l].len() {
                saturated.push(l);
            }
        }
        if allocated == 0 {
            // Floors were all zero: hand out singles by largest remainder.
            shares.sort_by(|a, b| {
                (b.1 - b.1.floor())
                    .total_cmp(&(a.1 - a.1.floor()))
                    .then(a.0.cmp(&b.0))
            });
            for &(l, _) in &shares {
                if allocated == remaining {
                    break;
                }
                if quota[l] < members[l].len() {
                    quota[l] += 1;
                    allocated += 1;
                    if quota[l] == members[l].len() {
                        saturated.push(l);
                    }
                }
            }
        }
        if allocated == 0 {
            break; // no capacity anywhere
        }
        remaining -= allocated.min(remaining);
        active.retain(|l| !saturated.contains(l));
    }
    quota
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_schedule_variants() {
        assert_eq!(AlphaSchedule::SelfPaced.alpha(0, 10), Some(0.0));
        let mid = AlphaSchedule::SelfPaced.alpha(5, 10).unwrap();
        assert!((mid - 1.0).abs() < 1e-12);
        assert_eq!(AlphaSchedule::Constant(0.3).alpha(7, 10), Some(0.3));
        assert_eq!(AlphaSchedule::Uniform.alpha(3, 10), None);
    }

    #[test]
    fn factor_schedule_matches_paper() {
        assert_eq!(self_paced_factor(0, 10), 0.0);
        // tan(pi/4) = 1 at i = n/2.
        assert!((self_paced_factor(5, 10) - 1.0).abs() < 1e-12);
        // Grows without bound toward i = n.
        assert!(self_paced_factor(9, 10) > 6.0);
    }

    /// Synthetic hardness profile: a huge trivial bin near 0, a medium
    /// borderline band, and a few hard/noise samples near 1.
    fn skewed_hardness() -> Vec<f64> {
        let mut h = vec![0.02; 1000];
        h.extend(vec![0.5; 100]);
        h.extend(vec![0.98; 10]);
        h
    }

    #[test]
    fn alpha_zero_harmonizes_contribution() {
        // With alpha = 0, p_l = 1/h_l, so expected per-bin contribution
        // (quota * h_l) is roughly constant across nonempty bins.
        let h = skewed_hardness();
        let mut rng = SeededRng::new(1);
        let out = SelfPacedSampler { k_bins: 20 }.sample(&h, 0.0, 200, &mut rng);
        assert_eq!(out.selected.len(), 200);
        // Bin of 0.02 has ~25x the quota of bin of 0.5 (1/0.02 vs 1/0.5),
        // even though its population is only 10x.
        let quota_easy = out.per_bin[0];
        let quota_mid = out.per_bin[10]; // (0.5-0.02)/0.96*20 = bin 10
        assert!(quota_easy > quota_mid, "{:?}", out.per_bin);
    }

    #[test]
    fn large_alpha_equalizes_bins() {
        // alpha >> h flattens p_l, so each nonempty bin gets a similar
        // quota (clamped by population).
        let h = skewed_hardness();
        let mut rng = SeededRng::new(2);
        let out = SelfPacedSampler { k_bins: 20 }.sample(&h, 1e6, 60, &mut rng);
        assert_eq!(out.selected.len(), 60);
        let nonzero: Vec<usize> = out.per_bin.iter().copied().filter(|&q| q > 0).collect();
        // Three nonempty bins -> roughly 20 each; the tiny hard bin (10
        // samples) saturates and redistributes.
        assert_eq!(nonzero.iter().sum::<usize>(), 60);
        assert!(nonzero.len() >= 2);
        assert!(nonzero.iter().all(|&q| q >= 10), "{nonzero:?}");
    }

    #[test]
    fn alpha_growth_shifts_mass_toward_hard_bins() {
        let h = skewed_hardness();
        let mut rng = SeededRng::new(3);
        let sampler = SelfPacedSampler { k_bins: 20 };
        let lo = sampler.sample(&h, 0.0, 100, &mut rng);
        let hi = sampler.sample(&h, 10.0, 100, &mut rng);
        let hard_share = |o: &SampleOutcome| {
            o.selected.iter().filter(|&&i| h[i] > 0.9).count() as f64 / o.selected.len() as f64
        };
        assert!(hard_share(&hi) >= hard_share(&lo));
    }

    #[test]
    fn selection_has_no_duplicates() {
        let h = skewed_hardness();
        let mut rng = SeededRng::new(4);
        let out = SelfPacedSampler::default().sample(&h, 0.5, 300, &mut rng);
        let mut s = out.selected.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 300);
    }

    #[test]
    fn target_larger_than_population_returns_all() {
        let h = vec![0.1, 0.2, 0.3];
        let mut rng = SeededRng::new(5);
        let out = SelfPacedSampler::default().sample(&h, 0.0, 10, &mut rng);
        assert_eq!(out.selected, vec![0, 1, 2]);
    }

    #[test]
    fn exact_target_met_when_capacity_allows() {
        let h = skewed_hardness();
        let mut rng = SeededRng::new(6);
        for target in [1, 7, 50, 333, 1109] {
            let out = SelfPacedSampler::default().sample(&h, 0.3, target, &mut rng);
            assert_eq!(out.selected.len(), target.min(h.len()), "target {target}");
        }
    }

    #[test]
    fn quota_allocation_respects_capacity() {
        let weights = vec![1.0, 1.0, 1.0];
        let members = vec![vec![0, 1], vec![2, 3, 4, 5, 6, 7], vec![8]];
        let quota = allocate_quota(&weights, &members, 7);
        assert!(quota[0] <= 2);
        assert!(quota[2] <= 1);
        assert_eq!(quota.iter().sum::<usize>(), 7);
    }

    #[test]
    fn uniform_schedule_targets_min_class() {
        let counts = [500usize, 40, 2000, 40];
        let t = BalancingSchedule::Uniform.targets(&counts, 0, 10);
        assert_eq!(t, vec![40, 40, 40, 40]);
        // Binary case reproduces the paper's |P| rule.
        assert_eq!(
            BalancingSchedule::Uniform.targets(&[900, 100], 5, 10),
            vec![100, 100]
        );
    }

    #[test]
    fn progressive_schedule_interpolates_toward_uniform() {
        let counts = [1000usize, 100];
        let first = BalancingSchedule::Progressive.targets(&counts, 0, 10);
        let mid = BalancingSchedule::Progressive.targets(&counts, 4, 10);
        let last = BalancingSchedule::Progressive.targets(&counts, 9, 10);
        assert_eq!(first, vec![910, 100]);
        assert_eq!(mid, vec![550, 100]);
        assert_eq!(last, vec![100, 100]);
        // Monotone non-increasing for the large class.
        let mut prev = usize::MAX;
        for i in 0..10 {
            let t = BalancingSchedule::Progressive.targets(&counts, i, 10)[0];
            assert!(t <= prev);
            prev = t;
        }
    }

    #[test]
    fn custom_schedule_clamps_to_population() {
        let counts = [50usize, 10, 0];
        let t = BalancingSchedule::Custom(vec![80, 5, 7]).targets(&counts, 0, 3);
        assert_eq!(t, vec![50, 5, 0]);
        // Zero targets are floored at 1 for non-empty classes.
        let t = BalancingSchedule::Custom(vec![0, 0, 0]).targets(&counts, 0, 3);
        assert_eq!(t, vec![1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "target per class")]
    fn custom_schedule_rejects_wrong_length() {
        let _ = BalancingSchedule::Custom(vec![1, 2]).targets(&[5, 5, 5], 0, 1);
    }

    #[test]
    fn empty_bins_get_zero_weight() {
        let h = vec![0.0, 1.0]; // only first and last bins populated
        let mut rng = SeededRng::new(7);
        let out = SelfPacedSampler { k_bins: 10 }.sample(&h, 0.0, 1, &mut rng);
        for (l, &w) in out.weights.iter().enumerate() {
            if l != 0 && l != 9 {
                assert_eq!(w, 0.0);
            }
        }
    }
}
