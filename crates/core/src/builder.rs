//! Chainable, validating builder for [`SelfPacedEnsembleConfig`].
//!
//! Construction through the builder moves configuration mistakes from a
//! panic inside `fit` to an [`SpeError::InvalidConfig`] at `build()`:
//!
//! ```
//! use spe_core::SelfPacedEnsembleConfig;
//!
//! let cfg = SelfPacedEnsembleConfig::builder()
//!     .n_estimators(20)
//!     .k_bins(10)
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(cfg.n_estimators, 20);
//! assert!(SelfPacedEnsembleConfig::builder().n_estimators(0).build().is_err());
//! ```

use crate::ensemble::SelfPacedEnsembleConfig;
use crate::hardness::HardnessFn;
use crate::sampler::AlphaSchedule;
use spe_data::{SanitizePolicy, SpeError};
use spe_learners::traits::SharedLearner;
use spe_runtime::{Runtime, TrainingBudget};

/// Builder returned by [`SelfPacedEnsembleConfig::builder`].
///
/// Every setter is chainable; unset fields keep the paper defaults
/// (10 estimators, 20 bins, absolute-error hardness, C4.5-style trees,
/// self-paced α schedule, environment-driven runtime).
#[derive(Clone, Debug, Default)]
pub struct SelfPacedEnsembleBuilder {
    cfg: SelfPacedEnsembleConfig,
}

impl SelfPacedEnsembleBuilder {
    /// Builder initialized with the paper defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of base classifiers `n` (must be positive at `build`).
    pub fn n_estimators(mut self, n: usize) -> Self {
        self.cfg.n_estimators = n;
        self
    }

    /// Number of hardness bins `k` (must be positive at `build`).
    pub fn k_bins(mut self, k: usize) -> Self {
        self.cfg.k_bins = k;
        self
    }

    /// Hardness function `H`.
    pub fn hardness(mut self, hardness: HardnessFn) -> Self {
        self.cfg.hardness = hardness;
        self
    }

    /// Base learner `f` trained on each `P ∪ N'`.
    pub fn base(mut self, base: SharedLearner) -> Self {
        self.cfg.base = base;
        self
    }

    /// Self-paced factor schedule (the non-default variants are the
    /// §VI-C ablations).
    pub fn alpha_schedule(mut self, schedule: AlphaSchedule) -> Self {
        self.cfg.alpha_schedule = schedule;
        self
    }

    /// Parallelism configuration installed around each fit.
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.cfg.runtime = runtime;
        self
    }

    /// Non-finite-feature handling for the fallible fit entry points
    /// (default: reject with a typed error).
    pub fn sanitize(mut self, policy: SanitizePolicy) -> Self {
        self.cfg.sanitize = policy;
        self
    }

    /// Extra fit attempts granted to a faulty member before its slot is
    /// dropped (default 2).
    pub fn max_member_retries(mut self, retries: usize) -> Self {
        self.cfg.max_member_retries = retries;
        self
    }

    /// Minimum successfully-trained members required for the fit to
    /// return `Ok` (default 1; must not exceed `n_estimators` at
    /// `build`).
    pub fn min_members(mut self, min: usize) -> Self {
        self.cfg.min_members = min;
        self
    }

    /// Cooperative wall-clock budget installed around each fit
    /// (default: unlimited).
    pub fn budget(mut self, budget: TrainingBudget) -> Self {
        self.cfg.budget = budget;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    /// [`SpeError::InvalidConfig`] when `n_estimators` or `k_bins` is
    /// zero, or when `min_members` exceeds `n_estimators`.
    pub fn build(self) -> Result<SelfPacedEnsembleConfig, SpeError> {
        if self.cfg.n_estimators == 0 {
            return Err(SpeError::InvalidConfig(
                "need at least one estimator".into(),
            ));
        }
        if self.cfg.k_bins == 0 {
            return Err(SpeError::InvalidConfig("need at least one bin".into()));
        }
        if self.cfg.min_members > self.cfg.n_estimators {
            return Err(SpeError::InvalidConfig(format!(
                "min_members ({}) exceeds n_estimators ({})",
                self.cfg.min_members, self.cfg.n_estimators
            )));
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_learners::DecisionTreeConfig;
    use std::sync::Arc;

    #[test]
    fn defaults_match_config_default() {
        let built = SelfPacedEnsembleBuilder::new().build().unwrap();
        let default = SelfPacedEnsembleConfig::default();
        assert_eq!(built.n_estimators, default.n_estimators);
        assert_eq!(built.k_bins, default.k_bins);
        assert_eq!(built.base.name(), default.base.name());
        assert_eq!(built.runtime, default.runtime);
    }

    #[test]
    fn setters_chain() {
        let cfg = SelfPacedEnsembleConfig::builder()
            .n_estimators(7)
            .k_bins(5)
            .hardness(HardnessFn::SquaredError)
            .base(Arc::new(DecisionTreeConfig::with_depth(3)))
            .alpha_schedule(AlphaSchedule::Uniform)
            .runtime(Runtime::with_threads(2))
            .build()
            .unwrap();
        assert_eq!(cfg.n_estimators, 7);
        assert_eq!(cfg.k_bins, 5);
        assert_eq!(cfg.hardness, HardnessFn::SquaredError);
        assert_eq!(cfg.alpha_schedule, AlphaSchedule::Uniform);
        assert_eq!(cfg.runtime.num_threads(), Some(2));
    }

    #[test]
    fn robustness_setters_chain() {
        let cfg = SelfPacedEnsembleConfig::builder()
            .n_estimators(8)
            .sanitize(SanitizePolicy::ImputeMean)
            .max_member_retries(5)
            .min_members(3)
            .budget(TrainingBudget::wall_clock(std::time::Duration::from_secs(
                9,
            )))
            .build()
            .unwrap();
        assert_eq!(cfg.sanitize, SanitizePolicy::ImputeMean);
        assert_eq!(cfg.max_member_retries, 5);
        assert_eq!(cfg.min_members, 3);
        assert_eq!(cfg.budget.limit(), Some(std::time::Duration::from_secs(9)));
    }

    #[test]
    fn min_members_above_n_estimators_rejected() {
        let err = SelfPacedEnsembleConfig::builder()
            .n_estimators(4)
            .min_members(5)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("min_members"));
    }

    #[test]
    fn zero_values_rejected_at_build() {
        let err = SelfPacedEnsembleConfig::builder()
            .n_estimators(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("at least one estimator"));
        let err = SelfPacedEnsembleConfig::builder()
            .k_bins(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("at least one bin"));
    }
}
