//! Chainable, validating builder for [`SelfPacedEnsembleConfig`].
//!
//! Construction through the builder moves configuration mistakes from a
//! panic inside `fit` to an [`SpeError::InvalidConfig`] at `build()`:
//!
//! ```
//! use spe_core::SelfPacedEnsembleConfig;
//!
//! let cfg = SelfPacedEnsembleConfig::builder()
//!     .n_estimators(20)
//!     .k_bins(10)
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(cfg.n_estimators, 20);
//! assert!(SelfPacedEnsembleConfig::builder().n_estimators(0).build().is_err());
//! ```

use crate::ensemble::SelfPacedEnsembleConfig;
use crate::hardness::HardnessFn;
use crate::sampler::AlphaSchedule;
use spe_data::SpeError;
use spe_learners::traits::SharedLearner;
use spe_runtime::Runtime;

/// Builder returned by [`SelfPacedEnsembleConfig::builder`].
///
/// Every setter is chainable; unset fields keep the paper defaults
/// (10 estimators, 20 bins, absolute-error hardness, C4.5-style trees,
/// self-paced α schedule, environment-driven runtime).
#[derive(Clone, Debug, Default)]
pub struct SelfPacedEnsembleBuilder {
    cfg: SelfPacedEnsembleConfig,
}

impl SelfPacedEnsembleBuilder {
    /// Builder initialized with the paper defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of base classifiers `n` (must be positive at `build`).
    pub fn n_estimators(mut self, n: usize) -> Self {
        self.cfg.n_estimators = n;
        self
    }

    /// Number of hardness bins `k` (must be positive at `build`).
    pub fn k_bins(mut self, k: usize) -> Self {
        self.cfg.k_bins = k;
        self
    }

    /// Hardness function `H`.
    pub fn hardness(mut self, hardness: HardnessFn) -> Self {
        self.cfg.hardness = hardness;
        self
    }

    /// Base learner `f` trained on each `P ∪ N'`.
    pub fn base(mut self, base: SharedLearner) -> Self {
        self.cfg.base = base;
        self
    }

    /// Self-paced factor schedule (the non-default variants are the
    /// §VI-C ablations).
    pub fn alpha_schedule(mut self, schedule: AlphaSchedule) -> Self {
        self.cfg.alpha_schedule = schedule;
        self
    }

    /// Parallelism configuration installed around each fit.
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.cfg.runtime = runtime;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    /// [`SpeError::InvalidConfig`] when `n_estimators` or `k_bins` is
    /// zero.
    pub fn build(self) -> Result<SelfPacedEnsembleConfig, SpeError> {
        if self.cfg.n_estimators == 0 {
            return Err(SpeError::InvalidConfig(
                "need at least one estimator".into(),
            ));
        }
        if self.cfg.k_bins == 0 {
            return Err(SpeError::InvalidConfig("need at least one bin".into()));
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_learners::DecisionTreeConfig;
    use std::sync::Arc;

    #[test]
    fn defaults_match_config_default() {
        let built = SelfPacedEnsembleBuilder::new().build().unwrap();
        let default = SelfPacedEnsembleConfig::default();
        assert_eq!(built.n_estimators, default.n_estimators);
        assert_eq!(built.k_bins, default.k_bins);
        assert_eq!(built.base.name(), default.base.name());
        assert_eq!(built.runtime, default.runtime);
    }

    #[test]
    fn setters_chain() {
        let cfg = SelfPacedEnsembleConfig::builder()
            .n_estimators(7)
            .k_bins(5)
            .hardness(HardnessFn::SquaredError)
            .base(Arc::new(DecisionTreeConfig::with_depth(3)))
            .alpha_schedule(AlphaSchedule::Uniform)
            .runtime(Runtime::with_threads(2))
            .build()
            .unwrap();
        assert_eq!(cfg.n_estimators, 7);
        assert_eq!(cfg.k_bins, 5);
        assert_eq!(cfg.hardness, HardnessFn::SquaredError);
        assert_eq!(cfg.alpha_schedule, AlphaSchedule::Uniform);
        assert_eq!(cfg.runtime.num_threads(), Some(2));
    }

    #[test]
    fn zero_values_rejected_at_build() {
        let err = SelfPacedEnsembleConfig::builder()
            .n_estimators(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("at least one estimator"));
        let err = SelfPacedEnsembleConfig::builder()
            .k_bins(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("at least one bin"));
    }
}
