//! Out-of-core SPE training: Algorithm 1 over a chunked stream.
//!
//! [`SelfPacedEnsembleConfig::try_fit_chunked`] fits an SPE whose peak
//! memory is bounded by one chunk plus small per-row sidecars — the
//! dense `f64` matrix never exists. Two streaming passes set it up:
//!
//! ```text
//! pass 1   chunk ──> per-feature QuantileSketch ──> shared cut grids
//!                └─> minority rows (kept dense: the imbalance
//!                    assumption makes |P| tiny) + majority count
//! pass 2   chunk ──> majority rows ──> encode_batch_into (u8 codes,
//!                    column-major) ──> on-disk spill blocks
//! ```
//!
//! Training then runs the usual self-paced loop against the code store:
//! each member's training sub-index is stitched from the precomputed
//! minority codes plus the selected majority codes gathered from the
//! spill ([`BinIndex::from_parts`] + the `BinnedLearner` row-subset
//! hook), and the freshly trained member is recompiled into bin space
//! ([`CodeScorer`]) to score every majority row block by block into an
//! `f64` running-sum sidecar — the hardness input of the next round.
//!
//! Memory accounting (per row of width `d`): the streaming working set
//! is ≈ `17 d` bytes (chunk `f64`s, the majority copy, its codes), the
//! resident sidecars are 16 B per majority row (probability sum +
//! hardness) plus the dense minority block. Chunk budgets should leave
//! roughly half the budget for the sidecars; see `bench_oocore`.

use crate::report::{FitReport, MemberOutcome};
use crate::sampler::SelfPacedSampler;
use crate::SelfPacedEnsemble;
use crate::SelfPacedEnsembleConfig;
use spe_data::sketch::DEFAULT_SKETCH_CAPACITY;
use spe_data::{
    encode_batch_into, BinIndex, Chunk, ChunkedSource, Matrix, QuantileSketch, SanitizePolicy,
    SpeError, POSITIVE,
};
use spe_learners::binscore::CodeScorer;
use spe_learners::traits::{BinnedProblem, Model};
use spe_runtime::{fork_seed, panic_message};
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read as _, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Options of an out-of-core fit (the SPE hyper-parameters live on
/// [`SelfPacedEnsembleConfig`]; these only shape the streaming
/// machinery).
#[derive(Clone, Debug)]
pub struct ChunkedFitOptions {
    /// Per-level capacity of the pass-1 quantile sketches; larger is
    /// more accurate and more memory (~8 · capacity · levels bytes per
    /// feature).
    pub sketch_capacity: usize,
    /// Directory for the spilled majority code blocks. `None` puts a
    /// process-unique directory under the system temp dir. Spill files
    /// are removed when the fit finishes (or fails).
    pub spill_dir: Option<PathBuf>,
    /// Cap on minority rows held dense in RAM — a guard rail for the
    /// imbalance assumption; exceeding it is a typed error rather than
    /// an OOM. `0` means unlimited.
    pub max_minority_rows: usize,
}

impl Default for ChunkedFitOptions {
    fn default() -> Self {
        Self {
            sketch_capacity: DEFAULT_SKETCH_CAPACITY,
            spill_dir: None,
            max_minority_rows: 0,
        }
    }
}

/// Streaming-side diagnostics of an out-of-core fit (the training-side
/// diagnostics are the ensemble's [`FitReport`]).
#[derive(Clone, Debug)]
pub struct OocReport {
    /// Rows streamed (after any `DropRows` sanitization).
    pub rows: u64,
    /// Minority rows held dense.
    pub n_minority: usize,
    /// Majority rows spilled as codes.
    pub n_majority: usize,
    /// Chunks per pass.
    pub chunks: usize,
    /// Bytes of spilled code blocks on disk.
    pub spill_bytes: u64,
    /// Worst per-feature *relative* rank-error bound of the sketches
    /// (absolute bound / rows) — the guaranteed grid quality.
    pub max_rank_error: f64,
    /// Rows dropped by [`SanitizePolicy::DropRows`].
    pub rows_dropped: u64,
}

/// Rows per chunk that keep the streaming working set inside
/// `budget_bytes / 2`, leaving the other half for the resident
/// sidecars: a chunk row costs ≈ `17 d` bytes across the `f64` chunk,
/// the majority copy and its codes, so this is
/// `budget / (2 · 17 · d)`, floored at 256 rows.
pub fn chunk_rows_for_budget(budget_bytes: usize, n_features: usize) -> usize {
    (budget_bytes / (34 * n_features.max(1))).max(256)
}

impl SelfPacedEnsembleConfig {
    /// Fits the ensemble from a rewindable chunk stream without ever
    /// materializing the dataset (see the [module docs](self) for the
    /// pipeline). Requires a histogram-capable base learner (one whose
    /// [`as_binned`](spe_learners::traits::Learner::as_binned) hook
    /// reports a bin request); [`SanitizePolicy::ImputeMean`] is not
    /// available — streamed means are unknown until the pass ends.
    ///
    /// Faulty members retry with fresh seeds and drop after
    /// `max_member_retries`, the wall-clock budget skips remaining
    /// slots, and `min_members` gates success — the same fault
    /// contract as [`Self::try_fit_dataset`].
    pub fn try_fit_chunked(
        &self,
        source: &mut dyn ChunkedSource,
        opts: &ChunkedFitOptions,
        seed: u64,
    ) -> Result<(SelfPacedEnsemble, OocReport), SpeError> {
        if self.n_estimators == 0 {
            return Err(SpeError::InvalidConfig(
                "need at least one estimator".into(),
            ));
        }
        if self.k_bins == 0 {
            return Err(SpeError::InvalidConfig("need at least one bin".into()));
        }
        if self.min_members > self.n_estimators {
            return Err(SpeError::InvalidConfig(format!(
                "min_members ({}) exceeds n_estimators ({})",
                self.min_members, self.n_estimators
            )));
        }
        if matches!(self.sanitize, SanitizePolicy::ImputeMean) {
            return Err(SpeError::InvalidConfig(
                "SanitizePolicy::ImputeMean is not supported for chunked fits \
                 (column means are unknown while streaming); use Reject or DropRows"
                    .into(),
            ));
        }
        let max_bins = self
            .base
            .as_binned()
            .and_then(|bl| bl.bin_request())
            .ok_or_else(|| {
                SpeError::InvalidConfig(
                    "out-of-core training requires a histogram-capable base learner \
                     (e.g. a decision tree with SplitMethod::Histogram)"
                        .into(),
                )
            })?
            .max_bins;
        if source.n_features() == 0 {
            return Err(SpeError::InvalidConfig(
                "chunked source reports zero features".into(),
            ));
        }
        self.runtime.install(|| {
            self.budget
                .install(|| self.fit_chunked_validated(source, opts, max_bins, seed))
        })
    }

    fn fit_chunked_validated(
        &self,
        source: &mut dyn ChunkedSource,
        opts: &ChunkedFitOptions,
        max_bins: usize,
        seed: u64,
    ) -> Result<(SelfPacedEnsemble, OocReport), SpeError> {
        let d = source.n_features();
        let drop_rows = matches!(self.sanitize, SanitizePolicy::DropRows);

        // ---- Pass 1: sketches + minority collection -----------------
        source.reset()?;
        let mut sketches: Vec<QuantileSketch> = (0..d)
            .map(|_| QuantileSketch::with_capacity(opts.sketch_capacity))
            .collect();
        let mut minority_x = Matrix::with_capacity(0, d);
        let mut n_majority = 0usize;
        let mut chunks = 0usize;
        let mut rows_dropped = 0u64;
        let mut stream_row = 0u64;
        // Preallocate every per-chunk buffer at the source's chunk size:
        // amortized doubling would transiently hold ~2x the bytes,
        // which matters when the chunk *is* the memory budget.
        let mut chunk = Chunk::with_capacity(d, source.chunk_rows());
        let mut keep = Vec::with_capacity(source.chunk_rows());
        while source.next_chunk(&mut chunk)? {
            chunks += 1;
            keep.clear();
            keep.resize(chunk.rows(), true);
            for (r, kept) in keep.iter_mut().enumerate() {
                let row = chunk.x().row(r);
                if let Some(col) = row.iter().position(|v| !v.is_finite()) {
                    if drop_rows {
                        *kept = false;
                        rows_dropped += 1;
                        continue;
                    }
                    return Err(SpeError::NonFiniteFeature {
                        row: (stream_row + r as u64) as usize,
                        col,
                    });
                }
                if chunk.y()[r] == POSITIVE {
                    minority_x.push_row(row);
                    if opts.max_minority_rows > 0 && minority_x.rows() > opts.max_minority_rows {
                        return Err(SpeError::InvalidConfig(format!(
                            "minority class exceeds max_minority_rows ({}) — the chunked fit \
                             keeps minority rows dense and assumes heavy imbalance",
                            opts.max_minority_rows
                        )));
                    }
                } else {
                    n_majority += 1;
                }
            }
            // Both classes feed the grids, like BinIndex::build on the
            // full matrix. Features sketch independently in parallel.
            let keep_ref = &keep;
            let chunk_ref = &chunk;
            spe_runtime::par_for_each_mut(&mut sketches, |f, sk| {
                for (r, &kept) in keep_ref.iter().enumerate() {
                    if kept {
                        sk.insert(chunk_ref.x().get(r, f));
                    }
                }
            });
            stream_row += chunk.rows() as u64;
        }

        let n_pos = minority_x.rows();
        let n_neg = n_majority;
        let rows = n_pos as u64 + n_neg as u64;
        if rows == 0 {
            return Err(SpeError::EmptyDataset);
        }
        if n_pos == 0 {
            return Err(SpeError::EmptyClass { label: 1 });
        }
        if n_neg == 0 {
            return Err(SpeError::EmptyClass { label: 0 });
        }

        let cuts: Vec<Vec<f64>> = sketches.iter().map(|s| s.cut_grid(max_bins)).collect();
        let max_rank_error = sketches
            .iter()
            .map(|s| s.rank_error_bound() as f64 / s.count().max(1) as f64)
            .fold(0.0, f64::max);
        drop(sketches);

        let mut minority_codes = vec![0u8; n_pos * d];
        encode_batch_into(&cuts, minority_x.view(), &mut minority_codes);
        drop(minority_x);

        // ---- Pass 2: encode majority chunks into the spill ----------
        source.reset()?;
        let spill_dir = opts.spill_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("spe-oocore-{}-{seed:x}", std::process::id()))
        });
        let mut spill = CodeSpill::create(&spill_dir, d)?;
        let mut maj_buf = Matrix::with_capacity(source.chunk_rows(), d);
        let mut code_buf: Vec<u8> = Vec::with_capacity(source.chunk_rows() * d);
        while source.next_chunk(&mut chunk)? {
            maj_buf.clear_rows();
            for r in 0..chunk.rows() {
                let row = chunk.x().row(r);
                // Replays pass 1's keep/drop decisions (pure function
                // of the row values).
                if drop_rows && row.iter().any(|v| !v.is_finite()) {
                    continue;
                }
                if chunk.y()[r] != POSITIVE {
                    maj_buf.push_row(row);
                }
            }
            if maj_buf.rows() == 0 {
                continue;
            }
            code_buf.resize(maj_buf.rows() * d, 0);
            encode_batch_into(&cuts, maj_buf.view(), &mut code_buf);
            spill.append_block(maj_buf.rows(), &code_buf)?;
        }
        spill.finish()?;
        debug_assert_eq!(spill.total_rows(), n_neg);
        // The streaming buffers are done; release them before the
        // per-majority-row sidecars below are allocated so the peak
        // working set holds one of the two, never both.
        drop(chunk);
        drop(maj_buf);
        drop(code_buf);
        drop(keep);

        // ---- Training rounds (Algorithm 1 over the code store) ------
        let learner = self.base.as_binned().expect("checked in try_fit_chunked");
        let n = self.n_estimators;
        let sampler = SelfPacedSampler {
            k_bins: self.k_bins,
        };
        let mut rng = spe_data::SeededRng::new(seed);
        let retry_root = fork_seed(seed, 0xFA01);

        let mut models: Vec<Box<dyn Model>> = Vec::with_capacity(n);
        let mut alphas: Vec<f64> = Vec::with_capacity(n);
        let mut outcomes: Vec<MemberOutcome> = Vec::with_capacity(n);
        let mut proba_sum = vec![0.0f64; n_neg];
        let mut hardness_buf = vec![0.0f64; n_neg];
        let mut score_buf: Vec<f64> = Vec::new();

        for i in 0..n {
            if !models.is_empty() && spe_runtime::budget_exceeded() {
                outcomes.push(MemberOutcome::Skipped);
                continue;
            }

            let (mut selected, alpha) = if models.is_empty() {
                (rng.sample_indices(n_neg, n_pos.min(n_neg)), 0.0)
            } else {
                let inv = 1.0 / models.len() as f64;
                for (h, &s) in hardness_buf.iter_mut().zip(&proba_sum) {
                    *h = self.hardness.eval(s * inv, 0);
                }
                match self.alpha_schedule.alpha(i, n) {
                    Some(alpha) => (
                        sampler
                            .sample(&hardness_buf, alpha, n_pos, &mut rng)
                            .selected,
                        alpha,
                    ),
                    None => (rng.sample_indices(n_neg, n_pos.min(n_neg)), f64::NAN),
                }
            };
            // Row order does not influence histogram training, and a
            // sorted selection turns the spill gather into one
            // sequential scan.
            selected.sort_unstable();

            let m = n_pos + selected.len();
            let mut member_codes = vec![0u8; m * d];
            for f in 0..d {
                member_codes[f * m..f * m + n_pos]
                    .copy_from_slice(&minority_codes[f * n_pos..(f + 1) * n_pos]);
            }
            spill.gather(&selected, &mut member_codes, m, n_pos)?;
            let member_bins = BinIndex::from_parts(cuts.clone(), member_codes, m);
            let mut member_y = vec![POSITIVE; n_pos];
            member_y.resize(m, 0);
            let member_rows: Vec<u32> = (0..m as u32).collect();

            // Fit with the same retry contract as the in-memory path;
            // scoring happens after a successful fit (compiled tree
            // traversal cannot panic or emit non-finite values, so it
            // never needs the retry loop).
            let member_rng = rng.fork(i as u64);
            let mut last_err = SpeError::Panicked {
                context: format!("member {i}"),
                message: "never attempted".into(),
            };
            let mut trained: Option<Box<dyn Model>> = None;
            let mut attempts = 0usize;
            for attempt in 0..=self.max_member_retries {
                let mut attempt_rng = if attempt == 0 {
                    member_rng.clone()
                } else {
                    spe_data::SeededRng::new(fork_seed(
                        fork_seed(retry_root, i as u64),
                        attempt as u64,
                    ))
                };
                attempts = attempt + 1;
                let problem = BinnedProblem {
                    bins: &member_bins,
                    y: &member_y,
                    weights: None,
                };
                let fit_seed = attempt_rng.below(u32::MAX as usize) as u64;
                match catch_unwind(AssertUnwindSafe(|| {
                    learner.fit_on_bins(&problem, &member_rows, fit_seed)
                })) {
                    Ok(model) => {
                        trained = Some(model);
                        break;
                    }
                    Err(payload) => {
                        last_err = SpeError::Panicked {
                            context: format!("member {i}"),
                            message: panic_message(payload.as_ref()),
                        };
                    }
                }
            }

            match trained {
                Some(model) => {
                    let scorer = CodeScorer::compile(model.as_ref(), &cuts)?;
                    spill.for_each_block(|start, block_rows, codes| {
                        score_buf.resize(block_rows, 0.0);
                        scorer.score_block(codes, block_rows, &mut score_buf);
                        if !score_buf.iter().all(|p| p.is_finite()) {
                            return Err(SpeError::NonFiniteOutput {
                                context: format!("member {i}"),
                            });
                        }
                        for (s, p) in proba_sum[start..start + block_rows]
                            .iter_mut()
                            .zip(&score_buf)
                        {
                            *s += p;
                        }
                        Ok(())
                    })?;
                    models.push(model);
                    alphas.push(alpha);
                    outcomes.push(if attempts == 1 {
                        MemberOutcome::Trained
                    } else {
                        MemberOutcome::Retried { attempts }
                    });
                }
                None => outcomes.push(MemberOutcome::Dropped { error: last_err }),
            }
        }

        let required = self.min_members.max(1);
        if models.len() < required {
            return Err(SpeError::TrainingFailed {
                trained: models.len(),
                required,
            });
        }

        let spill_bytes = spill.bytes();
        let report = FitReport {
            members: outcomes,
            sanitize: spe_data::SanitizeReport {
                non_finite_cells: rows_dropped as usize,
                dropped_rows: rows_dropped as usize,
                ..Default::default()
            },
            budget_exhausted: spe_runtime::budget_exceeded(),
        };
        let ensemble = SelfPacedEnsemble::from_members(models, alphas, report)?;
        Ok((
            ensemble,
            OocReport {
                rows,
                n_minority: n_pos,
                n_majority: n_neg,
                chunks,
                spill_bytes,
                max_rank_error,
                rows_dropped,
            },
        ))
    }
}

/// On-disk store of column-major u8 code blocks for the majority rows,
/// written once in pass 2 and scanned sequentially (gather + score)
/// every training round. Removed on drop.
struct CodeSpill {
    dir: PathBuf,
    path: PathBuf,
    d: usize,
    writer: Option<BufWriter<File>>,
    /// Rows of each block, in file order.
    block_rows: Vec<usize>,
    owns_dir: bool,
}

impl CodeSpill {
    fn create(dir: &Path, d: usize) -> Result<Self, SpeError> {
        let owns_dir = !dir.exists();
        fs::create_dir_all(dir)?;
        let path = dir.join("codes.spill");
        let writer = BufWriter::new(File::create(&path)?);
        Ok(Self {
            dir: dir.to_path_buf(),
            path,
            d,
            writer: Some(writer),
            block_rows: Vec::new(),
            owns_dir,
        })
    }

    fn append_block(&mut self, rows: usize, codes: &[u8]) -> Result<(), SpeError> {
        debug_assert_eq!(codes.len(), rows * self.d);
        let w = self.writer.as_mut().expect("spill already finished");
        w.write_all(codes)?;
        self.block_rows.push(rows);
        Ok(())
    }

    fn finish(&mut self) -> Result<(), SpeError> {
        if let Some(mut w) = self.writer.take() {
            w.flush()?;
        }
        Ok(())
    }

    fn total_rows(&self) -> usize {
        self.block_rows.iter().sum()
    }

    fn bytes(&self) -> u64 {
        self.block_rows.iter().map(|&r| (r * self.d) as u64).sum()
    }

    /// Sequentially visits every block as `(start_row, rows, codes)`.
    fn for_each_block(
        &self,
        mut f: impl FnMut(usize, usize, &[u8]) -> Result<(), SpeError>,
    ) -> Result<(), SpeError> {
        let mut reader = BufReader::with_capacity(1 << 20, File::open(&self.path)?);
        let mut buf: Vec<u8> = Vec::new();
        let mut start = 0usize;
        for &rows in &self.block_rows {
            buf.resize(rows * self.d, 0);
            reader.read_exact(&mut buf)?;
            f(start, rows, &buf)?;
            start += rows;
        }
        Ok(())
    }

    /// Copies the codes of `selected` (sorted ascending, global
    /// majority positions) into a column-major member buffer of `m`
    /// rows, placing selection `k` at row `dst_offset + k`.
    fn gather(
        &self,
        selected: &[usize],
        out: &mut [u8],
        m: usize,
        dst_offset: usize,
    ) -> Result<(), SpeError> {
        debug_assert!(selected.windows(2).all(|w| w[0] < w[1]));
        let d = self.d;
        let mut k = 0usize;
        self.for_each_block(|start, rows, codes| {
            let end = start + rows;
            while k < selected.len() && selected[k] < end {
                let local = selected[k] - start;
                for f in 0..d {
                    out[f * m + dst_offset + k] = codes[f * rows + local];
                }
                k += 1;
            }
            Ok(())
        })?;
        debug_assert_eq!(k, selected.len(), "selection outside the spill");
        Ok(())
    }
}

impl Drop for CodeSpill {
    fn drop(&mut self) {
        self.writer.take();
        let _ = fs::remove_file(&self.path);
        if self.owns_dir {
            let _ = fs::remove_dir(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlphaSchedule;
    use spe_data::{Dataset, DatasetChunks, SeededRng};
    use spe_learners::tree::{DecisionTreeConfig, SplitMethod};
    use spe_learners::SharedLearner;
    use std::sync::Arc;

    fn hist_base() -> SharedLearner {
        Arc::new(DecisionTreeConfig {
            split_method: SplitMethod::Histogram,
            ..DecisionTreeConfig::default()
        })
    }

    fn overlapping(n_pos: usize, n_neg: usize, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(n_pos + n_neg, 3);
        let mut y = Vec::new();
        for _ in 0..n_neg {
            x.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0), rng.uniform()]);
            y.push(0);
        }
        for _ in 0..n_pos {
            x.push_row(&[rng.normal(1.2, 1.0), rng.normal(1.2, 1.0), rng.uniform()]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    fn cfg(n: usize) -> SelfPacedEnsembleConfig {
        SelfPacedEnsembleConfig::with_base(n, hist_base())
    }

    #[test]
    fn trains_full_ensemble_from_chunks() {
        let d = overlapping(40, 800, 1);
        let mut src = DatasetChunks::new(&d, 97);
        let (m, report) = cfg(6)
            .try_fit_chunked(&mut src, &ChunkedFitOptions::default(), 2)
            .unwrap();
        assert_eq!(m.len(), 6);
        assert_eq!(m.alphas().len(), 6);
        assert!(m.fit_report().is_clean());
        assert_eq!(report.n_minority, 40);
        assert_eq!(report.n_majority, 800);
        assert_eq!(report.chunks, 9, "840 rows in 97-row chunks");
        assert_eq!(report.spill_bytes, 800 * 3);
        let p = m.predict_proba(d.x());
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn deterministic_and_chunk_size_invariant() {
        let d = overlapping(30, 500, 3);
        let fit = |chunk_rows: usize| {
            let mut src = DatasetChunks::new(&d, chunk_rows);
            cfg(4)
                .try_fit_chunked(&mut src, &ChunkedFitOptions::default(), 7)
                .unwrap()
                .0
                .predict_proba(d.x())
        };
        let a = fit(64);
        let b = fit(64);
        assert_eq!(a, b, "same chunking must be bit-identical");
        let c = fit(211);
        assert_eq!(a, c, "chunk size must not influence the model");
    }

    #[test]
    fn chunked_quality_close_to_in_memory_histogram_fit() {
        let train = overlapping(60, 1500, 5);
        let test = overlapping(60, 1500, 6);
        let in_mem = cfg(10).try_fit_dataset(&train, 11).unwrap();
        let mut src = DatasetChunks::new(&train, 128);
        let (chunked, _) = cfg(10)
            .try_fit_chunked(&mut src, &ChunkedFitOptions::default(), 11)
            .unwrap();
        let auc_mem = spe_metrics::aucprc(test.y(), &in_mem.predict_proba(test.x()));
        let auc_ch = spe_metrics::aucprc(test.y(), &chunked.predict_proba(test.x()));
        assert!(
            (auc_mem - auc_ch).abs() < 0.02,
            "in-memory {auc_mem:.4} vs chunked {auc_ch:.4}"
        );
    }

    #[test]
    fn rejects_non_histogram_base_and_impute_mean() {
        let d = overlapping(10, 100, 8);
        let mut src = DatasetChunks::new(&d, 32);
        let exact = SelfPacedEnsembleConfig::with_base(
            3,
            Arc::new(DecisionTreeConfig {
                split_method: SplitMethod::Exact,
                ..DecisionTreeConfig::default()
            }),
        );
        assert!(matches!(
            exact.try_fit_chunked(&mut src, &ChunkedFitOptions::default(), 9),
            Err(SpeError::InvalidConfig(_))
        ));
        let impute = SelfPacedEnsembleConfig {
            sanitize: SanitizePolicy::ImputeMean,
            ..cfg(3)
        };
        assert!(matches!(
            impute.try_fit_chunked(&mut src, &ChunkedFitOptions::default(), 9),
            Err(SpeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn single_class_streams_are_typed_errors() {
        let all_neg = Dataset::new(Matrix::zeros(20, 2), vec![0; 20]);
        let mut src = DatasetChunks::new(&all_neg, 7);
        assert_eq!(
            cfg(3)
                .try_fit_chunked(&mut src, &ChunkedFitOptions::default(), 1)
                .err(),
            Some(SpeError::EmptyClass { label: 1 })
        );
    }

    #[test]
    fn non_finite_rows_reject_or_drop_per_policy() {
        let mut d = overlapping(20, 200, 12);
        d.x_mut().row_mut(5)[1] = f64::NAN;
        let mut src = DatasetChunks::new(&d, 50);
        assert_eq!(
            cfg(3)
                .try_fit_chunked(&mut src, &ChunkedFitOptions::default(), 13)
                .err(),
            Some(SpeError::NonFiniteFeature { row: 5, col: 1 })
        );
        let dropping = SelfPacedEnsembleConfig {
            sanitize: SanitizePolicy::DropRows,
            ..cfg(3)
        };
        let mut src = DatasetChunks::new(&d, 50);
        let (m, report) = dropping
            .try_fit_chunked(&mut src, &ChunkedFitOptions::default(), 13)
            .unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(report.rows_dropped, 1);
        assert_eq!(report.rows, 219);
    }

    #[test]
    fn minority_cap_guards_the_imbalance_assumption() {
        let d = overlapping(100, 100, 14);
        let mut src = DatasetChunks::new(&d, 32);
        let opts = ChunkedFitOptions {
            max_minority_rows: 50,
            ..ChunkedFitOptions::default()
        };
        assert!(matches!(
            cfg(3).try_fit_chunked(&mut src, &opts, 15),
            Err(SpeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn uniform_schedule_works_chunked() {
        let d = overlapping(25, 300, 16);
        let mut src = DatasetChunks::new(&d, 64);
        let uniform = SelfPacedEnsembleConfig {
            alpha_schedule: AlphaSchedule::Uniform,
            ..cfg(4)
        };
        let (m, _) = uniform
            .try_fit_chunked(&mut src, &ChunkedFitOptions::default(), 17)
            .unwrap();
        assert_eq!(m.len(), 4);
        assert!(m.alphas()[1..].iter().all(|a| a.is_nan()));
    }

    #[test]
    fn chunk_rows_for_budget_accounting() {
        // 64 MiB, 30 features: half the budget across ~17·30 B/row.
        let rows = chunk_rows_for_budget(64 << 20, 30);
        assert_eq!(rows, (64 << 20) / (34 * 30));
        assert_eq!(chunk_rows_for_budget(0, 30), 256, "floored");
    }
}
