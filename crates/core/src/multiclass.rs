//! Multi-class self-paced ensembling.
//!
//! The paper defines SPE for binary imbalance, but the hardness-
//! harmonize loop generalizes to k classes once two knobs are made
//! class-aware (the IMBENS generalization): *which* per-class sample
//! counts each iteration trains on (a
//! [`BalancingSchedule`](crate::sampler::BalancingSchedule)), and *how*
//! hardness is measured (against the probability the running ensemble
//! assigns to a sample's own class,
//! [`HardnessFn::eval_class`](crate::hardness::HardnessFn::eval_class)).
//!
//! Two strategies are provided behind [`MultiClassStrategy`]:
//!
//! - **One-vs-rest** trains k independent binary SPEs, class `c` versus
//!   the rest, and normalizes their scores per row. Every sub-problem is
//!   exactly the paper's algorithm, so all binary machinery (retries,
//!   budget, binned fast path) applies unchanged.
//! - **Native** runs one joint loop: every iteration draws a per-class
//!   self-paced subset (per-class hardness bins, shared α), trains k
//!   one-vs-rest base fits on that *shared* subset, and accumulates raw
//!   scores. Members are regrouped per class at the end, so the final
//!   model shape is identical to one-vs-rest: per-class soft votes,
//!   normalized per row.
//!
//! Binary data (`k = 2`) always delegates to the plain
//! [`SelfPacedEnsemble`] — bit-exactly the paper's algorithm, and its
//! snapshots persist as ordinary binary `SelfPaced` envelopes.

use crate::ensemble::{SelfPacedEnsemble, SelfPacedEnsembleConfig};
use crate::sampler::{BalancingSchedule, SelfPacedSampler};
use spe_data::{Dataset, MatrixView, Sanitizer, SeededRng, SpeError};
use spe_learners::ensemble::SoftVoteEnsemble;
use spe_learners::multiclass::OneVsRestModel;
use spe_learners::persist::ModelSnapshot;
use spe_learners::traits::{ConstantModel, FeatureBound, Model};
use spe_runtime::fork_seed;

/// How a k-class SPE decomposes the problem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MultiClassStrategy {
    /// K independent binary SPEs (class `c` vs rest), scores normalized
    /// per row. The default: every sub-problem is exactly Algorithm 1.
    #[default]
    OneVsRest,
    /// One joint self-paced loop with per-class balancing targets; each
    /// member is k one-vs-rest base fits on a shared resampled subset.
    Native,
}

/// Configuration for a k-class self-paced ensemble.
///
/// Wraps a binary [`SelfPacedEnsembleConfig`] (member count, bins,
/// hardness, base learner, α schedule, sanitize policy all reuse the
/// binary knobs) plus the two k-way knobs: decomposition strategy and
/// balancing schedule.
#[derive(Clone, Debug)]
pub struct MultiClassSpeConfig {
    /// Binary SPE hyper-parameters shared by both strategies.
    pub binary: SelfPacedEnsembleConfig,
    /// Problem decomposition (default: one-vs-rest).
    pub strategy: MultiClassStrategy,
    /// Per-class target counts per iteration — consumed by the native
    /// strategy's joint loop (one-vs-rest sub-problems follow the
    /// paper's `|N'| = |P|` rule instead). Default: uniform.
    pub balancing: BalancingSchedule,
}

impl Default for MultiClassSpeConfig {
    fn default() -> Self {
        Self {
            binary: SelfPacedEnsembleConfig::default(),
            strategy: MultiClassStrategy::default(),
            balancing: BalancingSchedule::Uniform,
        }
    }
}

impl MultiClassSpeConfig {
    /// K-class SPE with `n` members per (sub-)ensemble and defaults
    /// everywhere else.
    pub fn new(n_estimators: usize) -> Self {
        Self {
            binary: SelfPacedEnsembleConfig::new(n_estimators),
            ..Self::default()
        }
    }

    /// Sets the decomposition strategy.
    pub fn strategy(mut self, strategy: MultiClassStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the balancing schedule (native strategy).
    pub fn balancing(mut self, balancing: BalancingSchedule) -> Self {
        self.balancing = balancing;
        self
    }

    /// Trains a k-class SPE on `data` (k from
    /// [`Dataset::n_classes`]; labels must be dense class ids).
    ///
    /// `k = 2` always delegates to the plain binary
    /// [`SelfPacedEnsemble`] regardless of strategy — bit-exact with
    /// [`SelfPacedEnsembleConfig::try_fit_dataset`] at the same seed.
    pub fn try_fit_dataset(&self, data: &Dataset, seed: u64) -> Result<MultiClassSpe, SpeError> {
        let k = data.n_classes();
        if k == 2 {
            let spe = self.binary.try_fit_dataset(data, seed)?;
            return Ok(MultiClassSpe {
                inner: Box::new(spe),
                n_classes: 2,
                strategy: self.strategy,
            });
        }
        let model = match self.strategy {
            MultiClassStrategy::OneVsRest => self.fit_one_vs_rest(data, seed)?,
            MultiClassStrategy::Native => self.fit_native(data, seed)?,
        };
        Ok(MultiClassSpe {
            inner: Box::new(model),
            n_classes: k,
            strategy: self.strategy,
        })
    }

    /// Panicking wrapper over [`Self::try_fit_dataset`].
    ///
    /// # Panics
    /// Panics with the error's `Display` output on the conditions
    /// [`Self::try_fit_dataset`] reports.
    pub fn fit_dataset(&self, data: &Dataset, seed: u64) -> MultiClassSpe {
        self.try_fit_dataset(data, seed)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// One binary SPE per class (class `c` = positive, rest = negative),
    /// each seeded from an independent fork of `seed`.
    fn fit_one_vs_rest(&self, data: &Dataset, seed: u64) -> Result<OneVsRestModel, SpeError> {
        let k = data.n_classes();
        let counts = data.class_counts();
        if let Some(missing) = counts.iter().position(|&c| c == 0) {
            return Err(SpeError::EmptyClass {
                label: missing as u8,
            });
        }
        let mut per_class: Vec<Box<dyn Model>> = Vec::with_capacity(k);
        for c in 0..k {
            let binary_y: Vec<u8> = data
                .y()
                .iter()
                .map(|&l| u8::from(l as usize == c))
                .collect();
            let sub = Dataset::new(data.x().clone(), binary_y);
            let spe = self
                .binary
                .try_fit_dataset(&sub, fork_seed(seed, 0x0C1A5500 + c as u64))?;
            per_class.push(Box::new(spe));
        }
        Ok(OneVsRestModel::new(per_class))
    }

    /// The joint k-way loop: per-iteration per-class self-paced
    /// subsets (schedule targets, k-way hardness), k one-vs-rest base
    /// fits per member on the shared subset, regrouped per class.
    fn fit_native(&self, data: &Dataset, seed: u64) -> Result<OneVsRestModel, SpeError> {
        if self.binary.n_estimators == 0 {
            return Err(SpeError::InvalidConfig(
                "need at least one estimator".into(),
            ));
        }
        if self.binary.k_bins == 0 {
            return Err(SpeError::InvalidConfig("need at least one bin".into()));
        }
        // Reject/repair dirty features and missing classes up front,
        // exactly like the binary path.
        let (clean, _report) = Sanitizer::new(self.binary.sanitize).sanitize(data)?;
        let data = clean.as_ref();

        self.binary.runtime.install(|| {
            let k = data.n_classes();
            let n = self.binary.n_estimators;
            let class_rows = data.per_class_indices();
            let counts = data.class_counts();
            let n_rows = data.len();
            let sampler = SelfPacedSampler {
                k_bins: self.binary.k_bins,
            };
            let mut rng = SeededRng::new(seed);

            // Running sum of each member's *raw* one-vs-rest scores,
            // row-major [n_rows × k]. Normalizing a row of sums equals
            // normalizing the row of averages, so hardness is measured
            // against exactly the distribution the final model outputs.
            let mut score_sum = vec![0.0f64; n_rows * k];
            let mut members: Vec<Vec<Box<dyn Model>>> = Vec::with_capacity(n);

            for i in 0..n {
                let targets = self.balancing.targets(&counts, i, n);

                // Per-class subset selection (positions within each
                // class's row list).
                let mut subset_rows: Vec<usize> = Vec::new();
                let alpha = self.binary.alpha_schedule.alpha(i, n);
                for (c, rows) in class_rows.iter().enumerate() {
                    if rows.is_empty() {
                        continue;
                    }
                    let selected: Vec<usize> = if members.is_empty() || alpha.is_none() {
                        // First member (line 2 of Algorithm 1) and the
                        // Uniform-ablation schedule: plain random.
                        rng.sample_indices(rows.len(), targets[c].min(rows.len()))
                    } else {
                        let hardness: Vec<f64> = rows
                            .iter()
                            .map(|&r| {
                                let row = &score_sum[r * k..(r + 1) * k];
                                let total: f64 = row.iter().sum();
                                let p_true = if total > 0.0 {
                                    row[c] / total
                                } else {
                                    1.0 / k as f64
                                };
                                self.binary.hardness.eval_class(p_true)
                            })
                            .collect();
                        sampler
                            .sample(&hardness, alpha.unwrap_or(0.0), targets[c], &mut rng)
                            .selected
                    };
                    subset_rows.extend(selected.iter().map(|&s| rows[s]));
                }

                // Shuffle so batch-training base learners see mixed
                // classes, then materialize the shared subset once.
                rng.shuffle(&mut subset_rows);
                let sub_x = data.x().select_rows(&subset_rows);
                let sub_y: Vec<u8> = subset_rows.iter().map(|&r| data.y()[r]).collect();

                // K one-vs-rest base fits on the shared subset.
                let member_seed = fork_seed(seed, 0x3A71E000 + i as u64);
                let mut scorers: Vec<Box<dyn Model>> = Vec::with_capacity(k);
                for c in 0..k {
                    let bin_y: Vec<u8> = sub_y.iter().map(|&l| u8::from(l as usize == c)).collect();
                    let scorer: Box<dyn Model> = if !bin_y.contains(&1) {
                        Box::new(ConstantModel(0.0))
                    } else if !bin_y.contains(&0) {
                        Box::new(ConstantModel(1.0))
                    } else {
                        self.binary
                            .base
                            .fit(&sub_x, &bin_y, fork_seed(member_seed, c as u64))
                    };
                    let scores = scorer.predict_proba(data.x());
                    if !scores.iter().all(|p| p.is_finite()) {
                        return Err(SpeError::NonFiniteOutput {
                            context: format!("member {i} class {c}"),
                        });
                    }
                    for (r, &p) in scores.iter().enumerate() {
                        score_sum[r * k + c] += p;
                    }
                    scorers.push(scorer);
                }
                members.push(scorers);
            }

            // Regroup member-major → class-major: class c's scorer is
            // the soft vote of every member's c-th fit.
            let mut by_class: Vec<Vec<Box<dyn Model>>> =
                (0..k).map(|_| Vec::with_capacity(n)).collect();
            for member in members {
                for (c, scorer) in member.into_iter().enumerate() {
                    by_class[c].push(scorer);
                }
            }
            let per_class: Vec<Box<dyn Model>> = by_class
                .into_iter()
                .map(|ms| Box::new(SoftVoteEnsemble::new(ms)) as Box<dyn Model>)
                .collect();
            Ok(OneVsRestModel::new(per_class))
        })
    }
}

/// A trained k-class self-paced ensemble.
///
/// For `k = 2` this wraps a plain binary [`SelfPacedEnsemble`]; for
/// `k > 2`, a per-class [`OneVsRestModel`] (either strategy). Snapshots
/// accordingly persist as binary `SelfPaced` or k-way `MultiClass`
/// envelopes.
pub struct MultiClassSpe {
    inner: Box<dyn Model>,
    n_classes: usize,
    strategy: MultiClassStrategy,
}

impl std::fmt::Debug for MultiClassSpe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiClassSpe")
            .field("n_classes", &self.n_classes)
            .field("strategy", &self.strategy)
            .finish_non_exhaustive()
    }
}

impl MultiClassSpe {
    /// The strategy this model was trained with.
    pub fn strategy(&self) -> MultiClassStrategy {
        self.strategy
    }

    /// Rebuilds a k-class SPE from a persisted snapshot: `MultiClass`
    /// restores the per-class model, `SelfPaced` restores the binary
    /// special case. Other kinds are a typed mismatch.
    pub fn from_snapshot(snapshot: ModelSnapshot) -> Result<Self, SpeError> {
        match snapshot {
            ModelSnapshot::MultiClass { per_class } => {
                let k = per_class.len();
                let scorers = per_class.into_iter().map(ModelSnapshot::restore).collect();
                Ok(Self {
                    inner: Box::new(OneVsRestModel::new(scorers)),
                    n_classes: k,
                    strategy: MultiClassStrategy::OneVsRest,
                })
            }
            snap @ ModelSnapshot::SelfPaced { .. } => Ok(Self {
                inner: Box::new(SelfPacedEnsemble::from_snapshot(snap)?),
                n_classes: 2,
                strategy: MultiClassStrategy::OneVsRest,
            }),
            other => Err(SpeError::InvalidConfig(format!(
                "cannot rebuild a multi-class SPE from a {:?} snapshot",
                other.kind()
            ))),
        }
    }
}

impl Model for MultiClassSpe {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        self.inner.predict_proba_view(x)
    }

    fn predict_proba_into(&self, x: MatrixView<'_>, out: &mut [f64]) {
        self.inner.predict_proba_into(x, out);
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba_k_into(&self, x: MatrixView<'_>, out: &mut [f64]) {
        self.inner.predict_proba_k_into(x, out);
    }

    fn snapshot(&self) -> Option<ModelSnapshot> {
        self.inner.snapshot()
    }

    fn feature_bound(&self) -> FeatureBound {
        self.inner.feature_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::Matrix;

    /// K Gaussian blobs on a ring with geometric per-class imbalance.
    fn blobs(k: usize, base: usize, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(0, 2);
        let mut y = Vec::new();
        for c in 0..k {
            let n_c = (base >> c).max(12);
            let angle = c as f64 / k as f64 * std::f64::consts::TAU;
            let (cx, cy) = (2.2 * angle.cos(), 2.2 * angle.sin());
            for _ in 0..n_c {
                x.push_row(&[rng.normal(cx, 0.7), rng.normal(cy, 0.7)]);
                y.push(c as u8);
            }
        }
        Dataset::multiclass(x, y, k)
    }

    fn accuracy(model: &dyn Model, data: &Dataset) -> f64 {
        let pred = model.predict_class(data.x());
        let hits = pred.iter().zip(data.y()).filter(|(a, b)| a == b).count();
        hits as f64 / data.len() as f64
    }

    #[test]
    fn binary_data_delegates_bit_exactly() {
        let mut rng = SeededRng::new(3);
        let mut x = Matrix::with_capacity(0, 2);
        let mut y = Vec::new();
        for i in 0..300 {
            let label = u8::from(i % 10 == 0);
            let c = if label == 1 { 1.3 } else { -0.4 };
            x.push_row(&[rng.normal(c, 1.0), rng.normal(-c, 1.0)]);
            y.push(label);
        }
        let data = Dataset::new(x, y);
        for strategy in [MultiClassStrategy::OneVsRest, MultiClassStrategy::Native] {
            let mc = MultiClassSpeConfig::new(5)
                .strategy(strategy)
                .try_fit_dataset(&data, 42)
                .unwrap_or_else(|e| panic!("{e}"));
            let binary = SelfPacedEnsembleConfig::new(5)
                .try_fit_dataset(&data, 42)
                .unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(mc.n_classes(), 2);
            assert_eq!(
                mc.predict_proba(data.x()),
                binary.predict_proba(data.x()),
                "{strategy:?} drifted from the binary path"
            );
        }
    }

    #[test]
    fn one_vs_rest_learns_separable_blobs() {
        let data = blobs(4, 240, 7);
        let model = MultiClassSpeConfig::new(8)
            .try_fit_dataset(&data, 1)
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(model.n_classes(), 4);
        assert!(accuracy(&model, &data) > 0.8);
        // Rows are proper distributions.
        let proba = model.predict_proba_k(data.x());
        for row in proba.chunks_exact(4) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn native_strategy_learns_separable_blobs() {
        let data = blobs(4, 240, 9);
        for balancing in [
            BalancingSchedule::Uniform,
            BalancingSchedule::Progressive,
            BalancingSchedule::Custom(vec![60, 60, 40, 12]),
        ] {
            let model = MultiClassSpeConfig::new(8)
                .strategy(MultiClassStrategy::Native)
                .balancing(balancing.clone())
                .try_fit_dataset(&data, 2)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(
                accuracy(&model, &data) > 0.75,
                "{balancing:?} failed to learn"
            );
        }
    }

    #[test]
    fn fits_are_deterministic_in_the_seed() {
        let data = blobs(3, 160, 5);
        for strategy in [MultiClassStrategy::OneVsRest, MultiClassStrategy::Native] {
            let cfg = MultiClassSpeConfig::new(4).strategy(strategy);
            let a = cfg.try_fit_dataset(&data, 77).unwrap();
            let b = cfg.try_fit_dataset(&data, 77).unwrap();
            assert_eq!(
                a.predict_proba_k(data.x()),
                b.predict_proba_k(data.x()),
                "{strategy:?} not deterministic"
            );
        }
    }

    #[test]
    fn snapshot_round_trips_through_multiclass_envelope() {
        let data = blobs(3, 120, 11);
        for strategy in [MultiClassStrategy::OneVsRest, MultiClassStrategy::Native] {
            let model = MultiClassSpeConfig::new(3)
                .strategy(strategy)
                .try_fit_dataset(&data, 4)
                .unwrap();
            let snap = model.snapshot().unwrap_or_else(|| panic!("no snapshot"));
            assert_eq!(snap.kind(), "MultiClass");
            assert_eq!(snap.n_classes(), 3);
            let restored = MultiClassSpe::from_snapshot(snap).unwrap();
            assert_eq!(
                restored.predict_proba_k(data.x()),
                model.predict_proba_k(data.x()),
                "{strategy:?} snapshot drifted"
            );
        }
    }

    #[test]
    fn missing_class_is_a_typed_error() {
        let x = Matrix::zeros(4, 1);
        let d = Dataset::multiclass(x, vec![0, 0, 1, 1], 3);
        for strategy in [MultiClassStrategy::OneVsRest, MultiClassStrategy::Native] {
            let err = MultiClassSpeConfig::new(2)
                .strategy(strategy)
                .try_fit_dataset(&d, 0)
                .unwrap_err();
            assert_eq!(err, SpeError::EmptyClass { label: 2 }, "{strategy:?}");
        }
    }
}
