//! Self-paced Ensemble (SPE) — the primary contribution of
//! *"Self-paced Ensemble for Highly Imbalanced Massive Data
//! Classification"* (Liu et al., ICDE 2020).
//!
//! SPE builds an ensemble of `n` base classifiers, each trained on the
//! full minority set `P` plus an under-sampled majority subset `N'` with
//! `|N'| = |P|`. What distinguishes it from random under-sampling is how
//! `N'` is chosen: majority samples are binned by their **classification
//! hardness** `H(x, y, F_i)` with respect to the *current* ensemble, and
//! bins are sampled with weight `p_ℓ = 1 / (h_ℓ + α)` where `h_ℓ` is the
//! bin's average hardness and `α = tan(iπ/2n)` is the **self-paced
//! factor** that grows over iterations:
//!
//! - early (`α ≈ 0`): *hardness harmonization* — every hardness level
//!   contributes equally, down-weighting the huge trivial-sample bins;
//! - late (`α → ∞`): near-uniform bin weights, which concentrates
//!   sampling on high-population bins' *share of slots per bin* equally,
//!   keeping a skeleton of easy samples while focusing on hard ones.
//!
//! The crate decomposes the algorithm into inspectable pieces:
//! [`hardness`] (the three decomposable error functions of §VI-C4),
//! [`bins`] (the hardness histogram), [`sampler`] (the self-paced
//! under-sampling step, reused by the Fig. 3 experiment), and
//! [`ensemble`] ([`SelfPacedEnsemble`], Algorithm 1).

pub mod bins;
pub mod builder;
pub mod ensemble;
pub mod hardness;
pub mod multiclass;
pub mod oocore;
pub mod report;
pub mod sampler;

pub use bins::{BinStats, HardnessBins};
pub use builder::SelfPacedEnsembleBuilder;
pub use ensemble::{FitTrace, SelfPacedEnsemble, SelfPacedEnsembleConfig};
pub use hardness::HardnessFn;
pub use multiclass::{MultiClassSpe, MultiClassSpeConfig, MultiClassStrategy};
pub use oocore::{chunk_rows_for_budget, ChunkedFitOptions, OocReport};
pub use report::{FitReport, MemberOutcome};
pub use sampler::{self_paced_factor, AlphaSchedule, BalancingSchedule, SelfPacedSampler};
