//! `SelfPacedEnsemble` — Algorithm 1 of the paper.

use crate::hardness::HardnessFn;
use crate::report::{FitReport, MemberOutcome};
use crate::sampler::{AlphaSchedule, SelfPacedSampler};
use spe_data::{
    BinIndex, Dataset, Matrix, MatrixView, SanitizePolicy, Sanitizer, SeededRng, SpeError,
};
use spe_learners::ensemble::SoftVoteEnsemble;
use spe_learners::persist::ModelSnapshot;
use spe_learners::traits::{
    validate_fit_inputs, BinnedLearner, BinnedProblem, FeatureBound, Learner, Model, SharedLearner,
};
use spe_learners::DecisionTreeConfig;
use spe_runtime::{fork_seed, panic_message, Runtime, TrainingBudget};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Configuration for a Self-paced Ensemble.
///
/// Defaults follow the paper: `k = 20` bins, absolute-error hardness,
/// 10 base classifiers, C4.5-style trees as the base learner.
///
/// Prefer [`SelfPacedEnsembleConfig::builder`] for constructing custom
/// configurations — it validates at `build()` time and returns
/// [`SpeError::InvalidConfig`] instead of panicking during `fit`.
#[derive(Clone)]
pub struct SelfPacedEnsembleConfig {
    /// Number of base classifiers `n`.
    pub n_estimators: usize,
    /// Number of hardness bins `k` (paper default 20).
    pub k_bins: usize,
    /// Hardness function `H` (paper default: absolute error).
    pub hardness: HardnessFn,
    /// Base learner `f`.
    pub base: SharedLearner,
    /// α schedule (paper default: `tan(iπ/2n)`); the other variants are
    /// ablations, see [`AlphaSchedule`].
    pub alpha_schedule: AlphaSchedule,
    /// Parallelism config installed for the duration of each fit (the
    /// default defers to `SPE_THREADS` / hardware parallelism).
    pub runtime: Runtime,
    /// How [`Self::try_fit_dataset`] handles non-finite feature values
    /// before training (default: reject with a typed error).
    pub sanitize: SanitizePolicy,
    /// Extra fit attempts (with freshly derived seeds) granted to a
    /// member whose base-learner fit panics or emits non-finite
    /// probabilities, before the member is dropped (default 2).
    pub max_member_retries: usize,
    /// Minimum members that must train for the fit to succeed; fewer
    /// yields [`SpeError::TrainingFailed`] (default 1, floored at 1).
    pub min_members: usize,
    /// Cooperative wall-clock budget installed for the duration of each
    /// fit (default: unlimited). When the deadline passes, remaining
    /// member slots are skipped and iterative base learners cut their
    /// internal loops short.
    pub budget: TrainingBudget,
}

impl std::fmt::Debug for SelfPacedEnsembleConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfPacedEnsembleConfig")
            .field("n_estimators", &self.n_estimators)
            .field("k_bins", &self.k_bins)
            .field("hardness", &self.hardness)
            .field("base", &self.base.name())
            .field("runtime", &self.runtime)
            .field("sanitize", &self.sanitize)
            .field("max_member_retries", &self.max_member_retries)
            .field("min_members", &self.min_members)
            .field("budget", &self.budget)
            .finish()
    }
}

impl Default for SelfPacedEnsembleConfig {
    fn default() -> Self {
        Self {
            n_estimators: 10,
            k_bins: 20,
            hardness: HardnessFn::AbsoluteError,
            base: Arc::new(DecisionTreeConfig::default()),
            alpha_schedule: AlphaSchedule::SelfPaced,
            runtime: Runtime::default(),
            sanitize: SanitizePolicy::Reject,
            max_member_retries: 2,
            min_members: 1,
            budget: TrainingBudget::unlimited(),
        }
    }
}

impl SelfPacedEnsembleConfig {
    /// SPE with `n` members over the default tree base learner.
    pub fn new(n_estimators: usize) -> Self {
        Self {
            n_estimators,
            ..Self::default()
        }
    }

    /// SPE with `n` members over a custom base learner.
    pub fn with_base(n_estimators: usize, base: SharedLearner) -> Self {
        Self {
            n_estimators,
            base,
            ..Self::default()
        }
    }

    /// Starts a [builder](crate::builder::SelfPacedEnsembleBuilder) for
    /// a validated custom configuration.
    pub fn builder() -> crate::builder::SelfPacedEnsembleBuilder {
        crate::builder::SelfPacedEnsembleBuilder::new()
    }

    /// Trains the ensemble (Algorithm 1). Returns the trained model with
    /// its per-iteration diagnostics.
    ///
    /// # Panics
    /// Panics on the conditions [`Self::try_fit_dataset`] reports as
    /// errors (invalid config, single-class data); the panic message is
    /// the error's `Display` output.
    pub fn fit_dataset(&self, data: &Dataset, seed: u64) -> SelfPacedEnsemble {
        self.fit_dataset_traced(data, seed).0
    }

    /// Like [`Self::fit_dataset`] but panicking-free: returns
    /// [`SpeError`] when the configuration or data cannot be trained on.
    pub fn try_fit_dataset(
        &self,
        data: &Dataset,
        seed: u64,
    ) -> Result<SelfPacedEnsemble, SpeError> {
        Ok(self.try_fit_dataset_traced(data, seed)?.0)
    }

    /// Warm-started refit: like [`Self::try_fit_dataset`], but the
    /// *first* member already samples self-paced, using hardness
    /// computed from `live_proba` — the live (incumbent) model's
    /// positive-class probabilities for every row of `data`, in row
    /// order — instead of falling back to uniform random
    /// under-sampling. This is the online-retraining entry point: when
    /// a drifted window is refit, the rows the incumbent now gets wrong
    /// are exactly the ones the first member should concentrate on, so
    /// the candidate starts adapting one full round earlier.
    ///
    /// `live_proba` must be finite, in `data` row order, and cover
    /// every row; a sanitizer policy that drops rows
    /// ([`SanitizePolicy::DropRows`]) would desynchronize the two and
    /// is rejected with [`SpeError::InvalidConfig`]. Later members
    /// recompute hardness against the *new* ensemble exactly as in the
    /// cold fit — the incumbent seeds the first selection and is never
    /// a voting member of the refit ensemble.
    pub fn try_fit_dataset_warm(
        &self,
        data: &Dataset,
        seed: u64,
        live_proba: &[f64],
    ) -> Result<SelfPacedEnsemble, SpeError> {
        if live_proba.len() != data.len() {
            return Err(SpeError::DimensionMismatch {
                what: "warm probability/row",
                expected: data.len(),
                got: live_proba.len(),
            });
        }
        if !live_proba.iter().all(|p| p.is_finite()) {
            return Err(SpeError::NonFiniteOutput {
                context: "warm-start probabilities".into(),
            });
        }
        if matches!(self.sanitize, SanitizePolicy::DropRows) {
            return Err(SpeError::InvalidConfig(
                "warm-start fits cannot use SanitizePolicy::DropRows: dropped rows would \
                 desynchronize the live probabilities from the training rows"
                    .into(),
            ));
        }
        Ok(self.try_fit_traced_inner(data, seed, Some(live_proba))?.0)
    }

    /// Like [`Self::fit_dataset`], additionally returning the
    /// per-iteration under-sampling trace (which majority rows each
    /// member trained on, and their hardness) — used by the Fig. 3 and
    /// Fig. 6 experiments.
    ///
    /// # Panics
    /// Same conditions as [`Self::fit_dataset`].
    pub fn fit_dataset_traced(&self, data: &Dataset, seed: u64) -> (SelfPacedEnsemble, FitTrace) {
        self.try_fit_dataset_traced(data, seed)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`Self::fit_dataset_traced`]: validates
    /// configuration, sanitizes the input per [`Self::sanitize`], then
    /// runs Algorithm 1 with this config's [`Runtime`] and
    /// [`TrainingBudget`] installed and per-member fault isolation.
    pub fn try_fit_dataset_traced(
        &self,
        data: &Dataset,
        seed: u64,
    ) -> Result<(SelfPacedEnsemble, FitTrace), SpeError> {
        self.try_fit_traced_inner(data, seed, None)
    }

    /// Shared validated entry for cold and warm fits. `warm`, when
    /// present, holds the live model's probabilities per `data` row and
    /// drives the first member's self-paced selection; `None` is the
    /// cold path, bit-identical to the original algorithm.
    fn try_fit_traced_inner(
        &self,
        data: &Dataset,
        seed: u64,
        warm: Option<&[f64]>,
    ) -> Result<(SelfPacedEnsemble, FitTrace), SpeError> {
        if self.n_estimators == 0 {
            return Err(SpeError::InvalidConfig(
                "need at least one estimator".into(),
            ));
        }
        if self.k_bins == 0 {
            return Err(SpeError::InvalidConfig("need at least one bin".into()));
        }
        if self.min_members > self.n_estimators {
            return Err(SpeError::InvalidConfig(format!(
                "min_members ({}) exceeds n_estimators ({})",
                self.min_members, self.n_estimators
            )));
        }
        if data.is_empty() {
            return Err(SpeError::EmptyDataset);
        }

        // The sanitizer rejects/repairs non-finite features and surfaces
        // missing classes as typed errors (no policy can repair those).
        let (clean, sanitize_report) = Sanitizer::new(self.sanitize).sanitize(data)?;

        // A row-dropping sanitizer would desynchronize `warm` from the
        // cleaned rows; `try_fit_dataset_warm` rejects that policy up
        // front, so equality can only break on an internal invariant.
        debug_assert!(
            warm.is_none() || clean.len() == data.len(),
            "sanitizer changed row count under a warm-start fit"
        );

        self.runtime.install(|| {
            self.budget
                .install(|| self.fit_validated(&clean, seed, sanitize_report, warm))
        })
    }

    /// Algorithm 1 proper, with per-member fault isolation; input
    /// preconditions already checked. On the healthy path (no panics, no
    /// NaN members, no budget trips) this is bit-for-bit the original
    /// sequential loop: the parent RNG advances identically and every
    /// member trains from `rng.fork(i)`.
    fn fit_validated(
        &self,
        data: &Dataset,
        seed: u64,
        sanitize_report: spe_data::SanitizeReport,
        warm: Option<&[f64]>,
    ) -> Result<(SelfPacedEnsemble, FitTrace), SpeError> {
        let mut rng = SeededRng::new(seed);

        let idx = data.class_index();
        let n_pos = idx.minority.len();
        let n_neg = idx.majority.len();

        // Materialize the class subsets once; every iteration only varies
        // the majority selection.
        let minority_x = data.x().select_rows(&idx.minority);
        let majority_x = data.x().select_rows(&idx.majority);
        let majority_y = vec![0u8; n_neg];

        // Warm start: hardness of the majority rows under the *live*
        // model, used in place of random under-sampling for member 0.
        let warm_hardness = warm.map(|p| {
            let live_proba: Vec<f64> = idx.majority.iter().map(|&r| p[r]).collect();
            self.hardness.eval_batch(&live_proba, &majority_y)
        });

        let n = self.n_estimators;
        let sampler = SelfPacedSampler {
            k_bins: self.k_bins,
        };
        // Histogram fast path: when the base learner can train on a
        // shared bin index and the per-member training sets are large
        // enough to amortize quantization, bin the full (cleaned)
        // matrix once — every member then trains on row ids of this
        // index instead of a freshly materialized P ∪ N' sub-matrix.
        let bins = self.base.as_binned().and_then(|bl| {
            let req = bl.bin_request()?;
            (n_pos + n_pos.min(n_neg) >= req.min_rows)
                .then(|| BinIndex::build(data.x(), req.max_bins))
        });
        // Retry seeds come from an independent chain off the fit seed, so
        // a retry never perturbs the parent RNG stream (which stays
        // aligned with the healthy path for all later members).
        let retry_root = fork_seed(seed, 0xFA01);

        let mut models: Vec<Box<dyn Model>> = Vec::with_capacity(n);
        let mut alphas: Vec<f64> = Vec::with_capacity(n);
        let mut outcomes: Vec<MemberOutcome> = Vec::with_capacity(n);
        let mut trace = FitTrace {
            majority_rows: idx.majority.clone(),
            selections: Vec::with_capacity(n),
            hardness: Vec::new(),
        };
        // Running average of majority probabilities avoids re-scoring all
        // previous members each iteration: after i members,
        // F_i(x) = mean of member outputs.
        let mut proba_sum = vec![0.0_f64; n_neg];

        for i in 0..n {
            // Budget check between members: once tripped, remaining
            // slots are skipped — except the very first member, which is
            // always attempted so `min_members = 1` can still succeed.
            if !models.is_empty() && spe_runtime::budget_exceeded() {
                outcomes.push(MemberOutcome::Skipped);
                continue;
            }

            // Select the majority subset N' for this member.
            let (selected, alpha, hardness) = if models.is_empty() {
                if let Some(h) = warm_hardness.as_ref().filter(|_| i == 0) {
                    // Warm refit: the first member already samples
                    // self-paced at α₀ from incumbent-model hardness;
                    // schedules with no α at iteration 0 fall back to
                    // the cold random draw.
                    match self.alpha_schedule.alpha(0, n) {
                        Some(alpha) => {
                            let outcome = sampler.sample(h, alpha, n_pos, &mut rng);
                            (outcome.selected, alpha, Some(h.clone()))
                        }
                        None => (
                            rng.sample_indices(n_neg, n_pos.min(n_neg)),
                            f64::NAN,
                            Some(h.clone()),
                        ),
                    }
                } else {
                    // f0: random under-sampling (Algorithm 1, line 2).
                    (rng.sample_indices(n_neg, n_pos.min(n_neg)), 0.0, None)
                }
            } else {
                // Hardness w.r.t. the current ensemble F_i (lines 4–5).
                let inv = 1.0 / models.len() as f64;
                let ensemble_proba: Vec<f64> = proba_sum.iter().map(|&s| s * inv).collect();
                let hardness = self.hardness.eval_batch(&ensemble_proba, &majority_y);

                // Self-paced under-sampling (lines 6–9), or the ablated
                // variants of AlphaSchedule.
                match self.alpha_schedule.alpha(i, n) {
                    Some(alpha) => {
                        let outcome = sampler.sample(&hardness, alpha, n_pos, &mut rng);
                        (outcome.selected, alpha, Some(hardness))
                    }
                    None => (
                        rng.sample_indices(n_neg, n_pos.min(n_neg)),
                        f64::NAN,
                        Some(hardness),
                    ),
                }
            };

            // Train fi on P ∪ N' (line 10), isolated: a panicking or
            // NaN-emitting attempt is retried with a fresh seed up to
            // `max_member_retries` times, then the slot is dropped.
            let member_rng = rng.fork(i as u64);
            let mut last_err = SpeError::Panicked {
                context: format!("member {i}"),
                message: "never attempted".into(),
            };
            let mut trained: Option<(Box<dyn Model>, Vec<f64>)> = None;
            let mut attempts = 0usize;
            for attempt in 0..=self.max_member_retries {
                let attempt_rng = if attempt == 0 {
                    member_rng.clone()
                } else {
                    SeededRng::new(fork_seed(fork_seed(retry_root, i as u64), attempt as u64))
                };
                attempts = attempt + 1;
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let model = match (&bins, self.base.as_binned()) {
                        (Some(b), Some(bl)) => self.train_member_binned(
                            bl,
                            b,
                            data.y(),
                            &idx.minority,
                            &idx.majority,
                            &selected,
                            attempt_rng,
                        ),
                        _ => self.train_member(&minority_x, &majority_x, &selected, attempt_rng),
                    };
                    let probs = model.predict_proba(&majority_x);
                    (model, probs)
                }));
                match result {
                    Ok((model, probs)) => {
                        if probs.iter().all(|p| p.is_finite()) {
                            trained = Some((model, probs));
                            break;
                        }
                        last_err = SpeError::NonFiniteOutput {
                            context: format!("member {i}"),
                        };
                    }
                    Err(payload) => {
                        last_err = SpeError::Panicked {
                            context: format!("member {i}"),
                            message: panic_message(payload.as_ref()),
                        };
                    }
                }
            }

            match trained {
                Some((model, probs)) => {
                    for (s, p) in proba_sum.iter_mut().zip(probs) {
                        *s += p;
                    }
                    models.push(model);
                    alphas.push(alpha);
                    trace.selections.push(selected);
                    if let Some(h) = hardness {
                        trace.hardness.push(h);
                    }
                    outcomes.push(if attempts == 1 {
                        MemberOutcome::Trained
                    } else {
                        MemberOutcome::Retried { attempts }
                    });
                }
                None => outcomes.push(MemberOutcome::Dropped { error: last_err }),
            }
        }

        let required = self.min_members.max(1);
        if models.len() < required {
            return Err(SpeError::TrainingFailed {
                trained: models.len(),
                required,
            });
        }

        let report = FitReport {
            members: outcomes,
            sanitize: sanitize_report,
            budget_exhausted: spe_runtime::budget_exceeded(),
        };
        Ok((
            SelfPacedEnsemble {
                inner: SoftVoteEnsemble::try_new(models)?,
                alphas,
                report,
            },
            trace,
        ))
    }

    fn train_member(
        &self,
        minority_x: &Matrix,
        majority_x: &Matrix,
        majority_sel: &[usize],
        mut rng: SeededRng,
    ) -> Box<dyn Model> {
        let selected = majority_x.select_rows(majority_sel);
        let x = minority_x.vstack(&selected);
        let mut y = vec![1u8; minority_x.rows()];
        y.extend(std::iter::repeat_n(0u8, selected.rows()));
        // Shuffle so batch-training base learners see mixed classes.
        let mut order: Vec<usize> = (0..y.len()).collect();
        rng.shuffle(&mut order);
        let xs = x.select_rows(&order);
        let ys: Vec<u8> = order.iter().map(|&i| y[i]).collect();
        self.base.fit(&xs, &ys, rng.below(u32::MAX as usize) as u64)
    }

    /// Binned counterpart of [`Self::train_member`]: instead of copying
    /// P ∪ N' into a new matrix, the member trains on the row ids of the
    /// shared bin index (all minority rows plus the selected majority
    /// rows). Row order does not influence histogram training, so no
    /// shuffle is needed.
    #[allow(clippy::too_many_arguments)]
    fn train_member_binned(
        &self,
        learner: &dyn BinnedLearner,
        bins: &BinIndex,
        y: &[u8],
        minority_rows: &[usize],
        majority_rows: &[usize],
        majority_sel: &[usize],
        mut rng: SeededRng,
    ) -> Box<dyn Model> {
        let problem = BinnedProblem {
            bins,
            y,
            weights: None,
        };
        let mut rows: Vec<u32> = Vec::with_capacity(minority_rows.len() + majority_sel.len());
        rows.extend(minority_rows.iter().map(|&r| r as u32));
        rows.extend(majority_sel.iter().map(|&s| majority_rows[s] as u32));
        learner.fit_on_bins(&problem, &rows, rng.below(u32::MAX as usize) as u64)
    }
}

/// Per-iteration under-sampling record of one SPE training run.
#[derive(Clone, Debug, Default)]
pub struct FitTrace {
    /// Row indices (into the training dataset) of the majority class, in
    /// the order `selections`/`hardness` positions refer to.
    pub majority_rows: Vec<usize>,
    /// Majority positions selected at each iteration (index 0 = random
    /// first member).
    pub selections: Vec<Vec<usize>>,
    /// Hardness of every majority sample at each self-paced iteration
    /// (iterations 1..n; the random first member has no hardness).
    pub hardness: Vec<Vec<f64>>,
}

/// A trained Self-paced Ensemble.
pub struct SelfPacedEnsemble {
    inner: SoftVoteEnsemble,
    alphas: Vec<f64>,
    report: FitReport,
}

impl SelfPacedEnsemble {
    /// Assembles an ensemble from already-trained members — the
    /// out-of-core fit ([`crate::oocore`]) runs its own training loop
    /// outside `fit_validated`.
    pub(crate) fn from_members(
        models: Vec<Box<dyn Model>>,
        alphas: Vec<f64>,
        report: FitReport,
    ) -> Result<Self, SpeError> {
        Ok(Self {
            inner: SoftVoteEnsemble::try_new(models)?,
            alphas,
            report,
        })
    }

    /// Number of base models.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the ensemble has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Per-member training outcomes, sanitizer findings and budget
    /// status of the fit that produced this ensemble. A degraded-but-
    /// successful fit (some members dropped or skipped) is visible here;
    /// [`FitReport::is_clean`] is true for a fully healthy run.
    pub fn fit_report(&self) -> &FitReport {
        &self.report
    }

    /// The self-paced factor used at each iteration (α₀ = 0 for the
    /// random first member).
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Average probability of the first `k` members (training-curve
    /// experiments, Fig. 5 / Fig. 7).
    pub fn predict_proba_prefix(&self, x: &Matrix, k: usize) -> Vec<f64> {
        self.inner.predict_proba_prefix(x, k)
    }

    /// Rebuilds a typed SPE from a persisted [`ModelSnapshot`].
    ///
    /// Only [`ModelSnapshot::SelfPaced`] is accepted — other kinds come
    /// back as [`SpeError::InvalidConfig`] so loaders can surface a
    /// precise mismatch. The restored ensemble predicts bit-identically
    /// to the one the snapshot was taken from and keeps its recorded
    /// `alphas`; the [`FitReport`] is not persisted, so `fit_report()`
    /// on a loaded model is empty-but-clean.
    pub fn from_snapshot(snapshot: ModelSnapshot) -> Result<Self, SpeError> {
        match snapshot {
            ModelSnapshot::SelfPaced { alphas, members } => {
                if alphas.len() != members.len() {
                    return Err(SpeError::DimensionMismatch {
                        what: "alpha/member",
                        expected: members.len(),
                        got: alphas.len(),
                    });
                }
                let models = members.into_iter().map(ModelSnapshot::restore).collect();
                Ok(Self {
                    inner: SoftVoteEnsemble::try_new(models)?,
                    alphas,
                    report: FitReport::default(),
                })
            }
            other => Err(SpeError::InvalidConfig(format!(
                "cannot rebuild an SPE from a {:?} snapshot",
                other.kind()
            ))),
        }
    }
}

impl Model for SelfPacedEnsemble {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        self.inner.predict_proba_view(x)
    }

    fn predict_proba_into(&self, x: MatrixView<'_>, out: &mut [f64]) {
        self.inner.predict_proba_into(x, out);
    }

    /// `Some` only when every member is snapshottable (always true for
    /// the built-in base learners).
    fn snapshot(&self) -> Option<ModelSnapshot> {
        let members = self
            .inner
            .models()
            .iter()
            .map(|m| m.snapshot())
            .collect::<Option<Vec<_>>>()?;
        Some(ModelSnapshot::SelfPaced {
            alphas: self.alphas.clone(),
            members,
        })
    }

    fn feature_bound(&self) -> FeatureBound {
        self.inner.feature_bound()
    }
}

impl Learner for SelfPacedEnsembleConfig {
    /// SPE as a drop-in [`Learner`]: per-sample weights are not part of
    /// Algorithm 1 and are ignored (asserted absent in debug builds).
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        debug_assert!(weights.is_none(), "SPE does not support sample weights");
        let data = Dataset::new(x.clone(), y.to_vec());
        Box::new(self.fit_dataset(&data, seed))
    }

    /// Fallible fit surfacing SPE's extra preconditions (two-class data,
    /// non-degenerate config) as [`SpeError`] values.
    fn try_fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Result<Box<dyn Model>, SpeError> {
        validate_fit_inputs(x, y, weights)?;
        let data = Dataset::new(x.clone(), y.to_vec());
        Ok(Box::new(self.try_fit_dataset(&data, seed)?))
    }

    fn name(&self) -> &'static str {
        "SPE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::{NEGATIVE, POSITIVE};
    use spe_metrics::aucprc;

    /// Imbalanced overlapping Gaussians: minority at +1.2, majority at 0.
    fn overlapping(n_pos: usize, n_neg: usize, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(n_pos + n_neg, 2);
        let mut y = Vec::new();
        for _ in 0..n_neg {
            x.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]);
            y.push(0);
        }
        for _ in 0..n_pos {
            x.push_row(&[rng.normal(1.2, 1.0), rng.normal(1.2, 1.0)]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn trains_requested_number_of_members() {
        let d = overlapping(30, 600, 1);
        let m = SelfPacedEnsembleConfig::new(7).fit_dataset(&d, 2);
        assert_eq!(m.len(), 7);
        assert_eq!(m.alphas().len(), 7);
    }

    #[test]
    fn alpha_schedule_is_monotone() {
        let d = overlapping(20, 300, 3);
        let m = SelfPacedEnsembleConfig::new(10).fit_dataset(&d, 4);
        let a = m.alphas();
        assert_eq!(a[0], 0.0);
        for w in a.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn beats_single_model_on_imbalanced_overlap() {
        let train = overlapping(40, 2000, 5);
        let test = overlapping(40, 2000, 6);
        let tree = DecisionTreeConfig::default();
        let single = tree.fit(train.x(), train.y(), 7);
        let spe = SelfPacedEnsembleConfig::new(10).fit_dataset(&train, 7);
        let auc_single = aucprc(test.y(), &single.predict_proba(test.x()));
        let auc_spe = aucprc(test.y(), &spe.predict_proba(test.x()));
        assert!(
            auc_spe > auc_single,
            "single {auc_single:.3} vs spe {auc_spe:.3}"
        );
    }

    #[test]
    fn prefix_prediction_uses_partial_ensemble() {
        let d = overlapping(25, 400, 8);
        let m = SelfPacedEnsembleConfig::new(5).fit_dataset(&d, 9);
        let full = m.predict_proba(d.x());
        let prefix = m.predict_proba_prefix(d.x(), 5);
        assert_eq!(full, prefix);
        let one = m.predict_proba_prefix(d.x(), 1);
        assert_ne!(full, one);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = overlapping(20, 200, 10);
        let a = SelfPacedEnsembleConfig::new(4)
            .fit_dataset(&d, 11)
            .predict_proba(d.x());
        let b = SelfPacedEnsembleConfig::new(4)
            .fit_dataset(&d, 11)
            .predict_proba(d.x());
        assert_eq!(a, b);
    }

    #[test]
    fn works_as_learner_trait_object() {
        let d = overlapping(15, 150, 12);
        let learner: Arc<dyn Learner> = Arc::new(SelfPacedEnsembleConfig::new(3));
        let m = learner.fit(d.x(), d.y(), 13);
        assert_eq!(m.predict_proba(d.x()).len(), d.len());
        assert_eq!(learner.name(), "SPE");
    }

    #[test]
    fn minority_larger_than_majority_still_trains() {
        let d = overlapping(50, 20, 14);
        let m = SelfPacedEnsembleConfig::new(3).fit_dataset(&d, 15);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn ablated_schedules_train() {
        let d = overlapping(25, 400, 16);
        for schedule in [
            AlphaSchedule::Constant(0.0),
            AlphaSchedule::Constant(1e6),
            AlphaSchedule::Uniform,
        ] {
            let cfg = SelfPacedEnsembleConfig {
                alpha_schedule: schedule,
                ..SelfPacedEnsembleConfig::new(5)
            };
            let m = cfg.fit_dataset(&d, 17);
            assert_eq!(m.len(), 5, "{schedule:?}");
            let p = m.predict_proba(d.x());
            assert!(p.iter().all(|v| (0.0..=1.0).contains(v)), "{schedule:?}");
        }
    }

    #[test]
    fn uniform_schedule_records_nan_alphas() {
        let d = overlapping(20, 200, 18);
        let cfg = SelfPacedEnsembleConfig {
            alpha_schedule: AlphaSchedule::Uniform,
            ..SelfPacedEnsembleConfig::new(4)
        };
        let m = cfg.fit_dataset(&d, 19);
        assert_eq!(m.alphas()[0], 0.0);
        assert!(m.alphas()[1..].iter().all(|a| a.is_nan()));
    }

    #[test]
    #[should_panic(expected = "at least one minority")]
    fn rejects_single_class() {
        let x = Matrix::zeros(5, 1);
        let d = Dataset::new(x, vec![0; 5]);
        let _ = SelfPacedEnsembleConfig::default().fit_dataset(&d, 0);
    }

    #[test]
    fn try_fit_dataset_reports_errors_as_values() {
        let d = Dataset::new(Matrix::zeros(5, 1), vec![0; 5]);
        assert_eq!(
            SelfPacedEnsembleConfig::default()
                .try_fit_dataset(&d, 0)
                .err(),
            Some(SpeError::EmptyClass { label: POSITIVE })
        );
        let all_pos = Dataset::new(Matrix::zeros(5, 1), vec![1; 5]);
        assert_eq!(
            SelfPacedEnsembleConfig::default()
                .try_fit_dataset(&all_pos, 0)
                .err(),
            Some(SpeError::EmptyClass { label: NEGATIVE })
        );
        let cfg = SelfPacedEnsembleConfig::new(0);
        let ok = overlapping(10, 100, 20);
        assert!(matches!(
            cfg.try_fit_dataset(&ok, 0),
            Err(SpeError::InvalidConfig(_))
        ));
        let empty = Dataset::new(Matrix::zeros(0, 1), Vec::new());
        assert_eq!(
            SelfPacedEnsembleConfig::default()
                .try_fit_dataset(&empty, 0)
                .err(),
            Some(SpeError::EmptyDataset)
        );
    }

    #[test]
    fn try_fit_matches_panicking_fit() {
        let d = overlapping(20, 200, 21);
        let a = SelfPacedEnsembleConfig::new(4)
            .fit_dataset(&d, 22)
            .predict_proba(d.x());
        let b = SelfPacedEnsembleConfig::new(4)
            .try_fit_dataset(&d, 22)
            .unwrap()
            .predict_proba(d.x());
        assert_eq!(a, b);
    }

    /// Base learner that panics on every odd-numbered `fit` call —
    /// deterministic given the sequential member loop, and guaranteed to
    /// succeed on the first retry.
    struct FlakyEveryOther {
        inner: DecisionTreeConfig,
        calls: std::sync::atomic::AtomicUsize,
    }

    impl Learner for FlakyEveryOther {
        fn fit_weighted(
            &self,
            x: &Matrix,
            y: &[u8],
            weights: Option<&[f64]>,
            seed: u64,
        ) -> Box<dyn Model> {
            let call = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            assert!(call % 2 != 0, "flaky failure on call {call}");
            self.inner.fit_weighted(x, y, weights, seed)
        }
        fn name(&self) -> &'static str {
            "Flaky"
        }
    }

    struct AlwaysPanic;
    impl Learner for AlwaysPanic {
        fn fit_weighted(
            &self,
            _x: &Matrix,
            _y: &[u8],
            _w: Option<&[f64]>,
            _seed: u64,
        ) -> Box<dyn Model> {
            panic!("always fails");
        }
        fn name(&self) -> &'static str {
            "AlwaysPanic"
        }
    }

    #[test]
    fn all_members_failing_yields_training_failed_not_abort() {
        let d = overlapping(10, 100, 30);
        let cfg = SelfPacedEnsembleConfig::with_base(5, Arc::new(AlwaysPanic));
        assert_eq!(
            cfg.try_fit_dataset(&d, 31).err(),
            Some(SpeError::TrainingFailed {
                trained: 0,
                required: 1
            })
        );
    }

    #[test]
    fn flaky_members_recover_via_retries() {
        let d = overlapping(10, 100, 32);
        let cfg = SelfPacedEnsembleConfig::with_base(
            4,
            Arc::new(FlakyEveryOther {
                inner: DecisionTreeConfig::default(),
                calls: std::sync::atomic::AtomicUsize::new(0),
            }),
        );
        let m = cfg.try_fit_dataset(&d, 33).unwrap();
        assert_eq!(m.len(), 4);
        let report = m.fit_report();
        assert_eq!(report.n_trained(), 4);
        assert_eq!(report.n_retried(), 4);
        assert!(report
            .members
            .iter()
            .all(|o| matches!(o, MemberOutcome::Retried { attempts: 2 })));
    }

    #[test]
    fn flaky_members_drop_when_retries_disabled() {
        let d = overlapping(10, 100, 34);
        let cfg = SelfPacedEnsembleConfig {
            max_member_retries: 0,
            ..SelfPacedEnsembleConfig::with_base(
                4,
                Arc::new(FlakyEveryOther {
                    inner: DecisionTreeConfig::default(),
                    calls: std::sync::atomic::AtomicUsize::new(0),
                }),
            )
        };
        let m = cfg.try_fit_dataset(&d, 35).unwrap();
        // Calls alternate panic/success, so exactly half the slots drop.
        assert_eq!(m.len(), 2);
        let report = m.fit_report();
        assert_eq!(report.n_dropped(), 2);
        assert!(report.members.iter().any(|o| matches!(
            o,
            MemberOutcome::Dropped {
                error: SpeError::Panicked { .. }
            }
        )));
    }

    #[test]
    fn too_few_survivors_fails_with_min_members() {
        let d = overlapping(10, 100, 36);
        let cfg = SelfPacedEnsembleConfig {
            max_member_retries: 0,
            min_members: 3,
            ..SelfPacedEnsembleConfig::with_base(
                4,
                Arc::new(FlakyEveryOther {
                    inner: DecisionTreeConfig::default(),
                    calls: std::sync::atomic::AtomicUsize::new(0),
                }),
            )
        };
        assert_eq!(
            cfg.try_fit_dataset(&d, 37).err(),
            Some(SpeError::TrainingFailed {
                trained: 2,
                required: 3
            })
        );
    }

    #[test]
    fn exhausted_budget_skips_members_but_trains_first() {
        let d = overlapping(15, 150, 38);
        let cfg = SelfPacedEnsembleConfig {
            budget: TrainingBudget::wall_clock(std::time::Duration::ZERO),
            ..SelfPacedEnsembleConfig::new(6)
        };
        let m = cfg.try_fit_dataset(&d, 39).unwrap();
        assert_eq!(m.len(), 1, "first member always trains");
        let report = m.fit_report();
        assert!(report.budget_exhausted);
        assert_eq!(report.n_skipped(), 5);
        assert_eq!(report.members[0], MemberOutcome::Trained);
    }

    #[test]
    fn clean_run_reports_clean() {
        let d = overlapping(15, 150, 40);
        let m = SelfPacedEnsembleConfig::new(3)
            .try_fit_dataset(&d, 41)
            .unwrap();
        assert!(m.fit_report().is_clean());
        assert_eq!(m.fit_report().members.len(), 3);
    }

    #[test]
    fn sanitizer_policies_flow_through_fit() {
        // Inject a NaN row; Reject errors, ImputeMean/DropRows train.
        let mut d = overlapping(15, 150, 42);
        d.x_mut().row_mut(0)[0] = f64::NAN;
        assert_eq!(
            SelfPacedEnsembleConfig::new(3)
                .try_fit_dataset(&d, 43)
                .err(),
            Some(SpeError::NonFiniteFeature { row: 0, col: 0 })
        );
        for policy in [SanitizePolicy::ImputeMean, SanitizePolicy::DropRows] {
            let cfg = SelfPacedEnsembleConfig {
                sanitize: policy,
                ..SelfPacedEnsembleConfig::new(3)
            };
            let m = cfg.try_fit_dataset(&d, 44).unwrap();
            assert_eq!(m.len(), 3, "{policy:?}");
            assert!(!m.fit_report().sanitize.is_clean());
        }
    }

    #[test]
    fn histogram_base_trains_and_is_deterministic() {
        let d = overlapping(30, 600, 50);
        let base: SharedLearner = Arc::new(DecisionTreeConfig {
            split_method: spe_learners::SplitMethod::Histogram,
            ..DecisionTreeConfig::default()
        });
        let cfg = SelfPacedEnsembleConfig::with_base(5, base);
        let m = cfg.fit_dataset(&d, 51);
        assert_eq!(m.len(), 5);
        let a = m.predict_proba(d.x());
        let b = cfg.fit_dataset(&d, 51).predict_proba(d.x());
        assert_eq!(a, b);
        assert!(a.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn histogram_base_matches_exact_quality() {
        let train = overlapping(40, 2000, 52);
        let test = overlapping(40, 2000, 53);
        let hist_base: SharedLearner = Arc::new(DecisionTreeConfig {
            split_method: spe_learners::SplitMethod::Histogram,
            ..DecisionTreeConfig::default()
        });
        let exact_base: SharedLearner = Arc::new(DecisionTreeConfig {
            split_method: spe_learners::SplitMethod::Exact,
            ..DecisionTreeConfig::default()
        });
        let hist = SelfPacedEnsembleConfig::with_base(10, hist_base).fit_dataset(&train, 54);
        let exact = SelfPacedEnsembleConfig::with_base(10, exact_base).fit_dataset(&train, 54);
        let auc_h = aucprc(test.y(), &hist.predict_proba(test.x()));
        let auc_e = aucprc(test.y(), &exact.predict_proba(test.x()));
        assert!(
            (auc_h - auc_e).abs() < 0.05,
            "hist {auc_h:.3} vs exact {auc_e:.3}"
        );
    }

    #[test]
    fn warm_fit_trains_and_is_deterministic() {
        let d = overlapping(25, 400, 60);
        let cfg = SelfPacedEnsembleConfig::new(5);
        let incumbent = cfg.fit_dataset(&d, 61);
        let live = incumbent.predict_proba(d.x());
        let a = cfg.try_fit_dataset_warm(&d, 62, &live).unwrap();
        let b = cfg.try_fit_dataset_warm(&d, 62, &live).unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a.predict_proba(d.x()), b.predict_proba(d.x()));
        // The warm selection differs from the cold random first member.
        let cold = cfg.try_fit_dataset(&d, 62).unwrap();
        assert_ne!(a.predict_proba(d.x()), cold.predict_proba(d.x()));
    }

    #[test]
    fn warm_fit_keeps_quality() {
        let train = overlapping(40, 2000, 63);
        let test = overlapping(40, 2000, 64);
        let cfg = SelfPacedEnsembleConfig::new(10);
        let incumbent = cfg.fit_dataset(&train, 65);
        let live = incumbent.predict_proba(train.x());
        let warm = cfg.try_fit_dataset_warm(&train, 66, &live).unwrap();
        let auc_cold = aucprc(test.y(), &incumbent.predict_proba(test.x()));
        let auc_warm = aucprc(test.y(), &warm.predict_proba(test.x()));
        assert!(
            auc_warm > auc_cold - 0.05,
            "cold {auc_cold:.3} vs warm {auc_warm:.3}"
        );
    }

    #[test]
    fn warm_fit_rejects_bad_inputs() {
        let d = overlapping(15, 150, 67);
        let cfg = SelfPacedEnsembleConfig::new(3);
        let short = vec![0.5; d.len() - 1];
        assert!(matches!(
            cfg.try_fit_dataset_warm(&d, 0, &short),
            Err(SpeError::DimensionMismatch { .. })
        ));
        let mut nan = vec![0.5; d.len()];
        nan[3] = f64::NAN;
        assert!(matches!(
            cfg.try_fit_dataset_warm(&d, 0, &nan),
            Err(SpeError::NonFiniteOutput { .. })
        ));
        let dropping = SelfPacedEnsembleConfig {
            sanitize: SanitizePolicy::DropRows,
            ..SelfPacedEnsembleConfig::new(3)
        };
        assert!(matches!(
            dropping.try_fit_dataset_warm(&d, 0, &vec![0.5; d.len()]),
            Err(SpeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn warm_fit_uniform_schedule_falls_back_to_random() {
        let d = overlapping(20, 300, 68);
        let cfg = SelfPacedEnsembleConfig {
            alpha_schedule: AlphaSchedule::Uniform,
            ..SelfPacedEnsembleConfig::new(4)
        };
        let live = vec![0.5; d.len()];
        let m = cfg.try_fit_dataset_warm(&d, 69, &live).unwrap();
        assert_eq!(m.len(), 4);
        // Uniform has no α at iteration 0 either, so the warm first
        // member records NaN like every other uniform member.
        assert!(m.alphas()[0].is_nan());
    }

    #[test]
    fn runtime_cap_does_not_change_results() {
        let d = overlapping(20, 200, 23);
        let sequential = SelfPacedEnsembleConfig {
            runtime: Runtime::with_threads(1),
            ..SelfPacedEnsembleConfig::new(4)
        };
        let parallel = SelfPacedEnsembleConfig {
            runtime: Runtime::with_threads(4),
            ..SelfPacedEnsembleConfig::new(4)
        };
        let a = sequential.fit_dataset(&d, 24).predict_proba(d.x());
        let b = parallel.fit_dataset(&d, 24).predict_proba(d.x());
        assert_eq!(a, b);
    }
}
