//! Hardness histogram: Algorithm 1, line 5 ("cut majority set into k
//! bins w.r.t. H").
//!
//! The paper assumes `H ∈ [0, 1]` w.l.o.g.; cross-entropy is unbounded,
//! so bins here span the observed `[min, max]` of the hardness values —
//! identical to the paper's construction for AE/SE on any classifier
//! whose outputs cover the probability range, and well-defined for CE.

/// Per-bin statistics of a hardness distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct BinStats {
    /// Number of samples in the bin.
    pub population: usize,
    /// Mean hardness `h_ℓ` of the bin (0 for empty bins).
    pub mean_hardness: f64,
    /// Total hardness contribution Σ H of the bin.
    pub contribution: f64,
}

/// A hardness histogram over `k` equal-width bins.
#[derive(Clone, Debug)]
pub struct HardnessBins {
    /// Bin index of each input sample.
    assignment: Vec<usize>,
    stats: Vec<BinStats>,
    lo: f64,
    hi: f64,
}

impl HardnessBins {
    /// Bins `hardness` values into `k` equal-width bins over their
    /// observed range.
    ///
    /// # Panics
    /// Panics if `k == 0` or `hardness` is empty.
    pub fn cut(hardness: &[f64], k: usize) -> Self {
        assert!(k > 0, "need at least one bin");
        assert!(!hardness.is_empty(), "cannot bin an empty set");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &h in hardness {
            assert!(h.is_finite(), "hardness must be finite, got {h}");
            lo = lo.min(h);
            hi = hi.max(h);
        }
        let width = (hi - lo).max(1e-12);
        let mut stats = vec![
            BinStats {
                population: 0,
                mean_hardness: 0.0,
                contribution: 0.0,
            };
            k
        ];
        let mut assignment = Vec::with_capacity(hardness.len());
        for &h in hardness {
            let b = (((h - lo) / width) * k as f64) as usize;
            let b = b.min(k - 1);
            assignment.push(b);
            stats[b].population += 1;
            stats[b].contribution += h;
        }
        for s in &mut stats {
            if s.population > 0 {
                s.mean_hardness = s.contribution / s.population as f64;
            }
        }
        Self {
            assignment,
            stats,
            lo,
            hi,
        }
    }

    /// Number of bins.
    pub fn k(&self) -> usize {
        self.stats.len()
    }

    /// Per-bin statistics.
    pub fn stats(&self) -> &[BinStats] {
        &self.stats
    }

    /// Bin index of each input sample.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Sample positions (into the original hardness slice) per bin.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.k()];
        for (i, &b) in self.assignment.iter().enumerate() {
            out[b].push(i);
        }
        out
    }

    /// Observed hardness range the bins span.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populations_sum_to_input_len() {
        let h = [0.0, 0.1, 0.2, 0.5, 0.9, 1.0];
        let bins = HardnessBins::cut(&h, 5);
        let total: usize = bins.stats().iter().map(|s| s.population).sum();
        assert_eq!(total, 6);
        assert_eq!(bins.k(), 5);
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let h = [0.0, 0.5, 1.0];
        let bins = HardnessBins::cut(&h, 10);
        assert_eq!(bins.assignment()[2], 9);
        assert_eq!(bins.assignment()[0], 0);
    }

    #[test]
    fn mean_hardness_is_per_bin_average() {
        let h = [0.0, 0.05, 0.95, 1.0];
        let bins = HardnessBins::cut(&h, 2);
        let s = bins.stats();
        assert_eq!(s[0].population, 2);
        assert!((s[0].mean_hardness - 0.025).abs() < 1e-12);
        assert!((s[1].mean_hardness - 0.975).abs() < 1e-12);
        assert!((s[1].contribution - 1.95).abs() < 1e-12);
    }

    #[test]
    fn constant_hardness_fills_one_bin() {
        let h = [0.3; 8];
        let bins = HardnessBins::cut(&h, 4);
        let nonempty: Vec<usize> = bins
            .stats()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.population > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(nonempty.len(), 1);
        assert_eq!(bins.stats()[nonempty[0]].population, 8);
    }

    #[test]
    fn unbounded_values_binned_by_observed_range() {
        // Cross-entropy style values far above 1.
        let h = [0.1, 5.0, 10.0, 27.6];
        let bins = HardnessBins::cut(&h, 4);
        assert_eq!(bins.assignment()[0], 0);
        assert_eq!(bins.assignment()[3], 3);
        let (lo, hi) = bins.range();
        assert_eq!(lo, 0.1);
        assert_eq!(hi, 27.6);
    }

    #[test]
    fn members_are_consistent_with_assignment() {
        let h = [0.0, 0.5, 1.0, 0.51];
        let bins = HardnessBins::cut(&h, 2);
        let members = bins.members();
        for (b, m) in members.iter().enumerate() {
            for &i in m {
                assert_eq!(bins.assignment()[i], b);
            }
        }
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    #[should_panic(expected = "hardness must be finite")]
    fn rejects_nan() {
        let _ = HardnessBins::cut(&[0.1, f64::NAN], 2);
    }
}
