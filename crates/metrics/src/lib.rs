//! Evaluation criteria for imbalanced binary classification (paper §II).
//!
//! Accuracy is meaningless at IR ≈ 500:1, so the paper evaluates with
//! confusion-matrix-derived scores — precision, recall, F1,
//! G-mean (defined there as √(recall·precision)), MCC — plus the area
//! under the precision–recall curve (AUCPRC). This crate implements all
//! of them, along with the PR/ROC curves themselves and an aggregator for
//! the "mean ± std over 10 independent runs" reporting protocol.

pub mod aggregate;
pub mod confusion;
pub mod curves;
pub mod multiclass;
pub mod scores;
pub mod threshold;

pub use aggregate::{MeanStd, RunAggregator};
pub use confusion::ConfusionMatrix;
pub use curves::{aucprc, average_precision, pr_curve, roc_auc, roc_curve};
pub use multiclass::MultiConfusion;
pub use scores::{f1_score, g_mean, mcc, MetricSet};
pub use threshold::{tune_threshold, ThresholdObjective, TunedThreshold};
