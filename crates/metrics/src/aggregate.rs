//! Aggregation across independent runs ("mean ± std of 10 runs").

use crate::scores::MetricSet;
use std::fmt;

/// Mean and (population) standard deviation of a sequence of values.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Computes mean ± std of the given values (zeros for empty input).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Self {
            mean,
            std: var.sqrt(),
        }
    }
}

impl fmt::Display for MeanStd {
    /// Formats as `0.783±0.015`, the paper's table cell format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}±{:.3}", self.mean, self.std)
    }
}

/// Collects [`MetricSet`]s from repeated runs and summarizes each metric.
#[derive(Clone, Debug, Default)]
pub struct RunAggregator {
    runs: Vec<MetricSet>,
}

impl RunAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the metrics of one run.
    pub fn push(&mut self, m: MetricSet) {
        self.runs.push(m);
    }

    /// Number of runs recorded so far.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no runs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Mean ± std of each metric, in [`MetricSet::NAMES`] order.
    pub fn summary(&self) -> [MeanStd; 4] {
        let mut out = [MeanStd::default(); 4];
        for (i, slot) in out.iter_mut().enumerate() {
            let vals: Vec<f64> = self.runs.iter().map(|m| m.as_array()[i]).collect();
            *slot = MeanStd::of(&vals);
        }
        out
    }

    /// Mean ± std of AUCPRC only (many figures plot just this metric).
    pub fn aucprc(&self) -> MeanStd {
        MeanStd::of(&self.runs.iter().map(|m| m.aucprc).collect::<Vec<_>>())
    }

    /// Raw per-run metric sets.
    pub fn runs(&self) -> &[MetricSet] {
        &self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_of_constants() {
        let ms = MeanStd::of(&[2.0, 2.0, 2.0]);
        assert_eq!(ms.mean, 2.0);
        assert_eq!(ms.std, 0.0);
    }

    #[test]
    fn mean_std_known_values() {
        let ms = MeanStd::of(&[1.0, 3.0]);
        assert_eq!(ms.mean, 2.0);
        assert_eq!(ms.std, 1.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(MeanStd::of(&[]), MeanStd::default());
    }

    #[test]
    fn display_matches_paper_format() {
        let ms = MeanStd {
            mean: 0.7832,
            std: 0.0151,
        };
        assert_eq!(ms.to_string(), "0.783±0.015");
    }

    #[test]
    fn aggregator_summarizes_each_metric() {
        let mut agg = RunAggregator::new();
        agg.push(MetricSet {
            aucprc: 0.8,
            f1: 0.6,
            g_mean: 0.5,
            mcc: 0.4,
        });
        agg.push(MetricSet {
            aucprc: 0.6,
            f1: 0.8,
            g_mean: 0.5,
            mcc: 0.2,
        });
        let s = agg.summary();
        assert!((s[0].mean - 0.7).abs() < 1e-12);
        assert!((s[1].mean - 0.7).abs() < 1e-12);
        assert_eq!(s[2].std, 0.0);
        assert!((s[3].mean - 0.3).abs() < 1e-12);
        assert_eq!(agg.len(), 2);
        assert!((agg.aucprc().mean - 0.7).abs() < 1e-12);
    }
}
