//! Decision-threshold selection on a validation set.
//!
//! The paper evaluates threshold metrics (F1/G-mean/MCC) at 0.5; in
//! deployment the threshold is usually tuned on `D_dev` (which the
//! paper's protocol holds out at the original distribution for exactly
//! this kind of use). This module sweeps every distinct score once,
//! maintaining running confusion counts, so tuning is O(n log n).

use crate::confusion::ConfusionMatrix;
use crate::scores::{f1_score, g_mean, mcc};

/// Objective to maximize when tuning the threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThresholdObjective {
    /// F1-score.
    F1,
    /// G-mean (paper definition).
    GMean,
    /// Matthews correlation coefficient.
    Mcc,
}

impl ThresholdObjective {
    fn eval(self, m: &ConfusionMatrix) -> f64 {
        match self {
            ThresholdObjective::F1 => f1_score(m),
            ThresholdObjective::GMean => g_mean(m),
            ThresholdObjective::Mcc => mcc(m),
        }
    }
}

/// The tuned threshold and the objective value it achieves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TunedThreshold {
    /// Score cutoff: predict positive when `score >= threshold`.
    pub threshold: f64,
    /// Objective value at that cutoff (on the tuning data).
    pub objective: f64,
}

/// Finds the threshold maximizing `objective` over all distinct cutoffs.
///
/// Returns a 0.5/0.0 default when the labels are single-class (no
/// threshold is meaningful then).
pub fn tune_threshold(
    y_true: &[u8],
    scores: &[f64],
    objective: ThresholdObjective,
) -> TunedThreshold {
    assert_eq!(y_true.len(), scores.len(), "length mismatch");
    let total_pos = y_true.iter().filter(|&&l| l != 0).count() as u64;
    let total_neg = y_true.len() as u64 - total_pos;
    if total_pos == 0 || total_neg == 0 {
        return TunedThreshold {
            threshold: 0.5,
            objective: 0.0,
        };
    }

    let mut pairs: Vec<(f64, bool)> = scores
        .iter()
        .zip(y_true)
        .map(|(&s, &t)| (if s.is_nan() { f64::NEG_INFINITY } else { s }, t != 0))
        .collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));

    let mut best = TunedThreshold {
        threshold: f64::INFINITY, // predict nothing positive
        objective: objective.eval(&ConfusionMatrix {
            tp: 0,
            fp: 0,
            tn: total_neg,
            fn_: total_pos,
        }),
    };
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut i = 0;
    while i < pairs.len() {
        let threshold = pairs[i].0;
        let start = i;
        while i < pairs.len() && (i == start || pairs[i].0 == threshold) {
            if pairs[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let m = ConfusionMatrix {
            tp,
            fp,
            tn: total_neg - fp,
            fn_: total_pos - tp,
        };
        let value = objective.eval(&m);
        if value > best.objective {
            best = TunedThreshold {
                threshold,
                objective: value,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_finds_a_separating_threshold() {
        let y = [1, 1, 0, 0, 0];
        let s = [0.9, 0.8, 0.3, 0.2, 0.1];
        for obj in [
            ThresholdObjective::F1,
            ThresholdObjective::GMean,
            ThresholdObjective::Mcc,
        ] {
            let t = tune_threshold(&y, &s, obj);
            assert!((t.objective - 1.0).abs() < 1e-12, "{obj:?}");
            assert!(
                t.threshold > 0.3 && t.threshold <= 0.8,
                "{obj:?}: {}",
                t.threshold
            );
        }
    }

    #[test]
    fn beats_the_default_half_threshold_when_scores_are_shifted() {
        // A well-ranked but badly calibrated model: all scores below 0.5.
        let y = [1, 1, 1, 0, 0, 0, 0, 0];
        let s = [0.4, 0.35, 0.3, 0.2, 0.15, 0.1, 0.05, 0.01];
        let at_half = f1_score(&ConfusionMatrix::from_scores(&y, &s, 0.5));
        assert_eq!(at_half, 0.0);
        let tuned = tune_threshold(&y, &s, ThresholdObjective::F1);
        assert!((tuned.objective - 1.0).abs() < 1e-12);
        assert!(tuned.threshold <= 0.3 && tuned.threshold > 0.2);
    }

    #[test]
    fn overlapping_scores_pick_the_best_tradeoff() {
        // One positive ranked below a negative: F1-optimal cutoff keeps
        // the two clean positives.
        let y = [1, 1, 0, 1, 0];
        let s = [0.9, 0.8, 0.6, 0.5, 0.4];
        let tuned = tune_threshold(&y, &s, ThresholdObjective::F1);
        // Candidates: t=0.8 -> F1 of (2 TP, 0 FP, 1 FN) = 0.8;
        // t=0.5 -> (3 TP, 1 FP) = 0.857.
        assert!((tuned.objective - 6.0 / 7.0).abs() < 1e-9);
        assert_eq!(tuned.threshold, 0.5);
    }

    #[test]
    fn single_class_degenerates() {
        let t = tune_threshold(&[0, 0], &[0.1, 0.9], ThresholdObjective::Mcc);
        assert_eq!(t.threshold, 0.5);
        assert_eq!(t.objective, 0.0);
    }

    #[test]
    fn tuned_threshold_is_an_actual_score() {
        let y = [1, 0, 1, 0, 1, 0];
        let s = [0.7, 0.65, 0.62, 0.3, 0.8, 0.1];
        let t = tune_threshold(&y, &s, ThresholdObjective::GMean);
        assert!(s.contains(&t.threshold) || t.threshold.is_infinite());
    }
}
