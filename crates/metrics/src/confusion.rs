//! Binary confusion matrix (paper Table I).

/// Confusion matrix for binary classification with positive = minority.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Positives predicted positive.
    pub tp: u64,
    /// Negatives predicted positive.
    pub fp: u64,
    /// Negatives predicted negative.
    pub tn: u64,
    /// Positives predicted negative.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from hard 0/1 predictions.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn from_predictions(y_true: &[u8], y_pred: &[u8]) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
        let mut m = Self::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t != 0, p != 0) {
                (true, true) => m.tp += 1,
                (true, false) => m.fn_ += 1,
                (false, true) => m.fp += 1,
                (false, false) => m.tn += 1,
            }
        }
        m
    }

    /// Builds a confusion matrix by thresholding positive-class scores at
    /// `threshold` (score >= threshold ⇒ predict positive).
    pub fn from_scores(y_true: &[u8], scores: &[f64], threshold: f64) -> Self {
        assert_eq!(y_true.len(), scores.len(), "length mismatch");
        let mut m = Self::default();
        for (&t, &s) in y_true.iter().zip(scores) {
            match (t != 0, s >= threshold) {
                (true, true) => m.tp += 1,
                (true, false) => m.fn_ += 1,
                (false, true) => m.fp += 1,
                (false, false) => m.tn += 1,
            }
        }
        m
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Recall = TP / (TP + FN); 0 when no positives exist.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Precision = TP / (TP + FP); 0 when nothing is predicted positive.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Specificity (true negative rate) = TN / (TN + FP).
    pub fn specificity(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// Plain accuracy (reported only for diagnostics; see paper §II).
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// False positive rate = FP / (FP + TN).
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }
}

#[inline]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_all_quadrants() {
        let y = [1, 1, 1, 0, 0, 0, 0];
        let p = [1, 0, 1, 1, 0, 0, 0];
        let m = ConfusionMatrix::from_predictions(&y, &p);
        assert_eq!(m.tp, 2);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.tn, 3);
        assert_eq!(m.total(), 7);
    }

    #[test]
    fn derived_rates() {
        let m = ConfusionMatrix {
            tp: 8,
            fp: 2,
            tn: 88,
            fn_: 2,
        };
        assert!((m.recall() - 0.8).abs() < 1e-12);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.specificity() - 88.0 / 90.0).abs() < 1e-12);
        assert!((m.accuracy() - 0.96).abs() < 1e-12);
        assert!((m.fpr() - 2.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn thresholding_matches_manual() {
        let y = [1, 0, 1, 0];
        let s = [0.9, 0.6, 0.4, 0.1];
        let m = ConfusionMatrix::from_scores(&y, &s, 0.5);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (1, 1, 1, 1));
        // Threshold is inclusive.
        let m2 = ConfusionMatrix::from_scores(&y, &s, 0.6);
        assert_eq!((m2.tp, m2.fp), (1, 1));
    }

    #[test]
    fn degenerate_cases_return_zero_not_nan() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.accuracy(), 0.0);
    }
}
