//! K-class evaluation: the k×k confusion matrix and the class-aware
//! aggregate scores the multi-class imbalance literature reports
//! (macro/weighted F1, per-class recall, multi-class G-mean).
//!
//! Per-class precision/recall/F1 treat class `c` one-vs-rest; the
//! aggregates differ in how classes are weighted:
//!
//! - **macro** averages per-class scores unweighted — every class
//!   counts equally, so minority classes dominate the penalty, which is
//!   the point of imbalance-aware evaluation;
//! - **weighted** averages by class support — closer to accuracy,
//!   reported for contrast;
//! - **multi-class G-mean** is the geometric mean of per-class recalls
//!   (the k-way generalization of the binary √(TPR·TNR) sensitivity
//!   form): a single missed class drives it to 0.

/// A k×k confusion matrix: `counts[true][predicted]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiConfusion {
    k: usize,
    counts: Vec<usize>,
}

impl MultiConfusion {
    /// Builds the matrix from aligned true/predicted dense class ids.
    ///
    /// # Panics
    /// Panics when lengths disagree, `k < 2`, or a label is `>= k`.
    pub fn from_labels(y_true: &[u8], y_pred: &[u8], k: usize) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "label length mismatch");
        assert!(k >= 2, "need at least two classes");
        let mut counts = vec![0usize; k * k];
        for (&t, &p) in y_true.iter().zip(y_pred) {
            assert!((t as usize) < k && (p as usize) < k, "label out of range");
            counts[t as usize * k + p as usize] += 1;
        }
        Self { k, counts }
    }

    /// Number of classes `k`.
    pub fn n_classes(&self) -> usize {
        self.k
    }

    /// Count of samples with true class `t` predicted as class `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t * self.k + p]
    }

    /// Samples whose true class is `c` (row sum).
    pub fn support(&self, c: usize) -> usize {
        (0..self.k).map(|p| self.count(c, p)).sum()
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction predicted correctly (trace / total); 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let hits: usize = (0..self.k).map(|c| self.count(c, c)).sum();
        hits as f64 / total as f64
    }

    /// One-vs-rest recall of class `c` (0 for an absent class).
    pub fn recall(&self, c: usize) -> f64 {
        let support = self.support(c);
        if support == 0 {
            return 0.0;
        }
        self.count(c, c) as f64 / support as f64
    }

    /// One-vs-rest precision of class `c` (0 when never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        let predicted: usize = (0..self.k).map(|t| self.count(t, c)).sum();
        if predicted == 0 {
            return 0.0;
        }
        self.count(c, c) as f64 / predicted as f64
    }

    /// One-vs-rest F1 of class `c` (0 when precision + recall = 0).
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Per-class recalls in class-id order — the "recall matrix" row
    /// reported per model in the multi-class benches.
    pub fn per_class_recall(&self) -> Vec<f64> {
        (0..self.k).map(|c| self.recall(c)).collect()
    }

    /// Unweighted mean of per-class F1.
    pub fn macro_f1(&self) -> f64 {
        (0..self.k).map(|c| self.f1(c)).sum::<f64>() / self.k as f64
    }

    /// Support-weighted mean of per-class F1; 0 when empty.
    pub fn weighted_f1(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (0..self.k)
            .map(|c| self.f1(c) * self.support(c) as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Geometric mean of per-class recalls. Only classes with support
    /// participate; any missed class (recall 0) zeroes the score.
    pub fn g_mean_multiclass(&self) -> f64 {
        let recalls: Vec<f64> = (0..self.k)
            .filter(|&c| self.support(c) > 0)
            .map(|c| self.recall(c))
            .collect();
        if recalls.is_empty() {
            return 0.0;
        }
        if recalls.contains(&0.0) {
            return 0.0;
        }
        let log_sum: f64 = recalls.iter().map(|r| r.ln()).sum();
        (log_sum / recalls.len() as f64).exp()
    }

    /// Renders the matrix row-per-true-class for logs and reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in 0..self.k {
            let row: Vec<String> = (0..self.k).map(|p| self.count(t, p).to_string()).collect();
            out.push_str(&format!("true {t}: [{}]\n", row.join(", ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3-class fixture:
    ///   class 0: 4 right, 1 → class 1
    ///   class 1: 2 right, 1 → class 2
    ///   class 2: 3 right
    fn toy() -> MultiConfusion {
        let y_true = [0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 2];
        let y_pred = [0, 0, 0, 0, 1, 1, 1, 2, 2, 2, 2];
        MultiConfusion::from_labels(&y_true, &y_pred, 3)
    }

    #[test]
    fn counts_supports_and_accuracy() {
        let m = toy();
        assert_eq!(m.n_classes(), 3);
        assert_eq!(m.count(0, 0), 4);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 2), 1);
        assert_eq!(m.support(0), 5);
        assert_eq!(m.support(2), 3);
        assert_eq!(m.total(), 11);
        assert!((m.accuracy() - 9.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn per_class_scores() {
        let m = toy();
        assert!((m.recall(0) - 0.8).abs() < 1e-12);
        assert!((m.recall(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(2) - 1.0).abs() < 1e-12);
        // Class 1 predicted 3 times (1 from class 0, 2 right).
        assert!((m.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        // Class 2 predicted 4 times, 3 right.
        assert!((m.precision(2) - 0.75).abs() < 1e-12);
        assert_eq!(m.per_class_recall().len(), 3);
        let f1_1 = m.f1(1);
        assert!((f1_1 - 2.0 / 3.0).abs() < 1e-12); // p = r = 2/3
    }

    #[test]
    fn aggregates() {
        let m = toy();
        let macro_f1 = (m.f1(0) + m.f1(1) + m.f1(2)) / 3.0;
        assert!((m.macro_f1() - macro_f1).abs() < 1e-12);
        let weighted = (m.f1(0) * 5.0 + m.f1(1) * 3.0 + m.f1(2) * 3.0) / 11.0;
        assert!((m.weighted_f1() - weighted).abs() < 1e-12);
        let g = (m.recall(0) * m.recall(1) * m.recall(2)).powf(1.0 / 3.0);
        assert!((m.g_mean_multiclass() - g).abs() < 1e-12);
    }

    #[test]
    fn missed_class_zeroes_g_mean() {
        let m = MultiConfusion::from_labels(&[0, 1, 2], &[0, 1, 0], 3);
        assert_eq!(m.g_mean_multiclass(), 0.0);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.f1(2), 0.0);
    }

    #[test]
    fn binary_case_matches_binary_confusion() {
        let y_true = [1u8, 0, 1, 1, 0, 0, 0, 1];
        let y_pred = [1u8, 0, 0, 1, 0, 1, 0, 1];
        let m = MultiConfusion::from_labels(&y_true, &y_pred, 2);
        let b = crate::ConfusionMatrix::from_predictions(&y_true, &y_pred);
        assert!((m.recall(1) - b.recall()).abs() < 1e-12);
        assert!((m.precision(1) - b.precision()).abs() < 1e-12);
        assert!((m.f1(1) - crate::f1_score(&b)).abs() < 1e-12);
        assert!((m.accuracy() - b.accuracy()).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_maxes_everything() {
        let y = [0u8, 1, 2, 3, 0, 1, 2, 3];
        let m = MultiConfusion::from_labels(&y, &y, 4);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.weighted_f1(), 1.0);
        assert!((m.g_mean_multiclass() - 1.0).abs() < 1e-12);
        assert!(m.render().contains("true 0: [2, 0, 0, 0]"));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        let _ = MultiConfusion::from_labels(&[0, 3], &[0, 0], 3);
    }
}
