//! Precision–recall and ROC curves from continuous scores.
//!
//! Points are generated at every distinct score threshold (ties grouped),
//! sweeping from the most- to the least-confident prediction — the same
//! construction scikit-learn uses, which the paper's numbers come from.

/// A point on the PR curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrPoint {
    /// Recall at this threshold.
    pub recall: f64,
    /// Precision at this threshold.
    pub precision: f64,
    /// The threshold (inclusive) generating this point.
    pub threshold: f64,
}

/// A point on the ROC curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RocPoint {
    /// False positive rate.
    pub fpr: f64,
    /// True positive rate (recall).
    pub tpr: f64,
    /// The threshold (inclusive) generating this point.
    pub threshold: f64,
}

/// Indices of samples ordered by descending score, with per-sample label.
fn ranked(y_true: &[u8], scores: &[f64]) -> Vec<(f64, bool)> {
    assert_eq!(y_true.len(), scores.len(), "length mismatch");
    let mut pairs: Vec<(f64, bool)> = scores
        .iter()
        .zip(y_true)
        .map(|(&s, &t)| {
            // NaN scores are mapped to -inf: a score the model could not
            // produce ranks as the least confident prediction.
            let s = if s.is_nan() { f64::NEG_INFINITY } else { s };
            (s, t != 0)
        })
        .collect();
    // Descending by score; total order is safe after the NaN mapping.
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    pairs
}

/// Computes the precision–recall curve.
///
/// The returned points are ordered by increasing recall and include the
/// conventional anchor `(recall=0, precision=1)`. Returns an empty vector
/// when there are no positive samples.
pub fn pr_curve(y_true: &[u8], scores: &[f64]) -> Vec<PrPoint> {
    let total_pos = y_true.iter().filter(|&&t| t != 0).count() as f64;
    if total_pos == 0.0 {
        return Vec::new();
    }
    let pairs = ranked(y_true, scores);
    let mut points = vec![PrPoint {
        recall: 0.0,
        precision: 1.0,
        threshold: f64::INFINITY,
    }];
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut i = 0;
    while i < pairs.len() {
        let threshold = pairs[i].0;
        // Consume the whole tie group before emitting a point. The extra
        // `i == start` check guarantees progress when threshold is NaN
        // (NaN != NaN would otherwise spin forever).
        let start = i;
        while i < pairs.len() && (i == start || pairs[i].0 == threshold) {
            if pairs[i].1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        points.push(PrPoint {
            recall: tp / total_pos,
            precision: tp / (tp + fp),
            threshold,
        });
    }
    points
}

/// Area under the precision–recall curve by trapezoidal integration over
/// recall (the paper's AUCPRC; matches `sklearn.metrics.auc` on the PR
/// curve). Returns 0 when there are no positives.
pub fn aucprc(y_true: &[u8], scores: &[f64]) -> f64 {
    let pts = pr_curve(y_true, scores);
    if pts.len() < 2 {
        return 0.0;
    }
    let mut area = 0.0;
    for w in pts.windows(2) {
        area += (w[1].recall - w[0].recall) * (w[1].precision + w[0].precision) / 2.0;
    }
    area
}

/// Average precision: step-wise integral Σ (R_i − R_{i−1}) · P_i.
///
/// The more conservative PR-area estimate (`sklearn.metrics.
/// average_precision_score`); exposed for completeness and ablations.
pub fn average_precision(y_true: &[u8], scores: &[f64]) -> f64 {
    let pts = pr_curve(y_true, scores);
    if pts.len() < 2 {
        return 0.0;
    }
    let mut ap = 0.0;
    for w in pts.windows(2) {
        ap += (w[1].recall - w[0].recall) * w[1].precision;
    }
    ap
}

/// Computes the ROC curve, ordered by increasing FPR, anchored at (0,0).
pub fn roc_curve(y_true: &[u8], scores: &[f64]) -> Vec<RocPoint> {
    let total_pos = y_true.iter().filter(|&&t| t != 0).count() as f64;
    let total_neg = y_true.len() as f64 - total_pos;
    if total_pos == 0.0 || total_neg == 0.0 {
        return Vec::new();
    }
    let pairs = ranked(y_true, scores);
    let mut points = vec![RocPoint {
        fpr: 0.0,
        tpr: 0.0,
        threshold: f64::INFINITY,
    }];
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut i = 0;
    while i < pairs.len() {
        let threshold = pairs[i].0;
        let start = i;
        while i < pairs.len() && (i == start || pairs[i].0 == threshold) {
            if pairs[i].1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        points.push(RocPoint {
            fpr: fp / total_neg,
            tpr: tp / total_pos,
            threshold,
        });
    }
    points
}

/// Area under the ROC curve (trapezoidal). Returns 0.5-equivalent only if
/// the scores actually produce it; degenerate inputs return 0.
pub fn roc_auc(y_true: &[u8], scores: &[f64]) -> f64 {
    let pts = roc_curve(y_true, scores);
    if pts.len() < 2 {
        return 0.0;
    }
    let mut area = 0.0;
    for w in pts.windows(2) {
        area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_gives_area_one() {
        let y = [1, 1, 0, 0];
        let s = [0.9, 0.8, 0.3, 0.1];
        assert!((aucprc(&y, &s) - 1.0).abs() < 1e-12);
        assert!((average_precision(&y, &s) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&y, &s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_gives_low_area() {
        let y = [0, 0, 1, 1];
        let s = [0.9, 0.8, 0.3, 0.1];
        assert!(aucprc(&y, &s) < 0.5);
        assert!(roc_auc(&y, &s) < 1e-12);
    }

    #[test]
    fn random_equal_scores_ap_equals_prevalence() {
        // All scores tied: the single PR point is (recall=1, precision=π).
        let y = [1, 0, 0, 0];
        let s = [0.5, 0.5, 0.5, 0.5];
        assert!((average_precision(&y, &s) - 0.25).abs() < 1e-12);
        // ROC with one tie group is the diagonal.
        assert!((roc_auc(&y, &s) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pr_curve_anchored_and_monotone_recall() {
        let y = [1, 0, 1, 0, 1];
        let s = [0.9, 0.7, 0.6, 0.4, 0.2];
        let pts = pr_curve(&y, &s);
        assert_eq!(pts[0].recall, 0.0);
        assert_eq!(pts[0].precision, 1.0);
        for w in pts.windows(2) {
            assert!(w[1].recall >= w[0].recall);
        }
        assert!((pts.last().unwrap().recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tie_groups_emit_single_point() {
        let y = [1, 0, 1, 0];
        let s = [0.5, 0.5, 0.2, 0.2];
        // Anchor + two threshold groups.
        assert_eq!(pr_curve(&y, &s).len(), 3);
    }

    #[test]
    fn no_positives_degenerates_gracefully() {
        let y = [0, 0, 0];
        let s = [0.1, 0.2, 0.3];
        assert!(pr_curve(&y, &s).is_empty());
        assert_eq!(aucprc(&y, &s), 0.0);
        assert_eq!(roc_auc(&y, &s), 0.0);
    }

    #[test]
    fn known_hand_computed_example() {
        // Ranked: (0.8,+), (0.6,-), (0.4,+).
        // Points: (R=.5, P=1), (R=.5, P=.5), (R=1, P=2/3).
        let y = [1, 0, 1];
        let s = [0.8, 0.6, 0.4];
        let a = aucprc(&y, &s);
        let expected = 0.5 * (1.0 + 1.0) / 2.0 + 0.0 + 0.5 * (0.5 + 2.0 / 3.0) / 2.0;
        assert!((a - expected).abs() < 1e-12, "{a} vs {expected}");
    }

    #[test]
    fn roc_auc_equals_rank_probability() {
        // AUC == P(score_pos > score_neg) + 0.5 P(tie).
        let y = [1, 1, 0, 0, 0];
        let s = [0.9, 0.4, 0.6, 0.3, 0.4];
        // pairs: (0.9 vs 0.6,0.3,0.4) = 3 wins; (0.4 vs 0.6)=0, (0.4 vs 0.3)=1, (0.4 vs 0.4)=tie
        let expected = (3.0 + 1.0 + 0.5) / 6.0;
        assert!((roc_auc(&y, &s) - expected).abs() < 1e-12);
    }

    #[test]
    fn nan_scores_rank_last() {
        let y = [1, 0];
        let s = [f64::NAN, 0.5];
        // NaN positive ranked last: first point is the negative.
        let a = aucprc(&y, &s);
        assert!(a.is_finite());
        assert!(a <= 0.5 + 1e-12);
    }
}
