//! Scalar scores derived from the confusion matrix, and the bundled
//! [`MetricSet`] the experiment tables report.

use crate::confusion::ConfusionMatrix;
use crate::curves::aucprc;

/// F1-score: harmonic mean of precision and recall.
pub fn f1_score(m: &ConfusionMatrix) -> f64 {
    let p = m.precision();
    let r = m.recall();
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// G-mean as defined in the paper (§II): √(recall · precision).
///
/// Note this is the geometric mean of recall and *precision*, not the
/// more common √(recall · specificity) variant — we follow the paper.
pub fn g_mean(m: &ConfusionMatrix) -> f64 {
    (m.recall() * m.precision()).sqrt()
}

/// Matthews correlation coefficient.
///
/// Computed in `f64` from the start; the product of the four marginals
/// overflows `u64` on datasets past ~100k samples.
pub fn mcc(m: &ConfusionMatrix) -> f64 {
    let tp = m.tp as f64;
    let fp = m.fp as f64;
    let tn = m.tn as f64;
    let fn_ = m.fn_ as f64;
    let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        (tp * tn - fp * fn_) / denom
    }
}

/// The four criteria every results table in the paper reports, computed
/// from positive-class scores (threshold 0.5 for the threshold metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricSet {
    /// Area under the precision–recall curve.
    pub aucprc: f64,
    /// F1-score at threshold 0.5.
    pub f1: f64,
    /// G-mean (paper definition) at threshold 0.5.
    pub g_mean: f64,
    /// Matthews correlation coefficient at threshold 0.5.
    pub mcc: f64,
}

impl MetricSet {
    /// Evaluates all four criteria for scores in `[0, 1]`.
    pub fn evaluate(y_true: &[u8], scores: &[f64]) -> Self {
        let m = ConfusionMatrix::from_scores(y_true, scores, 0.5);
        Self {
            aucprc: aucprc(y_true, scores),
            f1: f1_score(&m),
            g_mean: g_mean(&m),
            mcc: mcc(&m),
        }
    }

    /// Values in the table order the paper uses (AUCPRC, F1, GM, MCC).
    pub fn as_array(&self) -> [f64; 4] {
        [self.aucprc, self.f1, self.g_mean, self.mcc]
    }

    /// Metric names matching [`Self::as_array`] order.
    pub const NAMES: [&'static str; 4] = ["AUCPRC", "F1", "GM", "MCC"];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm(tp: u64, fp: u64, tn: u64, fn_: u64) -> ConfusionMatrix {
        ConfusionMatrix { tp, fp, tn, fn_ }
    }

    #[test]
    fn f1_matches_hand_computation() {
        // precision = 0.8, recall = 0.5 -> F1 = 2*0.4/1.3
        let m = cm(4, 1, 90, 4);
        assert!((f1_score(&m) - 2.0 * 0.8 * 0.5 / 1.3).abs() < 1e-12);
    }

    #[test]
    fn f1_zero_when_nothing_found() {
        assert_eq!(f1_score(&cm(0, 0, 10, 5)), 0.0);
    }

    #[test]
    fn gmean_is_paper_definition() {
        let m = cm(4, 1, 90, 4);
        assert!((g_mean(&m) - (0.8f64 * 0.5).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mcc_perfect_is_one() {
        assert!((mcc(&cm(10, 0, 90, 0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mcc_inverted_is_minus_one() {
        assert!((mcc(&cm(0, 90, 0, 10)) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn mcc_random_is_near_zero() {
        // Predictions independent of labels: MCC == 0 exactly when the
        // confusion matrix factorizes.
        assert!(mcc(&cm(5, 45, 45, 5)).abs() < 0.9);
        assert_eq!(mcc(&cm(10, 90, 810, 90)), 0.0);
    }

    #[test]
    fn mcc_no_overflow_on_large_counts() {
        let m = cm(1_000_000, 2_000_000, 3_000_000, 500_000);
        assert!(mcc(&m).is_finite());
    }

    #[test]
    fn metric_set_perfect_classifier() {
        let y = [1, 1, 0, 0, 0];
        let s = [0.9, 0.8, 0.2, 0.1, 0.3];
        let ms = MetricSet::evaluate(&y, &s);
        assert!((ms.aucprc - 1.0).abs() < 1e-12);
        assert!((ms.f1 - 1.0).abs() < 1e-12);
        assert!((ms.g_mean - 1.0).abs() < 1e-12);
        assert!((ms.mcc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metric_set_array_order() {
        let ms = MetricSet {
            aucprc: 0.1,
            f1: 0.2,
            g_mean: 0.3,
            mcc: 0.4,
        };
        assert_eq!(ms.as_array(), [0.1, 0.2, 0.3, 0.4]);
        assert_eq!(MetricSet::NAMES[0], "AUCPRC");
    }
}
