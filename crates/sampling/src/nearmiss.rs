//! NearMiss under-sampling (Mani & Zhang 2003), versions 1–3.
//!
//! All three variants keep the full minority set and select `|P|`
//! majority samples by distance heuristics against the minority class:
//!
//! - **v1**: smallest mean distance to the k *nearest* minority samples,
//! - **v2**: smallest mean distance to the k *farthest* minority samples,
//! - **v3**: pre-select the m nearest majority neighbors of each minority
//!   sample, then among those keep samples with the *largest* mean
//!   distance to their k nearest minority samples.

use crate::Sampler;
use spe_data::{Dataset, Matrix};
use spe_learners::neighbors::knn_batch;

/// Which NearMiss heuristic to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NearMissVersion {
    /// Closest to nearest minority samples.
    V1,
    /// Closest to farthest minority samples.
    V2,
    /// Two-step pre-selection then farthest retained.
    V3,
}

/// NearMiss under-sampler.
#[derive(Clone, Copy, Debug)]
pub struct NearMiss {
    /// Heuristic version.
    pub version: NearMissVersion,
    /// Number of minority neighbors examined per majority sample.
    pub k: usize,
    /// Version-3 pre-selection width.
    pub m: usize,
}

impl Default for NearMiss {
    fn default() -> Self {
        Self {
            version: NearMissVersion::V1,
            k: 3,
            m: 3,
        }
    }
}

impl NearMiss {
    /// NearMiss of the given version with default neighborhood sizes.
    pub fn version(version: NearMissVersion) -> Self {
        Self {
            version,
            ..Self::default()
        }
    }

    /// Mean distance from each majority row to its k nearest (or
    /// farthest) minority points.
    fn mean_distances(
        majority_x: &Matrix,
        minority_x: &Matrix,
        k: usize,
        farthest: bool,
    ) -> Vec<f64> {
        if farthest {
            // Need all distances to pick the k farthest: query with
            // k = |minority| then take the tail.
            let all = knn_batch(minority_x, majority_x, minority_x.rows(), false);
            all.into_iter()
                .map(|hits| {
                    let tail = &hits[hits.len().saturating_sub(k)..];
                    mean_sqrt(tail.iter().map(|h| h.dist_sq))
                })
                .collect()
        } else {
            let hits = knn_batch(minority_x, majority_x, k, false);
            hits.into_iter()
                .map(|h| mean_sqrt(h.iter().map(|n| n.dist_sq)))
                .collect()
        }
    }
}

fn mean_sqrt(dists: impl Iterator<Item = f64>) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for d in dists {
        total += d.sqrt();
        n += 1;
    }
    if n == 0 {
        f64::INFINITY
    } else {
        total / n as f64
    }
}

impl Sampler for NearMiss {
    fn resample(&self, data: &Dataset, _seed: u64) -> Dataset {
        let idx = data.class_index();
        if idx.minority.is_empty() || idx.majority.len() <= idx.minority.len() {
            return data.clone();
        }
        let minority_x = data.x().select_rows(&idx.minority);
        let majority_x = data.x().select_rows(&idx.majority);
        let target = idx.minority.len();

        // Candidate majority rows (positions within idx.majority).
        let (candidates, scores, keep_largest): (Vec<usize>, Vec<f64>, bool) = match self.version {
            NearMissVersion::V1 => {
                let s = Self::mean_distances(&majority_x, &minority_x, self.k, false);
                ((0..idx.majority.len()).collect(), s, false)
            }
            NearMissVersion::V2 => {
                let s = Self::mean_distances(&majority_x, &minority_x, self.k, true);
                ((0..idx.majority.len()).collect(), s, false)
            }
            NearMissVersion::V3 => {
                // Pre-select: the m nearest majority neighbors of each
                // minority sample.
                let pre = knn_batch(&majority_x, &minority_x, self.m, false);
                let mut cand: Vec<usize> = pre
                    .into_iter()
                    .flat_map(|hits| hits.into_iter().map(|h| h.index))
                    .collect();
                cand.sort_unstable();
                cand.dedup();
                let cand_x = majority_x.select_rows(&cand);
                let s = Self::mean_distances(&cand_x, &minority_x, self.k, false);
                (cand, s, true)
            }
        };

        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            let cmp = scores[a].total_cmp(&scores[b]);
            if keep_largest {
                cmp.reverse()
            } else {
                cmp
            }
        });
        let mut keep: Vec<usize> = order
            .into_iter()
            .take(target)
            .map(|pos| idx.majority[candidates[pos]])
            .collect();
        keep.extend_from_slice(&idx.minority);
        keep.sort_unstable();
        data.select(&keep)
    }

    fn name(&self) -> &'static str {
        "NearMiss"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::SeededRng;

    /// Minority cluster at origin; majority split between a near ring and
    /// a far cluster.
    fn setup() -> Dataset {
        let mut rng = SeededRng::new(1);
        let mut x = Matrix::with_capacity(70, 2);
        let mut y = Vec::new();
        for _ in 0..10 {
            x.push_row(&[rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)]);
            y.push(1);
        }
        for _ in 0..30 {
            x.push_row(&[rng.normal(2.0, 0.1), rng.normal(0.0, 0.1)]);
            y.push(0); // near majority
        }
        for _ in 0..30 {
            x.push_row(&[rng.normal(10.0, 0.1), rng.normal(0.0, 0.1)]);
            y.push(0); // far majority
        }
        Dataset::new(x, y)
    }

    #[test]
    fn v1_selects_near_majority() {
        let d = setup();
        let r = NearMiss::version(NearMissVersion::V1).resample(&d, 0);
        assert_eq!(r.n_positive(), 10);
        assert_eq!(r.n_negative(), 10);
        // All retained majority should come from the near cluster (x≈2).
        for (row, &l) in r.x().iter_rows().zip(r.y()) {
            if l == 0 {
                assert!(row[0] < 5.0, "kept far majority at {}", row[0]);
            }
        }
    }

    #[test]
    fn v2_also_balances() {
        let d = setup();
        let r = NearMiss::version(NearMissVersion::V2).resample(&d, 0);
        assert_eq!(r.n_negative(), 10);
        assert_eq!(r.n_positive(), 10);
        for (row, &l) in r.x().iter_rows().zip(r.y()) {
            if l == 0 {
                assert!(row[0] < 5.0);
            }
        }
    }

    #[test]
    fn v3_balances_or_underfills_from_candidates() {
        let d = setup();
        let r = NearMiss::version(NearMissVersion::V3).resample(&d, 0);
        assert_eq!(r.n_positive(), 10);
        assert!(r.n_negative() <= 10);
        assert!(r.n_negative() > 0);
    }

    #[test]
    fn balanced_input_passthrough() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let d = Dataset::new(x, vec![1, 1, 0, 0]);
        let r = NearMiss::default().resample(&d, 0);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn deterministic() {
        let d = setup();
        let a = NearMiss::default().resample(&d, 0);
        let b = NearMiss::default().resample(&d, 42);
        assert_eq!(a.x().as_slice(), b.x().as_slice());
    }
}
