//! Synthetic over-sampling: SMOTE, Borderline-SMOTE, ADASYN and the
//! hybrid SMOTE+cleaning combinations (SMOTEENN, SMOTETomek).
//!
//! Synthetic minority samples are linear interpolations between a seed
//! minority sample and one of its k nearest minority neighbors:
//! `x_new = x_i + u · (x_nn − x_i)`, `u ~ U[0, 1)`.

use crate::cleaning::{EditedNearestNeighbours, TomekLinks};
use crate::Sampler;
use spe_data::{Dataset, Matrix, SeededRng};
use spe_learners::neighbors::knn_batch;

/// Appends `count` synthetic samples interpolated from `seeds` (indices
/// into `minority_x`) toward their minority neighbors.
fn synthesize(
    minority_x: &Matrix,
    neighbor_lists: &[Vec<usize>],
    seeds: &[usize],
    count: usize,
    rng: &mut SeededRng,
    out: &mut Matrix,
) {
    if seeds.is_empty() || count == 0 {
        return;
    }
    let d = minority_x.cols();
    let mut row = vec![0.0; d];
    for _ in 0..count {
        let s = seeds[rng.below(seeds.len())];
        let neighbors = &neighbor_lists[s];
        if neighbors.is_empty() {
            // Isolated minority point: duplicate it.
            out.push_row(minority_x.row(s));
            continue;
        }
        let nb = neighbors[rng.below(neighbors.len())];
        let u = rng.uniform();
        let a = minority_x.row(s);
        let b = minority_x.row(nb);
        for ((r, &ai), &bi) in row.iter_mut().zip(a).zip(b) {
            *r = ai + u * (bi - ai);
        }
        out.push_row(&row);
    }
}

/// Builds the output dataset: original data plus `synthetic` positives.
fn with_synthetics(data: &Dataset, synthetic: Matrix) -> Dataset {
    let n_new = synthetic.rows();
    let x = data.x().vstack(&synthetic);
    let mut y = data.y().to_vec();
    y.extend(std::iter::repeat_n(1u8, n_new));
    Dataset::new(x, y)
}

/// Minority-to-minority neighbor lists (k nearest, leave-one-out).
fn minority_neighbors(minority_x: &Matrix, k: usize) -> Vec<Vec<usize>> {
    knn_batch(minority_x, minority_x, k, true)
        .into_iter()
        .map(|hits| hits.into_iter().map(|h| h.index).collect())
        .collect()
}

/// Generates `count` synthetic samples from a minority-only feature
/// matrix by SMOTE interpolation (public so boosting ensembles can
/// inject per-round synthetics without rebuilding a full dataset).
pub fn generate_synthetics(minority_x: &Matrix, k: usize, count: usize, seed: u64) -> Matrix {
    let mut out = Matrix::with_capacity(count, minority_x.cols());
    if minority_x.is_empty() || count == 0 {
        return out;
    }
    let neighbors = minority_neighbors(minority_x, k);
    let seeds: Vec<usize> = (0..minority_x.rows()).collect();
    let mut rng = SeededRng::new(seed);
    synthesize(minority_x, &neighbors, &seeds, count, &mut rng, &mut out);
    out
}

/// SMOTE (Chawla et al. 2002).
#[derive(Clone, Copy, Debug)]
pub struct Smote {
    /// Neighbors per seed (default 5).
    pub k: usize,
    /// Minority-to-majority ratio after sampling (1.0 = balanced).
    pub ratio: f64,
}

impl Default for Smote {
    fn default() -> Self {
        Self { k: 5, ratio: 1.0 }
    }
}

impl Sampler for Smote {
    fn resample(&self, data: &Dataset, seed: u64) -> Dataset {
        let idx = data.class_index();
        let target = ((idx.majority.len() as f64) * self.ratio).round() as usize;
        if idx.minority.is_empty() || idx.majority.is_empty() || target <= idx.minority.len() {
            return data.clone();
        }
        let minority_x = data.x().select_rows(&idx.minority);
        let neighbors = minority_neighbors(&minority_x, self.k);
        let seeds: Vec<usize> = (0..idx.minority.len()).collect();
        let mut rng = SeededRng::new(seed);
        let mut synthetic = Matrix::with_capacity(target - idx.minority.len(), data.n_features());
        synthesize(
            &minority_x,
            &neighbors,
            &seeds,
            target - idx.minority.len(),
            &mut rng,
            &mut synthetic,
        );
        with_synthetics(data, synthetic)
    }

    fn name(&self) -> &'static str {
        "SMOTE"
    }
}

/// Borderline-SMOTE, variant 1 (Han et al. 2005): only minority samples
/// in "danger" (at least half majority neighbors, but not all) seed the
/// interpolation.
#[derive(Clone, Copy, Debug)]
pub struct BorderlineSmote {
    /// Neighbors used both for danger detection and interpolation.
    pub k: usize,
    /// Target minority-to-majority ratio.
    pub ratio: f64,
}

impl Default for BorderlineSmote {
    fn default() -> Self {
        Self { k: 5, ratio: 1.0 }
    }
}

impl Sampler for BorderlineSmote {
    fn resample(&self, data: &Dataset, seed: u64) -> Dataset {
        let idx = data.class_index();
        let target = ((idx.majority.len() as f64) * self.ratio).round() as usize;
        if idx.minority.is_empty() || idx.majority.is_empty() || target <= idx.minority.len() {
            return data.clone();
        }
        // Danger detection against the full dataset.
        let minority_x = data.x().select_rows(&idx.minority);
        let y = data.y();
        let hits = knn_batch(data.x(), &minority_x, self.k, false);
        let seeds: Vec<usize> = hits
            .iter()
            .enumerate()
            .filter(|(_, neigh)| {
                let maj = neigh.iter().filter(|h| y[h.index] == 0).count();
                maj * 2 >= neigh.len() && maj < neigh.len()
            })
            .map(|(s, _)| s)
            .collect();
        if seeds.is_empty() {
            // No borderline region: fall back to plain SMOTE semantics.
            return Smote {
                k: self.k,
                ratio: self.ratio,
            }
            .resample(data, seed);
        }
        let neighbors = minority_neighbors(&minority_x, self.k);
        let mut rng = SeededRng::new(seed);
        let mut synthetic = Matrix::with_capacity(target - idx.minority.len(), data.n_features());
        synthesize(
            &minority_x,
            &neighbors,
            &seeds,
            target - idx.minority.len(),
            &mut rng,
            &mut synthetic,
        );
        with_synthetics(data, synthetic)
    }

    fn name(&self) -> &'static str {
        "BorderSMOTE"
    }
}

/// ADASYN (He et al. 2008): synthetic counts per minority seed are
/// proportional to the fraction of majority samples in its neighborhood.
#[derive(Clone, Copy, Debug)]
pub struct Adasyn {
    /// Neighborhood size (default 5).
    pub k: usize,
    /// Target minority-to-majority ratio.
    pub ratio: f64,
}

impl Default for Adasyn {
    fn default() -> Self {
        Self { k: 5, ratio: 1.0 }
    }
}

impl Sampler for Adasyn {
    fn resample(&self, data: &Dataset, seed: u64) -> Dataset {
        let idx = data.class_index();
        let target = ((idx.majority.len() as f64) * self.ratio).round() as usize;
        if idx.minority.is_empty() || idx.majority.is_empty() || target <= idx.minority.len() {
            return data.clone();
        }
        let total_new = target - idx.minority.len();
        let minority_x = data.x().select_rows(&idx.minority);
        let y = data.y();
        let hits = knn_batch(data.x(), &minority_x, self.k, false);
        let r: Vec<f64> = hits
            .iter()
            .map(|neigh| {
                if neigh.is_empty() {
                    0.0
                } else {
                    neigh.iter().filter(|h| y[h.index] == 0).count() as f64 / neigh.len() as f64
                }
            })
            .collect();
        let r_sum: f64 = r.iter().sum();
        let neighbors = minority_neighbors(&minority_x, self.k);
        let mut rng = SeededRng::new(seed);
        let mut synthetic = Matrix::with_capacity(total_new, data.n_features());
        if r_sum <= 0.0 {
            // No majority contamination anywhere: uniform seeding.
            let seeds: Vec<usize> = (0..idx.minority.len()).collect();
            synthesize(
                &minority_x,
                &neighbors,
                &seeds,
                total_new,
                &mut rng,
                &mut synthetic,
            );
        } else {
            for (s, &ri) in r.iter().enumerate() {
                let gi = ((ri / r_sum) * total_new as f64).round() as usize;
                synthesize(&minority_x, &neighbors, &[s], gi, &mut rng, &mut synthetic);
            }
        }
        with_synthetics(data, synthetic)
    }

    fn name(&self) -> &'static str {
        "ADASYN"
    }
}

/// SMOTE followed by ENN cleaning (Batista et al. 2004).
#[derive(Clone, Copy, Debug, Default)]
pub struct SmoteEnn {
    /// SMOTE stage.
    pub smote: Smote,
    /// ENN stage.
    pub enn: EditedNearestNeighbours,
}

impl Sampler for SmoteEnn {
    fn resample(&self, data: &Dataset, seed: u64) -> Dataset {
        let oversampled = self.smote.resample(data, seed);
        self.enn.resample(&oversampled, seed)
    }

    fn name(&self) -> &'static str {
        "SMOTEENN"
    }
}

/// SMOTE followed by Tomek-link cleaning (Batista et al. 2003).
#[derive(Clone, Copy, Debug, Default)]
pub struct SmoteTomek {
    /// SMOTE stage.
    pub smote: Smote,
    /// Tomek stage.
    pub tomek: TomekLinks,
}

impl Sampler for SmoteTomek {
    fn resample(&self, data: &Dataset, seed: u64) -> Dataset {
        let oversampled = self.smote.resample(data, seed);
        self.tomek.resample(&oversampled, seed)
    }

    fn name(&self) -> &'static str {
        "SMOTETomek"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imbalanced_clusters(n_pos: usize, n_neg: usize, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(n_pos + n_neg, 2);
        let mut y = Vec::new();
        for _ in 0..n_neg {
            x.push_row(&[rng.normal(-2.0, 0.5), rng.normal(0.0, 0.5)]);
            y.push(0);
        }
        for _ in 0..n_pos {
            x.push_row(&[rng.normal(2.0, 0.5), rng.normal(0.0, 0.5)]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn smote_balances_exactly() {
        let d = imbalanced_clusters(10, 100, 1);
        let r = Smote::default().resample(&d, 2);
        assert_eq!(r.n_positive(), 100);
        assert_eq!(r.n_negative(), 100);
    }

    #[test]
    fn smote_synthetics_stay_in_minority_hull() {
        let d = imbalanced_clusters(10, 100, 3);
        let r = Smote::default().resample(&d, 4);
        // Synthetic samples interpolate between minority points, so all
        // positives must lie in the minority cluster's bounding box.
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (row, &l) in d.x().iter_rows().zip(d.y()) {
            if l == 1 {
                lo = lo.min(row[0]);
                hi = hi.max(row[0]);
            }
        }
        for (row, &l) in r.x().iter_rows().zip(r.y()) {
            if l == 1 {
                assert!(row[0] >= lo - 1e-9 && row[0] <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn smote_single_minority_duplicates() {
        let d = imbalanced_clusters(1, 20, 5);
        let r = Smote::default().resample(&d, 6);
        assert_eq!(r.n_positive(), 20);
    }

    #[test]
    fn borderline_smote_balances() {
        // Overlapping clusters so a danger zone exists.
        let mut rng = SeededRng::new(7);
        let mut x = Matrix::with_capacity(120, 2);
        let mut y = Vec::new();
        for _ in 0..100 {
            x.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]);
            y.push(0);
        }
        for _ in 0..20 {
            x.push_row(&[rng.normal(1.0, 1.0), rng.normal(0.0, 1.0)]);
            y.push(1);
        }
        let d = Dataset::new(x, y);
        let r = BorderlineSmote::default().resample(&d, 8);
        assert_eq!(r.n_positive(), 100);
    }

    #[test]
    fn adasyn_approximately_balances() {
        let mut rng = SeededRng::new(9);
        let mut x = Matrix::with_capacity(120, 2);
        let mut y = Vec::new();
        for _ in 0..100 {
            x.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]);
            y.push(0);
        }
        for _ in 0..20 {
            x.push_row(&[rng.normal(1.5, 1.0), rng.normal(0.0, 1.0)]);
            y.push(1);
        }
        let d = Dataset::new(x, y);
        let r = Adasyn::default().resample(&d, 10);
        // Rounding per-seed counts makes the balance approximate.
        assert!(
            r.n_positive() >= 90 && r.n_positive() <= 110,
            "{}",
            r.n_positive()
        );
    }

    #[test]
    fn hybrids_run_and_keep_rough_balance() {
        let d = imbalanced_clusters(15, 120, 11);
        let enn = SmoteEnn::default().resample(&d, 12);
        let tomek = SmoteTomek::default().resample(&d, 12);
        for r in [&enn, &tomek] {
            let ir = r.imbalance_ratio();
            assert!(ir < 2.0, "IR {ir}");
            assert!(r.n_positive() > 100);
        }
        // Cleaning can only shrink the SMOTE output.
        assert!(enn.len() <= 240);
        assert!(tomek.len() <= 240);
    }

    #[test]
    fn already_balanced_passthrough() {
        let d = imbalanced_clusters(50, 50, 13);
        assert_eq!(Smote::default().resample(&d, 0).len(), 100);
        assert_eq!(Adasyn::default().resample(&d, 0).len(), 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = imbalanced_clusters(10, 60, 14);
        let a = Smote::default().resample(&d, 15);
        let b = Smote::default().resample(&d, 15);
        assert_eq!(a.x().as_slice(), b.x().as_slice());
    }
}
