//! Re-sampling baselines for imbalanced classification.
//!
//! Implements every method of the paper's Table V comparison:
//!
//! | Category | Methods |
//! |---|---|
//! | Under-sampling | `RandUnder`, `NearMiss` (v1/v2/v3), `Clean` (NCR), `ENN`, `TomekLink`, `AllKNN`, `OSS` |
//! | Over-sampling | `RandOver`, `SMOTE`, `ADASYN`, `BorderSMOTE` |
//! | Hybrid | `SMOTEENN`, `SMOTETomek` |
//!
//! All distance-based methods share the brute-force k-NN kernel from
//! `spe-learners`; their O(n²·d) cost is intentional — it is precisely
//! the inefficiency the paper measures in Table V's timing column.

pub mod cleaning;
pub mod nearmiss;
pub mod random;
pub mod smote;

use spe_data::Dataset;

pub use cleaning::{
    AllKnn, EditedNearestNeighbours, NeighbourhoodCleaningRule, OneSideSelection, TomekLinks,
};
pub use nearmiss::{NearMiss, NearMissVersion};
pub use random::{RandomOverSampler, RandomUnderSampler};
pub use smote::{generate_synthetics, Adasyn, BorderlineSmote, Smote, SmoteEnn, SmoteTomek};

/// A dataset re-sampler: transforms a training set into a (usually more
/// balanced or cleaner) training set.
pub trait Sampler: Send + Sync {
    /// Produces the re-sampled dataset. `seed` drives any randomness;
    /// deterministic cleaning rules ignore it.
    fn resample(&self, data: &Dataset, seed: u64) -> Dataset;

    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;
}

/// No-op sampler — the `ORG` row of Table V (train on the original set).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoResampling;

impl Sampler for NoResampling {
    fn resample(&self, data: &Dataset, _seed: u64) -> Dataset {
        data.clone()
    }

    fn name(&self) -> &'static str {
        "ORG"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::Matrix;

    #[test]
    fn no_resampling_is_identity() {
        let d = Dataset::new(Matrix::from_vec(2, 1, vec![1.0, 2.0]), vec![0, 1]);
        let r = NoResampling.resample(&d, 0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.x().as_slice(), d.x().as_slice());
        assert_eq!(NoResampling.name(), "ORG");
    }
}
