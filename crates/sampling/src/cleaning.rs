//! Neighbor-based cleaning under-samplers: ENN, AllKNN, Tomek links,
//! One-Side Selection and the Neighbourhood Cleaning Rule (the paper's
//! `Clean` baseline).
//!
//! These rules remove *noisy or borderline majority* samples rather than
//! balancing the classes; as Table V shows, they retain almost the whole
//! dataset (`#Sample` ≈ original) and pay a large O(n²) distance cost.

use crate::Sampler;
use spe_data::{Dataset, SeededRng};
use spe_learners::neighbors::{knn_batch, knn_query};

/// Keeps everything except the listed (sorted, deduped) indices.
fn drop_indices(data: &Dataset, remove: &[usize]) -> Dataset {
    let keep: Vec<usize> = (0..data.len())
        .filter(|i| remove.binary_search(i).is_err())
        .collect();
    data.select(&keep)
}

/// Majority samples whose k-neighborhood (leave-one-out, over the whole
/// set) disagrees with them, per the "mode" rule: removed when strictly
/// fewer than half of the neighbors share the majority label.
fn enn_removals(data: &Dataset, k: usize) -> Vec<usize> {
    let hits = knn_batch(data.x(), data.x(), k, true);
    let y = data.y();
    let mut remove = Vec::new();
    for (i, neigh) in hits.iter().enumerate() {
        if y[i] != 0 {
            continue; // only the majority class is cleaned
        }
        let same = neigh.iter().filter(|h| y[h.index] == 0).count();
        if same * 2 < neigh.len() {
            remove.push(i);
        }
    }
    remove
}

/// Edited Nearest Neighbours (Wilson 1972): removes majority samples
/// misclassified by their k nearest neighbors.
#[derive(Clone, Copy, Debug)]
pub struct EditedNearestNeighbours {
    /// Neighborhood size (default 3).
    pub k: usize,
}

impl Default for EditedNearestNeighbours {
    fn default() -> Self {
        Self { k: 3 }
    }
}

impl Sampler for EditedNearestNeighbours {
    fn resample(&self, data: &Dataset, _seed: u64) -> Dataset {
        if data.n_positive() == 0 || data.n_negative() == 0 {
            return data.clone();
        }
        drop_indices(data, &enn_removals(data, self.k))
    }

    fn name(&self) -> &'static str {
        "ENN"
    }
}

/// AllKNN (Tomek 1976): repeated ENN with the neighborhood size growing
/// from 1 to `k_max`, removing more aggressively each round.
#[derive(Clone, Copy, Debug)]
pub struct AllKnn {
    /// Final neighborhood size (default 3).
    pub k_max: usize,
}

impl Default for AllKnn {
    fn default() -> Self {
        Self { k_max: 3 }
    }
}

impl Sampler for AllKnn {
    fn resample(&self, data: &Dataset, _seed: u64) -> Dataset {
        let mut current = data.clone();
        for k in 1..=self.k_max {
            if current.n_positive() == 0 || current.n_negative() <= 1 {
                break;
            }
            current = drop_indices(&current, &enn_removals(&current, k));
        }
        current
    }

    fn name(&self) -> &'static str {
        "AllKNN"
    }
}

/// Positions `i` that form Tomek links with an opposite-class sample:
/// `i` and `j` are mutual 1-nearest neighbors of different classes.
/// Returns only the majority members of each link, sorted.
fn tomek_majority_members(data: &Dataset) -> Vec<usize> {
    let nn = knn_batch(data.x(), data.x(), 1, true);
    let y = data.y();
    let nearest: Vec<Option<usize>> = nn.iter().map(|h| h.first().map(|n| n.index)).collect();
    let mut remove = Vec::new();
    for (i, &nb) in nearest.iter().enumerate() {
        let Some(j) = nb else { continue };
        if y[i] == 0 && y[j] != 0 && nearest[j] == Some(i) {
            remove.push(i);
        }
    }
    remove
}

/// Tomek-link removal (Tomek 1976): drops the majority member of every
/// cross-class mutual-nearest-neighbor pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct TomekLinks;

impl Sampler for TomekLinks {
    fn resample(&self, data: &Dataset, _seed: u64) -> Dataset {
        if data.n_positive() == 0 || data.n_negative() == 0 {
            return data.clone();
        }
        drop_indices(data, &tomek_majority_members(data))
    }

    fn name(&self) -> &'static str {
        "TomekLink"
    }
}

/// One-Side Selection (Kubat & Matwin 1997): a 1-NN condensation pass
/// keeps the minority set, one random majority seed and every majority
/// sample the condensed set misclassifies; Tomek links are then removed.
#[derive(Clone, Copy, Debug, Default)]
pub struct OneSideSelection;

impl Sampler for OneSideSelection {
    fn resample(&self, data: &Dataset, seed: u64) -> Dataset {
        let idx = data.class_index();
        if idx.minority.is_empty() || idx.majority.len() <= 1 {
            return data.clone();
        }
        let mut rng = SeededRng::new(seed);

        // Condensation store: all minority + one random majority.
        let mut store: Vec<usize> = idx.minority.clone();
        let seed_maj = idx.majority[rng.below(idx.majority.len())];
        store.push(seed_maj);

        // Single CNN pass over the remaining majority.
        let store_x = data.x().select_rows(&store);
        let mut store_y: Vec<u8> = store.iter().map(|&i| data.y()[i]).collect();
        let mut store_x = store_x;
        for &i in &idx.majority {
            if i == seed_maj {
                continue;
            }
            let hit = knn_query(&store_x, data.x().row(i), 1, None);
            let predicted = hit.first().map_or(0, |h| store_y[h.index]);
            if predicted != 0 {
                // Misclassified by the current store: keep it.
                store.push(i);
                store_x.push_row(data.x().row(i));
                store_y.push(0);
            }
        }
        store.sort_unstable();
        let condensed = data.select(&store);

        // Final Tomek cleaning on the condensed set.
        drop_indices(&condensed, &tomek_majority_members(&condensed))
    }

    fn name(&self) -> &'static str {
        "OSS"
    }
}

/// Neighbourhood Cleaning Rule (Laurikkala 2001) — the paper's `Clean`:
/// ENN on the majority class, plus removal of majority neighbors of any
/// minority sample its neighborhood misclassifies.
#[derive(Clone, Copy, Debug)]
pub struct NeighbourhoodCleaningRule {
    /// Neighborhood size (default 3).
    pub k: usize,
}

impl Default for NeighbourhoodCleaningRule {
    fn default() -> Self {
        Self { k: 3 }
    }
}

impl Sampler for NeighbourhoodCleaningRule {
    fn resample(&self, data: &Dataset, _seed: u64) -> Dataset {
        if data.n_positive() == 0 || data.n_negative() == 0 {
            return data.clone();
        }
        let y = data.y();
        let hits = knn_batch(data.x(), data.x(), self.k, true);
        let mut remove = Vec::new();
        for (i, neigh) in hits.iter().enumerate() {
            if y[i] == 0 {
                // ENN part: majority sample misclassified by neighbors.
                let same = neigh.iter().filter(|h| y[h.index] == 0).count();
                if same * 2 < neigh.len() {
                    remove.push(i);
                }
            } else {
                // Minority sample misclassified: drop its majority
                // neighbors instead.
                let maj = neigh.iter().filter(|h| y[h.index] == 0).count();
                if maj * 2 > neigh.len() {
                    remove.extend(neigh.iter().filter(|h| y[h.index] == 0).map(|h| h.index));
                }
            }
        }
        remove.sort_unstable();
        remove.dedup();
        drop_indices(data, &remove)
    }

    fn name(&self) -> &'static str {
        "Clean"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::{Matrix, SeededRng};

    /// Majority cluster with a few majority outliers sitting inside the
    /// minority cluster.
    fn noisy_clusters() -> Dataset {
        let mut rng = SeededRng::new(9);
        let mut x = Matrix::with_capacity(65, 2);
        let mut y = Vec::new();
        for _ in 0..40 {
            x.push_row(&[rng.normal(-3.0, 0.3), rng.normal(0.0, 0.3)]);
            y.push(0);
        }
        for _ in 0..20 {
            x.push_row(&[rng.normal(3.0, 0.3), rng.normal(0.0, 0.3)]);
            y.push(1);
        }
        // Majority outliers embedded in the minority cluster.
        for _ in 0..5 {
            x.push_row(&[rng.normal(3.0, 0.1), rng.normal(0.0, 0.1)]);
            y.push(0);
        }
        Dataset::new(x, y)
    }

    fn count_outliers_kept(r: &Dataset) -> usize {
        r.x()
            .iter_rows()
            .zip(r.y())
            .filter(|(row, &l)| l == 0 && row[0] > 0.0)
            .count()
    }

    #[test]
    fn enn_removes_embedded_outliers() {
        let d = noisy_clusters();
        let r = EditedNearestNeighbours::default().resample(&d, 0);
        assert_eq!(r.n_positive(), 20, "minority untouched");
        assert!(count_outliers_kept(&r) < 5);
        assert!(r.n_negative() >= 40, "bulk majority kept");
    }

    #[test]
    fn allknn_removes_at_least_as_much_as_enn() {
        let d = noisy_clusters();
        let enn = EditedNearestNeighbours::default().resample(&d, 0);
        let all = AllKnn::default().resample(&d, 0);
        assert!(all.len() <= enn.len());
        assert_eq!(all.n_positive(), 20);
    }

    #[test]
    fn tomek_removes_only_link_members() {
        // A clear Tomek link: one majority/minority pair adjacent, plus
        // far-away bulk on both sides.
        let x = Matrix::from_vec(6, 1, vec![0.0, 0.2, -5.0, -5.2, 5.0, 5.2]);
        let d = Dataset::new(x, vec![0, 1, 0, 0, 1, 1]);
        let r = TomekLinks.resample(&d, 0);
        // The majority sample at 0.0 forms a link with the minority at
        // 0.2 and must be removed; the rest stay.
        assert_eq!(r.len(), 5);
        assert!(r
            .x()
            .iter_rows()
            .zip(r.y())
            .all(|(row, &l)| !(l == 0 && row[0] == 0.0)));
    }

    #[test]
    fn ncr_cleans_more_than_enn() {
        let d = noisy_clusters();
        let enn = EditedNearestNeighbours::default().resample(&d, 0);
        let ncr = NeighbourhoodCleaningRule::default().resample(&d, 0);
        assert!(ncr.len() <= enn.len());
        assert_eq!(ncr.n_positive(), 20);
        assert_eq!(count_outliers_kept(&ncr), 0);
    }

    #[test]
    fn oss_keeps_minority_and_shrinks_majority() {
        let d = noisy_clusters();
        let r = OneSideSelection.resample(&d, 3);
        assert_eq!(r.n_positive(), 20);
        assert!(r.n_negative() < 45);
        assert!(r.n_negative() >= 1);
    }

    #[test]
    fn cleaning_is_deterministic() {
        let d = noisy_clusters();
        let a = NeighbourhoodCleaningRule::default().resample(&d, 0);
        let b = NeighbourhoodCleaningRule::default().resample(&d, 99);
        assert_eq!(a.x().as_slice(), b.x().as_slice());
    }

    #[test]
    fn single_class_passthrough() {
        let x = Matrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]);
        let d = Dataset::new(x, vec![0, 0, 0]);
        assert_eq!(EditedNearestNeighbours::default().resample(&d, 0).len(), 3);
        assert_eq!(TomekLinks.resample(&d, 0).len(), 3);
        assert_eq!(
            NeighbourhoodCleaningRule::default().resample(&d, 0).len(),
            3
        );
    }
}
