//! Random under- and over-sampling (the `RandUnder` / `RandOver`
//! baselines; also the primitive inside EasyEnsemble / UnderBagging /
//! RUSBoost).

use crate::Sampler;
use spe_data::{Dataset, SeededRng};

/// Randomly drops majority samples until `|N'| = ratio · |P|`.
#[derive(Clone, Copy, Debug)]
pub struct RandomUnderSampler {
    /// Majority-to-minority ratio after sampling (paper baselines: 1.0).
    pub ratio: f64,
}

impl Default for RandomUnderSampler {
    fn default() -> Self {
        Self { ratio: 1.0 }
    }
}

impl RandomUnderSampler {
    /// Draws the majority *indices* for one balanced subset — exposed so
    /// ensemble methods can resample many times without copying the
    /// minority set repeatedly.
    pub fn sample_majority_indices(
        &self,
        majority: &[usize],
        n_minority: usize,
        rng: &mut SeededRng,
    ) -> Vec<usize> {
        let target = ((n_minority as f64) * self.ratio).round().max(1.0) as usize;
        rng.sample_from(majority, target)
    }
}

impl Sampler for RandomUnderSampler {
    fn resample(&self, data: &Dataset, seed: u64) -> Dataset {
        let idx = data.class_index();
        if idx.minority.is_empty() || idx.majority.is_empty() {
            return data.clone();
        }
        let mut rng = SeededRng::new(seed);
        let mut keep = self.sample_majority_indices(&idx.majority, idx.minority.len(), &mut rng);
        keep.extend_from_slice(&idx.minority);
        rng.shuffle(&mut keep);
        data.select(&keep)
    }

    fn name(&self) -> &'static str {
        "RandUnder"
    }
}

/// Randomly duplicates minority samples until classes are balanced.
#[derive(Clone, Copy, Debug)]
pub struct RandomOverSampler {
    /// Minority-to-majority ratio after sampling (1.0 = fully balanced).
    pub ratio: f64,
}

impl Default for RandomOverSampler {
    fn default() -> Self {
        Self { ratio: 1.0 }
    }
}

impl Sampler for RandomOverSampler {
    fn resample(&self, data: &Dataset, seed: u64) -> Dataset {
        let idx = data.class_index();
        if idx.minority.is_empty() || idx.majority.is_empty() {
            return data.clone();
        }
        let target = ((idx.majority.len() as f64) * self.ratio).round() as usize;
        if target <= idx.minority.len() {
            return data.clone();
        }
        let extra = target - idx.minority.len();
        let mut rng = SeededRng::new(seed);
        let mut keep: Vec<usize> = (0..data.len()).collect();
        for _ in 0..extra {
            keep.push(idx.minority[rng.below(idx.minority.len())]);
        }
        rng.shuffle(&mut keep);
        data.select(&keep)
    }

    fn name(&self) -> &'static str {
        "RandOver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::Matrix;

    fn imbalanced(n_pos: usize, n_neg: usize) -> Dataset {
        let n = n_pos + n_neg;
        let x = Matrix::from_vec(n, 1, (0..n).map(|i| i as f64).collect());
        let y = (0..n).map(|i| u8::from(i < n_pos)).collect();
        Dataset::new(x, y)
    }

    #[test]
    fn under_sampling_balances() {
        let d = imbalanced(10, 200);
        let r = RandomUnderSampler::default().resample(&d, 1);
        assert_eq!(r.n_positive(), 10);
        assert_eq!(r.n_negative(), 10);
    }

    #[test]
    fn under_sampling_keeps_all_minority() {
        let d = imbalanced(5, 100);
        let r = RandomUnderSampler::default().resample(&d, 2);
        // Minority feature values are 0..5 and must all survive.
        let mut pos_feats: Vec<i64> = r
            .x()
            .iter_rows()
            .zip(r.y())
            .filter(|(_, &l)| l == 1)
            .map(|(row, _)| row[0] as i64)
            .collect();
        pos_feats.sort_unstable();
        assert_eq!(pos_feats, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn under_sampling_ratio_scales_majority() {
        let d = imbalanced(10, 200);
        let r = RandomUnderSampler { ratio: 3.0 }.resample(&d, 3);
        assert_eq!(r.n_negative(), 30);
    }

    #[test]
    fn over_sampling_balances() {
        let d = imbalanced(10, 200);
        let r = RandomOverSampler::default().resample(&d, 4);
        assert_eq!(r.n_positive(), 200);
        assert_eq!(r.n_negative(), 200);
    }

    #[test]
    fn over_sampling_only_duplicates_minority() {
        let d = imbalanced(3, 50);
        let r = RandomOverSampler::default().resample(&d, 5);
        for (row, &l) in r.x().iter_rows().zip(r.y()) {
            if l == 1 {
                assert!(row[0] < 3.0);
            }
        }
    }

    #[test]
    fn degenerate_single_class_passthrough() {
        let x = Matrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]);
        let d = Dataset::new(x, vec![0, 0, 0]);
        assert_eq!(RandomUnderSampler::default().resample(&d, 0).len(), 3);
        assert_eq!(RandomOverSampler::default().resample(&d, 0).len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = imbalanced(10, 100);
        let a = RandomUnderSampler::default().resample(&d, 9);
        let b = RandomUnderSampler::default().resample(&d, 9);
        assert_eq!(a.x().as_slice(), b.x().as_slice());
    }
}
