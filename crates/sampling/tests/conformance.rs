//! Sampler-trait conformance suite: shared behavioural contract for all
//! fourteen re-samplers.

use spe_data::{Dataset, Matrix, SeededRng};
use spe_sampling::{
    Adasyn, AllKnn, BorderlineSmote, EditedNearestNeighbours, NearMiss, NearMissVersion,
    NeighbourhoodCleaningRule, NoResampling, OneSideSelection, RandomOverSampler,
    RandomUnderSampler, Sampler, Smote, SmoteEnn, SmoteTomek, TomekLinks,
};

fn all_samplers() -> Vec<Box<dyn Sampler>> {
    vec![
        Box::new(NoResampling),
        Box::new(RandomUnderSampler::default()),
        Box::new(RandomOverSampler::default()),
        Box::new(NearMiss::version(NearMissVersion::V1)),
        Box::new(NearMiss::version(NearMissVersion::V2)),
        Box::new(NearMiss::version(NearMissVersion::V3)),
        Box::new(EditedNearestNeighbours::default()),
        Box::new(TomekLinks),
        Box::new(AllKnn::default()),
        Box::new(OneSideSelection),
        Box::new(NeighbourhoodCleaningRule::default()),
        Box::new(Smote::default()),
        Box::new(Adasyn::default()),
        Box::new(BorderlineSmote::default()),
        Box::new(SmoteEnn::default()),
        Box::new(SmoteTomek::default()),
    ]
}

fn imbalanced(n_pos: usize, n_neg: usize, seed: u64) -> Dataset {
    let mut rng = SeededRng::new(seed);
    let mut x = Matrix::with_capacity(n_pos + n_neg, 2);
    let mut y = Vec::new();
    for _ in 0..n_neg {
        x.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]);
        y.push(0);
    }
    for _ in 0..n_pos {
        x.push_row(&[rng.normal(2.0, 1.0), rng.normal(2.0, 1.0)]);
        y.push(1);
    }
    Dataset::new(x, y)
}

#[test]
fn never_drops_the_whole_minority() {
    let d = imbalanced(15, 300, 1);
    for s in all_samplers() {
        let r = s.resample(&d, 2);
        assert!(r.n_positive() > 0, "{} lost the minority", s.name());
        assert!(r.n_negative() > 0, "{} lost the majority", s.name());
    }
}

#[test]
fn never_increases_imbalance() {
    let d = imbalanced(15, 300, 3);
    let original_ir = d.imbalance_ratio();
    for s in all_samplers() {
        let r = s.resample(&d, 4);
        assert!(
            r.imbalance_ratio() <= original_ir + 1e-9,
            "{}: IR went {original_ir:.1} -> {:.1}",
            s.name(),
            r.imbalance_ratio()
        );
    }
}

#[test]
fn feature_width_preserved() {
    let d = imbalanced(12, 120, 5);
    for s in all_samplers() {
        let r = s.resample(&d, 6);
        assert_eq!(r.n_features(), 2, "{}", s.name());
        assert!(!r.is_empty(), "{}", s.name());
    }
}

#[test]
fn deterministic_for_equal_seeds() {
    let d = imbalanced(12, 150, 7);
    for s in all_samplers() {
        let a = s.resample(&d, 8);
        let b = s.resample(&d, 8);
        assert_eq!(a.y(), b.y(), "{} labels differ", s.name());
        assert_eq!(
            a.x().as_slice(),
            b.x().as_slice(),
            "{} features differ",
            s.name()
        );
    }
}

#[test]
fn under_samplers_only_remove_majority_rows() {
    // Every surviving sample of an under-sampler must be an original row.
    let d = imbalanced(10, 120, 9);
    let originals: std::collections::HashSet<[u64; 2]> = d
        .x()
        .iter_rows()
        .map(|r| [r[0].to_bits(), r[1].to_bits()])
        .collect();
    let under: Vec<Box<dyn Sampler>> = vec![
        Box::new(RandomUnderSampler::default()),
        Box::new(NearMiss::default()),
        Box::new(EditedNearestNeighbours::default()),
        Box::new(TomekLinks),
        Box::new(AllKnn::default()),
        Box::new(OneSideSelection),
        Box::new(NeighbourhoodCleaningRule::default()),
    ];
    for s in under {
        let r = s.resample(&d, 10);
        assert!(r.len() <= d.len(), "{} grew the dataset", s.name());
        for row in r.x().iter_rows() {
            assert!(
                originals.contains(&[row[0].to_bits(), row[1].to_bits()]),
                "{} fabricated a sample",
                s.name()
            );
        }
    }
}

#[test]
fn over_samplers_keep_all_original_rows() {
    let d = imbalanced(10, 100, 11);
    let over: Vec<Box<dyn Sampler>> = vec![
        Box::new(RandomOverSampler::default()),
        Box::new(Smote::default()),
        Box::new(Adasyn::default()),
        Box::new(BorderlineSmote::default()),
    ];
    for s in over {
        let r = s.resample(&d, 12);
        assert!(r.len() >= d.len(), "{} shrank the dataset", s.name());
        // Every original row survives (over-samplers may shuffle, so
        // compare as multisets of bit patterns).
        let out: std::collections::HashSet<[u64; 2]> = r
            .x()
            .iter_rows()
            .map(|row| [row[0].to_bits(), row[1].to_bits()])
            .collect();
        for row in d.x().iter_rows() {
            assert!(
                out.contains(&[row[0].to_bits(), row[1].to_bits()]),
                "{} dropped an original sample",
                s.name()
            );
        }
    }
}

#[test]
fn tiny_datasets_do_not_panic() {
    // 2 minority, 3 majority: smaller than every default neighborhood.
    let d = imbalanced(2, 3, 13);
    for s in all_samplers() {
        let r = s.resample(&d, 14);
        assert!(!r.is_empty(), "{}", s.name());
    }
}
