//! End-to-end online-retraining tests over a live scoring engine:
//!
//! * a concept-drifting checkerboard stream degrades the incumbent's
//!   AUCPRC, the drift detector fires, the background loop refits and
//!   promotes, and AUCPRC on the new concept recovers — while the
//!   engine keeps answering score requests throughout;
//! * a candidate that cannot clear the improvement bar is rejected and
//!   the incumbent's predictions stay bit-identical;
//! * a host that refuses promotion surfaces as a failed retrain without
//!   killing the loop.

use spe_core::SelfPacedEnsembleConfig;
use spe_data::{Matrix, MatrixView};
use spe_datasets::{concept_dataset, DriftStreamConfig, DriftingStream};
use spe_learners::traits::Model;
use spe_metrics::aucprc;
use spe_online::{DriftConfig, DriftMetric, LiveModel, OnlineConfig, RetrainLoop, WindowConfig};
use spe_serve::{EngineConfig, ScoringEngine, ServeError};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn board() -> DriftStreamConfig {
    DriftStreamConfig {
        rows: 200_000,
        features: 4,
        minority_fraction: 0.15,
        batch_rows: 250,
        grid: 4,
        cov: 0.01,
        drift_at: 1_000,
    }
}

/// Incumbent trained on concept A, wrapped in a serving engine.
fn incumbent_engine() -> Arc<ScoringEngine> {
    let cfg = board();
    let train_a = concept_dataset(&cfg, 11, 4_000, false);
    let model = SelfPacedEnsembleConfig::new(8).fit_dataset(&train_a, 12);
    Arc::new(ScoringEngine::start(Box::new(model), cfg.features, EngineConfig::default()).unwrap())
}

fn online_config(min_improvement: f64) -> OnlineConfig {
    OnlineConfig {
        window: WindowConfig {
            majority_capacity: 1_200,
            minority_capacity: 300,
        },
        holdout: WindowConfig {
            majority_capacity: 400,
            minority_capacity: 80,
        },
        holdout_every: 4,
        drift: DriftConfig {
            metric: DriftMetric::Aucprc,
            batch: 100,
            reference_batches: 2,
            threshold: 0.15,
            patience: 1,
        },
        min_rows: 300,
        // Periodic safety net: promotion still requires improvement, so
        // the model only ever ratchets upward.
        retrain_interval: Some(Duration::from_millis(300)),
        min_improvement,
        members: 5,
        train_budget: Some(Duration::from_secs(20)),
        threads: None,
        seed: 99,
    }
}

#[test]
fn drift_triggers_retrain_promotion_and_recovery() {
    let cfg = board();
    let engine = incumbent_engine();
    let test_a = concept_dataset(&cfg, 21, 2_000, false);
    let test_b = concept_dataset(&cfg, 22, 2_000, true);

    let auc_a = aucprc(test_a.y(), &engine.score_matrix(test_a.x()).unwrap());
    let auc_b_before = aucprc(test_b.y(), &engine.score_matrix(test_b.x()).unwrap());
    assert!(auc_a > 0.9, "incumbent healthy on concept A: {auc_a:.3}");
    assert!(
        auc_b_before < 0.4,
        "parity flip must degrade the incumbent: {auc_b_before:.3}"
    );

    let host: Arc<dyn LiveModel> = Arc::new(Arc::clone(&engine));
    let retrain = RetrainLoop::start(host, cfg.features, online_config(0.01)).unwrap();

    // Stream through the drift point, feeding labeled feedback while
    // asserting the engine keeps scoring with zero downtime.
    let mut stream = DriftingStream::new(cfg, 23);
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut promoted = false;
    while Instant::now() < deadline {
        if let Some((x, y)) = stream.next_batch() {
            retrain.ingest(x, y).unwrap();
        }
        let scores = engine
            .score_matrix(test_b.x())
            .expect("no scoring downtime");
        assert_eq!(scores.len(), test_b.len());
        let status = retrain.status();
        if status.retrains_promoted >= 1 && !status.retraining {
            promoted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let status = retrain.status();
    assert!(promoted, "no promotion before deadline: {status:?}");
    assert!(status.drift_events >= 1, "drift must fire: {status:?}");
    assert!(status.total_breaches >= 1);
    assert_eq!(status.retrains_failed, 0, "{status:?}");
    assert!(status.last_promotion_delta.unwrap() > 0.01);

    // Recovery: let the loop keep ratcheting briefly, then measure.
    let recovery_deadline = Instant::now() + Duration::from_secs(30);
    let mut auc_b_after = 0.0;
    while Instant::now() < recovery_deadline {
        if let Some((x, y)) = stream.next_batch() {
            retrain.ingest(x, y).unwrap();
        }
        auc_b_after = aucprc(test_b.y(), &engine.score_matrix(test_b.x()).unwrap());
        if auc_b_after > 0.7 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        auc_b_after > 0.7,
        "AUCPRC must recover on the drifted concept: before {auc_b_before:.3}, after {auc_b_after:.3}"
    );
}

#[test]
fn worse_candidate_is_never_promoted() {
    let cfg = board();
    let engine = incumbent_engine();
    let test_b = concept_dataset(&cfg, 32, 1_000, true);
    let baseline = engine.score_matrix(test_b.x()).unwrap();

    // An impossible bar: no candidate can beat the incumbent by 1.0 in
    // a [0, 1] metric, so every retrain must be rejected.
    let host: Arc<dyn LiveModel> = Arc::new(Arc::clone(&engine));
    let retrain = RetrainLoop::start(host, cfg.features, online_config(1.0)).unwrap();

    let mut stream = DriftingStream::new(cfg, 33);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "no rejection before deadline");
        if let Some((x, y)) = stream.next_batch() {
            retrain.ingest(x, y).unwrap();
        }
        let status = retrain.status();
        assert_eq!(status.retrains_promoted, 0, "{status:?}");
        if status.retrains_rejected >= 1 && !status.retraining {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let status = retrain.status();
    assert_eq!(status.retrains_promoted, 0);
    assert_eq!(status.last_promotion_delta, None);
    // The incumbent was never swapped: scoring is bit-identical.
    assert_eq!(engine.score_matrix(test_b.x()).unwrap(), baseline);
}

/// Host whose incumbent scores in-process but refuses every install —
/// models the registry rejecting a swap (e.g. class-width gate).
struct RefusingHost {
    incumbent: Box<dyn Model>,
}

impl LiveModel for RefusingHost {
    fn score_rows(&self, x: MatrixView<'_>) -> Result<Vec<f64>, ServeError> {
        Ok(self.incumbent.predict_proba_view(x))
    }

    fn install(&self, _model: Box<dyn Model>) -> Result<(), ServeError> {
        Err(ServeError::InvalidConfig("installs refused".into()))
    }
}

#[test]
fn refused_promotion_counts_as_failed_and_loop_survives() {
    let cfg = board();
    let train_a = concept_dataset(&cfg, 41, 3_000, false);
    let incumbent = SelfPacedEnsembleConfig::new(6).fit_dataset(&train_a, 42);
    let host: Arc<dyn LiveModel> = Arc::new(RefusingHost {
        incumbent: Box::new(incumbent),
    });
    let retrain = RetrainLoop::start(host, cfg.features, online_config(0.01)).unwrap();

    let mut stream = DriftingStream::new(cfg, 43);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(
            Instant::now() < deadline,
            "no failed retrain before deadline"
        );
        if let Some((x, y)) = stream.next_batch() {
            retrain.ingest(x, y).unwrap();
        }
        let status = retrain.status();
        if status.retrains_failed >= 1 {
            assert_eq!(status.retrains_promoted, 0);
            assert!(status.last_error.as_deref().unwrap().contains("promotion"));
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    // The worker survived the failure: ingestion still works.
    let probe = Matrix::from_vec(1, cfg.features, vec![0.5; cfg.features]);
    retrain.ingest(probe, vec![0]).unwrap();
}

#[test]
fn ingest_validates_inputs() {
    let cfg = board();
    let engine = incumbent_engine();
    let host: Arc<dyn LiveModel> = Arc::new(Arc::clone(&engine));
    let retrain = RetrainLoop::start(host, cfg.features, online_config(0.01)).unwrap();

    let wrong_width = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
    assert!(matches!(
        retrain.ingest(wrong_width, vec![0]),
        Err(ServeError::RowWidthMismatch { .. })
    ));
    let x = Matrix::from_vec(1, cfg.features, vec![0.0; cfg.features]);
    assert!(matches!(
        retrain.ingest(x.clone(), vec![0, 1]),
        Err(ServeError::InvalidConfig(_))
    ));
    assert!(matches!(
        retrain.ingest(x.clone(), vec![3]),
        Err(ServeError::InvalidConfig(_))
    ));
    retrain.ingest(x, vec![1]).unwrap();
    assert_eq!(retrain.status().ingested_rows, 1);
}
