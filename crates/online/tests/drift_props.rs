//! Property tests for the drift detector's trigger contract:
//!
//! 1. **No false trigger** on a stationary stream, for any seed — a
//!    well-separated model never drifts just from sampling noise.
//! 2. **Guaranteed trigger** within `reference_batches + patience + 1`
//!    batches of an injected concept flip, for any seed.
//! 3. **Monotone breach counting** — `total_breaches` and `events`
//!    never decrease as observations stream in.

use proptest::prelude::*;
use spe_data::SeededRng;
use spe_online::{DriftConfig, DriftDetector, DriftMetric};

const BATCH: usize = 64;

fn detector(patience: usize) -> DriftDetector {
    DriftDetector::new(DriftConfig {
        metric: DriftMetric::Aucprc,
        batch: BATCH,
        reference_batches: 3,
        threshold: 0.15,
        patience,
    })
    .unwrap()
}

/// Emits one observation of a simulated scored stream: ~20% positives,
/// scores centered on the right side (healthy) or the wrong side
/// (flipped) of 0.5, with noise that never crosses the midline — AUCPRC
/// stays pinned near 1 (healthy) / 0 (flipped) per batch, modeling a
/// clean separation and its anti-correlated collapse.
fn draw(rng: &mut SeededRng, flipped: bool) -> (f64, u8) {
    let label = u8::from(rng.uniform() < 0.2);
    let healthy_center = if label == 1 { 0.8 } else { 0.2 };
    let center = if flipped {
        1.0 - healthy_center
    } else {
        healthy_center
    };
    (center + rng.range(-0.15, 0.15), label)
}

proptest! {
    // Stationary stream: whatever the seed, a healthy model's noisy
    // scores never accumulate enough signal to raise an event.
    #[test]
    fn no_false_trigger_on_stationary_stream(seed in 0u64..5_000, patience in 1usize..4) {
        let mut rng = SeededRng::new(seed);
        let mut d = detector(patience);
        for _ in 0..40 * BATCH {
            let (s, l) = draw(&mut rng, false);
            prop_assert_eq!(d.observe(s, l), None);
        }
        prop_assert_eq!(d.events(), 0);
        prop_assert_eq!(d.total_breaches(), 0);
    }

    // Injected flip: after the reference is established, an abrupt
    // concept flip must trigger within `patience + 1` further batches
    // (+1 absorbs the partially-filled straddling batch).
    #[test]
    fn flip_triggers_within_patience_batches(seed in 0u64..5_000, patience in 1usize..4) {
        let mut rng = SeededRng::new(seed);
        let mut d = detector(patience);
        // Healthy warm-up: enough complete batches for the reference.
        for _ in 0..6 * BATCH {
            let (s, l) = draw(&mut rng, false);
            prop_assert_eq!(d.observe(s, l), None);
        }
        let mut triggered_after = None;
        for i in 0..(patience + 1) * BATCH {
            let (s, l) = draw(&mut rng, true);
            if d.observe(s, l).is_some() {
                triggered_after = Some(i + 1);
                break;
            }
        }
        let n = triggered_after.expect("flip must trigger within the bound");
        prop_assert!(n <= (patience + 1) * BATCH, "took {n} observations");
        prop_assert_eq!(d.events(), 1);
    }

    // Monotonicity: lifetime counters never decrease, whatever mix of
    // healthy and flipped phases streams through.
    #[test]
    fn breach_counters_are_monotone(seed in 0u64..5_000) {
        let mut rng = SeededRng::new(seed);
        let mut d = detector(2);
        let mut last_breaches = 0u64;
        let mut last_events = 0u64;
        for i in 0..50 * BATCH {
            // Alternate phases every 5 batches to exercise both paths.
            let flipped = (i / (5 * BATCH)) % 2 == 1;
            let (s, l) = draw(&mut rng, flipped);
            let _ = d.observe(s, l);
            prop_assert!(d.total_breaches() >= last_breaches);
            prop_assert!(d.events() >= last_events);
            last_breaches = d.total_breaches();
            last_events = d.events();
        }
    }
}
