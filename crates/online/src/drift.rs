//! Metric-based concept-drift detection on the live scoring stream.
//!
//! The detector consumes `(score, label)` pairs — the live model's
//! positive-class probability for a row whose true label later arrived —
//! and groups them into fixed-size batches. The first few healthy
//! batches establish a **reference level** for the chosen imbalance
//! metric (AUCPRC by default, the paper's headline metric); every later
//! batch is compared against it. A batch scoring more than `threshold`
//! below the reference is a *breach*; `patience` consecutive breaches
//! raise a [`DriftEvent`]. Requiring consecutive breaches filters the
//! sampling noise a single unlucky batch produces, while a genuine
//! concept flip breaches every batch and triggers within
//! `patience` batches of the flip reaching the detector.

use spe_data::SpeError;
use spe_metrics::{aucprc, g_mean, ConfusionMatrix};

/// Which imbalance metric the detector tracks per batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftMetric {
    /// Area under the precision-recall curve (paper's headline metric).
    Aucprc,
    /// Geometric mean of sensitivity and specificity at threshold 0.5.
    GMean,
}

impl DriftMetric {
    /// Scores one batch; returns `None` for single-class batches, which
    /// neither metric is defined on. Also used to compare candidate
    /// against incumbent on held-out window data, so the promotion
    /// criterion and the drift trigger speak the same metric.
    pub fn evaluate(self, scores: &[f64], labels: &[u8]) -> Option<f64> {
        let positives = labels.iter().filter(|&&l| l == 1).count();
        if positives == 0 || positives == labels.len() {
            return None;
        }
        Some(match self {
            DriftMetric::Aucprc => aucprc(labels, scores),
            DriftMetric::GMean => g_mean(&ConfusionMatrix::from_scores(labels, scores, 0.5)),
        })
    }

    /// Parses the kv-config spelling (`aucprc` / `gmean`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "aucprc" => Some(DriftMetric::Aucprc),
            "gmean" | "g_mean" => Some(DriftMetric::GMean),
            _ => None,
        }
    }
}

/// Detector parameters.
#[derive(Clone, Copy, Debug)]
pub struct DriftConfig {
    /// Metric tracked per batch.
    pub metric: DriftMetric,
    /// Labeled observations per evaluation batch.
    pub batch: usize,
    /// Healthy batches averaged into the reference level.
    pub reference_batches: usize,
    /// Absolute metric drop below the reference that counts as a breach.
    pub threshold: f64,
    /// Consecutive breaches required to raise a [`DriftEvent`].
    pub patience: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            metric: DriftMetric::Aucprc,
            batch: 256,
            reference_batches: 4,
            threshold: 0.15,
            patience: 2,
        }
    }
}

/// Raised when `patience` consecutive batches breached the reference.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftEvent {
    /// Metric of the batch that completed the breach run.
    pub score: f64,
    /// Reference level the batch was compared against.
    pub reference: f64,
    /// Consecutive breaches at trigger time (== patience).
    pub breaches: usize,
}

/// Streaming drift detector (see module docs).
#[derive(Clone, Debug)]
pub struct DriftDetector {
    cfg: DriftConfig,
    scores: Vec<f64>,
    labels: Vec<u8>,
    /// Sum and count of healthy batches feeding the reference mean.
    reference_sum: f64,
    reference_count: usize,
    last_score: Option<f64>,
    consecutive: usize,
    total_breaches: u64,
    events: u64,
}

impl DriftDetector {
    /// Creates a detector, validating the configuration.
    pub fn new(cfg: DriftConfig) -> Result<Self, SpeError> {
        if cfg.batch == 0 || cfg.reference_batches == 0 || cfg.patience == 0 {
            return Err(SpeError::InvalidConfig(
                "drift batch, reference_batches and patience must be positive".into(),
            ));
        }
        if !(cfg.threshold > 0.0 && cfg.threshold.is_finite()) {
            return Err(SpeError::InvalidConfig(
                "drift threshold must be a positive finite number".into(),
            ));
        }
        Ok(Self {
            cfg,
            scores: Vec::with_capacity(cfg.batch),
            labels: Vec::with_capacity(cfg.batch),
            reference_sum: 0.0,
            reference_count: 0,
            last_score: None,
            consecutive: 0,
            total_breaches: 0,
            events: 0,
        })
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// Feeds one `(live model score, true label)` pair; returns a
    /// [`DriftEvent`] when this pair completes a batch that crosses the
    /// patience line.
    pub fn observe(&mut self, score: f64, label: u8) -> Option<DriftEvent> {
        self.scores.push(score.clamp(0.0, 1.0));
        self.labels.push(u8::from(label == 1));
        if self.scores.len() < self.cfg.batch {
            return None;
        }
        let metric = self.cfg.metric.evaluate(&self.scores, &self.labels);
        self.scores.clear();
        self.labels.clear();
        // Single-class batches carry no signal; they neither extend the
        // reference nor touch the breach run.
        let metric = metric?;
        self.last_score = Some(metric);

        if self.reference_count < self.cfg.reference_batches {
            self.reference_sum += metric;
            self.reference_count += 1;
            return None;
        }
        let reference = self.reference_sum / self.reference_count as f64;
        if metric < reference - self.cfg.threshold {
            self.consecutive += 1;
            self.total_breaches += 1;
            if self.consecutive >= self.cfg.patience {
                self.events += 1;
                let event = DriftEvent {
                    score: metric,
                    reference,
                    breaches: self.consecutive,
                };
                self.consecutive = 0;
                return Some(event);
            }
        } else {
            self.consecutive = 0;
        }
        None
    }

    /// Forgets the reference level and any breach run — called after a
    /// model promotion, so the detector re-baselines against the *new*
    /// model instead of comparing it to the old one's healthy era.
    pub fn reset_after_retrain(&mut self) {
        self.reference_sum = 0.0;
        self.reference_count = 0;
        self.consecutive = 0;
        self.scores.clear();
        self.labels.clear();
        self.last_score = None;
    }

    /// Established reference level, once enough healthy batches arrived.
    pub fn reference(&self) -> Option<f64> {
        (self.reference_count >= self.cfg.reference_batches)
            .then(|| self.reference_sum / self.reference_count as f64)
    }

    /// Metric of the most recent complete batch.
    pub fn last_score(&self) -> Option<f64> {
        self.last_score
    }

    /// Length of the current consecutive-breach run.
    pub fn consecutive_breaches(&self) -> usize {
        self.consecutive
    }

    /// Lifetime breach count — monotone, never reset.
    pub fn total_breaches(&self) -> u64 {
        self.total_breaches
    }

    /// Lifetime [`DriftEvent`] count — monotone, never reset.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(batch: usize, threshold: f64, patience: usize) -> DriftDetector {
        DriftDetector::new(DriftConfig {
            metric: DriftMetric::Aucprc,
            batch,
            reference_batches: 2,
            threshold,
            patience,
        })
        .unwrap()
    }

    /// Feeds one batch where the model scores positives at `pos` and
    /// negatives at `neg` (perfect separation when pos > neg).
    fn feed_batch(d: &mut DriftDetector, pos: f64, neg: f64) -> Option<DriftEvent> {
        let batch = d.config().batch;
        let mut event = None;
        for i in 0..batch {
            let (s, l) = if i % 4 == 0 { (pos, 1) } else { (neg, 0) };
            if let Some(e) = d.observe(s, l) {
                event = Some(e);
            }
        }
        event
    }

    #[test]
    fn rejects_invalid_configs() {
        for cfg in [
            DriftConfig {
                batch: 0,
                ..DriftConfig::default()
            },
            DriftConfig {
                reference_batches: 0,
                ..DriftConfig::default()
            },
            DriftConfig {
                patience: 0,
                ..DriftConfig::default()
            },
            DriftConfig {
                threshold: 0.0,
                ..DriftConfig::default()
            },
            DriftConfig {
                threshold: f64::NAN,
                ..DriftConfig::default()
            },
        ] {
            assert!(DriftDetector::new(cfg).is_err(), "{cfg:?}");
        }
    }

    #[test]
    fn healthy_batches_build_reference_then_no_trigger() {
        let mut d = detector(40, 0.15, 2);
        for _ in 0..10 {
            assert_eq!(feed_batch(&mut d, 0.9, 0.1), None);
        }
        assert!(d.reference().unwrap() > 0.95);
        assert_eq!(d.total_breaches(), 0);
        assert_eq!(d.events(), 0);
    }

    #[test]
    fn flip_triggers_after_patience_breaches() {
        let mut d = detector(40, 0.15, 3);
        for _ in 0..4 {
            feed_batch(&mut d, 0.9, 0.1);
        }
        // Anti-correlated scoring: two breach batches, no event yet.
        assert_eq!(feed_batch(&mut d, 0.1, 0.9), None);
        assert_eq!(feed_batch(&mut d, 0.1, 0.9), None);
        assert_eq!(d.consecutive_breaches(), 2);
        let e = feed_batch(&mut d, 0.1, 0.9).expect("third breach triggers");
        assert_eq!(e.breaches, 3);
        assert!(e.score < e.reference - 0.15);
        assert_eq!(d.events(), 1);
        assert_eq!(d.consecutive_breaches(), 0, "run resets after event");
    }

    #[test]
    fn recovery_between_breaches_resets_the_run() {
        let mut d = detector(40, 0.15, 2);
        for _ in 0..4 {
            feed_batch(&mut d, 0.9, 0.1);
        }
        assert_eq!(feed_batch(&mut d, 0.1, 0.9), None);
        // A healthy batch interrupts the run.
        assert_eq!(feed_batch(&mut d, 0.9, 0.1), None);
        assert_eq!(d.consecutive_breaches(), 0);
        assert_eq!(feed_batch(&mut d, 0.1, 0.9), None, "run restarts at 1");
        assert_eq!(d.total_breaches(), 2, "lifetime count is monotone");
    }

    #[test]
    fn single_class_batches_are_skipped() {
        let mut d = detector(10, 0.15, 1);
        for _ in 0..50 {
            assert_eq!(d.observe(0.2, 0), None);
        }
        assert_eq!(d.reference(), None, "all-negative batches carry no signal");
        assert_eq!(d.last_score(), None);
    }

    #[test]
    fn reset_after_retrain_rebaselines() {
        let mut d = detector(40, 0.15, 1);
        for _ in 0..4 {
            feed_batch(&mut d, 0.9, 0.1);
        }
        assert!(feed_batch(&mut d, 0.1, 0.9).is_some());
        d.reset_after_retrain();
        assert_eq!(d.reference(), None);
        // The new model's mediocre-but-stable level becomes the new
        // reference instead of breaching against the old one.
        for _ in 0..10 {
            assert_eq!(feed_batch(&mut d, 0.6, 0.4), None);
        }
        assert_eq!(d.events(), 1);
    }

    #[test]
    fn gmean_metric_detects_flips_too() {
        let mut d = DriftDetector::new(DriftConfig {
            metric: DriftMetric::GMean,
            batch: 40,
            reference_batches: 2,
            threshold: 0.2,
            patience: 1,
        })
        .unwrap();
        for _ in 0..3 {
            assert_eq!(feed_batch(&mut d, 0.9, 0.1), None);
        }
        assert!(feed_batch(&mut d, 0.1, 0.9).is_some());
    }

    #[test]
    fn metric_parse_spellings() {
        assert_eq!(DriftMetric::parse("aucprc"), Some(DriftMetric::Aucprc));
        assert_eq!(DriftMetric::parse("gmean"), Some(DriftMetric::GMean));
        assert_eq!(DriftMetric::parse("g_mean"), Some(DriftMetric::GMean));
        assert_eq!(DriftMetric::parse("accuracy"), None);
    }
}
