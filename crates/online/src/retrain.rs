//! The background retrain loop: drift- or schedule-triggered SPE refits
//! with promote-on-improvement.
//!
//! ## Loop topology
//!
//! ```text
//!  ingest(x, y) ──► pending queue ──► worker thread
//!                                        │ score rows on live model
//!                                        │ feed DriftDetector
//!                                        │ route rows: 1-in-N → holdout
//!                                        │             rest  → window
//!                                        ▼
//!                        drift event or interval due?
//!                                        │ yes
//!                                        ▼
//!                        warm-started, budget-bounded SPE refit
//!                                        │
//!                        candidate vs incumbent on holdout
//!                                        │ better by min_improvement
//!                                        ▼
//!                        LiveModel::install (ScoringEngine::swap_model)
//! ```
//!
//! The worker owns all training work; [`RetrainLoop::ingest`] only
//! enqueues and never blocks on scoring or fitting, so the serving path
//! stays fast. Training runs *outside* the state lock on a snapshot of
//! the window, so ingestion and status queries proceed during a refit —
//! and the engine keeps answering `/score` throughout, because
//! `swap_model` is the only interaction with the serving path.

use crate::drift::{DriftConfig, DriftDetector, DriftMetric};
use crate::window::{WindowAccumulator, WindowConfig};
use parking_lot::{Condvar, Mutex};
use spe_core::SelfPacedEnsembleConfig;
use spe_data::{Matrix, MatrixView};
use spe_learners::traits::Model;
use spe_runtime::{Runtime, TrainingBudget};
use spe_serve::{ScoringEngine, ServeError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The model being served, as the retrain loop sees it: something that
/// scores rows and accepts a replacement. [`ScoringEngine`] is the
/// production implementation; tests substitute in-process fakes.
pub trait LiveModel: Send + Sync {
    /// Positive-class probabilities for a row block, from the model
    /// currently serving traffic.
    fn score_rows(&self, x: MatrixView<'_>) -> Result<Vec<f64>, ServeError>;
    /// Atomically replaces the serving model (no scoring downtime).
    fn install(&self, model: Box<dyn Model>) -> Result<(), ServeError>;
}

impl LiveModel for Arc<ScoringEngine> {
    fn score_rows(&self, x: MatrixView<'_>) -> Result<Vec<f64>, ServeError> {
        let mut out = vec![0.0; x.rows()];
        self.score_into(x, &mut out)?;
        Ok(out)
    }

    fn install(&self, model: Box<dyn Model>) -> Result<(), ServeError> {
        self.swap_model(model)
    }
}

/// Configuration of a [`RetrainLoop`].
#[derive(Clone, Debug)]
pub struct OnlineConfig {
    /// Training window capacities.
    pub window: WindowConfig,
    /// Held-out window capacities (candidate-vs-incumbent evaluation).
    pub holdout: WindowConfig,
    /// Every `holdout_every`-th ingested row is routed to the holdout
    /// window instead of the training window (must be ≥ 2).
    pub holdout_every: usize,
    /// Drift detector parameters.
    pub drift: DriftConfig,
    /// Minimum training-window rows before a refit may fire.
    pub min_rows: usize,
    /// Periodic refit schedule; `None` retrains only on drift.
    pub retrain_interval: Option<Duration>,
    /// How much the candidate must beat the incumbent by (in drift-
    /// metric units, on holdout data) to be promoted.
    pub min_improvement: f64,
    /// Ensemble members per refit.
    pub members: usize,
    /// Wall-clock budget per refit; `None` is unbounded.
    pub train_budget: Option<Duration>,
    /// Thread cap for refits; `None` defers to the ambient runtime.
    pub threads: Option<usize>,
    /// Base RNG seed; each refit derives its own from the attempt count.
    pub seed: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            window: WindowConfig::default(),
            holdout: WindowConfig {
                majority_capacity: 2_048,
                minority_capacity: 512,
            },
            holdout_every: 4,
            drift: DriftConfig::default(),
            min_rows: 256,
            retrain_interval: None,
            min_improvement: 0.01,
            members: 10,
            train_budget: None,
            threads: None,
            seed: 42,
        }
    }
}

impl OnlineConfig {
    /// Validates cross-field constraints.
    pub fn validate(&self) -> Result<(), ServeError> {
        let invalid = |msg: &str| Err(ServeError::InvalidConfig(msg.into()));
        if self.holdout_every < 2 {
            return invalid("holdout_every must be at least 2 (1 would starve training)");
        }
        if self.members == 0 {
            return invalid("members must be positive");
        }
        if !self.min_improvement.is_finite() {
            return invalid("min_improvement must be finite");
        }
        if self.window.validate().is_err() || self.holdout.validate().is_err() {
            return invalid("window capacities must be positive for both classes");
        }
        DriftDetector::new(self.drift)
            .map_err(|e| ServeError::InvalidConfig(e.to_string()))
            .map(|_| ())
    }

    /// Parses a `key=value`-per-line body (the HTTP enable payload).
    /// Blank lines and `#` comments are skipped; unknown keys and
    /// malformed values are [`ServeError::InvalidConfig`].
    ///
    /// Keys: `window_majority`, `window_minority`, `holdout_majority`,
    /// `holdout_minority`, `holdout_every`, `min_rows`, `interval_ms`,
    /// `min_improvement`, `members`, `budget_ms`, `threads`, `seed`,
    /// `drift_metric` (`aucprc`/`gmean`), `drift_batch`,
    /// `drift_reference_batches`, `drift_threshold`, `drift_patience`.
    pub fn from_kv_lines(body: &str) -> Result<Self, ServeError> {
        let mut cfg = Self::default();
        for line in body.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                ServeError::InvalidConfig(format!("expected key=value, got {line:?}"))
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| ServeError::InvalidConfig(format!("invalid {what}: {value:?}"));
            match key {
                "window_majority" => {
                    cfg.window.majority_capacity = value.parse().map_err(|_| bad(key))?
                }
                "window_minority" => {
                    cfg.window.minority_capacity = value.parse().map_err(|_| bad(key))?
                }
                "holdout_majority" => {
                    cfg.holdout.majority_capacity = value.parse().map_err(|_| bad(key))?
                }
                "holdout_minority" => {
                    cfg.holdout.minority_capacity = value.parse().map_err(|_| bad(key))?
                }
                "holdout_every" => cfg.holdout_every = value.parse().map_err(|_| bad(key))?,
                "min_rows" => cfg.min_rows = value.parse().map_err(|_| bad(key))?,
                "interval_ms" => {
                    cfg.retrain_interval =
                        Some(Duration::from_millis(value.parse().map_err(|_| bad(key))?))
                }
                "min_improvement" => cfg.min_improvement = value.parse().map_err(|_| bad(key))?,
                "members" => cfg.members = value.parse().map_err(|_| bad(key))?,
                "budget_ms" => {
                    cfg.train_budget =
                        Some(Duration::from_millis(value.parse().map_err(|_| bad(key))?))
                }
                "threads" => cfg.threads = Some(value.parse().map_err(|_| bad(key))?),
                "seed" => cfg.seed = value.parse().map_err(|_| bad(key))?,
                "drift_metric" => {
                    cfg.drift.metric = DriftMetric::parse(value).ok_or_else(|| bad(key))?
                }
                "drift_batch" => cfg.drift.batch = value.parse().map_err(|_| bad(key))?,
                "drift_reference_batches" => {
                    cfg.drift.reference_batches = value.parse().map_err(|_| bad(key))?
                }
                "drift_threshold" => cfg.drift.threshold = value.parse().map_err(|_| bad(key))?,
                "drift_patience" => cfg.drift.patience = value.parse().map_err(|_| bad(key))?,
                other => {
                    return Err(ServeError::InvalidConfig(format!(
                        "unknown online config key {other:?}"
                    )))
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Point-in-time snapshot of a [`RetrainLoop`]'s state, for `/metrics`
/// and the `/models/<name>/online` status endpoint.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OnlineStatus {
    /// Labeled rows ever ingested.
    pub ingested_rows: u64,
    /// Training-window rows currently retained.
    pub window_rows: usize,
    /// Minority rows in the training window.
    pub window_minority: usize,
    /// Majority rows in the training window.
    pub window_majority: usize,
    /// Training-window fill fraction in `[0, 1]`.
    pub window_fill: f64,
    /// Held-out rows currently retained.
    pub holdout_rows: usize,
    /// Most recent complete drift-batch metric.
    pub drift_score: Option<f64>,
    /// Established drift reference level.
    pub drift_reference: Option<f64>,
    /// Current consecutive-breach run length.
    pub consecutive_breaches: usize,
    /// Lifetime breach count (monotone).
    pub total_breaches: u64,
    /// Lifetime drift events raised (monotone).
    pub drift_events: u64,
    /// Refits started.
    pub retrains_attempted: u64,
    /// Refits whose candidate was promoted.
    pub retrains_promoted: u64,
    /// Refits whose candidate lost to the incumbent.
    pub retrains_rejected: u64,
    /// Refits that errored or panicked (loop survived).
    pub retrains_failed: u64,
    /// Holdout-metric gain of the most recent promotion.
    pub last_promotion_delta: Option<f64>,
    /// True while a refit is in flight.
    pub retraining: bool,
    /// Most recent refit failure, rendered.
    pub last_error: Option<String>,
}

/// Mutable loop state shared between `ingest`/status and the worker.
struct State {
    pending: Vec<(Matrix, Vec<u8>)>,
    window: WindowAccumulator,
    holdout: WindowAccumulator,
    detector: DriftDetector,
    /// Rows routed so far (drives the 1-in-N holdout split).
    routed: u64,
    drift_pending: bool,
    last_retrain: Instant,
    stop: bool,
    status: OnlineStatus,
}

struct Inner {
    state: Mutex<State>,
    wake: Condvar,
    cfg: OnlineConfig,
    n_features: usize,
}

/// Handle to a running background retrain loop. Dropping it stops the
/// worker (joining it); the serving engine is unaffected.
pub struct RetrainLoop {
    inner: Arc<Inner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl RetrainLoop {
    /// Spawns the worker thread over `host` (the serving engine).
    pub fn start(
        host: Arc<dyn LiveModel>,
        n_features: usize,
        cfg: OnlineConfig,
    ) -> Result<Self, ServeError> {
        cfg.validate()?;
        if n_features == 0 {
            return Err(ServeError::InvalidConfig(
                "online rows need at least one feature".into(),
            ));
        }
        let to_invalid = |e: spe_data::SpeError| ServeError::InvalidConfig(e.to_string());
        let state = State {
            pending: Vec::new(),
            window: WindowAccumulator::new(n_features, cfg.window).map_err(to_invalid)?,
            holdout: WindowAccumulator::new(n_features, cfg.holdout).map_err(to_invalid)?,
            detector: DriftDetector::new(cfg.drift).map_err(to_invalid)?,
            routed: 0,
            drift_pending: false,
            last_retrain: Instant::now(),
            stop: false,
            status: OnlineStatus::default(),
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(state),
            wake: Condvar::new(),
            cfg,
            n_features,
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("spe-online-retrain".into())
            .spawn(move || worker_loop(&worker_inner, host.as_ref()))
            .map_err(|e| ServeError::Io(format!("failed to spawn retrain worker: {e}")))?;
        Ok(Self {
            inner,
            worker: Some(worker),
        })
    }

    /// Enqueues a batch of labeled feedback rows. Cheap and non-blocking
    /// (scoring and windowing happen on the worker); fails fast on a
    /// width mismatch or a non-binary label.
    pub fn ingest(&self, x: Matrix, y: Vec<u8>) -> Result<(), ServeError> {
        if x.cols() != self.inner.n_features && x.rows() > 0 {
            return Err(ServeError::RowWidthMismatch {
                expected: self.inner.n_features,
                got: x.cols(),
            });
        }
        if x.rows() != y.len() {
            return Err(ServeError::InvalidConfig(format!(
                "feedback rows ({}) and labels ({}) disagree",
                x.rows(),
                y.len()
            )));
        }
        if let Some(&bad) = y.iter().find(|&&l| l > 1) {
            return Err(ServeError::InvalidConfig(format!(
                "online feedback labels must be 0/1, got {bad}"
            )));
        }
        if x.rows() == 0 {
            return Ok(());
        }
        let mut state = self.inner.state.lock();
        if state.stop {
            return Err(ServeError::EngineStopped);
        }
        state.status.ingested_rows += x.rows() as u64;
        state.pending.push((x, y));
        drop(state);
        self.inner.wake.notify_one();
        Ok(())
    }

    /// Current loop state for `/metrics` and the status endpoint.
    pub fn status(&self) -> OnlineStatus {
        let state = self.inner.state.lock();
        let mut status = state.status.clone();
        status.window_rows = state.window.len();
        status.window_minority = state.window.minority_len();
        status.window_majority = state.window.majority_len();
        status.window_fill = state.window.fill_fraction();
        status.holdout_rows = state.holdout.len();
        status.drift_score = state.detector.last_score();
        status.drift_reference = state.detector.reference();
        status.consecutive_breaches = state.detector.consecutive_breaches();
        status.total_breaches = state.detector.total_breaches();
        status.drift_events = state.detector.events();
        status
    }

    /// The loop's configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.inner.cfg
    }

    /// Stops the worker and joins it; idempotent.
    pub fn stop(&mut self) {
        {
            let mut state = self.inner.state.lock();
            state.stop = true;
        }
        self.inner.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for RetrainLoop {
    fn drop(&mut self) {
        self.stop();
    }
}

/// How often the worker re-checks the interval schedule when idle.
const IDLE_TICK: Duration = Duration::from_millis(50);

fn worker_loop(inner: &Inner, host: &dyn LiveModel) {
    loop {
        // Phase 1: wait for work (or a schedule tick), then drain the
        // pending queue while holding the lock as briefly as possible.
        let batches = {
            let mut state = inner.state.lock();
            if state.stop {
                return;
            }
            if state.pending.is_empty() && !retrain_due(inner, &state) {
                let _ = inner.wake.wait_for(&mut state, IDLE_TICK);
                if state.stop {
                    return;
                }
            }
            std::mem::take(&mut state.pending)
        };

        // Phase 2: score the drained rows on the live model *without*
        // the lock — scoring can be slow and must not block ingest.
        let mut scored: Vec<(Matrix, Vec<u8>, Option<Vec<f64>>)> = Vec::new();
        for (x, y) in batches {
            let scores = host.score_rows(x.view()).ok();
            scored.push((x, y, scores));
        }

        // Phase 3: feed windows and detector under the lock.
        {
            let mut state = inner.state.lock();
            for (x, y, scores) in scored {
                for r in 0..x.rows() {
                    let row = x.row(r);
                    let label = y[r];
                    if let Some(s) = scores.as_ref() {
                        if state.detector.observe(s[r], label).is_some() {
                            state.drift_pending = true;
                        }
                    }
                    state.routed += 1;
                    let to_holdout = state.routed.is_multiple_of(inner.cfg.holdout_every as u64);
                    let target = if to_holdout {
                        &mut state.holdout
                    } else {
                        &mut state.window
                    };
                    // Width and label were validated at ingest.
                    let _ = target.push(row, label);
                }
            }
        }

        // Phase 4: retrain when due.
        maybe_retrain(inner, host);
    }
}

/// Whether a refit should fire *now*, given the current state.
fn retrain_due(inner: &Inner, state: &State) -> bool {
    let triggered = state.drift_pending
        || inner
            .cfg
            .retrain_interval
            .is_some_and(|iv| state.last_retrain.elapsed() >= iv);
    triggered
        && state.window.len() >= inner.cfg.min_rows
        && state.window.minority_len() > 0
        && state.window.majority_len() > 0
        && state.holdout.minority_len() > 0
        && state.holdout.majority_len() > 0
}

fn maybe_retrain(inner: &Inner, host: &dyn LiveModel) {
    // Snapshot the windows under the lock, train outside it.
    let (train, holdout) = {
        let mut state = inner.state.lock();
        if !retrain_due(inner, &state) {
            return;
        }
        let (Some(train), Some(holdout)) = (state.window.dataset(), state.holdout.dataset()) else {
            return;
        };
        state.status.retrains_attempted += 1;
        state.status.retraining = true;
        (train, holdout)
    };

    let outcome = run_refit(inner, host, &train, &holdout);

    let mut state = inner.state.lock();
    state.status.retraining = false;
    state.drift_pending = false;
    state.last_retrain = Instant::now();
    match outcome {
        RefitOutcome::Promoted { delta } => {
            state.status.retrains_promoted += 1;
            state.status.last_promotion_delta = Some(delta);
            state.status.last_error = None;
            // Re-baseline the detector against the new model.
            state.detector.reset_after_retrain();
        }
        RefitOutcome::Rejected => {
            state.status.retrains_rejected += 1;
            // The incumbent stays and the detector keeps its healthy-era
            // reference: a still-degraded stream keeps breaching and
            // retriggers once fresher window data has accumulated.
        }
        RefitOutcome::Failed(message) => {
            state.status.retrains_failed += 1;
            state.status.last_error = Some(message);
        }
    }
}

enum RefitOutcome {
    Promoted { delta: f64 },
    Rejected,
    Failed(String),
}

/// One budget-bounded, warm-started refit + holdout comparison.
fn run_refit(
    inner: &Inner,
    host: &dyn LiveModel,
    train: &spe_data::Dataset,
    holdout: &spe_data::Dataset,
) -> RefitOutcome {
    let cfg = &inner.cfg;
    let mut spe = SelfPacedEnsembleConfig::new(cfg.members);
    if let Some(budget) = cfg.train_budget {
        spe.budget = TrainingBudget::wall_clock(budget);
    }
    if let Some(threads) = cfg.threads {
        spe.runtime = Runtime::with_threads(threads);
    }

    // Derive this attempt's seed from the base seed and attempt count so
    // repeated refits explore different subsets deterministically.
    let attempt = {
        let state = inner.state.lock();
        state.status.retrains_attempted
    };
    let seed = spe_runtime::fork_seed(cfg.seed, attempt);

    // Warm-start from the incumbent's view of the window; fall back to a
    // cold fit when the incumbent cannot score (e.g. engine stopping).
    let warm = host.score_rows(train.x().view()).ok();
    let fitted = catch_unwind(AssertUnwindSafe(|| match warm {
        Some(ref w) => spe.try_fit_dataset_warm(train, seed, w),
        None => spe.try_fit_dataset(train, seed),
    }));
    let candidate = match fitted {
        Ok(Ok(model)) => model,
        Ok(Err(e)) => return RefitOutcome::Failed(format!("refit error: {e}")),
        Err(payload) => {
            return RefitOutcome::Failed(format!(
                "refit panicked: {}",
                spe_runtime::panic_message(payload.as_ref())
            ))
        }
    };

    // Candidate vs incumbent on held-out window rows, with the drift
    // metric as the shared yardstick.
    let metric = cfg.drift.metric;
    let candidate_scores = candidate.predict_proba(holdout.x());
    let Some(candidate_metric) = metric.evaluate(&candidate_scores, holdout.y()) else {
        return RefitOutcome::Failed("holdout window lost its class balance".into());
    };
    let incumbent_metric = match host.score_rows(holdout.x().view()) {
        Ok(scores) => metric.evaluate(&scores, holdout.y()),
        Err(e) => return RefitOutcome::Failed(format!("incumbent holdout scoring: {e}")),
    };
    let Some(incumbent_metric) = incumbent_metric else {
        return RefitOutcome::Failed("holdout window lost its class balance".into());
    };

    if candidate_metric > incumbent_metric + cfg.min_improvement {
        match host.install(Box::new(candidate)) {
            Ok(()) => RefitOutcome::Promoted {
                delta: candidate_metric - incumbent_metric,
            },
            Err(e) => RefitOutcome::Failed(format!("promotion rejected by engine: {e}")),
        }
    } else {
        RefitOutcome::Rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_config_parses_every_key() {
        let cfg = OnlineConfig::from_kv_lines(
            "# tuned for the smoke gate\n\
             window_majority = 1000\n\
             window_minority=200\n\
             holdout_majority=300\n\
             holdout_minority=60\n\
             holdout_every=3\n\
             min_rows=64\n\
             interval_ms=2500\n\
             min_improvement=0.02\n\
             members=5\n\
             budget_ms=800\n\
             threads=2\n\
             seed=7\n\
             drift_metric=gmean\n\
             drift_batch=128\n\
             drift_reference_batches=3\n\
             drift_threshold=0.2\n\
             drift_patience=1\n",
        )
        .unwrap();
        assert_eq!(cfg.window.majority_capacity, 1000);
        assert_eq!(cfg.window.minority_capacity, 200);
        assert_eq!(cfg.holdout.majority_capacity, 300);
        assert_eq!(cfg.holdout.minority_capacity, 60);
        assert_eq!(cfg.holdout_every, 3);
        assert_eq!(cfg.min_rows, 64);
        assert_eq!(cfg.retrain_interval, Some(Duration::from_millis(2500)));
        assert!((cfg.min_improvement - 0.02).abs() < 1e-12);
        assert_eq!(cfg.members, 5);
        assert_eq!(cfg.train_budget, Some(Duration::from_millis(800)));
        assert_eq!(cfg.threads, Some(2));
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.drift.metric, DriftMetric::GMean);
        assert_eq!(cfg.drift.batch, 128);
        assert_eq!(cfg.drift.reference_batches, 3);
        assert!((cfg.drift.threshold - 0.2).abs() < 1e-12);
        assert_eq!(cfg.drift.patience, 1);
    }

    #[test]
    fn kv_config_rejects_unknown_and_malformed() {
        assert!(matches!(
            OnlineConfig::from_kv_lines("bogus_key=1"),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            OnlineConfig::from_kv_lines("members=ten"),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            OnlineConfig::from_kv_lines("no equals sign"),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            OnlineConfig::from_kv_lines("holdout_every=1"),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(
            OnlineConfig::from_kv_lines("").is_ok(),
            "defaults are valid"
        );
    }

    #[test]
    fn validate_catches_bad_cross_field_configs() {
        let no_members = OnlineConfig {
            members: 0,
            ..OnlineConfig::default()
        };
        assert!(no_members.validate().is_err());
        let no_patience = OnlineConfig {
            drift: DriftConfig {
                patience: 0,
                ..DriftConfig::default()
            },
            ..OnlineConfig::default()
        };
        assert!(no_patience.validate().is_err());
        let nan_improvement = OnlineConfig {
            min_improvement: f64::NAN,
            ..OnlineConfig::default()
        };
        assert!(nan_improvement.validate().is_err());
        assert!(OnlineConfig::default().validate().is_ok());
    }
}
