//! Sliding window over recent labeled observations.
//!
//! The paper's Algorithm 1 is a one-shot fit; serving drifting traffic
//! needs the *data side* of the loop too. [`WindowAccumulator`] keeps a
//! bounded ring of the freshest rows **per class**: the majority class
//! is capped independently of the minority class, so a flood of
//! negatives can never evict the handful of positives a highly
//! imbalanced stream produces. Eviction within a class is strictly
//! oldest-first, which keeps the window an honest recency sample of
//! each class.

use spe_data::{Dataset, Matrix, SpeError};

/// Capacity of a [`WindowAccumulator`], split by class.
#[derive(Clone, Copy, Debug)]
pub struct WindowConfig {
    /// Most recent majority (label 0) rows retained.
    pub majority_capacity: usize,
    /// Most recent minority (label 1) rows retained. Sized separately so
    /// volume imbalance cannot starve the minority out of the window.
    pub minority_capacity: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            majority_capacity: 8_192,
            minority_capacity: 2_048,
        }
    }
}

impl WindowConfig {
    /// Validates the capacities (both must be positive).
    pub fn validate(&self) -> Result<(), SpeError> {
        if self.majority_capacity == 0 || self.minority_capacity == 0 {
            return Err(SpeError::InvalidConfig(
                "window capacities must be positive for both classes".into(),
            ));
        }
        Ok(())
    }
}

/// Fixed-capacity FIFO ring of same-width rows, stored flat.
#[derive(Clone, Debug)]
struct ClassRing {
    data: Vec<f64>,
    width: usize,
    cap: usize,
    /// Slot the next insert overwrites once the ring is full.
    head: usize,
    len: usize,
}

impl ClassRing {
    fn new(width: usize, cap: usize) -> Self {
        Self {
            data: Vec::new(),
            width,
            cap,
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, row: &[f64]) {
        debug_assert_eq!(row.len(), self.width);
        if self.len < self.cap {
            self.data.extend_from_slice(row);
            self.len += 1;
        } else {
            let start = self.head * self.width;
            self.data[start..start + self.width].copy_from_slice(row);
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Appends every retained row to `out`, oldest first.
    fn append_rows(&self, out: &mut Matrix) {
        for i in 0..self.len {
            let slot = (self.head + i) % self.cap.max(1);
            let start = slot * self.width;
            out.push_row(&self.data[start..start + self.width]);
        }
    }

    fn clear(&mut self) {
        self.data.clear();
        self.head = 0;
        self.len = 0;
    }
}

/// Bounded per-class sliding window of labeled rows (see module docs).
#[derive(Clone, Debug)]
pub struct WindowAccumulator {
    majority: ClassRing,
    minority: ClassRing,
    n_features: usize,
    ingested: u64,
}

impl WindowAccumulator {
    /// An empty window for `n_features`-wide rows.
    pub fn new(n_features: usize, cfg: WindowConfig) -> Result<Self, SpeError> {
        cfg.validate()?;
        if n_features == 0 {
            return Err(SpeError::InvalidConfig(
                "window rows need at least one feature".into(),
            ));
        }
        Ok(Self {
            majority: ClassRing::new(n_features, cfg.majority_capacity),
            minority: ClassRing::new(n_features, cfg.minority_capacity),
            n_features,
            ingested: 0,
        })
    }

    /// Adds one labeled row, evicting the oldest row *of its class* when
    /// that class's ring is full.
    pub fn push(&mut self, row: &[f64], label: u8) -> Result<(), SpeError> {
        if row.len() != self.n_features {
            return Err(SpeError::DimensionMismatch {
                what: "window row width",
                expected: self.n_features,
                got: row.len(),
            });
        }
        if label > 1 {
            return Err(SpeError::InvalidConfig(format!(
                "online windows hold binary labels, got {label}"
            )));
        }
        if label == 1 {
            self.minority.push(row);
        } else {
            self.majority.push(row);
        }
        self.ingested += 1;
        Ok(())
    }

    /// Snapshot of the window as a training [`Dataset`] (minority rows
    /// first), or `None` while either class is still empty — SPE cannot
    /// fit single-class data.
    pub fn dataset(&self) -> Option<Dataset> {
        if self.minority.len == 0 || self.majority.len == 0 {
            return None;
        }
        let rows = self.minority.len + self.majority.len;
        let mut x = Matrix::with_capacity(rows, self.n_features);
        self.minority.append_rows(&mut x);
        self.majority.append_rows(&mut x);
        let mut y = vec![1u8; self.minority.len];
        y.extend(std::iter::repeat_n(0u8, self.majority.len));
        Some(Dataset::new(x, y))
    }

    /// Rows currently retained (both classes).
    pub fn len(&self) -> usize {
        self.minority.len + self.majority.len
    }

    /// True when no rows are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retained minority rows.
    pub fn minority_len(&self) -> usize {
        self.minority.len
    }

    /// Retained majority rows.
    pub fn majority_len(&self) -> usize {
        self.majority.len
    }

    /// Total rows ever pushed (including since-evicted ones).
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Fraction of total capacity currently filled, in `[0, 1]`.
    pub fn fill_fraction(&self) -> f64 {
        let cap = self.minority.cap + self.majority.cap;
        self.len() as f64 / cap.max(1) as f64
    }

    /// Feature width of the window's rows.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Drops all retained rows (the ingested counter keeps counting).
    pub fn clear(&mut self) {
        self.minority.clear();
        self.majority.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(maj: usize, min: usize) -> WindowAccumulator {
        WindowAccumulator::new(
            2,
            WindowConfig {
                majority_capacity: maj,
                minority_capacity: min,
            },
        )
        .unwrap()
    }

    #[test]
    fn rejects_degenerate_configs_and_rows() {
        assert!(WindowAccumulator::new(
            0,
            WindowConfig {
                majority_capacity: 4,
                minority_capacity: 4
            }
        )
        .is_err());
        assert!(WindowAccumulator::new(
            3,
            WindowConfig {
                majority_capacity: 0,
                minority_capacity: 4
            }
        )
        .is_err());
        let mut w = window(4, 4);
        assert!(matches!(
            w.push(&[1.0], 0),
            Err(SpeError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            w.push(&[1.0, 2.0], 2),
            Err(SpeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn minority_survives_majority_floods() {
        let mut w = window(8, 4);
        w.push(&[9.0, 9.0], 1).unwrap();
        for i in 0..1_000 {
            w.push(&[i as f64, 0.0], 0).unwrap();
        }
        assert_eq!(w.minority_len(), 1);
        assert_eq!(w.majority_len(), 8);
        let d = w.dataset().unwrap();
        assert_eq!(d.y()[0], 1);
        assert_eq!(d.x().row(0), &[9.0, 9.0]);
        // The 8 freshest majority rows survived.
        assert_eq!(d.x().row(1), &[992.0, 0.0]);
    }

    #[test]
    fn eviction_is_oldest_first_per_class() {
        let mut w = window(3, 3);
        for i in 0..5 {
            w.push(&[i as f64, 1.0], 1).unwrap();
        }
        let d = w.dataset();
        assert!(d.is_none(), "single-class window has no dataset");
        w.push(&[-1.0, 0.0], 0).unwrap();
        let d = w.dataset().unwrap();
        // Minority ring of 3 keeps rows 2, 3, 4 in age order.
        assert_eq!(d.x().row(0), &[2.0, 1.0]);
        assert_eq!(d.x().row(1), &[3.0, 1.0]);
        assert_eq!(d.x().row(2), &[4.0, 1.0]);
        assert_eq!(d.x().row(3), &[-1.0, 0.0]);
        assert_eq!(d.y(), &[1, 1, 1, 0]);
    }

    #[test]
    fn counters_and_fill_fraction_track_state() {
        let mut w = window(10, 10);
        assert!(w.is_empty());
        assert_eq!(w.fill_fraction(), 0.0);
        for i in 0..15 {
            w.push(&[i as f64, 0.0], (i % 2) as u8).unwrap();
        }
        assert_eq!(w.ingested(), 15);
        assert_eq!(w.len(), 15);
        assert!((w.fill_fraction() - 0.75).abs() < 1e-12);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.ingested(), 15, "clear keeps the lifetime counter");
    }
}
