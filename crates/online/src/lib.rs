//! # spe-online
//!
//! Drift-aware online retraining for self-paced ensembles.
//!
//! The paper trains once on a static table; this crate closes the loop
//! for *serving* workloads where the data distribution moves. Three
//! pieces compose:
//!
//! 1. [`WindowAccumulator`] — a bounded sliding window of the freshest
//!    labeled rows, capped **per class** so the minority class is never
//!    evicted by majority volume.
//! 2. [`DriftDetector`] — scores the live model's predictions on the
//!    labeled stream (AUCPRC or G-mean per batch) against a reference
//!    level; `patience` consecutive threshold breaches raise a drift
//!    event.
//! 3. [`RetrainLoop`] — a background worker that, on drift (or a
//!    periodic schedule), refits SPE over the window with a wall-clock
//!    [`TrainingBudget`](spe_runtime::TrainingBudget), **warm-starting
//!    the first member's self-paced selection from the incumbent's
//!    predictions** (`try_fit_dataset_warm`), compares candidate vs
//!    incumbent on held-out window rows, and promotes only on
//!    improvement — via the zero-downtime
//!    [`ScoringEngine::swap_model`](spe_serve::ScoringEngine) path.
//!
//! `spe-server` wires this in as an opt-in per-model policy (see the
//! `/models/<name>/online` endpoints); the crate itself has no HTTP
//! surface and is embeddable anywhere a [`LiveModel`] exists.

pub mod drift;
pub mod retrain;
pub mod window;

pub use drift::{DriftConfig, DriftDetector, DriftEvent, DriftMetric};
pub use retrain::{LiveModel, OnlineConfig, OnlineStatus, RetrainLoop};
pub use window::{WindowAccumulator, WindowConfig};
