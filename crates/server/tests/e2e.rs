//! End-to-end serving tests: real sockets, real model files.
//!
//! The unit tests in `src/` cover each subsystem against in-process
//! models; this suite exercises the full path a production client
//! takes — TCP connect, HTTP framing, registry management routes,
//! scoring with deadlines — against a genuinely trained and persisted
//! SPE model.

use httpd::ClientConn;
use spe_core::SelfPacedEnsembleConfig;
use spe_datasets::credit_fraud_sim;
use spe_learners::traits::ConstantModel;
use spe_learners::Model;
use spe_serve::{save_model, EngineConfig};
use spe_server::{BreakerConfig, RegistryConfig, SpeServer};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("spe-server-e2e-{}-{name}", std::process::id()));
    p
}

fn csv_row(row: &[f64]) -> String {
    let fields: Vec<String> = row.iter().map(f64::to_string).collect();
    fields.join(",")
}

fn tight_config(n_features: usize) -> RegistryConfig {
    let mut config = RegistryConfig::new(n_features);
    config.engine = EngineConfig::builder()
        .max_batch(16)
        .max_delay(Duration::from_millis(1))
        .queue_capacity(64)
        .build()
        .unwrap_or_else(|e| panic!("{e}"));
    config.breaker = BreakerConfig {
        threshold: 3,
        cooldown: Duration::from_millis(200),
    };
    config.watermark_fraction = 0.75;
    config
}

#[test]
fn trained_model_round_trips_over_tcp() {
    let data = credit_fraud_sim(2000, 11);
    let model = SelfPacedEnsembleConfig::default().fit_dataset(&data, 5);
    let want = model.predict_proba(data.x());
    let path = tmp_path("roundtrip.spe");
    save_model(&path, &model, Vec::new()).unwrap_or_else(|e| panic!("{e}"));

    let server = SpeServer::start("127.0.0.1:0", 2, tight_config(data.x().cols()))
        .unwrap_or_else(|e| panic!("{e}"));
    let addr = server.addr().to_string();
    let mut client = ClientConn::connect(&addr).unwrap_or_else(|e| panic!("{e}"));

    // Register over the wire, then score a handful of rows and compare
    // with the in-process predictions.
    let resp = client
        .request(
            "POST",
            "/models/fraud/load",
            &[],
            path.to_string_lossy().as_bytes(),
            Duration::from_secs(10),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    let mut body = String::new();
    for i in 0..8 {
        body.push_str(&csv_row(data.x().row(i)));
        body.push('\n');
    }
    let resp = client
        .request(
            "POST",
            "/score/fraud",
            &[("x-timeout-ms", "5000")],
            body.as_bytes(),
            Duration::from_secs(10),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let scores: Vec<f64> = resp
        .body_str()
        .trim_start_matches("{\"scores\":[")
        .trim_end_matches("]}")
        .split(',')
        .map(|s| s.parse().unwrap_or_else(|e| panic!("{e}: {s}")))
        .collect();
    assert_eq!(scores.len(), 8);
    for (got, want) in scores.iter().zip(want.iter()) {
        assert!(
            (got - want).abs() < 1e-9,
            "served {got} disagrees with local {want}"
        );
    }

    // The metrics endpoint reflects the traffic.
    let resp = client
        .request("GET", "/metrics", &[], b"", Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.status, 200);
    let metrics = resp.body_str();
    assert!(metrics.contains("\"fraud\":{"), "{metrics}");
    assert!(metrics.contains("\"scored\":8"), "{metrics}");

    server.stop();
    std::fs::remove_file(&path).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn overload_sheds_and_recovers_while_deadlines_propagate() {
    let server =
        SpeServer::start("127.0.0.1:0", 2, tight_config(2)).unwrap_or_else(|e| panic!("{e}"));
    server
        .registry()
        .register_model("m", Box::new(ConstantModel(0.5)))
        .unwrap_or_else(|e| panic!("{e}"));
    let addr = server.addr().to_string();
    let mut client = ClientConn::connect(&addr).unwrap_or_else(|e| panic!("{e}"));

    // A burst of twice the queue capacity sheds at the watermark...
    let burst = "0,0\n".repeat(128);
    let resp = client
        .request(
            "POST",
            "/score/m",
            &[],
            burst.as_bytes(),
            Duration::from_secs(10),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.status, 429, "{}", resp.body_str());
    assert!(resp.header("retry-after").is_some());
    assert!(resp.header("x-retry-after-ms").is_some());

    // ...and the next request immediately succeeds.
    let resp = client
        .request("POST", "/score/m", &[], b"0,0\n", Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.status, 200);

    // An impossible client deadline surfaces as 504, not a hang.
    let resp = client
        .request(
            "POST",
            "/score/m",
            &[("x-timeout-ms", "0")],
            b"0,0\n",
            Duration::from_secs(10),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.status, 504, "{}", resp.body_str());

    server.stop();
}

#[test]
fn breaker_isolates_one_model_and_recovers() {
    let server =
        SpeServer::start("127.0.0.1:0", 2, tight_config(2)).unwrap_or_else(|e| panic!("{e}"));
    server
        .registry()
        .register_model("flaky", Box::new(ConstantModel(0.5)))
        .unwrap_or_else(|e| panic!("{e}"));
    server
        .registry()
        .register_model("steady", Box::new(ConstantModel(0.7)))
        .unwrap_or_else(|e| panic!("{e}"));
    let addr = server.addr().to_string();
    let mut client = ClientConn::connect(&addr).unwrap_or_else(|e| panic!("{e}"));

    // Three zero-deadline requests trip flaky's breaker.
    for _ in 0..3 {
        let resp = client
            .request(
                "POST",
                "/score/flaky",
                &[("x-timeout-ms", "0")],
                b"0,0\n",
                Duration::from_secs(10),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(resp.status, 504);
    }
    let resp = client
        .request(
            "POST",
            "/score/flaky",
            &[],
            b"0,0\n",
            Duration::from_secs(10),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.status, 503, "open circuit rejects fast");
    assert!(resp.header("retry-after").is_some());

    // The other model is untouched.
    let resp = client
        .request(
            "POST",
            "/score/steady",
            &[],
            b"0,0\n",
            Duration::from_secs(10),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_str(), "{\"scores\":[0.7]}");

    // After the cooldown the half-open probe restores service.
    std::thread::sleep(Duration::from_millis(250));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = client
            .request(
                "POST",
                "/score/flaky",
                &[],
                b"0,0\n",
                Duration::from_secs(10),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        if resp.status == 200 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "breaker never recovered: {} {}",
            resp.status,
            resp.body_str()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    server.stop();
}

#[test]
fn shadow_deploy_and_promotion_over_the_wire() {
    let path = tmp_path("candidate.spe");
    save_model(&path, &ConstantModel(0.9), Vec::new()).unwrap_or_else(|e| panic!("{e}"));

    let server =
        SpeServer::start("127.0.0.1:0", 2, tight_config(2)).unwrap_or_else(|e| panic!("{e}"));
    server
        .registry()
        .register_model("m", Box::new(ConstantModel(0.2)))
        .unwrap_or_else(|e| panic!("{e}"));
    let addr = server.addr().to_string();
    let mut client = ClientConn::connect(&addr).unwrap_or_else(|e| panic!("{e}"));

    let resp = client
        .request(
            "POST",
            "/models/m/shadow",
            &[],
            path.to_string_lossy().as_bytes(),
            Duration::from_secs(10),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    // Live traffic mirrors to the candidate (0.2 vs 0.9: every row
    // diverges and flips the decision).
    let resp = client
        .request(
            "POST",
            "/score/m",
            &[],
            b"0,0\n1,1\n",
            Duration::from_secs(10),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.status, 200);

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = client
            .request("GET", "/models/m/shadow", &[], b"", Duration::from_secs(10))
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(resp.status, 200);
        let body = resp.body_str();
        if body.contains("\"compared\":2") {
            assert!(body.contains("\"disagreements\":2"), "{body}");
            break;
        }
        assert!(Instant::now() < deadline, "shadow never compared: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Promote: the candidate's scores go live, the shadow detaches.
    let resp = client
        .request(
            "POST",
            "/models/m/promote",
            &[],
            b"",
            Duration::from_secs(10),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let resp = client
        .request("POST", "/score/m", &[], b"0,0\n", Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.body_str(), "{\"scores\":[0.9]}");
    let resp = client
        .request("GET", "/models/m/shadow", &[], b"", Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(resp.status, 404, "promotion detaches the shadow");

    server.stop();
    std::fs::remove_file(&path).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn concurrent_clients_score_consistently() {
    let server =
        SpeServer::start("127.0.0.1:0", 4, tight_config(2)).unwrap_or_else(|e| panic!("{e}"));
    server
        .registry()
        .register_model("m", Box::new(ConstantModel(0.5)))
        .unwrap_or_else(|e| panic!("{e}"));
    let addr = server.addr().to_string();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = ClientConn::connect(&addr).unwrap_or_else(|e| panic!("{e}"));
                let mut ok = 0u32;
                for _ in 0..20 {
                    let resp = client
                        .request("POST", "/score/m", &[], b"0,0\n", Duration::from_secs(10))
                        .unwrap_or_else(|e| panic!("{e}"));
                    // Under concurrency a request may shed; anything
                    // else must be a correct score.
                    match resp.status {
                        200 => {
                            assert_eq!(resp.body_str(), "{\"scores\":[0.5]}");
                            ok += 1;
                        }
                        429 => {}
                        other => panic!("unexpected status {other}: {}", resp.body_str()),
                    }
                }
                ok
            })
        })
        .collect();
    let served: u32 = handles
        .into_iter()
        .map(|h| h.join().unwrap_or_else(|_| panic!("client panicked")))
        .sum();
    assert!(served > 0, "at least some requests must be served");
    server.stop();
}
