//! Per-model circuit breaker.
//!
//! A model that fails every request — wedged (all deadlines missed),
//! panicking, or scoring garbage after a bad deploy — should stop
//! receiving traffic instead of burning a queue slot and a full
//! client timeout per request. The breaker is the classic three-state
//! machine:
//!
//! - **Closed** — traffic flows; consecutive failures are counted and
//!   any success resets the count.
//! - **Open** — entered after `threshold` consecutive failures; every
//!   request is rejected up front with [`ServeError::CircuitOpen`]
//!   (mapped to HTTP 503 + `Retry-After`) until `cooldown` elapses.
//! - **Half-open** — after the cooldown, exactly one request is
//!   admitted as a probe; its success closes the circuit, its failure
//!   re-opens it for another cooldown. Concurrent requests during the
//!   probe are rejected so a still-broken model sees one request per
//!   cooldown, not a thundering herd.
//!
//! The breaker only sees outcomes its owner chooses to [`record`]
//! (`CircuitBreaker::record`): deadline misses and scoring failures
//! count, client errors (bad row width, queue shedding) do not.

use parking_lot::Mutex;
use spe_serve::ServeError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Breaker tuning. `Default` trips after 5 consecutive failures and
/// holds the circuit open for one second.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that open the circuit.
    pub threshold: u32,
    /// How long the circuit stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            threshold: 5,
            cooldown: Duration::from_secs(1),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum State {
    Closed { consecutive: u32 },
    Open { until: Instant },
    HalfOpen { probing: bool },
}

/// Three-state breaker gating one model's traffic.
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<State>,
    trips: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: Mutex::new(State::Closed { consecutive: 0 }),
            trips: AtomicU64::new(0),
        }
    }

    /// Gate one request. `Ok` admits it (and, in half-open, claims the
    /// probe slot — the caller *must* follow up with [`record`]
    /// (`CircuitBreaker::record`) or the breaker stays probing forever).
    pub fn admit(&self) -> Result<(), ServeError> {
        let mut state = self.state.lock();
        match *state {
            State::Closed { .. } => Ok(()),
            State::HalfOpen { probing: false } => {
                *state = State::HalfOpen { probing: true };
                Ok(())
            }
            State::HalfOpen { probing: true } => Err(ServeError::CircuitOpen {
                // The in-flight probe resolves within a request timeout;
                // a fraction of the cooldown is an honest hint.
                retry_after_ms: millis_at_least_one(self.config.cooldown / 4),
            }),
            State::Open { until } => {
                let now = Instant::now();
                if now >= until {
                    // This caller becomes the probe.
                    *state = State::HalfOpen { probing: true };
                    Ok(())
                } else {
                    Err(ServeError::CircuitOpen {
                        retry_after_ms: millis_at_least_one(until - now),
                    })
                }
            }
        }
    }

    /// Record the outcome of an admitted request. Returns `true` when
    /// this outcome tripped the circuit (closed→open or a failed
    /// probe), so the owner can react once per trip (e.g. self-heal).
    pub fn record(&self, success: bool) -> bool {
        let mut state = self.state.lock();
        match (*state, success) {
            (State::Closed { .. }, true) => {
                *state = State::Closed { consecutive: 0 };
                false
            }
            (State::Closed { consecutive }, false) => {
                let consecutive = consecutive + 1;
                if consecutive >= self.config.threshold {
                    *state = self.trip();
                    true
                } else {
                    *state = State::Closed { consecutive };
                    false
                }
            }
            (State::HalfOpen { .. }, true) => {
                *state = State::Closed { consecutive: 0 };
                false
            }
            (State::HalfOpen { .. }, false) => {
                *state = self.trip();
                true
            }
            // A result from before the trip straggling in; the open
            // timer already covers it.
            (State::Open { .. }, _) => false,
        }
    }

    fn trip(&self) -> State {
        self.trips.fetch_add(1, Ordering::Relaxed);
        State::Open {
            until: Instant::now() + self.config.cooldown,
        }
    }

    /// Times the circuit has opened since construction.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Current state as a metrics label: `"closed"`, `"open"` or
    /// `"half-open"`.
    pub fn state_name(&self) -> &'static str {
        match *self.state.lock() {
            State::Closed { .. } => "closed",
            State::Open { until } if Instant::now() < until => "open",
            // Cooldown elapsed: the next admit becomes the probe.
            State::Open { .. } | State::HalfOpen { .. } => "half-open",
        }
    }
}

fn millis_at_least_one(d: Duration) -> u64 {
    (d.as_millis() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = breaker(3, 10_000);
        assert!(b.admit().is_ok());
        b.record(false);
        b.record(false);
        b.record(true); // success resets the streak
        b.record(false);
        assert!(!b.record(false));
        assert!(b.admit().is_ok());
        assert!(b.record(false), "third consecutive failure must trip");
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.trips(), 1);
        assert!(matches!(
            b.admit(),
            Err(ServeError::CircuitOpen { retry_after_ms }) if retry_after_ms >= 1
        ));
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = breaker(1, 20);
        assert!(b.record(false), "threshold 1 trips immediately");
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.state_name(), "half-open");
        assert!(b.admit().is_ok(), "first post-cooldown request probes");
        // Concurrent request during the probe is still rejected.
        assert!(matches!(b.admit(), Err(ServeError::CircuitOpen { .. })));
        assert!(!b.record(true));
        assert_eq!(b.state_name(), "closed");
        assert!(b.admit().is_ok());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = breaker(1, 20);
        b.record(false);
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.admit().is_ok());
        assert!(b.record(false), "failed probe re-trips");
        assert_eq!(b.trips(), 2);
        assert!(matches!(b.admit(), Err(ServeError::CircuitOpen { .. })));
    }

    #[test]
    fn late_results_during_open_are_ignored() {
        let b = breaker(1, 10_000);
        b.record(false);
        assert!(!b.record(true), "straggler success must not close");
        assert_eq!(b.state_name(), "open");
    }
}
