//! Shadow scoring: run a candidate model on live traffic, off the
//! request path.
//!
//! Before promoting a retrained model it should see real rows, not just
//! a validation set. A [`ShadowScorer`] holds the candidate plus a
//! bounded queue and a worker thread; the registry *offers* each
//! `(row, live_score)` pair after the live model answers, and the
//! worker re-scores the row on the candidate and accumulates
//! [`DivergenceStats`]. Nothing here can hurt the live path:
//!
//! - `offer` is a non-blocking `try_send`; a slow candidate fills the
//!   queue and further rows are *dropped* (counted, not queued), so
//!   shadow lag never backpressures clients.
//! - The candidate scores inside `catch_unwind`; a panicking candidate
//!   shows up as `candidate_failures` in the stats instead of killing
//!   the worker.
//! - The candidate's feature bound is validated at start, the same gate
//!   the live engine applies at install.

use spe_data::MatrixView;
use spe_learners::Model;
use spe_serve::ServeError;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Live-vs-candidate comparison counters, snapshotted by
/// [`ShadowScorer::stats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DivergenceStats {
    /// Rows scored on both models.
    pub compared: u64,
    /// Rows dropped because the shadow queue was full.
    pub dropped: u64,
    /// Times the candidate panicked instead of scoring.
    pub candidate_failures: u64,
    /// Mean `|live - candidate|` over compared rows.
    pub mean_abs_diff: f64,
    /// Largest `|live - candidate|` seen.
    pub max_abs_diff: f64,
    /// Rows where the two models disagree at the 0.5 decision
    /// threshold — the divergences that would have flipped a decision.
    pub disagreements: u64,
}

/// Accumulator behind the worker thread.
#[derive(Default)]
struct Accum {
    compared: u64,
    candidate_failures: u64,
    sum_abs_diff: f64,
    max_abs_diff: f64,
    disagreements: u64,
}

/// A candidate model consuming mirrored traffic.
pub struct ShadowScorer {
    tx: Option<SyncSender<(Vec<f64>, f64)>>,
    worker: Option<JoinHandle<()>>,
    accum: Arc<parking_lot::Mutex<Accum>>,
    dropped: Arc<AtomicU64>,
    source: PathBuf,
}

impl ShadowScorer {
    /// Starts shadowing `model` (loaded from `source`, kept so a later
    /// promote can reload the same file) for rows of `n_features`.
    /// `capacity` bounds the mirror queue.
    pub fn start(
        model: Box<dyn Model>,
        n_features: usize,
        source: PathBuf,
        capacity: usize,
    ) -> Result<Self, ServeError> {
        let bound = model.feature_bound();
        if !bound.admits(n_features) {
            return Err(ServeError::ModelWidthMismatch {
                expected: n_features,
                model: bound,
            });
        }
        let (tx, rx) = sync_channel::<(Vec<f64>, f64)>(capacity.max(1));
        let accum = Arc::new(parking_lot::Mutex::new(Accum::default()));
        let worker_accum = Arc::clone(&accum);
        let model: Arc<dyn Model> = Arc::from(model);
        let worker = std::thread::Builder::new()
            .name("spe-shadow".into())
            .spawn(move || {
                while let Ok((row, live)) = rx.recv() {
                    let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        model.predict_proba_view(MatrixView::from_slice(&row, 1, n_features))[0]
                    }));
                    let mut acc = worker_accum.lock();
                    match scored {
                        Ok(candidate) => {
                            let diff = (live - candidate).abs();
                            acc.compared += 1;
                            acc.sum_abs_diff += diff;
                            acc.max_abs_diff = acc.max_abs_diff.max(diff);
                            if (live >= 0.5) != (candidate >= 0.5) {
                                acc.disagreements += 1;
                            }
                        }
                        Err(_) => acc.candidate_failures += 1,
                    }
                }
            })
            .map_err(|e| ServeError::Io(format!("failed to spawn shadow thread: {e}")))?;
        Ok(Self {
            tx: Some(tx),
            worker: Some(worker),
            accum,
            dropped: Arc::new(AtomicU64::new(0)),
            source,
        })
    }

    /// Mirrors one already-scored row to the candidate. Never blocks;
    /// a full queue drops the row and counts it.
    pub fn offer(&self, row: &[f64], live_score: f64) {
        let Some(tx) = &self.tx else { return };
        match tx.try_send((row.to_vec(), live_score)) {
            Ok(()) => {}
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot of the comparison counters.
    pub fn stats(&self) -> DivergenceStats {
        let acc = self.accum.lock();
        DivergenceStats {
            compared: acc.compared,
            dropped: self.dropped.load(Ordering::Relaxed),
            candidate_failures: acc.candidate_failures,
            mean_abs_diff: if acc.compared == 0 {
                0.0
            } else {
                acc.sum_abs_diff / acc.compared as f64
            },
            max_abs_diff: acc.max_abs_diff,
            disagreements: acc.disagreements,
        }
    }

    /// The SPEM file the candidate was loaded from — what a promote
    /// installs on the live engine.
    pub fn source(&self) -> &Path {
        &self.source
    }
}

impl Drop for ShadowScorer {
    fn drop(&mut self) {
        // Closing the channel ends the worker's recv loop; queued rows
        // are still compared before it exits.
        drop(self.tx.take());
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_learners::traits::ConstantModel;
    use std::time::{Duration, Instant};

    fn wait_until(shadow: &ShadowScorer, want_compared: u64) -> DivergenceStats {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let s = shadow.stats();
            if s.compared + s.candidate_failures >= want_compared || Instant::now() > deadline {
                return s;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn accumulates_divergence_off_the_request_path() {
        let shadow = ShadowScorer::start(Box::new(ConstantModel(0.8)), 2, PathBuf::new(), 64)
            .unwrap_or_else(|e| panic!("{e}"));
        shadow.offer(&[0.0, 0.0], 0.8); // agrees
        shadow.offer(&[1.0, 1.0], 0.3); // diff 0.5, decision flip
        let s = wait_until(&shadow, 2);
        assert_eq!(s.compared, 2);
        assert_eq!(s.disagreements, 1);
        assert!((s.max_abs_diff - 0.5).abs() < 1e-12);
        assert!((s.mean_abs_diff - 0.25).abs() < 1e-12);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn width_mismatched_candidate_is_rejected() {
        struct Wide;
        impl Model for Wide {
            fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
                vec![0.5; x.rows()]
            }
            fn feature_bound(&self) -> spe_learners::FeatureBound {
                spe_learners::FeatureBound::Exact(9)
            }
        }
        assert!(matches!(
            ShadowScorer::start(Box::new(Wide), 2, PathBuf::new(), 64).map(|_| ()),
            Err(ServeError::ModelWidthMismatch { expected: 2, .. })
        ));
    }

    #[test]
    fn panicking_candidate_is_counted_not_fatal() {
        struct Panicky;
        impl Model for Panicky {
            fn predict_proba_view(&self, _x: MatrixView<'_>) -> Vec<f64> {
                panic!("bad candidate");
            }
        }
        let shadow = ShadowScorer::start(Box::new(Panicky), 2, PathBuf::new(), 64)
            .unwrap_or_else(|e| panic!("{e}"));
        shadow.offer(&[0.0, 0.0], 0.5);
        shadow.offer(&[0.0, 0.0], 0.5);
        let s = wait_until(&shadow, 2);
        assert_eq!(s.candidate_failures, 2);
        assert_eq!(s.compared, 0);
    }

    #[test]
    fn full_queue_drops_instead_of_blocking() {
        // No worker draining: fill the queue beyond capacity and check
        // offer never blocks. A sleepy candidate keeps the queue full.
        struct Sleepy;
        impl Model for Sleepy {
            fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
                std::thread::sleep(Duration::from_millis(50));
                vec![0.5; x.rows()]
            }
        }
        let shadow = ShadowScorer::start(Box::new(Sleepy), 2, PathBuf::new(), 2)
            .unwrap_or_else(|e| panic!("{e}"));
        let t0 = Instant::now();
        for _ in 0..32 {
            shadow.offer(&[0.0, 0.0], 0.5);
        }
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "offer must never block on a slow candidate"
        );
        // Capacity 2 plus at most one in flight: most offers dropped.
        assert!(shadow.stats().dropped >= 16);
    }
}
