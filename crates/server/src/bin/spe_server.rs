//! `spe_server` — serve SPEM model files over HTTP, and a self-driving
//! acceptance gate for CI.
//!
//! ```sh
//! spe_server serve --features 30 --model fraud=fraud.spe
//!                  [--addr 127.0.0.1:8080] [--workers 4]
//!                  [--queue-capacity 1024] [--max-batch 64] [--max-delay-ms 2]
//!                  [--watermark 0.9] [--breaker-threshold 5]
//!                  [--breaker-cooldown-ms 1000] [--port-file addr.txt]
//! spe_server gate  --model model.spe --data data.csv
//! spe_server online-gate
//! ```
//!
//! `serve` runs until a client POSTs `/admin/shutdown`. `gate` is the
//! ci.sh acceptance sequence: it starts a tightly-provisioned server
//! in-process, drives it over real TCP through the bundled client, and
//! asserts the full failure-mode contract — score round-trip against
//! local predictions, 429 shedding under a 2x-capacity burst (then
//! immediate recovery), deadline misses as 504, a wedged model
//! tripping its breaker (503 + isolation of the healthy model +
//! self-heal + half-open recovery), shadow attach/compare/promote, and
//! a clean shutdown.
//!
//! `online-gate` is the self-contained drift-recovery smoke: it trains
//! an SPE on a checkerboard concept, serves it, enables the online
//! retrain policy, streams parity-flipped labeled feedback through the
//! `/models/<name>/feedback` endpoint, and asserts that `/metrics`
//! reports a promoted retrain while `/score` answers 200 throughout.

use httpd::ClientConn;
use spe_core::SelfPacedEnsembleConfig;
use spe_data::csv::read_dataset;
use spe_datasets::{concept_dataset, DriftStreamConfig, DriftingStream};
use spe_serve::{load_model, save_model, EngineConfig, ScoreBackend};
use spe_server::{BreakerConfig, RegistryConfig, SpeServer};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage:
  spe_server serve --features N --model <name>=<model.spe> [--model ...]
                   [--addr HOST:PORT] [--workers N] [--queue-capacity N]
                   [--max-batch N] [--max-delay-ms N] [--watermark F]
                   [--breaker-threshold N] [--breaker-cooldown-ms N]
                   [--shadow-capacity N] [--port-file PATH]
  spe_server gate  --model <model.spe> --data <data.csv>
  spe_server online-gate";

/// `--flag value` parser that keeps repeats (for `--model`).
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got {flag:?}"))?;
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Self { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn all(&self, name: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} cannot parse {v:?}")),
        }
    }
}

fn config_from_flags(flags: &Flags, n_features: usize) -> Result<RegistryConfig, String> {
    let engine = EngineConfig::builder()
        .max_batch(flags.parse_or("max-batch", 64)?)
        .max_delay(Duration::from_millis(flags.parse_or("max-delay-ms", 2)?))
        .queue_capacity(flags.parse_or("queue-capacity", 1024)?)
        .backend(ScoreBackend::Auto)
        .build()
        .map_err(|e| e.to_string())?;
    let mut config = RegistryConfig::new(n_features);
    config.engine = engine;
    config.breaker = BreakerConfig {
        threshold: flags.parse_or("breaker-threshold", 5)?,
        cooldown: Duration::from_millis(flags.parse_or("breaker-cooldown-ms", 1_000)?),
    };
    config.watermark_fraction = flags.parse_or("watermark", 0.9)?;
    config.shadow_capacity = flags.parse_or("shadow-capacity", 256)?;
    Ok(config)
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let n_features: usize = flags
        .require("features")?
        .parse()
        .map_err(|_| "--features wants the row width every served model must admit".to_string())?;
    let models = flags.all("model");
    if models.is_empty() {
        return Err("at least one --model name=path is required".into());
    }
    let config = config_from_flags(flags, n_features)?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:8080");
    let workers = flags.parse_or("workers", 4)?;
    let server = SpeServer::start(addr, workers, config).map_err(|e| e.to_string())?;
    for spec in models {
        let (name, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("--model wants name=path, got {spec:?}"))?;
        server
            .registry()
            .register_file(name, Path::new(path))
            .map_err(|e| format!("registering {name} from {path}: {e}"))?;
        eprintln!("spe_server: registered {name} from {path}");
    }
    if let Some(port_file) = flags.get("port-file") {
        std::fs::write(port_file, server.addr().to_string()).map_err(|e| e.to_string())?;
    }
    eprintln!("spe_server: serving on {}", server.addr());
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("spe_server: shutdown requested, draining");
    server.stop();
    eprintln!("spe_server: clean shutdown");
    Ok(())
}

// ---------------------------------------------------------------- gate

/// Tight provisioning so every failure mode is reachable in
/// milliseconds: a 64-row queue shedding at 75%, a threshold-3 breaker
/// with a 300ms cooldown.
const GATE_QUEUE: usize = 64;
const GATE_BREAKER_THRESHOLD: u32 = 3;
const GATE_COOLDOWN_MS: u64 = 300;

struct Gate {
    client: ClientConn,
    checks: u32,
}

impl Gate {
    fn call(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> Result<httpd::Response, String> {
        self.client
            .request(
                method,
                path,
                headers,
                body.as_bytes(),
                Duration::from_secs(10),
            )
            .map_err(|e| format!("{method} {path}: transport error: {e}"))
    }

    fn expect(
        &mut self,
        label: &str,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
        want_status: u16,
    ) -> Result<httpd::Response, String> {
        let resp = self.call(method, path, headers, body)?;
        if resp.status != want_status {
            return Err(format!(
                "{label}: {method} {path} answered {} (want {want_status}): {}",
                resp.status,
                resp.body_str()
            ));
        }
        self.checks += 1;
        println!("gate: ok [{label}] {method} {path} -> {want_status}");
        Ok(resp)
    }
}

fn parse_scores(body: &str) -> Result<Vec<f64>, String> {
    let inner = body
        .strip_prefix("{\"scores\":[")
        .and_then(|s| s.strip_suffix("]}"))
        .ok_or_else(|| format!("unexpected score body: {body}"))?;
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|s| {
            s.parse::<f64>()
                .map_err(|e| format!("bad score {s:?}: {e}"))
        })
        .collect()
}

fn csv_rows(x: &spe_data::Matrix, range: std::ops::Range<usize>) -> String {
    let mut out = String::new();
    for i in range {
        let row: Vec<String> = x.row(i % x.rows()).iter().map(f64::to_string).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

fn cmd_gate(flags: &Flags) -> Result<(), String> {
    let model_path = PathBuf::from(flags.require("model")?);
    let data_path = PathBuf::from(flags.require("data")?);
    let data = read_dataset(&data_path).map_err(|e| e.to_string())?;
    let x = data.x();
    let model_file = model_path.to_string_lossy().to_string();

    // Local reference scores for the round-trip check.
    let local_model = load_model(&model_path).map_err(|e| e.to_string())?;
    let reference = local_model.predict_proba(x);

    let mut config = RegistryConfig::new(x.cols());
    config.engine = EngineConfig::builder()
        .max_batch(16)
        .max_delay(Duration::from_millis(1))
        .queue_capacity(GATE_QUEUE)
        .build()
        .map_err(|e| e.to_string())?;
    config.breaker = BreakerConfig {
        threshold: GATE_BREAKER_THRESHOLD,
        cooldown: Duration::from_millis(GATE_COOLDOWN_MS),
    };
    config.watermark_fraction = 0.75;
    let server = SpeServer::start("127.0.0.1:0", 4, config).map_err(|e| e.to_string())?;
    let addr = server.addr().to_string();
    let mut gate = Gate {
        client: ClientConn::connect(&addr).map_err(|e| e.to_string())?,
        checks: 0,
    };

    // Liveness precedes readiness: health is up before any model is.
    gate.expect("health", "GET", "/health", &[], "", 200)?;
    gate.expect("not-ready", "GET", "/ready", &[], "", 503)?;
    gate.expect("load", "POST", "/models/live/load", &[], &model_file, 200)?;
    gate.expect("ready", "GET", "/ready", &[], "", 200)?;

    // Round trip: served scores must match local predictions exactly
    // (the quantized backend is bit-identical to the f64 path).
    let resp = gate.expect(
        "score",
        "POST",
        "/score/live",
        &[("x-timeout-ms", "5000")],
        &csv_rows(x, 0..8),
        200,
    )?;
    let scores = parse_scores(&resp.body_str())?;
    for (i, (got, want)) in scores.iter().zip(reference.iter()).enumerate() {
        if (got - want).abs() > 1e-9 {
            return Err(format!("row {i}: served {got} != local {want}"));
        }
    }

    // Overload: a burst of 2x the queue capacity sheds with 429 and
    // retry hints...
    let burst = csv_rows(x, 0..GATE_QUEUE * 2);
    let resp = gate.expect("shed", "POST", "/score/live", &[], &burst, 429)?;
    if resp.header("retry-after").is_none() || resp.header("x-retry-after-ms").is_none() {
        return Err("shed response is missing its Retry-After hints".into());
    }
    // ...and the very next normal request succeeds: shedding kept the
    // server live instead of queueing into collapse.
    gate.expect(
        "post-shed",
        "POST",
        "/score/live",
        &[],
        &csv_rows(x, 0..4),
        200,
    )?;

    // Deadline propagation: an impossible deadline answers 504, and a
    // healthy request afterwards clears the breaker streak.
    gate.expect(
        "deadline",
        "POST",
        "/score/live",
        &[("x-timeout-ms", "0")],
        &csv_rows(x, 0..1),
        504,
    )?;
    gate.expect(
        "post-deadline",
        "POST",
        "/score/live",
        &[],
        &csv_rows(x, 0..1),
        200,
    )?;

    // A second model shares nothing with the first.
    gate.expect(
        "canary-load",
        "POST",
        "/models/canary/load",
        &[],
        &model_file,
        200,
    )?;

    // Trip the live model's breaker with consecutive deadline misses
    // (how a wedged model manifests to the serving layer).
    for i in 0..GATE_BREAKER_THRESHOLD {
        gate.expect(
            &format!("trip-{i}"),
            "POST",
            "/score/live",
            &[("x-timeout-ms", "0")],
            &csv_rows(x, 0..1),
            504,
        )?;
    }
    let resp = gate.expect(
        "circuit-open",
        "POST",
        "/score/live",
        &[],
        &csv_rows(x, 0..1),
        503,
    )?;
    if resp.header("retry-after").is_none() {
        return Err("open-circuit response is missing Retry-After".into());
    }
    // Isolation: the canary keeps serving while live is open.
    gate.expect(
        "canary-serves",
        "POST",
        "/score/canary",
        &[],
        &csv_rows(x, 0..4),
        200,
    )?;
    // Self-heal: the trip reloaded the source SPEM in the background.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let metrics = gate.call("GET", "/metrics", &[], "")?.body_str();
        if metrics.contains("\"heals\":1") {
            println!("gate: ok [self-heal] breaker trip reloaded the source model");
            break;
        }
        if Instant::now() > deadline {
            return Err(format!("self-heal never completed; metrics: {metrics}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Recovery: after the cooldown, the half-open probe closes the
    // circuit and service resumes.
    std::thread::sleep(Duration::from_millis(GATE_COOLDOWN_MS + 50));
    gate.expect(
        "recovered",
        "POST",
        "/score/live",
        &[],
        &csv_rows(x, 0..4),
        200,
    )?;
    let metrics = gate.call("GET", "/metrics", &[], "")?.body_str();
    if !metrics.contains("\"breaker_trips\":1") {
        return Err(format!(
            "expected exactly one breaker trip; metrics: {metrics}"
        ));
    }

    // Shadow: mirror live traffic to a candidate (the same file, so
    // divergence must be zero), then promote it.
    gate.expect(
        "shadow-attach",
        "POST",
        "/models/live/shadow",
        &[],
        &model_file,
        200,
    )?;
    gate.expect(
        "shadow-traffic",
        "POST",
        "/score/live",
        &[],
        &csv_rows(x, 0..8),
        200,
    )?;
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let body = gate.call("GET", "/models/live/shadow", &[], "")?.body_str();
        if body.contains("\"compared\":8") {
            if !body.contains("\"max_abs_diff\":0") {
                return Err(format!("identical candidate diverged: {body}"));
            }
            println!("gate: ok [shadow-compare] 8 rows mirrored, zero divergence");
            break;
        }
        if Instant::now() > deadline {
            return Err(format!("shadow never compared the mirrored rows: {body}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    gate.expect("promote", "POST", "/models/live/promote", &[], "", 200)?;
    gate.expect(
        "post-promote",
        "POST",
        "/score/live",
        &[],
        &csv_rows(x, 0..4),
        200,
    )?;

    // Teardown: removal is observable, shutdown is clean.
    gate.expect("remove", "DELETE", "/models/canary", &[], "", 200)?;
    gate.expect(
        "removed-404",
        "POST",
        "/score/canary",
        &[],
        &csv_rows(x, 0..1),
        404,
    )?;
    gate.expect("shutdown", "POST", "/admin/shutdown", &[], "", 200)?;
    if !server.shutdown_requested() {
        return Err("shutdown endpoint did not set the flag".into());
    }
    let checks = gate.checks;
    drop(gate);
    server.stop();
    println!("gate: PASS ({checks} checks)");
    Ok(())
}

// --------------------------------------------------------- online-gate

/// Pulls the integer value of `"key":N` out of a flat JSON body.
fn json_u64_field(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let digits: String = body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Renders a labeled batch as the feedback-endpoint CSV: one line per
/// row, features first, the 0/1 label last.
fn csv_feedback(x: &spe_data::Matrix, y: &[u8]) -> String {
    let mut out = String::new();
    for (i, &label) in y.iter().enumerate() {
        for v in x.row(i) {
            out.push_str(&v.to_string());
            out.push(',');
        }
        out.push_str(&label.to_string());
        out.push('\n');
    }
    out
}

/// Drift-recovery smoke over real TCP: drifted feedback must produce a
/// promoted retrain in `/metrics` while `/score` never stops answering.
fn cmd_online_gate() -> Result<(), String> {
    let stream_cfg = DriftStreamConfig {
        rows: 500_000,
        features: 4,
        minority_fraction: 0.15,
        batch_rows: 250,
        grid: 4,
        cov: 0.01,
        drift_at: 1_000,
    };

    // Train the incumbent on the pre-drift concept and persist it, so
    // the served entry has a real self-heal source to re-point.
    let train_a = concept_dataset(&stream_cfg, 11, 4_000, false);
    let incumbent = SelfPacedEnsembleConfig::new(8).fit_dataset(&train_a, 12);
    let model_path =
        std::env::temp_dir().join(format!("spe-server-online-gate-{}.spe", std::process::id()));
    save_model(&model_path, &incumbent, Vec::new()).map_err(|e| e.to_string())?;
    let model_file = model_path.to_string_lossy().to_string();

    let server = SpeServer::start("127.0.0.1:0", 4, RegistryConfig::new(stream_cfg.features))
        .map_err(|e| e.to_string())?;
    let addr = server.addr().to_string();
    let mut gate = Gate {
        client: ClientConn::connect(&addr).map_err(|e| e.to_string())?,
        checks: 0,
    };

    gate.expect("load", "POST", "/models/live/load", &[], &model_file, 200)?;
    gate.expect("no-loop-404", "GET", "/models/live/online", &[], "", 404)?;
    // Small windows and a patience-1 detector so drift is observable
    // within seconds; the 300ms interval is a safety net — promotion
    // still requires beating the incumbent on the holdout.
    let online_cfg = "window_majority=1200\nwindow_minority=300\n\
                      holdout_majority=400\nholdout_minority=80\nholdout_every=4\n\
                      min_rows=300\ninterval_ms=300\nmin_improvement=0.01\n\
                      members=5\nbudget_ms=20000\nseed=99\n\
                      drift_metric=aucprc\ndrift_batch=100\n\
                      drift_reference_batches=2\ndrift_threshold=0.15\ndrift_patience=1\n";
    gate.expect(
        "enable",
        "POST",
        "/models/live/online",
        &[],
        online_cfg,
        200,
    )?;
    gate.expect("double-enable", "POST", "/models/live/online", &[], "", 400)?;

    // Stream labeled feedback through the drift point while proving
    // zero scoring downtime: every iteration scores over TCP and any
    // non-200 fails the gate, retrain in flight or not.
    let score_rows = csv_rows(train_a.x(), 0..4);
    let mut stream = DriftingStream::new(stream_cfg, 23);
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut scores_during = 0u32;
    loop {
        if Instant::now() > deadline {
            let metrics = gate.call("GET", "/metrics", &[], "")?.body_str();
            return Err(format!("no promoted retrain before deadline: {metrics}"));
        }
        if let Some((x, y)) = stream.next_batch() {
            let resp = gate.call("POST", "/models/live/feedback", &[], &csv_feedback(&x, &y))?;
            if resp.status != 200 {
                return Err(format!("feedback rejected: {}", resp.body_str()));
            }
        }
        let resp = gate.call("POST", "/score/live", &[], &score_rows)?;
        if resp.status != 200 {
            return Err(format!(
                "scoring downtime during online retraining: {} {}",
                resp.status,
                resp.body_str()
            ));
        }
        scores_during += 1;
        let metrics = gate.call("GET", "/metrics", &[], "")?.body_str();
        let promoted = json_u64_field(&metrics, "retrains_promoted").unwrap_or(0);
        if promoted >= 1 {
            let events = json_u64_field(&metrics, "drift_events").unwrap_or(0);
            if events == 0 {
                return Err(format!("promotion without a drift event: {metrics}"));
            }
            gate.checks += 1;
            println!(
                "gate: ok [promoted] {promoted} promoted retrain(s), {events} drift event(s), \
                 {scores_during} uninterrupted score calls"
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // The status endpoint mirrors the counters, then the policy tears
    // down cleanly and scoring continues on the promoted model.
    let status = gate.expect("status", "GET", "/models/live/online", &[], "", 200)?;
    if json_u64_field(&status.body_str(), "retrains_promoted").unwrap_or(0) == 0 {
        return Err(format!(
            "status endpoint lost the promotion: {}",
            status.body_str()
        ));
    }
    gate.expect("disable", "DELETE", "/models/live/online", &[], "", 200)?;
    gate.expect(
        "post-disable-404",
        "GET",
        "/models/live/online",
        &[],
        "",
        404,
    )?;
    gate.expect(
        "post-disable-score",
        "POST",
        "/score/live",
        &[],
        &score_rows,
        200,
    )?;
    gate.expect("shutdown", "POST", "/admin/shutdown", &[], "", 200)?;

    let checks = gate.checks;
    drop(gate);
    server.stop();
    let _ = std::fs::remove_file(&model_path);
    let _ = std::fs::remove_file(model_path.with_extension("online.spe"));
    println!("online-gate: PASS ({checks} checks)");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(&argv[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("spe_server: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "serve" => cmd_serve(&flags),
        "gate" => cmd_gate(&flags),
        "online-gate" => cmd_online_gate(),
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("spe_server: {e}");
            ExitCode::FAILURE
        }
    }
}
