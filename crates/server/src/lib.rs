//! Fault-tolerant network serving for SPE models.
//!
//! `spe-serve` gets one model scoring fast in-process; this crate puts
//! a hardened network layer around it, built for the failure modes a
//! scoring service actually meets:
//!
//! - **Overload** — per-model [admission control](admission) sheds at a
//!   queue watermark with `429` + `Retry-After` instead of queueing
//!   into timeout collapse.
//! - **Slow or wedged models** — client deadlines
//!   (`X-Timeout-Ms`) propagate to bounded waits, and a per-model
//!   [circuit breaker](breaker) turns repeated failures into fast
//!   `503`s, half-opening with probes to detect recovery.
//! - **Bad deploys** — the [registry](registry) validates every model
//!   at install (checksummed SPEM envelope, format version, feature
//!   bound) and keeps the source file for breaker-triggered self-heal
//!   reloads; [shadow scoring](shadow) runs a candidate on mirrored
//!   live traffic and reports divergence before promotion.
//! - **Isolation** — every named model owns its queue, scheduler,
//!   breaker and counters, so one misbehaving model cannot take the
//!   others down.
//!
//! [`SpeServer`] wires the registry into the vendored thread-per-core
//! [`httpd`] stand-in; the [`http`] module documents the routes.
//!
//! ```no_run
//! use spe_server::{RegistryConfig, SpeServer};
//! # fn demo() -> std::io::Result<()> {
//! let server = SpeServer::start("127.0.0.1:8080", 4, RegistryConfig::new(30))?;
//! server.registry().register_file("fraud", "fraud.spe".as_ref()).unwrap();
//! println!("serving on {}", server.addr());
//! while !server.shutdown_requested() {
//!     std::thread::sleep(std::time::Duration::from_millis(50));
//! }
//! server.stop();
//! # Ok(())
//! # }
//! ```

pub mod admission;
pub mod breaker;
pub mod http;
pub mod registry;
pub mod shadow;

pub use admission::Admission;
pub use breaker::{BreakerConfig, CircuitBreaker};
pub use registry::{EntrySnapshot, ModelEntry, ModelRegistry, RegistryConfig};
pub use shadow::{DivergenceStats, ShadowScorer};

use httpd::HttpServer;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A running scoring server: model registry + HTTP front end.
pub struct SpeServer {
    registry: Arc<ModelRegistry>,
    http: HttpServer,
    shutdown: Arc<AtomicBool>,
}

impl SpeServer {
    /// Binds `addr` (port 0 for an OS-assigned port) and starts
    /// `workers` connection threads serving `config`'s registry.
    pub fn start(addr: &str, workers: usize, config: RegistryConfig) -> io::Result<Self> {
        let registry = Arc::new(ModelRegistry::new(config));
        let shutdown = Arc::new(AtomicBool::new(false));
        let handler_registry = Arc::clone(&registry);
        let handler_shutdown = Arc::clone(&shutdown);
        let http = HttpServer::start(addr, workers, move |req| {
            http::handle(&handler_registry, &handler_shutdown, req)
        })?;
        Ok(Self {
            registry,
            http,
            shutdown,
        })
    }

    /// The model registry — register models before (or while) serving.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// Whether a client asked for shutdown via `POST /admin/shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Stops the HTTP front end (in-flight requests finish), then drops
    /// the registry, draining every model's engine.
    pub fn stop(self) {
        self.http.stop();
    }
}
