//! Queue-depth admission control.
//!
//! The scoring engine already backpressures at `queue_capacity`, but by
//! the time a submit fails the request has crossed the network, parsed
//! its body and possibly enqueued part of a batch. The admission gate
//! sheds earlier and cheaper: a request is rejected up front — before
//! any row is submitted — when the queue is past a *watermark* set
//! below capacity, so the engine keeps headroom for the requests
//! already past the gate and a shed request costs one queue-depth read.
//!
//! Shed responses carry a `Retry-After` hint derived from the engine's
//! own batch-latency estimate: the queued work, in batches, times the
//! median batch service time is roughly when the queue will have
//! drained back under the watermark.

use spe_serve::ServeError;
use std::sync::atomic::{AtomicU64, Ordering};

/// Watermark gate in front of one engine's queue.
pub struct Admission {
    watermark: usize,
    capacity: usize,
    shed: AtomicU64,
}

impl Admission {
    /// A gate shedding at `fraction` of `capacity` (clamped so the
    /// watermark is at least one row and at most the full capacity).
    pub fn new(capacity: usize, fraction: f64) -> Self {
        let watermark = (capacity as f64 * fraction.clamp(0.0, 1.0)).floor() as usize;
        Self {
            watermark: watermark.clamp(1, capacity),
            capacity,
            shed: AtomicU64::new(0),
        }
    }

    /// The queue depth above which requests shed.
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// Admits a request wanting to enqueue `incoming` rows onto a queue
    /// currently `depth` deep, or sheds it with
    /// [`ServeError::QueueFull`].
    pub fn check(&self, depth: usize, incoming: usize) -> Result<(), ServeError> {
        if depth + incoming > self.watermark {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull {
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Requests shed at this gate (does not include engine-level
    /// `QueueFull` from submits racing past the watermark).
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Counts a shed that happened past the gate (an engine-level
    /// `QueueFull` on submit), so `shed_count` covers both layers.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }
}

/// `Retry-After` hint in milliseconds: the queued backlog in batches
/// times the median batch service time, clamped to `[1ms, 5s]`. With no
/// latency estimate yet (cold engine) the floor applies.
pub fn retry_after_ms(p50_batch_latency_us: u64, queue_depth: usize, max_batch: usize) -> u64 {
    let batches = (queue_depth / max_batch.max(1)) as u64 + 1;
    (batches * p50_batch_latency_us / 1000).clamp(1, 5_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_above_watermark_and_counts() {
        let a = Admission::new(100, 0.9);
        assert_eq!(a.watermark(), 90);
        assert!(a.check(0, 90).is_ok());
        assert_eq!(a.check(0, 91), Err(ServeError::QueueFull { capacity: 100 }));
        assert_eq!(a.check(89, 2), Err(ServeError::QueueFull { capacity: 100 }));
        assert!(a.check(89, 1).is_ok());
        assert_eq!(a.shed_count(), 2);
        a.note_shed();
        assert_eq!(a.shed_count(), 3);
    }

    #[test]
    fn watermark_is_clamped_sane() {
        assert_eq!(Admission::new(10, 0.0).watermark(), 1);
        assert_eq!(Admission::new(10, 5.0).watermark(), 10);
        assert_eq!(Admission::new(1, 0.5).watermark(), 1);
    }

    #[test]
    fn retry_hint_scales_with_backlog() {
        // Empty queue, 2ms batches: one batch-time hint.
        assert_eq!(retry_after_ms(2_000, 0, 64), 2);
        // 10 queued batches: eleven batch-times.
        assert_eq!(retry_after_ms(2_000, 640, 64), 22);
        // Cold engine (no latency yet) still hints at least 1ms.
        assert_eq!(retry_after_ms(0, 0, 64), 1);
        // Absurd backlog clamps to 5s.
        assert_eq!(retry_after_ms(1_000_000, 64_000, 64), 5_000);
    }
}
