//! HTTP surface: routes, error → status mapping, JSON rendering.
//!
//! The handler is a pure function of `(registry, shutdown flag,
//! request)` so it can be unit-tested without a socket; `SpeServer`
//! plugs it into the vendored [`httpd`] server. Routes:
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /health` | process liveness (always 200) |
//! | `GET /ready` | 200 once at least one model serves, else 503 |
//! | `GET /metrics` | per-model counters + breaker state, JSON |
//! | `POST /score/{model}` | CSV rows in, JSON scores out; `X-Timeout-Ms` header sets the request deadline. Binary models answer `{"scores":[...]}`; k > 2 models answer `{"n_classes":k,"classes":[[...],...]}` |
//! | `POST /models/{name}/load` | register/redeploy from the SPEM path in the body |
//! | `POST /models/{name}/swap` | zero-downtime model update from the path in the body |
//! | `POST /models/{name}/shadow` | attach a shadow candidate from the path in the body |
//! | `GET /models/{name}/shadow` | divergence stats, JSON |
//! | `POST /models/{name}/promote` | promote the shadow candidate |
//! | `POST /models/{name}/online` | enable drift-aware online retraining; body holds `key=value` lines (empty body = defaults) |
//! | `GET /models/{name}/online` | retrain-loop status (window fill, drift score, retrain counters), JSON |
//! | `DELETE /models/{name}/online` | disable online retraining |
//! | `POST /models/{name}/feedback` | CSV labeled feedback rows (`f1,...,fd,label`) for the retrain loop |
//! | `DELETE /models/{name}` | unregister |
//! | `POST /admin/shutdown` | request a clean server shutdown |
//!
//! Failure-mode statuses: shed load answers `429` with `Retry-After`
//! (seconds, per spec) and `X-Retry-After-Ms` (the engine's own
//! estimate), a missed deadline answers `504`, an open circuit `503`
//! with the probe window as `Retry-After`, an unknown model `404`, a
//! client-supplied bad artifact (corrupt file, wrong width) `400`, and
//! a scoring-side fault (model panic) `500`.

use crate::registry::{EntrySnapshot, ModelEntry, ModelRegistry};
use crate::shadow::DivergenceStats;
use httpd::{Request, Response};
use spe_data::Matrix;
use spe_online::{OnlineConfig, OnlineStatus};
use spe_serve::ServeError;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deadline applied when the client sends no `X-Timeout-Ms`.
pub const DEFAULT_TIMEOUT_MS: u64 = 1_000;
/// Upper bound on client-requested deadlines.
pub const MAX_TIMEOUT_MS: u64 = 60_000;

/// Routes one request against the registry. Setting `shutdown` is the
/// only side effect outside the registry; the embedding server polls
/// the flag for its exit.
pub fn handle(registry: &ModelRegistry, shutdown: &AtomicBool, req: &Request) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => Response::text(200, "ok"),
        ("GET", ["ready"]) => {
            if registry.names().is_empty() {
                Response::text(503, "no models registered")
            } else {
                Response::text(200, "ready")
            }
        }
        ("GET", ["metrics"]) => Response::json(200, metrics_json(registry)),
        ("POST", ["score", name]) => score(registry, name, req),
        ("POST", ["models", name, "load"]) => {
            with_body_path(req, |p| registry.register_file(name, p))
        }
        ("POST", ["models", name, "swap"]) => with_body_path(req, |p| registry.swap(name, p)),
        ("POST", ["models", name, "shadow"]) => with_body_path(req, |p| {
            registry
                .get(name)?
                .start_shadow(p, registry.shadow_capacity())
        }),
        ("GET", ["models", name, "shadow"]) => match registry.get(name) {
            Ok(entry) => match entry.shadow_stats() {
                Some(stats) => Response::json(200, divergence_json(&stats)),
                None => error_json(404, &ServeError::UnknownModel(format!("{name}/shadow"))),
            },
            Err(e) => manage_error(&e),
        },
        ("POST", ["models", name, "promote"]) => {
            match registry.get(name).and_then(|entry| entry.promote_shadow()) {
                Ok(()) => Response::json(200, "{\"promoted\":true}".to_string()),
                Err(e) => manage_error(&e),
            }
        }
        ("POST", ["models", name, "online"]) => {
            let outcome = registry.get(name).and_then(|entry| {
                let cfg = OnlineConfig::from_kv_lines(&req.body_str())?;
                entry.enable_online(cfg)
            });
            match outcome {
                Ok(()) => Response::json(200, "{\"online\":true}".to_string()),
                Err(e) => manage_error(&e),
            }
        }
        ("GET", ["models", name, "online"]) => match registry.get(name) {
            Ok(entry) => match entry.online_status() {
                Some(status) => Response::json(200, online_json(&status)),
                None => error_json(404, &ServeError::UnknownModel(format!("{name}/online"))),
            },
            Err(e) => manage_error(&e),
        },
        ("DELETE", ["models", name, "online"]) => {
            match registry.get(name).and_then(|entry| entry.disable_online()) {
                Ok(()) => Response::json(200, "{\"online\":false}".to_string()),
                Err(e) => manage_error(&e),
            }
        }
        ("POST", ["models", name, "feedback"]) => feedback(registry, name, req),
        ("DELETE", ["models", name]) => match registry.remove(name) {
            Ok(()) => Response::json(200, "{\"removed\":true}".to_string()),
            Err(e) => manage_error(&e),
        },
        ("POST", ["admin", "shutdown"]) => {
            shutdown.store(true, Ordering::Release);
            Response::text(200, "shutting down")
        }
        // Known prefixes with the wrong verb get 405, the rest 404.
        (_, ["health" | "ready" | "metrics" | "score" | "models" | "admin", ..]) => {
            Response::text(405, "method not allowed")
        }
        _ => Response::text(404, "no such route"),
    }
}

/// `POST /score/{model}`: parse rows + deadline, run the entry's full
/// admission/breaker/deadline gauntlet, render scores or the mapped
/// failure.
///
/// Binary models answer `{"scores":[...]}` exactly as they always
/// have; a model serving more than two classes answers
/// `{"n_classes":k,"classes":[[...k probabilities...],...]}` with one
/// row-major distribution per input row.
fn score(registry: &ModelRegistry, name: &str, req: &Request) -> Response {
    let entry = match registry.get(name) {
        Ok(e) => e,
        Err(e) => return manage_error(&e),
    };
    let timeout = match parse_timeout(req) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let rows = match parse_rows(&req.body_str()) {
        Ok(r) => r,
        Err(msg) => return Response::json(400, format!("{{\"error\":{}}}", json_string(&msg))),
    };
    let k = entry.engine().n_classes();
    if k > 2 {
        return match entry.score_classes(&rows) {
            Ok(dist) => {
                let mut body = String::with_capacity(32 + dist.len() * 8);
                body.push_str(&format!("{{\"n_classes\":{k},\"classes\":["));
                for (i, row) in dist.chunks(k).enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push('[');
                    for (j, p) in row.iter().enumerate() {
                        if j > 0 {
                            body.push(',');
                        }
                        body.push_str(&json_f64(*p));
                    }
                    body.push(']');
                }
                body.push_str("]}");
                Response::json(200, body)
            }
            Err(e) => score_error(&entry, &e),
        };
    }
    match entry.score(&rows, timeout) {
        Ok(scores) => {
            let mut body = String::with_capacity(16 + scores.len() * 8);
            body.push_str("{\"scores\":[");
            for (i, s) in scores.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&json_f64(*s));
            }
            body.push_str("]}");
            Response::json(200, body)
        }
        Err(e) => score_error(&entry, &e),
    }
}

/// `POST /models/{name}/feedback`: labeled CSV rows — each line is the
/// feature row with the true 0/1 label as its **last** column — routed
/// into the model's retrain loop.
fn feedback(registry: &ModelRegistry, name: &str, req: &Request) -> Response {
    let entry = match registry.get(name) {
        Ok(e) => e,
        Err(e) => return manage_error(&e),
    };
    let rows = match parse_rows(&req.body_str()) {
        Ok(r) => r,
        Err(msg) => return Response::json(400, format!("{{\"error\":{}}}", json_string(&msg))),
    };
    let width = registry.n_features();
    let mut flat = Vec::with_capacity(rows.len() * width);
    let mut labels = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        if row.len() != width + 1 {
            let msg = format!(
                "line {}: feedback rows want {width} features plus a trailing 0/1 label, got {} fields",
                i + 1,
                row.len()
            );
            return Response::json(400, format!("{{\"error\":{}}}", json_string(&msg)));
        }
        let label = row[width];
        if label != 0.0 && label != 1.0 {
            let msg = format!("line {}: trailing label must be 0 or 1, got {label}", i + 1);
            return Response::json(400, format!("{{\"error\":{}}}", json_string(&msg)));
        }
        labels.push(label as u8);
        flat.extend_from_slice(&row[..width]);
    }
    let x = Matrix::from_vec(rows.len(), width, flat);
    match entry.ingest_feedback(x, labels) {
        Ok(()) => Response::json(200, format!("{{\"ingested\":{}}}", rows.len())),
        Err(e) => manage_error(&e),
    }
}

/// Runs a management action on the (trimmed) file path in the body.
fn with_body_path(req: &Request, action: impl FnOnce(&Path) -> Result<(), ServeError>) -> Response {
    let body = req.body_str();
    let path = body.trim();
    if path.is_empty() {
        return error_json(
            400,
            &ServeError::Io("request body must hold a model file path".into()),
        );
    }
    match action(Path::new(path)) {
        Ok(()) => Response::json(200, "{\"ok\":true}".to_string()),
        Err(e) => manage_error(&e),
    }
}

fn parse_timeout(req: &Request) -> Result<Duration, Response> {
    match req.header("x-timeout-ms") {
        None => Ok(Duration::from_millis(DEFAULT_TIMEOUT_MS)),
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Ok(Duration::from_millis(ms.min(MAX_TIMEOUT_MS))),
            Err(_) => Err(error_json(
                400,
                &ServeError::InvalidConfig(format!("X-Timeout-Ms wants an integer, got {v:?}")),
            )),
        },
    }
}

/// One CSV row of features per line; blank lines skipped.
fn parse_rows(body: &str) -> Result<Vec<Vec<f64>>, String> {
    let mut rows = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = line.split(',').map(|f| f.trim().parse::<f64>()).collect();
        match row {
            Ok(r) => rows.push(r),
            Err(_) => return Err(format!("line {}: not a CSV row of numbers", lineno + 1)),
        }
    }
    if rows.is_empty() {
        return Err("request body holds no rows".into());
    }
    Ok(rows)
}

/// Scoring-path failure mapping; `entry` supplies the shed retry hint.
fn score_error(entry: &Arc<ModelEntry>, e: &ServeError) -> Response {
    match e {
        ServeError::QueueFull { .. } => {
            let ms = entry.retry_hint_ms();
            error_json(429, e)
                .with_header("retry-after", &ms.div_ceil(1000).max(1).to_string())
                .with_header("x-retry-after-ms", &ms.to_string())
        }
        ServeError::CircuitOpen { retry_after_ms } => error_json(503, e)
            .with_header(
                "retry-after",
                &retry_after_ms.div_ceil(1000).max(1).to_string(),
            )
            .with_header("x-retry-after-ms", &retry_after_ms.to_string()),
        ServeError::DeadlineExceeded => error_json(504, e),
        ServeError::UnknownModel(_) => error_json(404, e),
        ServeError::RowWidthMismatch { .. } | ServeError::OutputLengthMismatch { .. } => {
            error_json(400, e)
        }
        ServeError::Shutdown | ServeError::EngineStopped => error_json(503, e),
        // Corrupt (model panicked) and anything else unexpected is a
        // server-side fault.
        _ => error_json(500, e),
    }
}

/// Management-path failure mapping: the artifact (or name) the client
/// supplied is the usual culprit.
fn manage_error(e: &ServeError) -> Response {
    match e {
        ServeError::UnknownModel(_) => error_json(404, e),
        ServeError::Io(_)
        | ServeError::Corrupt(_)
        | ServeError::Truncated
        | ServeError::ChecksumMismatch { .. }
        | ServeError::UnsupportedVersion { .. }
        | ServeError::KindMismatch { .. }
        | ServeError::UnsupportedModel
        | ServeError::ModelWidthMismatch { .. }
        | ServeError::ModelClassMismatch { .. }
        | ServeError::Unquantizable(_)
        | ServeError::InvalidConfig(_) => error_json(400, e),
        _ => error_json(500, e),
    }
}

fn error_json(status: u16, e: &ServeError) -> Response {
    Response::json(
        status,
        format!("{{\"error\":{}}}", json_string(&e.to_string())),
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// f64 → JSON number. Rust's shortest-round-trip `Display` is valid
/// JSON for finite values; non-finite scores (which a well-formed model
/// never emits) are rendered as null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn divergence_json(s: &DivergenceStats) -> String {
    format!(
        "{{\"compared\":{},\"dropped\":{},\"candidate_failures\":{},\"mean_abs_diff\":{},\"max_abs_diff\":{},\"disagreements\":{}}}",
        s.compared,
        s.dropped,
        s.candidate_failures,
        json_f64(s.mean_abs_diff),
        json_f64(s.max_abs_diff),
        s.disagreements
    )
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".into())
}

/// Retrain-loop state for the status endpoint and `/metrics`.
fn online_json(s: &OnlineStatus) -> String {
    let last_error = match &s.last_error {
        Some(e) => json_string(e),
        None => "null".into(),
    };
    format!(
        "{{\"ingested_rows\":{},\"window_rows\":{},\"window_minority\":{},\"window_majority\":{},\"window_fill\":{},\"holdout_rows\":{},\"drift_score\":{},\"drift_reference\":{},\"consecutive_breaches\":{},\"total_breaches\":{},\"drift_events\":{},\"retrains_attempted\":{},\"retrains_promoted\":{},\"retrains_rejected\":{},\"retrains_failed\":{},\"last_promotion_delta\":{},\"retraining\":{},\"last_error\":{}}}",
        s.ingested_rows,
        s.window_rows,
        s.window_minority,
        s.window_majority,
        json_f64(s.window_fill),
        s.holdout_rows,
        json_opt_f64(s.drift_score),
        json_opt_f64(s.drift_reference),
        s.consecutive_breaches,
        s.total_breaches,
        s.drift_events,
        s.retrains_attempted,
        s.retrains_promoted,
        s.retrains_rejected,
        s.retrains_failed,
        json_opt_f64(s.last_promotion_delta),
        s.retraining,
        last_error
    )
}

fn entry_json(snap: &EntrySnapshot) -> String {
    let shadow = match &snap.shadow {
        Some(s) => divergence_json(s),
        None => "null".into(),
    };
    let online = match &snap.online {
        Some(s) => online_json(s),
        None => "null".into(),
    };
    format!(
        "{{\"breaker_state\":{},\"breaker_trips\":{},\"scored\":{},\"shed\":{},\"deadline_misses\":{},\"scoring_failures\":{},\"heals\":{},\"queue_depth\":{},\"n_classes\":{},\"requests\":{},\"batches\":{},\"p50_batch_latency_us\":{},\"p99_batch_latency_us\":{},\"model_swaps\":{},\"shadow\":{},\"online\":{}}}",
        json_string(snap.breaker_state),
        snap.breaker_trips,
        snap.scored,
        snap.shed,
        snap.deadline_misses,
        snap.scoring_failures,
        snap.heals,
        snap.queue_depth,
        snap.n_classes,
        snap.engine.requests,
        snap.engine.batches,
        snap.engine.p50_batch_latency_us,
        snap.engine.p99_batch_latency_us,
        snap.engine.model_swaps,
        shadow,
        online
    )
}

fn metrics_json(registry: &ModelRegistry) -> String {
    let mut out = format!("{{\"n_features\":{},\"models\":{{", registry.n_features());
    for (i, snap) in registry.snapshots().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(&snap.name));
        out.push(':');
        out.push_str(&entry_json(snap));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use spe_learners::traits::ConstantModel;
    use spe_serve::EngineConfig;

    fn request(method: &str, path: &str, headers: &[(&str, &str)], body: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            headers: headers
                .iter()
                .map(|(k, v)| (k.to_lowercase(), v.to_string()))
                .collect(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn registry() -> ModelRegistry {
        let mut config = RegistryConfig::new(2);
        config.engine = EngineConfig::builder()
            .max_batch(4)
            .queue_capacity(8)
            .max_delay(Duration::from_millis(1))
            .build()
            .unwrap_or_else(|e| panic!("{e}"));
        let reg = ModelRegistry::new(config);
        reg.register_model("m", Box::new(ConstantModel(0.25)))
            .unwrap_or_else(|e| panic!("{e}"));
        reg
    }

    #[test]
    fn health_ready_metrics() {
        let reg = registry();
        let stop = AtomicBool::new(false);
        assert_eq!(
            handle(&reg, &stop, &request("GET", "/health", &[], "")).status,
            200
        );
        assert_eq!(
            handle(&reg, &stop, &request("GET", "/ready", &[], "")).status,
            200
        );
        let metrics = handle(&reg, &stop, &request("GET", "/metrics", &[], ""));
        assert_eq!(metrics.status, 200);
        let body = metrics.body_str();
        assert!(
            body.contains("\"m\":{\"breaker_state\":\"closed\""),
            "{body}"
        );
        // An empty registry is alive but not ready.
        let empty = ModelRegistry::new(RegistryConfig::new(2));
        assert_eq!(
            handle(&empty, &stop, &request("GET", "/ready", &[], "")).status,
            503
        );
        assert_eq!(
            handle(&empty, &stop, &request("GET", "/health", &[], "")).status,
            200
        );
    }

    #[test]
    fn score_round_trip_and_client_errors() {
        let reg = registry();
        let stop = AtomicBool::new(false);
        let ok = handle(
            &reg,
            &stop,
            &request("POST", "/score/m", &[], "0.0,0.0\n1.0,1.0\n"),
        );
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body_str(), "{\"scores\":[0.25,0.25]}");
        // Unknown model.
        let missing = handle(&reg, &stop, &request("POST", "/score/nope", &[], "0,0\n"));
        assert_eq!(missing.status, 404);
        // Wrong row width is the client's fault.
        let narrow = handle(&reg, &stop, &request("POST", "/score/m", &[], "0.0\n"));
        assert_eq!(narrow.status, 400);
        // Garbage body.
        let garbage = handle(&reg, &stop, &request("POST", "/score/m", &[], "a,b\n"));
        assert_eq!(garbage.status, 400);
        let empty = handle(&reg, &stop, &request("POST", "/score/m", &[], "\n\n"));
        assert_eq!(empty.status, 400);
        // Bad timeout header.
        let bad_timeout = handle(
            &reg,
            &stop,
            &request("POST", "/score/m", &[("x-timeout-ms", "soon")], "0,0\n"),
        );
        assert_eq!(bad_timeout.status, 400);
    }

    #[test]
    fn oversized_request_sheds_with_retry_hints() {
        let reg = registry();
        let stop = AtomicBool::new(false);
        // Watermark is 7 of 8 (0.9 default): eight rows shed.
        let body = "0,0\n".repeat(8);
        let shed = handle(&reg, &stop, &request("POST", "/score/m", &[], &body));
        assert_eq!(shed.status, 429);
        assert!(shed.header("retry-after").is_some());
        assert!(shed.header("x-retry-after-ms").is_some());
        // The server survives and keeps scoring.
        let ok = handle(&reg, &stop, &request("POST", "/score/m", &[], "0,0\n"));
        assert_eq!(ok.status, 200);
    }

    #[test]
    fn zero_timeout_misses_its_deadline() {
        let reg = registry();
        let stop = AtomicBool::new(false);
        let miss = handle(
            &reg,
            &stop,
            &request("POST", "/score/m", &[("X-Timeout-Ms", "0")], "0,0\n"),
        );
        assert_eq!(miss.status, 504);
    }

    #[test]
    fn multiclass_score_returns_distributions() {
        let reg = registry();
        reg.register_model(
            "mc",
            Box::new(spe_learners::OneVsRestModel::new(vec![
                Box::new(ConstantModel(0.2)),
                Box::new(ConstantModel(0.3)),
                Box::new(ConstantModel(0.5)),
            ])),
        )
        .unwrap_or_else(|e| panic!("{e}"));
        let stop = AtomicBool::new(false);
        let ok = handle(
            &reg,
            &stop,
            &request("POST", "/score/mc", &[], "0,0\n1,1\n"),
        );
        assert_eq!(ok.status, 200);
        assert_eq!(
            ok.body_str(),
            "{\"n_classes\":3,\"classes\":[[0.2,0.3,0.5],[0.2,0.3,0.5]]}"
        );
        // Binary models on the same server keep the scalar shape.
        let bin = handle(&reg, &stop, &request("POST", "/score/m", &[], "0,0\n"));
        assert_eq!(bin.body_str(), "{\"scores\":[0.25]}");
        // Metrics carry the class width.
        let metrics = handle(&reg, &stop, &request("GET", "/metrics", &[], ""));
        assert!(
            metrics.body_str().contains("\"n_classes\":3"),
            "{}",
            metrics.body_str()
        );
        // Swapping a binary artifact under a 3-class model is the
        // client's fault: 400 with a class-mismatch message.
        let path = std::env::temp_dir().join(format!(
            "spe-server-http-classgate-{}.spe",
            std::process::id()
        ));
        spe_serve::save_model(&path, &ConstantModel(0.9), Vec::new())
            .unwrap_or_else(|e| panic!("{e}"));
        let swap = handle(
            &reg,
            &stop,
            &request(
                "POST",
                "/models/mc/swap",
                &[],
                path.to_str().unwrap_or_default(),
            ),
        );
        assert_eq!(swap.status, 400, "{}", swap.body_str());
        assert!(swap.body_str().contains("classes"), "{}", swap.body_str());
        std::fs::remove_file(&path).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn online_routes_enable_feed_status_disable() {
        let reg = registry();
        let stop = AtomicBool::new(false);
        // No loop yet: status is a typed 404, metrics render null.
        assert_eq!(
            handle(&reg, &stop, &request("GET", "/models/m/online", &[], "")).status,
            404
        );
        let metrics = handle(&reg, &stop, &request("GET", "/metrics", &[], ""));
        assert!(
            metrics.body_str().contains("\"online\":null"),
            "{}",
            metrics.body_str()
        );

        let body = "window_majority=64\nwindow_minority=16\nmin_rows=16\n";
        let on = handle(&reg, &stop, &request("POST", "/models/m/online", &[], body));
        assert_eq!(on.status, 200, "{}", on.body_str());
        assert_eq!(on.body_str(), "{\"online\":true}");
        assert_eq!(
            handle(&reg, &stop, &request("POST", "/models/m/online", &[], "")).status,
            400,
            "double enable is the client's fault"
        );

        // Labeled feedback: features then the 0/1 label, per line.
        let fed = handle(
            &reg,
            &stop,
            &request("POST", "/models/m/feedback", &[], "0.1,0.2,1\n0.3,0.4,0\n"),
        );
        assert_eq!(fed.status, 200, "{}", fed.body_str());
        assert_eq!(fed.body_str(), "{\"ingested\":2}");

        let status = handle(&reg, &stop, &request("GET", "/models/m/online", &[], ""));
        assert_eq!(status.status, 200);
        assert!(
            status.body_str().contains("\"ingested_rows\":2"),
            "{}",
            status.body_str()
        );
        assert!(
            status.body_str().contains("\"retrains_promoted\":0"),
            "{}",
            status.body_str()
        );
        let metrics = handle(&reg, &stop, &request("GET", "/metrics", &[], ""));
        assert!(
            metrics
                .body_str()
                .contains("\"online\":{\"ingested_rows\":2"),
            "{}",
            metrics.body_str()
        );

        let off = handle(&reg, &stop, &request("DELETE", "/models/m/online", &[], ""));
        assert_eq!(off.status, 200);
        assert_eq!(off.body_str(), "{\"online\":false}");
        assert_eq!(
            handle(&reg, &stop, &request("GET", "/models/m/online", &[], "")).status,
            404
        );
        assert_eq!(
            handle(&reg, &stop, &request("DELETE", "/models/m/online", &[], "")).status,
            404,
            "double disable is a typed 404"
        );
    }

    #[test]
    fn online_routes_reject_bad_input() {
        let reg = registry();
        let stop = AtomicBool::new(false);
        // Unknown model on every online route.
        for (method, path) in [
            ("POST", "/models/nope/online"),
            ("GET", "/models/nope/online"),
            ("DELETE", "/models/nope/online"),
            ("POST", "/models/nope/feedback"),
        ] {
            assert_eq!(
                handle(&reg, &stop, &request(method, path, &[], "0,0,1\n")).status,
                404,
                "{method} {path}"
            );
        }
        // Malformed config keys are the client's fault.
        assert_eq!(
            handle(
                &reg,
                &stop,
                &request("POST", "/models/m/online", &[], "bogus_key=1\n")
            )
            .status,
            400
        );
        // Feedback without an enabled loop is a typed 404.
        assert_eq!(
            handle(
                &reg,
                &stop,
                &request("POST", "/models/m/feedback", &[], "0,0,1\n")
            )
            .status,
            404
        );
        assert_eq!(
            handle(&reg, &stop, &request("POST", "/models/m/online", &[], "")).status,
            200
        );
        // Missing trailing label and non-binary labels are 400s.
        for body in ["0.1,0.2\n", "0.1,0.2,0.5\n", "0.1,0.2,2\n"] {
            let resp = handle(
                &reg,
                &stop,
                &request("POST", "/models/m/feedback", &[], body),
            );
            assert_eq!(resp.status, 400, "{body:?}: {}", resp.body_str());
        }
        let status = handle(&reg, &stop, &request("GET", "/models/m/online", &[], ""));
        assert!(
            status.body_str().contains("\"ingested_rows\":0"),
            "rejected feedback must not count: {}",
            status.body_str()
        );
    }

    #[test]
    fn shutdown_route_sets_the_flag() {
        let reg = registry();
        let stop = AtomicBool::new(false);
        assert_eq!(
            handle(&reg, &stop, &request("POST", "/admin/shutdown", &[], "")).status,
            200
        );
        assert!(stop.load(Ordering::Acquire));
    }

    #[test]
    fn unknown_routes_and_wrong_verbs() {
        let reg = registry();
        let stop = AtomicBool::new(false);
        assert_eq!(
            handle(&reg, &stop, &request("GET", "/nope", &[], "")).status,
            404
        );
        assert_eq!(
            handle(&reg, &stop, &request("DELETE", "/health", &[], "")).status,
            405
        );
        assert_eq!(
            handle(&reg, &stop, &request("GET", "/score/m", &[], "")).status,
            405
        );
        // Management routes on unknown models are typed 404s.
        assert_eq!(
            handle(&reg, &stop, &request("DELETE", "/models/nope", &[], "")).status,
            404
        );
        assert_eq!(
            handle(&reg, &stop, &request("GET", "/models/m/shadow", &[], "")).status,
            404,
            "no shadow attached yet"
        );
        // Load with an empty body is a 400.
        assert_eq!(
            handle(&reg, &stop, &request("POST", "/models/x/load", &[], "  ")).status,
            400
        );
        // Load with a nonexistent file is a 400.
        assert_eq!(
            handle(
                &reg,
                &stop,
                &request("POST", "/models/x/load", &[], "/nonexistent/model.spe")
            )
            .status,
            400
        );
    }
}
