//! Named multi-model registry with per-model fault isolation.
//!
//! Each registered model owns a full serving stack — its own
//! [`ScoringEngine`] (queue + scheduler thread), [`CircuitBreaker`],
//! [`Admission`] gate, optional [`ShadowScorer`] and counters — so one
//! wedged model saturates *its* queue and trips *its* breaker while
//! every other model keeps serving. The registry itself is a name →
//! entry map behind an `RwLock`; the scoring hot path takes one read
//! lock to clone an `Arc` and never holds it across a wait.
//!
//! Models arrive from SPEM envelope files ([`ModelRegistry::register_file`]),
//! which means every install is already validated: checksum verified
//! before decoding, format version gated, and the engine's width gate
//! rejects a model whose [feature bound](spe_learners::FeatureBound)
//! cannot score the registry's row width. The source path is kept so
//! the entry can *self-heal*: when the breaker trips, a background
//! thread reloads the (still-validated) file and hot-swaps it in, and
//! the breaker's half-open probe confirms recovery before traffic
//! resumes.

use crate::admission::{retry_after_ms, Admission};
use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::shadow::{DivergenceStats, ShadowScorer};
use parking_lot::{Mutex, RwLock};
use spe_data::{Matrix, MatrixView};
use spe_learners::Model;
use spe_online::{LiveModel, OnlineConfig, OnlineStatus, RetrainLoop};
use spe_serve::{load_model, save_model, EngineConfig, ScoringEngine, ServeError, ServeStats};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Registry-wide serving configuration; every entry gets its own
/// engine/breaker/gate built from these.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Row width every served model must admit.
    pub n_features: usize,
    /// Engine tuning applied to each model's `ScoringEngine`.
    pub engine: EngineConfig,
    /// Breaker tuning applied to each model's `CircuitBreaker`.
    pub breaker: BreakerConfig,
    /// Fraction of the queue capacity where admission starts shedding.
    pub watermark_fraction: f64,
    /// Bound on each model's shadow mirror queue.
    pub shadow_capacity: usize,
}

impl RegistryConfig {
    /// Defaults for `n_features`-wide rows: stock engine, stock
    /// breaker, shed at 90% of the queue, shadow queue of 256 rows.
    pub fn new(n_features: usize) -> Self {
        Self {
            n_features,
            engine: EngineConfig::default(),
            breaker: BreakerConfig::default(),
            watermark_fraction: 0.9,
            shadow_capacity: 256,
        }
    }
}

/// Point-in-time view of one entry, for the metrics endpoint.
#[derive(Clone, Debug)]
pub struct EntrySnapshot {
    /// Registered name.
    pub name: String,
    /// Breaker state label (`closed` / `open` / `half-open`).
    pub breaker_state: &'static str,
    /// Times this model's circuit has opened.
    pub breaker_trips: u64,
    /// Rows scored successfully.
    pub scored: u64,
    /// Requests shed by admission control (both gate and engine layer).
    pub shed: u64,
    /// Requests that missed their deadline.
    pub deadline_misses: u64,
    /// Requests that failed inside scoring (panic, shutdown race).
    pub scoring_failures: u64,
    /// Completed self-heal reloads.
    pub heals: u64,
    /// Rows waiting in this model's queue right now.
    pub queue_depth: usize,
    /// Classes the served model scores (2 = binary).
    pub n_classes: usize,
    /// The engine's own counters (batches, latency percentiles, swaps).
    pub engine: ServeStats,
    /// Divergence stats when a shadow candidate is attached.
    pub shadow: Option<DivergenceStats>,
    /// Online retrain-loop counters when the policy is enabled.
    pub online: Option<OnlineStatus>,
}

/// One served model: engine, breaker, gate, counters, optional shadow.
pub struct ModelEntry {
    name: String,
    engine: ScoringEngine,
    breaker: CircuitBreaker,
    admission: Admission,
    /// SPEM file this model was loaded from; `None` for models
    /// installed directly (no self-heal possible for those).
    source: Mutex<Option<PathBuf>>,
    shadow: Mutex<Option<ShadowScorer>>,
    /// Drift-aware background retrain loop, when the operator opted in.
    online: Mutex<Option<RetrainLoop>>,
    healing: AtomicBool,
    scored: AtomicU64,
    deadline_misses: AtomicU64,
    scoring_failures: AtomicU64,
    heals: AtomicU64,
}

impl ModelEntry {
    fn start(
        name: &str,
        model: Box<dyn Model>,
        source: Option<PathBuf>,
        config: &RegistryConfig,
    ) -> Result<Self, ServeError> {
        let engine = ScoringEngine::start(model, config.n_features, config.engine.clone())?;
        let admission = Admission::new(engine.queue_capacity(), config.watermark_fraction);
        Ok(Self {
            name: name.to_string(),
            engine,
            breaker: CircuitBreaker::new(config.breaker),
            admission,
            source: Mutex::new(source),
            shadow: Mutex::new(None),
            online: Mutex::new(None),
            healing: AtomicBool::new(false),
            scored: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            scoring_failures: AtomicU64::new(0),
            heals: AtomicU64::new(0),
        })
    }

    /// Scores a batch of rows with a request-wide deadline.
    ///
    /// The full gauntlet, in order: breaker gate, admission watermark,
    /// per-row submit, deadline-bounded waits. On success the rows are
    /// mirrored to the shadow candidate (if any). Deadline misses and
    /// scoring failures feed the breaker; shed load and client errors
    /// (bad row width) do not.
    pub fn score(
        self: &Arc<Self>,
        rows: &[Vec<f64>],
        timeout: Duration,
    ) -> Result<Vec<f64>, ServeError> {
        self.breaker.admit()?;
        let outcome = self.score_admitted(rows, timeout);
        match &outcome {
            Ok(_) => {
                self.breaker.record(true);
            }
            Err(e) => match e {
                ServeError::DeadlineExceeded => {
                    self.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    self.note_failure();
                }
                ServeError::Corrupt(_) | ServeError::Shutdown | ServeError::EngineStopped => {
                    self.scoring_failures.fetch_add(1, Ordering::Relaxed);
                    self.note_failure();
                }
                // Shed load and client errors are not model health
                // signals — but the admitted breaker probe must still
                // resolve, as a success (the model itself is fine).
                _ => {
                    self.breaker.record(true);
                }
            },
        }
        outcome
    }

    fn score_admitted(&self, rows: &[Vec<f64>], timeout: Duration) -> Result<Vec<f64>, ServeError> {
        self.admission
            .check(self.engine.queue_depth(), rows.len())?;
        let deadline = Instant::now() + timeout;
        let mut pending = Vec::with_capacity(rows.len());
        for row in rows {
            match self.engine.submit(row) {
                Ok(p) => pending.push(p),
                Err(e) => {
                    if matches!(e, ServeError::QueueFull { .. }) {
                        // Raced past the watermark; counts as shed.
                        self.admission.note_shed();
                    }
                    // Abandoned waiters resolve internally; their slots
                    // just drop.
                    return Err(e);
                }
            }
        }
        let mut out = Vec::with_capacity(pending.len());
        for p in pending {
            let remaining = deadline.saturating_duration_since(Instant::now());
            out.push(p.wait_timeout(remaining)?);
        }
        if let Some(shadow) = self.shadow.lock().as_ref() {
            for (row, &live) in rows.iter().zip(&out) {
                shadow.offer(row, live);
            }
        }
        self.scored.fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// K-wide twin of [`score`](ModelEntry::score): the same breaker and
    /// admission gauntlet, but rows are scored synchronously through the
    /// engine's direct path into row-major `[rows × n_classes]`
    /// distributions (full distributions do not flow through the scalar
    /// batching queue, so no per-row deadline applies). Shadow mirrors
    /// compare scalar scores only and are skipped here.
    pub fn score_classes(self: &Arc<Self>, rows: &[Vec<f64>]) -> Result<Vec<f64>, ServeError> {
        self.breaker.admit()?;
        let outcome = self.score_classes_admitted(rows);
        match &outcome {
            Ok(_) => {
                self.breaker.record(true);
            }
            Err(e) => match e {
                ServeError::Corrupt(_) | ServeError::Shutdown | ServeError::EngineStopped => {
                    self.scoring_failures.fetch_add(1, Ordering::Relaxed);
                    self.note_failure();
                }
                _ => {
                    self.breaker.record(true);
                }
            },
        }
        outcome
    }

    fn score_classes_admitted(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>, ServeError> {
        self.admission
            .check(self.engine.queue_depth(), rows.len())?;
        let width = self.engine.n_features();
        let mut flat = Vec::with_capacity(rows.len() * width);
        for row in rows {
            if row.len() != width {
                return Err(ServeError::RowWidthMismatch {
                    expected: width,
                    got: row.len(),
                });
            }
            flat.extend_from_slice(row);
        }
        let mut out = vec![0.0; rows.len() * self.engine.n_classes()];
        self.engine
            .score_classes_into(MatrixView::from_slice(&flat, rows.len(), width), &mut out)?;
        self.scored.fetch_add(rows.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Feeds a failure to the breaker; a trip kicks off self-healing.
    fn note_failure(self: &Arc<Self>) {
        if self.breaker.record(false) {
            self.self_heal();
        }
    }

    /// Reloads this entry's source SPEM file on a background thread and
    /// hot-swaps the result in. The breaker stays open while this runs
    /// — its half-open probe is what confirms the reload actually
    /// restored service. No source file (directly-installed model) or a
    /// heal already in flight: no-op.
    fn self_heal(self: &Arc<Self>) {
        let Some(path) = self.source.lock().clone() else {
            return;
        };
        if self.healing.swap(true, Ordering::AcqRel) {
            return;
        }
        let entry = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name(format!("spe-heal-{}", self.name))
            .spawn(move || {
                if load_model(&path)
                    .and_then(|m| entry.engine.swap_model(m))
                    .is_ok()
                {
                    entry.heals.fetch_add(1, Ordering::Relaxed);
                }
                // On failure the breaker stays open and the next trip
                // retries; the (validated) old model keeps its slot.
                entry.healing.store(false, Ordering::Release);
            });
        if spawned.is_err() {
            self.healing.store(false, Ordering::Release);
        }
    }

    /// Attaches a shadow candidate loaded from `path`, replacing any
    /// previous candidate.
    pub fn start_shadow(&self, path: &Path, capacity: usize) -> Result<(), ServeError> {
        let model = load_model(path)?;
        // Vet the class width up front: a mismatched candidate could
        // shadow-score (comparisons are scalar) but never promote, so
        // fail at attach time instead of surprising the operator later.
        if model.n_classes() != self.engine.n_classes() {
            return Err(ServeError::ModelClassMismatch {
                expected: self.engine.n_classes(),
                got: model.n_classes(),
            });
        }
        let shadow = ShadowScorer::start(
            model,
            self.engine.n_features(),
            path.to_path_buf(),
            capacity,
        )?;
        *self.shadow.lock() = Some(shadow);
        Ok(())
    }

    /// The shadow candidate's divergence stats, if one is attached.
    pub fn shadow_stats(&self) -> Option<DivergenceStats> {
        self.shadow.lock().as_ref().map(ShadowScorer::stats)
    }

    /// Promotes the shadow candidate: its source file is reloaded onto
    /// the live engine (zero downtime, same validation as any swap) and
    /// becomes the new self-heal source. Fails with
    /// [`ServeError::UnknownModel`] when no candidate is attached; on a
    /// failed swap the candidate stays attached and the live model
    /// keeps serving.
    pub fn promote_shadow(&self) -> Result<(), ServeError> {
        let mut shadow = self.shadow.lock();
        let candidate = shadow
            .as_ref()
            .ok_or_else(|| ServeError::UnknownModel(format!("{}/shadow", self.name)))?;
        let path = candidate.source().to_path_buf();
        let model = load_model(&path)?;
        self.engine.swap_model(model)?;
        *self.source.lock() = Some(path);
        *shadow = None;
        Ok(())
    }

    /// Swaps in a model loaded from `path` with zero downtime; the file
    /// becomes the new self-heal source. Validation failures (corrupt
    /// file, width mismatch) leave the old model serving.
    pub fn swap_from_file(&self, path: &Path) -> Result<(), ServeError> {
        let model = load_model(path)?;
        self.engine.swap_model(model)?;
        *self.source.lock() = Some(path.to_path_buf());
        Ok(())
    }

    /// Enables the drift-aware online retrain policy for this model.
    ///
    /// Spawns a [`RetrainLoop`] whose host scores through this entry's
    /// engine (direct path — retrain traffic never competes with user
    /// requests for queue slots) and promotes improved candidates via
    /// [`install_candidate`](Self::install_candidate). Binary models
    /// only — the window/detector speak 0/1 labels.
    pub fn enable_online(self: &Arc<Self>, cfg: OnlineConfig) -> Result<(), ServeError> {
        if self.engine.n_classes() != 2 {
            return Err(ServeError::ModelClassMismatch {
                expected: 2,
                got: self.engine.n_classes(),
            });
        }
        let mut slot = self.online.lock();
        if slot.is_some() {
            return Err(ServeError::InvalidConfig(format!(
                "online retraining already enabled for '{}'",
                self.name
            )));
        }
        // Weak host: dropping the entry (DELETE /models/<name>) must not
        // be kept alive by its own background loop.
        let host: Arc<dyn LiveModel> = Arc::new(EntryHost {
            entry: Arc::downgrade(self),
        });
        *slot = Some(RetrainLoop::start(host, self.engine.n_features(), cfg)?);
        Ok(())
    }

    /// Disables the online policy, joining its worker thread.
    pub fn disable_online(&self) -> Result<(), ServeError> {
        self.online
            .lock()
            .take()
            .map(drop)
            .ok_or_else(|| ServeError::UnknownModel(format!("{}/online", self.name)))
    }

    /// The retrain loop's counters, when the policy is enabled.
    pub fn online_status(&self) -> Option<OnlineStatus> {
        self.online.lock().as_ref().map(RetrainLoop::status)
    }

    /// Routes labeled feedback rows into the retrain loop's windows.
    pub fn ingest_feedback(&self, x: Matrix, y: Vec<u8>) -> Result<(), ServeError> {
        self.online
            .lock()
            .as_ref()
            .ok_or_else(|| ServeError::UnknownModel(format!("{}/online", self.name)))?
            .ingest(x, y)
    }

    /// Installs a promoted retrain candidate with zero downtime.
    ///
    /// When the entry has a self-heal source file, the candidate is
    /// first persisted to a sibling SPEM (`<stem>.online.spe`) and
    /// swapped in *from that file*, so a later breaker trip heals to
    /// the promoted model instead of resurrecting the pre-promotion
    /// one. If persisting fails, the candidate is swapped in directly
    /// and the stale source is dropped — losing self-heal is safer
    /// than healing backwards.
    fn install_candidate(&self, model: Box<dyn Model>) -> Result<(), ServeError> {
        let source = self.source.lock().clone();
        let Some(path) = source else {
            return self.engine.swap_model(model);
        };
        let promoted = path.with_extension("online.spe");
        let meta = vec![("promoted-by".to_string(), "spe-online".to_string())];
        if save_model(&promoted, model.as_ref(), meta).is_ok() {
            return self.swap_from_file(&promoted);
        }
        self.engine.swap_model(model)?;
        *self.source.lock() = None;
        Ok(())
    }

    /// `Retry-After` hint for a shed response, from this engine's own
    /// latency estimate and backlog.
    pub fn retry_hint_ms(&self) -> u64 {
        retry_after_ms(
            self.engine.stats().p50_batch_latency_us,
            self.engine.queue_depth(),
            self.engine.max_batch(),
        )
    }

    /// This entry's serving engine.
    pub fn engine(&self) -> &ScoringEngine {
        &self.engine
    }

    /// Counters + breaker state for metrics.
    pub fn snapshot(&self) -> EntrySnapshot {
        EntrySnapshot {
            name: self.name.clone(),
            breaker_state: self.breaker.state_name(),
            breaker_trips: self.breaker.trips(),
            scored: self.scored.load(Ordering::Relaxed),
            shed: self.admission.shed_count(),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            scoring_failures: self.scoring_failures.load(Ordering::Relaxed),
            heals: self.heals.load(Ordering::Relaxed),
            queue_depth: self.engine.queue_depth(),
            n_classes: self.engine.n_classes(),
            engine: self.engine.stats(),
            shadow: self.shadow_stats(),
            online: self.online_status(),
        }
    }
}

/// [`LiveModel`] bridge from the retrain loop back to its entry.
///
/// Holds a `Weak` reference so the loop never keeps a removed entry
/// alive; once the entry is gone both hooks fail with
/// [`ServeError::EngineStopped`] and the loop counts the retrain as
/// failed instead of crashing.
struct EntryHost {
    entry: Weak<ModelEntry>,
}

impl EntryHost {
    fn entry(&self) -> Result<Arc<ModelEntry>, ServeError> {
        self.entry.upgrade().ok_or(ServeError::EngineStopped)
    }
}

impl LiveModel for EntryHost {
    /// Scores via the engine's synchronous direct path, bypassing the
    /// admission gate and breaker: background retrain traffic must
    /// neither shed user requests nor register as model-health signal.
    fn score_rows(&self, x: MatrixView<'_>) -> Result<Vec<f64>, ServeError> {
        let entry = self.entry()?;
        let mut out = vec![0.0; x.rows()];
        entry.engine.score_into(x, &mut out)?;
        Ok(out)
    }

    fn install(&self, model: Box<dyn Model>) -> Result<(), ServeError> {
        self.entry()?.install_candidate(model)
    }
}

/// Name → entry map; the serving surface the HTTP layer talks to.
pub struct ModelRegistry {
    config: RegistryConfig,
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
}

impl ModelRegistry {
    /// An empty registry serving rows of `config.n_features`.
    pub fn new(config: RegistryConfig) -> Self {
        Self {
            config,
            models: RwLock::new(HashMap::new()),
        }
    }

    /// Registers (or redeploys) `name` from a SPEM envelope file. The
    /// load validates checksum/version/kind structure; the engine start
    /// validates the feature bound. An existing entry under `name` is
    /// replaced wholesale (fresh breaker and counters) — use
    /// [`swap`](ModelRegistry::swap) for a zero-downtime model update
    /// that keeps serving state.
    pub fn register_file(&self, name: &str, path: &Path) -> Result<(), ServeError> {
        let model = load_model(path)?;
        let entry = ModelEntry::start(name, model, Some(path.to_path_buf()), &self.config)?;
        self.models
            .write()
            .insert(name.to_string(), Arc::new(entry));
        Ok(())
    }

    /// Registers an in-process model (tests, benches). No source file,
    /// so the entry cannot self-heal.
    pub fn register_model(&self, name: &str, model: Box<dyn Model>) -> Result<(), ServeError> {
        let entry = ModelEntry::start(name, model, None, &self.config)?;
        self.models
            .write()
            .insert(name.to_string(), Arc::new(entry));
        Ok(())
    }

    /// Hot-swaps `name` to the model in `path`, keeping its queue,
    /// breaker and counters.
    pub fn swap(&self, name: &str, path: &Path) -> Result<(), ServeError> {
        self.get(name)?.swap_from_file(path)
    }

    /// Removes `name`, draining its engine (queued rows still score).
    pub fn remove(&self, name: &str) -> Result<(), ServeError> {
        self.models
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    /// The entry serving `name`.
    pub fn get(&self, name: &str) -> Result<Arc<ModelEntry>, ServeError> {
        self.models
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    /// Registered names, sorted (stable metrics output).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshots of every entry, sorted by name.
    pub fn snapshots(&self) -> Vec<EntrySnapshot> {
        let entries: Vec<Arc<ModelEntry>> = self.models.read().values().cloned().collect();
        let mut snaps: Vec<EntrySnapshot> = entries.iter().map(|e| e.snapshot()).collect();
        snaps.sort_by(|a, b| a.name.cmp(&b.name));
        snaps
    }

    /// Row width this registry serves.
    pub fn n_features(&self) -> usize {
        self.config.n_features
    }

    /// The shadow queue bound entries are started with.
    pub fn shadow_capacity(&self) -> usize {
        self.config.shadow_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::MatrixView;
    use spe_learners::traits::ConstantModel;
    use spe_serve::save_model;

    fn tight_config() -> RegistryConfig {
        let mut config = RegistryConfig::new(2);
        config.engine = EngineConfig::builder()
            .max_batch(4)
            .queue_capacity(8)
            .max_delay(Duration::from_millis(1))
            .build()
            .unwrap_or_else(|e| panic!("{e}"));
        config.breaker = BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_millis(50),
        };
        config.watermark_fraction = 0.75;
        config
    }

    fn rows(n: usize) -> Vec<Vec<f64>> {
        vec![vec![0.0, 0.0]; n]
    }

    #[test]
    fn score_routes_by_name_and_unknown_is_typed() {
        let reg = ModelRegistry::new(tight_config());
        reg.register_model("a", Box::new(ConstantModel(0.2)))
            .unwrap_or_else(|e| panic!("{e}"));
        reg.register_model("b", Box::new(ConstantModel(0.7)))
            .unwrap_or_else(|e| panic!("{e}"));
        let a = reg.get("a").unwrap_or_else(|e| panic!("{e}"));
        let b = reg.get("b").unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.score(&rows(3), Duration::from_secs(5)), Ok(vec![0.2; 3]));
        assert_eq!(b.score(&rows(1), Duration::from_secs(5)), Ok(vec![0.7]));
        assert_eq!(
            reg.get("c").map(|_| ()),
            Err(ServeError::UnknownModel("c".into()))
        );
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        let snaps = reg.snapshots();
        assert_eq!(snaps[0].scored, 3);
        assert_eq!(snaps[1].scored, 1);
    }

    #[test]
    fn oversized_request_sheds_at_the_watermark() {
        let reg = ModelRegistry::new(tight_config());
        reg.register_model("m", Box::new(ConstantModel(0.5)))
            .unwrap_or_else(|e| panic!("{e}"));
        let m = reg.get("m").unwrap_or_else(|e| panic!("{e}"));
        // Watermark = 6 of 8; a 7-row request sheds without enqueueing.
        assert_eq!(
            m.score(&rows(7), Duration::from_secs(5)),
            Err(ServeError::QueueFull { capacity: 8 })
        );
        let snap = m.snapshot();
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.engine.requests, 0, "no row crossed the gate");
        // Shedding is not a model-health failure.
        assert_eq!(snap.breaker_state, "closed");
        // The model still serves.
        assert!(m.score(&rows(2), Duration::from_secs(5)).is_ok());
    }

    /// A model wedged hard enough that every deadline misses.
    struct Wedged;
    impl Model for Wedged {
        fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
            std::thread::sleep(Duration::from_millis(30));
            vec![0.5; x.rows()]
        }
    }

    #[test]
    fn wedged_model_trips_its_breaker_and_isolates() {
        let reg = ModelRegistry::new(tight_config());
        reg.register_model("wedged", Box::new(Wedged))
            .unwrap_or_else(|e| panic!("{e}"));
        reg.register_model("healthy", Box::new(ConstantModel(0.4)))
            .unwrap_or_else(|e| panic!("{e}"));
        let wedged = reg.get("wedged").unwrap_or_else(|e| panic!("{e}"));
        let healthy = reg.get("healthy").unwrap_or_else(|e| panic!("{e}"));
        // Two consecutive deadline misses trip the threshold-2 breaker.
        for _ in 0..2 {
            assert_eq!(
                wedged.score(&rows(1), Duration::from_millis(1)),
                Err(ServeError::DeadlineExceeded)
            );
        }
        assert!(matches!(
            wedged.score(&rows(1), Duration::from_secs(5)),
            Err(ServeError::CircuitOpen { .. })
        ));
        let snap = wedged.snapshot();
        assert_eq!(snap.deadline_misses, 2);
        assert_eq!(snap.breaker_trips, 1);
        // The other model never noticed.
        assert_eq!(
            healthy.score(&rows(1), Duration::from_secs(5)),
            Ok(vec![0.4])
        );
        assert_eq!(healthy.snapshot().breaker_state, "closed");
        // After the cooldown a generous-deadline probe restores service.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(
            wedged.score(&rows(1), Duration::from_secs(5)),
            Ok(vec![0.5])
        );
        assert_eq!(wedged.snapshot().breaker_state, "closed");
    }

    #[test]
    fn self_heal_reloads_the_source_file_on_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("spe-server-heal-{}.spe", std::process::id()));
        save_model(&path, &ConstantModel(0.9), Vec::new()).unwrap_or_else(|e| panic!("{e}"));

        let reg = ModelRegistry::new(tight_config());
        reg.register_file("m", &path)
            .unwrap_or_else(|e| panic!("{e}"));
        let m = reg.get("m").unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(m.score(&rows(1), Duration::from_secs(5)), Ok(vec![0.9]));

        // Wedge the live slot via a direct swap (the file on disk stays
        // healthy), then trip the breaker with deadline misses.
        m.engine()
            .swap_model(Box::new(Wedged))
            .unwrap_or_else(|e| panic!("{e}"));
        for _ in 0..2 {
            assert_eq!(
                m.score(&rows(1), Duration::from_millis(1)),
                Err(ServeError::DeadlineExceeded)
            );
        }
        // The trip kicked off a background reload from `path`.
        let deadline = Instant::now() + Duration::from_secs(5);
        while m.snapshot().heals == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(m.snapshot().heals, 1, "self-heal never completed");
        // After the cooldown the probe lands on the healed model.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(m.score(&rows(1), Duration::from_secs(5)), Ok(vec![0.9]));
        assert_eq!(m.snapshot().breaker_state, "closed");
        std::fs::remove_file(&path).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn shadow_attach_compare_promote() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("spe-server-shadow-{}.spe", std::process::id()));
        save_model(&path, &ConstantModel(0.8), Vec::new()).unwrap_or_else(|e| panic!("{e}"));

        let reg = ModelRegistry::new(tight_config());
        reg.register_model("m", Box::new(ConstantModel(0.3)))
            .unwrap_or_else(|e| panic!("{e}"));
        let m = reg.get("m").unwrap_or_else(|e| panic!("{e}"));
        assert!(
            matches!(m.promote_shadow(), Err(ServeError::UnknownModel(_))),
            "promote without a candidate is typed"
        );
        m.start_shadow(&path, 64).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(m.score(&rows(4), Duration::from_secs(5)), Ok(vec![0.3; 4]));
        // The mirror is async; wait for the comparisons to land.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let s = m.shadow_stats().unwrap_or_default();
            if s.compared >= 4 || Instant::now() > deadline {
                assert_eq!(s.compared, 4);
                assert!((s.max_abs_diff - 0.5).abs() < 1e-12);
                assert_eq!(s.disagreements, 4);
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // Promote: live flips to the candidate file's 0.8 scores.
        m.promote_shadow().unwrap_or_else(|e| panic!("{e}"));
        assert!(m.shadow_stats().is_none(), "promotion detaches the shadow");
        assert_eq!(m.score(&rows(1), Duration::from_secs(5)), Ok(vec![0.8]));
        std::fs::remove_file(&path).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn register_file_rejects_garbage_and_keeps_registry_clean() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("spe-server-garbage-{}.spe", std::process::id()));
        std::fs::write(&path, b"not a model").unwrap_or_else(|e| panic!("{e}"));
        let reg = ModelRegistry::new(tight_config());
        assert!(reg.register_file("bad", &path).is_err());
        assert!(reg.names().is_empty());
        assert!(matches!(
            reg.get("bad").map(|_| ()),
            Err(ServeError::UnknownModel(_))
        ));
        std::fs::remove_file(&path).unwrap_or_else(|e| panic!("{e}"));
    }

    fn tri_class() -> Box<dyn Model> {
        Box::new(spe_learners::OneVsRestModel::new(vec![
            Box::new(ConstantModel(0.2)),
            Box::new(ConstantModel(0.3)),
            Box::new(ConstantModel(0.5)),
        ]))
    }

    #[test]
    fn multiclass_entry_scores_distributions_and_gates_swaps() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("spe-server-classgate-{}.spe", std::process::id()));
        save_model(&path, &ConstantModel(0.9), Vec::new()).unwrap_or_else(|e| panic!("{e}"));

        let reg = ModelRegistry::new(tight_config());
        reg.register_model("m", tri_class())
            .unwrap_or_else(|e| panic!("{e}"));
        let m = reg.get("m").unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(m.snapshot().n_classes, 3);
        assert_eq!(
            m.score_classes(&rows(2)),
            Ok(vec![0.2, 0.3, 0.5, 0.2, 0.3, 0.5])
        );
        assert_eq!(m.snapshot().scored, 2);
        // Row width is still vetted per row.
        assert_eq!(
            m.score_classes(&[vec![0.0]]),
            Err(ServeError::RowWidthMismatch {
                expected: 2,
                got: 1
            })
        );
        // A binary artifact cannot replace a 3-class live model, and the
        // rejected swap leaves the live model untouched.
        assert_eq!(
            reg.swap("m", &path),
            Err(ServeError::ModelClassMismatch {
                expected: 3,
                got: 2
            })
        );
        assert_eq!(m.score_classes(&rows(1)), Ok(vec![0.2, 0.3, 0.5]));
        std::fs::remove_file(&path).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn online_lifecycle_enable_ingest_status_disable() {
        let reg = ModelRegistry::new(tight_config());
        reg.register_model("m", Box::new(ConstantModel(0.5)))
            .unwrap_or_else(|e| panic!("{e}"));
        let m = reg.get("m").unwrap_or_else(|e| panic!("{e}"));
        assert!(m.online_status().is_none());
        assert!(m.snapshot().online.is_none());
        let feedback = || (Matrix::from_vec(2, 2, vec![0.0; 4]), vec![0, 1]);
        let (x, y) = feedback();
        assert!(matches!(
            m.ingest_feedback(x, y),
            Err(ServeError::UnknownModel(_))
        ));

        m.enable_online(OnlineConfig::default())
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(
            matches!(
                m.enable_online(OnlineConfig::default()),
                Err(ServeError::InvalidConfig(_))
            ),
            "double enable is rejected"
        );
        let (x, y) = feedback();
        m.ingest_feedback(x, y).unwrap_or_else(|e| panic!("{e}"));
        let status = m.online_status().unwrap_or_else(|| panic!("status"));
        assert_eq!(status.ingested_rows, 2);
        assert!(m.snapshot().online.is_some());

        m.disable_online().unwrap_or_else(|e| panic!("{e}"));
        assert!(m.online_status().is_none());
        assert!(matches!(
            m.disable_online(),
            Err(ServeError::UnknownModel(_))
        ));
    }

    #[test]
    fn online_enable_gates_on_binary_models() {
        let reg = ModelRegistry::new(tight_config());
        reg.register_model("tri", tri_class())
            .unwrap_or_else(|e| panic!("{e}"));
        let m = reg.get("tri").unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            m.enable_online(OnlineConfig::default()).map(|_| ()),
            Err(ServeError::ModelClassMismatch {
                expected: 2,
                got: 3
            })
        );
    }

    #[test]
    fn remove_unregisters() {
        let reg = ModelRegistry::new(tight_config());
        reg.register_model("m", Box::new(ConstantModel(0.5)))
            .unwrap_or_else(|e| panic!("{e}"));
        reg.remove("m").unwrap_or_else(|e| panic!("{e}"));
        assert!(matches!(reg.remove("m"), Err(ServeError::UnknownModel(_))));
        assert!(reg.names().is_empty());
    }
}
