//! Bagging-style imbalance ensembles: EasyEnsemble, UnderBagging and
//! SMOTEBagging.
//!
//! All three train independent members in parallel; they differ only in
//! how each bag is constructed:
//!
//! - **UnderBagging** (Barandela et al. 2003): balanced bag via random
//!   under-sampling, any base learner.
//! - **EasyEnsemble** (Liu et al. 2009): UnderBagging whose base learner
//!   is an AdaBoost ensemble.
//! - **SMOTEBagging** (Wang & Yao 2009): majority bootstrap plus SMOTE
//!   minority over-sampling, with the resampling rate varying across
//!   bags for diversity.

use spe_data::{Dataset, Matrix, SeededRng};
use spe_learners::ensemble::{fit_parallel, SoftVoteEnsemble, TrainJob};
use spe_learners::traits::{check_fit_inputs, ConstantModel, Learner, Model, SharedLearner};
use spe_learners::{AdaBoostConfig, DecisionTreeConfig};
use spe_sampling::{Sampler, Smote};
use std::sync::Arc;

/// Builds one balanced under-sampled bag: all minority + |P| random
/// majority, shuffled.
fn balanced_bag(data: &Dataset, rng: &mut SeededRng) -> (Matrix, Vec<u8>) {
    let idx = data.class_index();
    let mut keep = rng.sample_from(&idx.majority, idx.minority.len().max(1));
    keep.extend_from_slice(&idx.minority);
    rng.shuffle(&mut keep);
    let sub = data.select(&keep);
    (sub.x().clone(), sub.y().to_vec())
}

/// UnderBagging: random balanced bags over a configurable base learner.
#[derive(Clone)]
pub struct UnderBagging {
    /// Number of bags (paper: 10/20/50 in Table VI).
    pub n_estimators: usize,
    /// Base learner per bag (paper: C4.5).
    pub base: SharedLearner,
}

impl std::fmt::Debug for UnderBagging {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnderBagging")
            .field("n_estimators", &self.n_estimators)
            .field("base", &self.base.name())
            .finish()
    }
}

impl UnderBagging {
    /// UnderBagging with C4.5-style trees.
    pub fn new(n_estimators: usize) -> Self {
        Self {
            n_estimators,
            base: Arc::new(DecisionTreeConfig::c45(10)),
        }
    }

    /// UnderBagging over a custom base learner.
    pub fn with_base(n_estimators: usize, base: SharedLearner) -> Self {
        Self { n_estimators, base }
    }

    /// Total training samples consumed, as reported in Tables V/VI
    /// (`2·|P|` per member).
    pub fn samples_per_fit(&self, n_pos: usize, _n_neg: usize) -> usize {
        2 * n_pos * self.n_estimators
    }
}

fn fit_under_bags(
    base: &dyn Learner,
    n_estimators: usize,
    x: &Matrix,
    y: &[u8],
    seed: u64,
) -> Box<dyn Model> {
    check_fit_inputs(x, y, None);
    assert!(n_estimators > 0, "need at least one member");
    let n_pos = y.iter().filter(|&&l| l != 0).count();
    if n_pos == 0 || n_pos == y.len() {
        return Box::new(ConstantModel(if n_pos == 0 { 0.0 } else { 1.0 }));
    }
    let data = Dataset::new(x.clone(), y.to_vec());
    let mut rng = SeededRng::new(seed);
    let jobs: Vec<TrainJob> = (0..n_estimators)
        .map(|m| {
            let (bx, by) = balanced_bag(&data, &mut rng);
            TrainJob {
                x: bx,
                y: by,
                w: None,
                seed: spe_runtime::fork_seed(seed.wrapping_add(31), m as u64),
            }
        })
        .collect();
    Box::new(SoftVoteEnsemble::new(fit_parallel(base, jobs)))
}

impl Learner for UnderBagging {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        debug_assert!(weights.is_none(), "UnderBagging ignores sample weights");
        fit_under_bags(self.base.as_ref(), self.n_estimators, x, y, seed)
    }

    fn name(&self) -> &'static str {
        "UnderBagging"
    }
}

/// EasyEnsemble: UnderBagging with AdaBoost members (`Easy_n` in the
/// paper trains `n` AdaBoost models, each of `boost_rounds` weak trees).
#[derive(Clone, Debug)]
pub struct EasyEnsemble {
    /// Number of under-sampled AdaBoost members.
    pub n_estimators: usize,
    /// AdaBoost rounds inside each member.
    pub boost_rounds: usize,
    /// Depth of the weak trees inside AdaBoost.
    pub weak_depth: usize,
}

impl EasyEnsemble {
    /// `Easy_n` with the paper's default of 10 AdaBoost rounds per member.
    pub fn new(n_estimators: usize) -> Self {
        Self {
            n_estimators,
            boost_rounds: 10,
            weak_depth: 1,
        }
    }

    /// Total training samples consumed (`2·|P|` per member).
    pub fn samples_per_fit(&self, n_pos: usize, _n_neg: usize) -> usize {
        2 * n_pos * self.n_estimators
    }
}

impl Learner for EasyEnsemble {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        debug_assert!(weights.is_none(), "EasyEnsemble ignores sample weights");
        let base = AdaBoostConfig::with_base(
            self.boost_rounds,
            Arc::new(DecisionTreeConfig::with_depth(self.weak_depth)),
        );
        fit_under_bags(&base, self.n_estimators, x, y, seed)
    }

    fn name(&self) -> &'static str {
        "Easy"
    }
}

/// SMOTEBagging: each bag bootstraps the majority at full size and
/// over-samples the minority to parity via SMOTE, with the fraction of
/// bootstrap-vs-synthetic minority varying across bags (Wang & Yao 2009).
#[derive(Clone)]
pub struct SmoteBagging {
    /// Number of bags.
    pub n_estimators: usize,
    /// Base learner per bag (paper: C4.5).
    pub base: SharedLearner,
    /// SMOTE neighborhood size.
    pub k: usize,
}

impl std::fmt::Debug for SmoteBagging {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmoteBagging")
            .field("n_estimators", &self.n_estimators)
            .field("base", &self.base.name())
            .finish()
    }
}

impl SmoteBagging {
    /// SMOTEBagging with C4.5-style trees.
    pub fn new(n_estimators: usize) -> Self {
        Self {
            n_estimators,
            base: Arc::new(DecisionTreeConfig::c45(10)),
            k: 5,
        }
    }

    /// Total training samples consumed (`2·|N|` per member).
    pub fn samples_per_fit(&self, _n_pos: usize, n_neg: usize) -> usize {
        2 * n_neg * self.n_estimators
    }
}

impl Learner for SmoteBagging {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        debug_assert!(weights.is_none(), "SmoteBagging ignores sample weights");
        check_fit_inputs(x, y, None);
        assert!(self.n_estimators > 0, "need at least one member");
        let n_pos = y.iter().filter(|&&l| l != 0).count();
        if n_pos == 0 || n_pos == y.len() {
            return Box::new(ConstantModel(if n_pos == 0 { 0.0 } else { 1.0 }));
        }
        let data = Dataset::new(x.clone(), y.to_vec());
        let idx = data.class_index();
        let mut rng = SeededRng::new(seed);
        let jobs: Vec<TrainJob> = (0..self.n_estimators)
            .map(|m| {
                // Resampling rate b% sweeps 10%..100% across bags: the
                // fraction of minority slots filled by bootstrap copies
                // (the rest become SMOTE synthetics).
                let b = (m + 1) as f64 / self.n_estimators as f64;
                // Majority bootstrap at full majority size.
                let maj = rng.sample_with_replacement(idx.majority.len(), idx.majority.len());
                let maj_idx: Vec<usize> = maj.into_iter().map(|i| idx.majority[i]).collect();
                // Minority bootstrap portion.
                let n_boot = ((idx.minority.len() as f64
                    + b * (idx.majority.len() - idx.minority.len()) as f64)
                    .round() as usize)
                    .max(idx.minority.len());
                let min_boot = rng.sample_with_replacement(idx.minority.len(), n_boot);
                let min_idx: Vec<usize> = min_boot.into_iter().map(|i| idx.minority[i]).collect();
                let mut keep = maj_idx;
                keep.extend(min_idx);
                let bag = data.select(&keep);
                // SMOTE tops the minority up to parity.
                let balanced = Smote {
                    k: self.k,
                    ratio: 1.0,
                }
                .resample(
                    &bag,
                    spe_runtime::fork_seed(seed.wrapping_add(977), m as u64),
                );
                TrainJob {
                    x: balanced.x().clone(),
                    y: balanced.y().to_vec(),
                    w: None,
                    seed: spe_runtime::fork_seed(seed.wrapping_add(51), m as u64),
                }
            })
            .collect();
        Box::new(SoftVoteEnsemble::new(fit_parallel(
            self.base.as_ref(),
            jobs,
        )))
    }

    fn name(&self) -> &'static str {
        "SMOTEBagging"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_metrics::aucprc;

    fn imbalanced_overlap(n_pos: usize, n_neg: usize, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(n_pos + n_neg, 2);
        let mut y = Vec::new();
        for _ in 0..n_neg {
            x.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]);
            y.push(0);
        }
        for _ in 0..n_pos {
            x.push_row(&[rng.normal(1.5, 1.0), rng.normal(1.5, 1.0)]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn under_bagging_beats_blind_majority_vote() {
        let train = imbalanced_overlap(30, 900, 21);
        let test = imbalanced_overlap(30, 900, 22);
        let m = UnderBagging::new(10).fit(train.x(), train.y(), 23);
        let auc = aucprc(test.y(), &m.predict_proba(test.x()));
        // Prevalence baseline is 30/930 ≈ 0.032.
        assert!(auc > 0.3, "AUCPRC {auc}");
    }

    #[test]
    fn easy_trains_and_scores() {
        let train = imbalanced_overlap(25, 500, 4);
        let test = imbalanced_overlap(25, 500, 5);
        let m = EasyEnsemble::new(5).fit(train.x(), train.y(), 6);
        let auc = aucprc(test.y(), &m.predict_proba(test.x()));
        assert!(auc > 0.2, "AUCPRC {auc}");
    }

    #[test]
    fn smote_bagging_trains_and_scores() {
        let train = imbalanced_overlap(25, 400, 7);
        let test = imbalanced_overlap(25, 400, 8);
        let m = SmoteBagging::new(5).fit(train.x(), train.y(), 9);
        let auc = aucprc(test.y(), &m.predict_proba(test.x()));
        assert!(auc > 0.2, "AUCPRC {auc}");
    }

    #[test]
    fn sample_budgets_match_paper_accounting() {
        let ub = UnderBagging::new(10);
        assert_eq!(ub.samples_per_fit(316, 170_000), 6320);
        let sb = SmoteBagging::new(10);
        assert_eq!(sb.samples_per_fit(316, 170_000), 3_400_000);
        let easy = EasyEnsemble::new(20);
        assert_eq!(easy.samples_per_fit(316, 170_000), 12_640);
    }

    #[test]
    fn single_class_degenerates() {
        let x = Matrix::zeros(5, 2);
        let m = UnderBagging::new(3).fit(&x, &[0; 5], 0);
        assert_eq!(m.predict_proba(&x), vec![0.0; 5]);
        let m = SmoteBagging::new(3).fit(&x, &[1; 5], 0);
        assert_eq!(m.predict_proba(&x), vec![1.0; 5]);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = imbalanced_overlap(15, 150, 10);
        let a = UnderBagging::new(4)
            .fit(d.x(), d.y(), 11)
            .predict_proba(d.x());
        let b = UnderBagging::new(4)
            .fit(d.x(), d.y(), 11)
            .predict_proba(d.x());
        assert_eq!(a, b);
    }
}
