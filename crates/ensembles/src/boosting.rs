//! Boosting-based imbalance ensembles: RUSBoost and SMOTEBoost.
//!
//! Both keep the AdaBoost weight-update loop over the *original* training
//! set but change what each weak learner sees:
//!
//! - **RUSBoost** (Seiffert et al. 2010): each round randomly removes
//!   majority samples until the round's training set is balanced; weak
//!   learners receive the surviving samples with their boosting weights.
//! - **SMOTEBoost** (Chawla et al. 2003): each round adds `|P|` synthetic
//!   minority samples (SMOTE) to the weighted training set; synthetics
//!   exist only for that round and never receive boosting weight updates.

use spe_data::{Matrix, MatrixView, SeededRng};
use spe_learners::traits::{check_fit_inputs, ConstantModel, Learner, Model, SharedLearner};
use spe_learners::DecisionTreeConfig;
use spe_sampling::generate_synthetics;
use std::sync::Arc;

/// Shared AdaBoost driver: each round asks `make_round` for the training
/// view (possibly resampled / augmented), then updates weights on the
/// original samples.
fn boost<F>(
    base: &dyn Learner,
    n_rounds: usize,
    x: &Matrix,
    y: &[u8],
    seed: u64,
    mut make_round: F,
) -> Box<dyn Model>
where
    F: FnMut(&[f64], u64, &mut SeededRng) -> (Matrix, Vec<u8>, Vec<f64>),
{
    let n = y.len();
    let mut w = vec![1.0 / n as f64; n];
    let mut rng = SeededRng::new(seed);
    let mut members: Vec<(f64, Box<dyn Model>)> = Vec::new();

    for round in 0..n_rounds {
        let (rx, ry, rw) = make_round(&w, seed.wrapping_add(round as u64), &mut rng);
        let model = base.fit_weighted(&rx, &ry, Some(&rw), seed.wrapping_add(round as u64));
        let preds = model.predict(x);
        let err: f64 = preds
            .iter()
            .zip(y)
            .zip(&w)
            .filter(|((p, t), _)| p != t)
            .map(|(_, &wi)| wi)
            .sum();
        if err >= 0.5 {
            if members.is_empty() {
                members.push((1.0, model));
            }
            break;
        }
        if err <= 1e-12 {
            members.push((10.0, model));
            break;
        }
        let alpha = 0.5 * ((1.0 - err) / err).ln();
        for ((&p, &t), wi) in preds.iter().zip(y).zip(w.iter_mut()) {
            *wi *= if p == t { (-alpha).exp() } else { alpha.exp() };
        }
        let total: f64 = w.iter().sum();
        for wi in &mut w {
            *wi /= total;
        }
        members.push((alpha, model));
    }

    let alpha_total: f64 = members.iter().map(|(a, _)| a).sum();
    Box::new(BoostedModel {
        members,
        alpha_total: alpha_total.max(1e-12),
    })
}

struct BoostedModel {
    members: Vec<(f64, Box<dyn Model>)>,
    alpha_total: f64,
}

impl Model for BoostedModel {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        let mut acc = vec![0.0; x.rows()];
        for (alpha, m) in &self.members {
            for (a, p) in acc.iter_mut().zip(m.predict_proba_view(x)) {
                *a += alpha * (2.0 * p - 1.0);
            }
        }
        acc.into_iter()
            .map(|m| ((m / self.alpha_total) + 1.0) / 2.0)
            .collect()
    }
}

/// RUSBoost configuration.
#[derive(Clone)]
pub struct RusBoost {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Weak learner (paper comparison: C4.5-style tree).
    pub base: SharedLearner,
}

impl std::fmt::Debug for RusBoost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RusBoost")
            .field("n_rounds", &self.n_rounds)
            .field("base", &self.base.name())
            .finish()
    }
}

impl RusBoost {
    /// RUSBoost with C4.5-style trees.
    pub fn new(n_rounds: usize) -> Self {
        Self {
            n_rounds,
            base: Arc::new(DecisionTreeConfig::c45(10)),
        }
    }

    /// Total training samples consumed (`2·|P|` per round).
    pub fn samples_per_fit(&self, n_pos: usize, _n_neg: usize) -> usize {
        2 * n_pos * self.n_rounds
    }
}

impl Learner for RusBoost {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        debug_assert!(weights.is_none(), "RusBoost manages its own weights");
        check_fit_inputs(x, y, None);
        let n_pos_total = y.iter().filter(|&&l| l != 0).count();
        if n_pos_total == 0 || n_pos_total == y.len() {
            return Box::new(ConstantModel(if n_pos_total == 0 { 0.0 } else { 1.0 }));
        }
        let pos_idx: Vec<usize> = (0..y.len()).filter(|&i| y[i] != 0).collect();
        let neg_idx: Vec<usize> = (0..y.len()).filter(|&i| y[i] == 0).collect();
        boost(
            self.base.as_ref(),
            self.n_rounds,
            x,
            y,
            seed,
            |w, _round_seed, rng| {
                // Random under-sampling of the majority for this round.
                let keep_neg = rng.sample_from(&neg_idx, pos_idx.len().max(1));
                let mut keep = pos_idx.clone();
                keep.extend(keep_neg);
                rng.shuffle(&mut keep);
                let rx = x.select_rows(&keep);
                let ry: Vec<u8> = keep.iter().map(|&i| y[i]).collect();
                let rw: Vec<f64> = keep.iter().map(|&i| w[i]).collect();
                (rx, ry, rw)
            },
        )
    }

    fn name(&self) -> &'static str {
        "RUSBoost"
    }
}

/// SMOTEBoost configuration.
#[derive(Clone)]
pub struct SmoteBoost {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Weak learner (paper comparison: C4.5-style tree).
    pub base: SharedLearner,
    /// SMOTE neighborhood size.
    pub k: usize,
}

impl std::fmt::Debug for SmoteBoost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmoteBoost")
            .field("n_rounds", &self.n_rounds)
            .field("base", &self.base.name())
            .finish()
    }
}

impl SmoteBoost {
    /// SMOTEBoost with C4.5-style trees.
    pub fn new(n_rounds: usize) -> Self {
        Self {
            n_rounds,
            base: Arc::new(DecisionTreeConfig::c45(10)),
            k: 5,
        }
    }

    /// Total training samples consumed: the full set plus `|P|`
    /// synthetics per round (matches Table VI's accounting).
    pub fn samples_per_fit(&self, n_pos: usize, n_neg: usize) -> usize {
        (n_pos + n_neg + n_pos) * self.n_rounds
    }
}

impl Learner for SmoteBoost {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        debug_assert!(weights.is_none(), "SmoteBoost manages its own weights");
        check_fit_inputs(x, y, None);
        let n_pos_total = y.iter().filter(|&&l| l != 0).count();
        if n_pos_total == 0 || n_pos_total == y.len() {
            return Box::new(ConstantModel(if n_pos_total == 0 { 0.0 } else { 1.0 }));
        }
        let pos_idx: Vec<usize> = (0..y.len()).filter(|&i| y[i] != 0).collect();
        let pos_x = x.select_rows(&pos_idx);
        let k = self.k;
        let n = y.len();
        boost(
            self.base.as_ref(),
            self.n_rounds,
            x,
            y,
            seed,
            |w, round_seed, _rng| {
                // |P| fresh synthetics per round.
                let doubled = generate_synthetics(&pos_x, k, pos_idx.len(), round_seed);
                let rx = x.vstack(&doubled);
                let mut ry = y.to_vec();
                ry.extend(std::iter::repeat_n(1u8, doubled.rows()));
                let mut rw = w.to_vec();
                // Synthetics receive the average minority weight so they
                // influence the fit but not the boosting bookkeeping.
                let avg_pos_w: f64 =
                    pos_idx.iter().map(|&i| w[i]).sum::<f64>() / pos_idx.len() as f64;
                rw.extend(std::iter::repeat_n(
                    avg_pos_w.max(1.0 / n as f64),
                    doubled.rows(),
                ));
                (rx, ry, rw)
            },
        )
    }

    fn name(&self) -> &'static str {
        "SMOTEBoost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::Dataset;
    use spe_metrics::aucprc;

    fn imbalanced_overlap(n_pos: usize, n_neg: usize, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(n_pos + n_neg, 2);
        let mut y = Vec::new();
        for _ in 0..n_neg {
            x.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]);
            y.push(0);
        }
        for _ in 0..n_pos {
            x.push_row(&[rng.normal(1.5, 1.0), rng.normal(1.5, 1.0)]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn rusboost_learns_minority() {
        let train = imbalanced_overlap(30, 600, 1);
        let test = imbalanced_overlap(30, 600, 2);
        let m = RusBoost::new(10).fit(train.x(), train.y(), 3);
        let auc = aucprc(test.y(), &m.predict_proba(test.x()));
        assert!(auc > 0.25, "AUCPRC {auc}");
    }

    #[test]
    fn smoteboost_learns_minority() {
        let train = imbalanced_overlap(30, 600, 4);
        let test = imbalanced_overlap(30, 600, 5);
        let m = SmoteBoost::new(10).fit(train.x(), train.y(), 6);
        let auc = aucprc(test.y(), &m.predict_proba(test.x()));
        assert!(auc > 0.25, "AUCPRC {auc}");
    }

    #[test]
    fn generate_synthetics_produces_requested_count() {
        let d = imbalanced_overlap(20, 0, 7);
        let pos: Vec<usize> = (0..20).collect();
        let synth = generate_synthetics(&d.x().select_rows(&pos), 5, 15, 8);
        assert_eq!(synth.rows(), 15);
        for r in synth.iter_rows() {
            assert!(r.iter().all(|&v| v.abs() < 1e3));
        }
    }

    #[test]
    fn sample_accounting_matches_paper() {
        // Table VI, Credit Fraud: |P| = 316, train ≈ 170,885 samples.
        let sb = SmoteBoost::new(10);
        let total = sb.samples_per_fit(316, 170_885 - 316);
        assert_eq!(total, (170_885 + 316) * 10);
        let rb = RusBoost::new(10);
        assert_eq!(rb.samples_per_fit(316, 170_569), 6320);
    }

    #[test]
    fn single_class_degenerates() {
        let x = Matrix::zeros(4, 1);
        assert_eq!(
            RusBoost::new(3).fit(&x, &[0; 4], 0).predict_proba(&x),
            vec![0.0; 4]
        );
        assert_eq!(
            SmoteBoost::new(3).fit(&x, &[1; 4], 0).predict_proba(&x),
            vec![1.0; 4]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = imbalanced_overlap(15, 150, 9);
        let a = RusBoost::new(4).fit(d.x(), d.y(), 10).predict_proba(d.x());
        let b = RusBoost::new(4).fit(d.x(), d.y(), 10).predict_proba(d.x());
        assert_eq!(a, b);
    }
}
