//! Imbalance-ensemble baselines the paper compares SPE against.
//!
//! | Method | Strategy | Paper section |
//! |---|---|---|
//! | [`EasyEnsemble`] | RandUnder bags × AdaBoost members | §VI-A1 |
//! | [`BalanceCascade`] | RandUnder + iterative discard of well-classified majority | §VI-A1 |
//! | [`UnderBagging`] | RandUnder bags × any base learner | §VI-C2 |
//! | [`SmoteBagging`] | SMOTE-balanced bags with varying rate | §VI-C2 |
//! | [`RusBoost`] | RandUnder inside each AdaBoost round | §VI-C2 |
//! | [`SmoteBoost`] | SMOTE inside each AdaBoost round | §VI-C2 |
//!
//! All configs implement `spe_learners::Learner`, so every experiment
//! treats SPE and the baselines uniformly.

pub mod boosting;
pub mod cascade;
pub mod easy;

pub use boosting::{RusBoost, SmoteBoost};
pub use cascade::BalanceCascade;
pub use easy::{EasyEnsemble, SmoteBagging, UnderBagging};
