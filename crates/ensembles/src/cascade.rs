//! BalanceCascade (Liu, Wu & Zhou 2009).
//!
//! Like EasyEnsemble, each member trains on the full minority plus a
//! balanced random majority subset — but the majority *pool* shrinks
//! between iterations: after member `i` is trained, the majority samples
//! the current ensemble classifies most confidently as negative are
//! discarded, at a rate chosen so the pool reaches `|P|` by the last
//! iteration (`f = (|P|/|N|)^{1/(n−1)}`).
//!
//! The paper's critique (§III, §VI-A3/4) — Cascade over-focuses on
//! outliers in late iterations and overfits noisy data — is an emergent
//! property of exactly this discard rule, which the Fig. 5 experiment
//! reproduces.

use spe_data::{Dataset, Matrix, SeededRng};
use spe_learners::ensemble::SoftVoteEnsemble;
use spe_learners::traits::{check_fit_inputs, ConstantModel, Learner, Model, SharedLearner};
use spe_learners::DecisionTreeConfig;
use std::sync::Arc;

/// BalanceCascade configuration.
#[derive(Clone)]
pub struct BalanceCascade {
    /// Number of members `n`.
    pub n_estimators: usize,
    /// Base learner (paper default here: C4.5-style tree; the original
    /// paper used AdaBoost members).
    pub base: SharedLearner,
}

impl std::fmt::Debug for BalanceCascade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BalanceCascade")
            .field("n_estimators", &self.n_estimators)
            .field("base", &self.base.name())
            .finish()
    }
}

impl BalanceCascade {
    /// Cascade with C4.5-style tree members.
    pub fn new(n_estimators: usize) -> Self {
        Self {
            n_estimators,
            base: Arc::new(DecisionTreeConfig::c45(10)),
        }
    }

    /// Cascade over a custom base learner.
    pub fn with_base(n_estimators: usize, base: SharedLearner) -> Self {
        Self { n_estimators, base }
    }

    /// Total training samples consumed (`2·|P|` per member).
    pub fn samples_per_fit(&self, n_pos: usize, _n_neg: usize) -> usize {
        2 * n_pos * self.n_estimators
    }

    /// Trains the cascade, returning the ensemble with prefix-scoring
    /// support (used by the Fig. 5 training-curve experiment).
    pub fn fit_dataset(&self, data: &Dataset, seed: u64) -> SoftVoteEnsemble {
        assert!(self.n_estimators > 0, "need at least one member");
        let idx = data.class_index();
        assert!(
            !idx.minority.is_empty() && !idx.majority.is_empty(),
            "BalanceCascade requires both classes"
        );
        let n_pos = idx.minority.len();
        let mut rng = SeededRng::new(seed);

        let minority_x = data.x().select_rows(&idx.minority);
        let majority_x = data.x().select_rows(&idx.majority);

        // Remaining majority pool (positions into majority_x).
        let mut pool: Vec<usize> = (0..idx.majority.len()).collect();
        let n = self.n_estimators;
        // Pool shrink factor per iteration.
        let f = if n > 1 && pool.len() > n_pos {
            (n_pos as f64 / pool.len() as f64).powf(1.0 / (n as f64 - 1.0))
        } else {
            1.0
        };

        let mut models: Vec<Box<dyn Model>> = Vec::with_capacity(n);
        let mut pool_proba_sum: Vec<f64> = Vec::new();

        for i in 0..n {
            // Balanced subset from the current pool.
            let chosen = rng.sample_from(&pool, n_pos.min(pool.len()).max(1));
            let sub_x = minority_x.vstack(&majority_x.select_rows(&chosen));
            let mut sub_y = vec![1u8; n_pos];
            sub_y.extend(std::iter::repeat_n(0u8, chosen.len()));
            let model = self
                .base
                .fit(&sub_x, &sub_y, seed.wrapping_add(71 + i as u64));

            // Score the whole pool with the growing ensemble.
            let member_proba = model.predict_proba(&majority_x);
            if pool_proba_sum.is_empty() {
                pool_proba_sum = member_proba;
            } else {
                for (s, p) in pool_proba_sum.iter_mut().zip(member_proba) {
                    *s += p;
                }
            }
            models.push(model);

            if i + 1 == n {
                break;
            }
            // Discard the most confidently-negative majority samples so
            // the pool shrinks by factor f (but never below |P|).
            let target = ((pool.len() as f64) * f).round().max(n_pos as f64) as usize;
            if target < pool.len() {
                let k = models.len() as f64;
                pool.sort_by(|&a, &b| (pool_proba_sum[b] / k).total_cmp(&(pool_proba_sum[a] / k)));
                pool.truncate(target);
            }
        }
        SoftVoteEnsemble::new(models)
    }
}

impl Learner for BalanceCascade {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        debug_assert!(weights.is_none(), "BalanceCascade ignores sample weights");
        check_fit_inputs(x, y, None);
        let n_pos = y.iter().filter(|&&l| l != 0).count();
        if n_pos == 0 || n_pos == y.len() {
            return Box::new(ConstantModel(if n_pos == 0 { 0.0 } else { 1.0 }));
        }
        let data = Dataset::new(x.clone(), y.to_vec());
        Box::new(self.fit_dataset(&data, seed))
    }

    fn name(&self) -> &'static str {
        "Cascade"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_metrics::aucprc;

    fn imbalanced_overlap(n_pos: usize, n_neg: usize, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(n_pos + n_neg, 2);
        let mut y = Vec::new();
        for _ in 0..n_neg {
            x.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]);
            y.push(0);
        }
        for _ in 0..n_pos {
            x.push_row(&[rng.normal(1.5, 1.0), rng.normal(1.5, 1.0)]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn trains_n_members() {
        let d = imbalanced_overlap(20, 400, 1);
        let e = BalanceCascade::new(6).fit_dataset(&d, 2);
        assert_eq!(e.len(), 6);
    }

    #[test]
    fn learns_the_minority_region() {
        let train = imbalanced_overlap(30, 900, 107);
        let test = imbalanced_overlap(30, 900, 207);
        let m = BalanceCascade::new(10).fit(train.x(), train.y(), 307);
        let auc = aucprc(test.y(), &m.predict_proba(test.x()));
        assert!(auc > 0.3, "AUCPRC {auc}");
    }

    #[test]
    fn pool_never_starves_members() {
        // n larger than the shrink schedule would allow; members must
        // still train on >= 1 majority sample.
        let d = imbalanced_overlap(10, 40, 6);
        let e = BalanceCascade::new(12).fit_dataset(&d, 7);
        assert_eq!(e.len(), 12);
    }

    #[test]
    fn single_member_works() {
        let d = imbalanced_overlap(10, 100, 8);
        let e = BalanceCascade::new(1).fit_dataset(&d, 9);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn single_class_degenerates() {
        let x = Matrix::zeros(4, 1);
        let m = BalanceCascade::new(3).fit(&x, &[1; 4], 0);
        assert_eq!(m.predict_proba(&x), vec![1.0; 4]);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = imbalanced_overlap(15, 200, 10);
        let a = BalanceCascade::new(5)
            .fit(d.x(), d.y(), 11)
            .predict_proba(d.x());
        let b = BalanceCascade::new(5)
            .fit(d.x(), d.y(), 11)
            .predict_proba(d.x());
        assert_eq!(a, b);
    }
}
