//! Learner-trait conformance suite: every classifier in the crate must
//! satisfy the same behavioural contract, since SPE and the ensemble
//! baselines treat them interchangeably through `dyn Learner`.

use spe_data::{Matrix, SeededRng};
use spe_learners::traits::Learner;
use spe_learners::{
    AdaBoostConfig, BaggingConfig, DecisionTreeConfig, GaussianNbConfig, GbdtConfig, KnnConfig,
    LogisticRegressionConfig, MlpConfig, RandomForestConfig, SvmConfig,
};

fn all_learners() -> Vec<(&'static str, Box<dyn Learner>)> {
    vec![
        ("KNN", Box::new(KnnConfig::new(5))),
        ("DT", Box::new(DecisionTreeConfig::with_depth(6))),
        ("LR", Box::new(LogisticRegressionConfig::default())),
        ("SVM", Box::new(SvmConfig::rbf(100.0, 1.0))),
        ("SVM-linear", Box::new(SvmConfig::linear(10.0))),
        (
            "MLP",
            Box::new(MlpConfig {
                hidden: 8,
                epochs: 10,
                ..MlpConfig::default()
            }),
        ),
        ("AdaBoost", Box::new(AdaBoostConfig::new(5))),
        ("AdaBoost-stumps", Box::new(AdaBoostConfig::stumps(5))),
        ("Bagging", Box::new(BaggingConfig::new(5))),
        ("RF", Box::new(RandomForestConfig::new(5))),
        ("GBDT", Box::new(GbdtConfig::new(5))),
        ("GaussianNB", Box::new(GaussianNbConfig::default())),
    ]
}

/// Two separable Gaussian blobs.
fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<u8>) {
    let mut rng = SeededRng::new(seed);
    let mut x = Matrix::with_capacity(2 * n_per, 3);
    let mut y = Vec::new();
    for label in [0u8, 1] {
        let c = if label == 0 { -2.0 } else { 2.0 };
        for _ in 0..n_per {
            x.push_row(&[rng.normal(c, 0.8), rng.normal(0.0, 0.8), rng.normal(c, 0.8)]);
            y.push(label);
        }
    }
    (x, y)
}

#[test]
fn probabilities_stay_in_unit_interval() {
    let (x, y) = blobs(60, 1);
    // Probe points far outside the training range stress extrapolation.
    let probe = Matrix::from_vec(2, 3, vec![100.0, -100.0, 50.0, -100.0, 100.0, -50.0]);
    for (name, l) in all_learners() {
        let m = l.fit(&x, &y, 2);
        for p in m
            .predict_proba(&probe)
            .into_iter()
            .chain(m.predict_proba(&x))
        {
            assert!((0.0..=1.0).contains(&p), "{name}: probability {p}");
            assert!(p.is_finite(), "{name}: non-finite probability");
        }
    }
}

#[test]
fn separable_blobs_are_learned() {
    let (x, y) = blobs(100, 3);
    for (name, l) in all_learners() {
        let m = l.fit(&x, &y, 4);
        let acc =
            m.predict(&x).iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.9, "{name}: train accuracy {acc}");
    }
}

#[test]
fn deterministic_for_equal_seeds() {
    let (x, y) = blobs(40, 5);
    for (name, l) in all_learners() {
        let a = l.fit(&x, &y, 6).predict_proba(&x);
        let b = l.fit(&x, &y, 6).predict_proba(&x);
        assert_eq!(a, b, "{name} is not seed-deterministic");
    }
}

#[test]
fn single_class_training_yields_constant_model() {
    let x = Matrix::from_vec(6, 3, (0..18).map(f64::from).collect());
    for (name, l) in all_learners() {
        let neg = l.fit(&x, &[0; 6], 7);
        assert_eq!(neg.predict_proba(&x), vec![0.0; 6], "{name} all-negative");
        let pos = l.fit(&x, &[1; 6], 7);
        assert_eq!(pos.predict_proba(&x), vec![1.0; 6], "{name} all-positive");
    }
}

#[test]
fn zero_weight_samples_are_ignored() {
    // Mislabelled points with zero weight must not flip an otherwise
    // clean fit (KNN memorizes them as neighbors with zero vote — still
    // conformant as long as the clean points dominate).
    let (mut x, mut y) = blobs(50, 8);
    let mut w = vec![1.0; y.len()];
    let mut rng = SeededRng::new(9);
    for _ in 0..10 {
        // Poison: positive-labelled points deep in the negative cluster.
        x.push_row(&[rng.normal(-2.0, 0.1), 0.0, rng.normal(-2.0, 0.1)]);
        y.push(1);
        w.push(0.0);
    }
    let probe = Matrix::from_vec(1, 3, vec![-2.0, 0.0, -2.0]);
    for (name, l) in all_learners() {
        let m = l.fit_weighted(&x, &y, Some(&w), 10);
        let p = m.predict_proba(&probe)[0];
        assert!(
            p < 0.5,
            "{name}: poisoned zero-weight points leaked (p = {p})"
        );
    }
}

#[test]
fn weight_scale_invariance() {
    // Multiplying all weights by a constant must not change the model's
    // ranking (checked via predictions on the training set).
    let (x, y) = blobs(40, 11);
    let w1 = vec![1.0; y.len()];
    let w1000: Vec<f64> = w1.iter().map(|w| w * 1000.0).collect();
    for (name, l) in all_learners() {
        let a = l.fit_weighted(&x, &y, Some(&w1), 12).predict(&x);
        let b = l.fit_weighted(&x, &y, Some(&w1000), 12).predict(&x);
        let agree = a.iter().zip(&b).filter(|(p, q)| p == q).count() as f64 / y.len() as f64;
        assert!(
            agree > 0.95,
            "{name}: weight-scale changed {:.0}% of predictions",
            (1.0 - agree) * 100.0
        );
    }
}

#[test]
#[should_panic(expected = "length mismatch")]
fn mismatched_inputs_rejected() {
    let x = Matrix::zeros(3, 2);
    let _ = DecisionTreeConfig::default().fit(&x, &[0, 1], 0);
}
