//! Regression tree on gradient/hessian targets (GBDT building block).
//!
//! Split gain and leaf values follow the second-order formulation
//! (Newton boosting, as in LightGBM/XGBoost): for a node with gradient
//! sum G and hessian sum H, the leaf value is `-G / (H + λ)` and the
//! split gain is `G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)`.

use spe_data::Matrix;

/// Hyper-parameters for the gradient regression tree.
#[derive(Clone, Debug)]
pub struct RegTreeConfig {
    /// Maximum depth (root = 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// L2 regularization λ on leaf values.
    pub lambda: f64,
    /// Minimum gain to accept a split.
    pub min_gain: f64,
}

impl Default for RegTreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 3,
            min_samples_split: 2,
            min_samples_leaf: 1,
            lambda: 1.0,
            min_gain: 1e-12,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: u32,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// A fitted regression tree producing additive raw scores.
pub struct RegTree {
    nodes: Vec<Node>,
}

impl RegTree {
    /// Fits a tree to per-sample gradients and hessians.
    ///
    /// # Panics
    /// Panics on length mismatches or empty input.
    pub fn fit(x: &Matrix, grad: &[f64], hess: &[f64], cfg: &RegTreeConfig) -> Self {
        assert_eq!(x.rows(), grad.len(), "gradient length mismatch");
        assert_eq!(grad.len(), hess.len(), "hessian length mismatch");
        assert!(!grad.is_empty(), "cannot fit on empty data");
        let mut b = RegBuilder {
            x,
            grad,
            hess,
            cfg,
            nodes: Vec::new(),
            scratch: Vec::with_capacity(grad.len()),
        };
        let mut idx: Vec<usize> = (0..grad.len()).collect();
        let root = b.build(&mut idx, 0);
        debug_assert_eq!(root, 0);
        RegTree { nodes: b.nodes }
    }

    /// Raw additive score for one sample.
    #[inline]
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match self.nodes[i] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[feature as usize] <= threshold {
                        left as usize
                    } else {
                        right as usize
                    };
                }
            }
        }
    }

    /// Adds `eta * prediction` to the running scores, in place.
    pub fn add_scores(&self, x: &Matrix, eta: f64, scores: &mut [f64]) {
        debug_assert_eq!(x.rows(), scores.len());
        for (s, row) in scores.iter_mut().zip(x.iter_rows()) {
            *s += eta * self.predict_one(row);
        }
    }

    /// Node count (diagnostic).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

struct RegBuilder<'a> {
    x: &'a Matrix,
    grad: &'a [f64],
    hess: &'a [f64],
    cfg: &'a RegTreeConfig,
    nodes: Vec<Node>,
    scratch: Vec<(f64, f64, f64)>, // (value, grad, hess)
}

impl<'a> RegBuilder<'a> {
    fn leaf(&mut self, g: f64, h: f64) -> u32 {
        let value = -g / (h + self.cfg.lambda);
        self.nodes.push(Node::Leaf { value });
        (self.nodes.len() - 1) as u32
    }

    fn build(&mut self, idx: &mut [usize], depth: usize) -> u32 {
        let (g, h) = self.sums(idx);
        // Budget check: pending subtrees collapse to leaves once the
        // installed wall-clock deadline passes (still a valid tree).
        if depth >= self.cfg.max_depth
            || idx.len() < self.cfg.min_samples_split
            || (depth > 0 && spe_runtime::budget_exceeded())
        {
            return self.leaf(g, h);
        }
        let Some((feature, threshold)) = self.best_split(idx, g, h) else {
            return self.leaf(g, h);
        };
        let mid = crate::tree_util::partition(idx, |&i| self.x.get(i, feature) <= threshold);
        if mid == 0 || mid == idx.len() {
            return self.leaf(g, h);
        }
        self.nodes.push(Node::Leaf { value: 0.0 });
        let me = (self.nodes.len() - 1) as u32;
        let (li, ri) = idx.split_at_mut(mid);
        let left = self.build(li, depth + 1);
        let right = self.build(ri, depth + 1);
        self.nodes[me as usize] = Node::Split {
            feature: feature as u32,
            threshold,
            left,
            right,
        };
        me
    }

    fn sums(&self, idx: &[usize]) -> (f64, f64) {
        let mut g = 0.0;
        let mut h = 0.0;
        for &i in idx {
            g += self.grad[i];
            h += self.hess[i];
        }
        (g, h)
    }

    fn best_split(&mut self, idx: &[usize], g_all: f64, h_all: f64) -> Option<(usize, f64)> {
        let lambda = self.cfg.lambda;
        let parent_score = g_all * g_all / (h_all + lambda);
        let min_leaf = self.cfg.min_samples_leaf;
        let mut best_gain = self.cfg.min_gain;
        let mut best = None;
        for f in 0..self.x.cols() {
            self.scratch.clear();
            for &i in idx {
                self.scratch
                    .push((self.x.get(i, f), self.grad[i], self.hess[i]));
            }
            self.scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            let n = self.scratch.len();
            let mut g_l = 0.0;
            let mut h_l = 0.0;
            for s in 0..n - 1 {
                let (v, gi, hi) = self.scratch[s];
                g_l += gi;
                h_l += hi;
                let v_next = self.scratch[s + 1].0;
                if v == v_next {
                    continue;
                }
                let count_left = s + 1;
                if count_left < min_leaf || n - count_left < min_leaf {
                    continue;
                }
                let g_r = g_all - g_l;
                let h_r = h_all - h_l;
                let gain = g_l * g_l / (h_l + lambda) + g_r * g_r / (h_r + lambda) - parent_score;
                if gain > best_gain {
                    best_gain = gain;
                    best = Some((f, crate::tree_util::midpoint(v, v_next)));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Squared-loss fitting: grad = pred - target with pred = 0, hess = 1
    /// turns leaf values into (regularized) target means.
    fn fit_mean(x: &Matrix, targets: &[f64], cfg: &RegTreeConfig) -> RegTree {
        let grad: Vec<f64> = targets.iter().map(|t| -t).collect();
        let hess = vec![1.0; targets.len()];
        RegTree::fit(x, &grad, &hess, cfg)
    }

    #[test]
    fn fits_step_function() {
        let x = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let t = vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let cfg = RegTreeConfig {
            lambda: 0.0,
            ..RegTreeConfig::default()
        };
        let tree = fit_mean(&x, &t, &cfg);
        assert!((tree.predict_one(&[1.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict_one(&[11.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn lambda_shrinks_leaf_values() {
        let x = Matrix::from_vec(2, 1, vec![0.0, 10.0]);
        let t = vec![4.0, 4.0];
        let tree = fit_mean(
            &x,
            &t,
            &RegTreeConfig {
                lambda: 2.0,
                max_depth: 0,
                ..RegTreeConfig::default()
            },
        );
        // Leaf value = sum(t) / (n + lambda) = 8 / 4.
        assert!((tree.predict_one(&[0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn depth_zero_is_a_single_leaf() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let t = vec![0.0, 0.0, 10.0, 10.0];
        let cfg = RegTreeConfig {
            max_depth: 0,
            lambda: 0.0,
            ..RegTreeConfig::default()
        };
        let tree = fit_mean(&x, &t, &cfg);
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict_one(&[0.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn add_scores_accumulates() {
        let x = Matrix::from_vec(2, 1, vec![0.0, 10.0]);
        let t = vec![2.0, 6.0];
        let cfg = RegTreeConfig {
            lambda: 0.0,
            ..RegTreeConfig::default()
        };
        let tree = fit_mean(&x, &t, &cfg);
        let mut scores = vec![1.0, 1.0];
        tree.add_scores(&x, 0.5, &mut scores);
        assert!((scores[0] - 2.0).abs() < 1e-9);
        assert!((scores[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let t = vec![10.0, 0.0, 0.0, 0.0];
        let cfg = RegTreeConfig {
            min_samples_leaf: 2,
            lambda: 0.0,
            ..RegTreeConfig::default()
        };
        let tree = fit_mean(&x, &t, &cfg);
        // The outlier at x=0 cannot be isolated; its leaf mean is 5.
        assert!((tree.predict_one(&[0.0]) - 5.0).abs() < 1e-9);
    }
}
