//! Regression tree on gradient/hessian targets (GBDT building block).
//!
//! Split gain and leaf values follow the second-order formulation
//! (Newton boosting, as in LightGBM/XGBoost): for a node with gradient
//! sum G and hessian sum H, the leaf value is `-G / (H + λ)` and the
//! split gain is `G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)`.
//!
//! Two split engines exist, mirroring the classification tree: the
//! exact sort-and-scan path ([`RegTree::fit`]) and a histogram path
//! ([`RegTree::fit_binned`]) over a pre-built [`BinIndex`] — GBDT bins
//! its training matrix once and reuses the index for every boosting
//! round, with sibling histograms derived by parent−child subtraction.

use crate::histogram::{self, BinStat, HistLayout};
use spe_data::{BinIndex, Matrix, MatrixView};

/// Hyper-parameters for the gradient regression tree.
#[derive(Clone, Debug)]
pub struct RegTreeConfig {
    /// Maximum depth (root = 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// L2 regularization λ on leaf values.
    pub lambda: f64,
    /// Minimum gain to accept a split.
    pub min_gain: f64,
}

impl Default for RegTreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 3,
            min_samples_split: 2,
            min_samples_leaf: 1,
            lambda: 1.0,
            min_gain: 1e-12,
        }
    }
}

/// Sentinel feature id marking a leaf node.
const LEAF: u32 = u32::MAX;

/// One arena node; `feature == LEAF` makes `value` the leaf score,
/// otherwise `value` is the split threshold (`<=` goes left).
#[derive(Clone, Copy, Debug)]
struct FlatNode {
    feature: u32,
    left: u32,
    right: u32,
    value: f64,
}

serde::impl_serde!(FlatNode {
    feature,
    left,
    right,
    value
});

impl FlatNode {
    #[inline]
    fn leaf(value: f64) -> Self {
        Self {
            feature: LEAF,
            left: 0,
            right: 0,
            value,
        }
    }
}

/// A fitted regression tree producing additive raw scores.
#[derive(Clone)]
pub struct RegTree {
    nodes: Vec<FlatNode>,
}

impl serde::Serialize for RegTree {
    fn serialize(&self, w: &mut serde::Writer) {
        serde::Serialize::serialize(&self.nodes, w);
    }
}

impl serde::Deserialize for RegTree {
    /// Decodes with the same parent-before-child arena validation as
    /// [`crate::tree::TreeModel`], so a decoded tree cannot loop or
    /// escape the arena while scoring.
    fn deserialize(r: &mut serde::Reader<'_>) -> Result<Self, serde::DecodeError> {
        let nodes = <Vec<FlatNode> as serde::Deserialize>::deserialize(r)?;
        if nodes.is_empty() {
            return Err(serde::DecodeError::Invalid("empty tree arena".into()));
        }
        let n = nodes.len() as u32;
        for (i, node) in nodes.iter().enumerate() {
            if node.feature == LEAF {
                continue;
            }
            let i = i as u32;
            if node.left <= i || node.right <= i || node.left >= n || node.right >= n {
                return Err(serde::DecodeError::Invalid(format!(
                    "tree node {i} has out-of-order children ({}, {})",
                    node.left, node.right
                )));
            }
        }
        Ok(Self { nodes })
    }
}

impl RegTree {
    /// Smallest row width this tree can score: one past the highest
    /// feature index it splits on (0 for a single-leaf tree).
    pub fn required_features(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.feature != LEAF)
            .map(|n| n.feature as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Fits a tree to per-sample gradients and hessians (exact splits).
    ///
    /// # Panics
    /// Panics on length mismatches or empty input.
    pub fn fit(x: &Matrix, grad: &[f64], hess: &[f64], cfg: &RegTreeConfig) -> Self {
        assert_eq!(x.rows(), grad.len(), "gradient length mismatch");
        assert_eq!(grad.len(), hess.len(), "hessian length mismatch");
        assert!(!grad.is_empty(), "cannot fit on empty data");
        let nodes = crate::tree::with_scratch(|scratch| {
            let mut b = RegBuilder {
                x,
                grad,
                hess,
                cfg,
                nodes: Vec::new(),
                scratch: &mut scratch.sorted,
            };
            scratch.idx.clear();
            scratch.idx.extend(0..grad.len());
            let root = b.build(&mut scratch.idx, 0);
            debug_assert_eq!(root, 0);
            b.nodes
        });
        RegTree { nodes }
    }

    /// Fits a tree on all rows of a pre-built bin index (histogram
    /// splits). `grad`/`hess` are indexed by bin-index row id.
    ///
    /// # Panics
    /// Panics on length mismatches or an empty index.
    pub fn fit_binned(bins: &BinIndex, grad: &[f64], hess: &[f64], cfg: &RegTreeConfig) -> Self {
        assert_eq!(bins.n_rows(), grad.len(), "gradient length mismatch");
        assert_eq!(grad.len(), hess.len(), "hessian length mismatch");
        assert!(!grad.is_empty(), "cannot fit on empty data");
        let nodes = crate::tree::with_scratch(|scratch| {
            scratch.rows.clear();
            scratch.rows.extend(0..grad.len() as u32);
            let mut b = RegHistBuilder {
                bins,
                grad,
                hess,
                cfg,
                layout: HistLayout::new(bins),
                nodes: Vec::new(),
                pool: &mut scratch.hist_pool,
            };
            let root = b.build(&mut scratch.rows, 0, None);
            debug_assert_eq!(root, 0);
            b.nodes
        });
        RegTree { nodes }
    }

    /// Raw additive score for one sample.
    #[inline]
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            let n = self.nodes[i];
            if n.feature == LEAF {
                return n.value;
            }
            i = if row[n.feature as usize] <= n.value {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    }

    /// Adds `eta * prediction` to the running scores, in place.
    pub fn add_scores(&self, x: &Matrix, eta: f64, scores: &mut [f64]) {
        self.add_scores_view(x.view(), eta, scores);
    }

    /// [`RegTree::add_scores`] over a borrowed row view.
    pub fn add_scores_view(&self, x: MatrixView<'_>, eta: f64, scores: &mut [f64]) {
        debug_assert_eq!(x.rows(), scores.len());
        for (s, row) in scores.iter_mut().zip(x.iter_rows()) {
            *s += eta * self.predict_one(row);
        }
    }

    /// Node count (diagnostic).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Read-only view of arena node `i` (root at 0), in the same shape
    /// classification trees expose — `value` here is the leaf weight.
    ///
    /// # Panics
    /// Panics if `i >= self.n_nodes()`.
    pub fn node(&self, i: usize) -> crate::tree::NodeView {
        let n = self.nodes[i];
        if n.feature == LEAF {
            crate::tree::NodeView::Leaf { value: n.value }
        } else {
            crate::tree::NodeView::Split {
                feature: n.feature as usize,
                threshold: n.value,
                left: n.left as usize,
                right: n.right as usize,
            }
        }
    }
}

struct RegBuilder<'a> {
    x: &'a Matrix,
    grad: &'a [f64],
    hess: &'a [f64],
    cfg: &'a RegTreeConfig,
    nodes: Vec<FlatNode>,
    scratch: &'a mut Vec<(f64, f64, f64)>, // (value, grad, hess)
}

impl<'a> RegBuilder<'a> {
    fn leaf(&mut self, g: f64, h: f64) -> u32 {
        let value = -g / (h + self.cfg.lambda);
        self.nodes.push(FlatNode::leaf(value));
        (self.nodes.len() - 1) as u32
    }

    fn build(&mut self, idx: &mut [usize], depth: usize) -> u32 {
        let (g, h) = self.sums(idx);
        // Budget check: pending subtrees collapse to leaves once the
        // installed wall-clock deadline passes (still a valid tree).
        if depth >= self.cfg.max_depth
            || idx.len() < self.cfg.min_samples_split
            || (depth > 0 && spe_runtime::budget_exceeded())
        {
            return self.leaf(g, h);
        }
        let Some((feature, threshold)) = self.best_split(idx, g, h) else {
            return self.leaf(g, h);
        };
        let mid = crate::tree_util::partition(idx, |&i| self.x.get(i, feature) <= threshold);
        if mid == 0 || mid == idx.len() {
            return self.leaf(g, h);
        }
        self.nodes.push(FlatNode::leaf(0.0));
        let me = (self.nodes.len() - 1) as u32;
        let (li, ri) = idx.split_at_mut(mid);
        let left = self.build(li, depth + 1);
        let right = self.build(ri, depth + 1);
        self.nodes[me as usize] = FlatNode {
            feature: feature as u32,
            left,
            right,
            value: threshold,
        };
        me
    }

    fn sums(&self, idx: &[usize]) -> (f64, f64) {
        let mut g = 0.0;
        let mut h = 0.0;
        for &i in idx {
            g += self.grad[i];
            h += self.hess[i];
        }
        (g, h)
    }

    fn best_split(&mut self, idx: &[usize], g_all: f64, h_all: f64) -> Option<(usize, f64)> {
        let lambda = self.cfg.lambda;
        let parent_score = g_all * g_all / (h_all + lambda);
        let min_leaf = self.cfg.min_samples_leaf;
        let mut best_gain = self.cfg.min_gain;
        let mut best = None;
        for f in 0..self.x.cols() {
            self.scratch.clear();
            for &i in idx {
                self.scratch
                    .push((self.x.get(i, f), self.grad[i], self.hess[i]));
            }
            self.scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            let n = self.scratch.len();
            let mut g_l = 0.0;
            let mut h_l = 0.0;
            for s in 0..n - 1 {
                let (v, gi, hi) = self.scratch[s];
                g_l += gi;
                h_l += hi;
                let v_next = self.scratch[s + 1].0;
                if v == v_next {
                    continue;
                }
                let count_left = s + 1;
                if count_left < min_leaf || n - count_left < min_leaf {
                    continue;
                }
                let g_r = g_all - g_l;
                let h_r = h_all - h_l;
                let gain = g_l * g_l / (h_l + lambda) + g_r * g_r / (h_r + lambda) - parent_score;
                if gain > best_gain {
                    best_gain = gain;
                    best = Some((f, crate::tree_util::midpoint(v, v_next)));
                }
            }
        }
        best
    }
}

/// Histogram-path builder: bins hold (gradient, hessian, count) sums.
/// The regression tree never sub-samples features, so sibling
/// subtraction is always valid.
struct RegHistBuilder<'a> {
    bins: &'a BinIndex,
    grad: &'a [f64],
    hess: &'a [f64],
    cfg: &'a RegTreeConfig,
    layout: HistLayout,
    nodes: Vec<FlatNode>,
    pool: &'a mut Vec<Vec<BinStat>>,
}

impl<'a> RegHistBuilder<'a> {
    fn alloc_hist(&mut self) -> Vec<BinStat> {
        let mut h = self.pool.pop().unwrap_or_default();
        h.resize(self.layout.total(), BinStat::default());
        h
    }

    fn free_hist(&mut self, h: Vec<BinStat>) {
        self.pool.push(h);
    }

    fn leaf(&mut self, g: f64, h: f64) -> u32 {
        let value = -g / (h + self.cfg.lambda);
        self.nodes.push(FlatNode::leaf(value));
        (self.nodes.len() - 1) as u32
    }

    fn surely_leaf(&self, depth: usize, n: usize) -> bool {
        depth >= self.cfg.max_depth || n < self.cfg.min_samples_split
    }

    fn build(&mut self, rows: &mut [u32], depth: usize, hist_in: Option<Vec<BinStat>>) -> u32 {
        let mut g = 0.0;
        let mut h = 0.0;
        for &r in rows.iter() {
            g += self.grad[r as usize];
            h += self.hess[r as usize];
        }
        if depth >= self.cfg.max_depth
            || rows.len() < self.cfg.min_samples_split
            || (depth > 0 && spe_runtime::budget_exceeded())
        {
            if let Some(hist) = hist_in {
                self.free_hist(hist);
            }
            return self.leaf(g, h);
        }

        let hist = match hist_in {
            Some(hb) => hb,
            None => {
                let mut hb = self.alloc_hist();
                histogram::accumulate(self.bins, rows, self.grad, self.hess, &self.layout, &mut hb);
                hb
            }
        };
        let Some((feature, bin)) = self.best_split(&hist, rows.len(), g, h) else {
            self.free_hist(hist);
            return self.leaf(g, h);
        };

        let codes = self.bins.feature_codes(feature);
        let split_bin = bin as u8;
        let mid = crate::tree_util::partition(rows, |&r| codes[r as usize] <= split_bin);
        if mid == 0 || mid == rows.len() {
            self.free_hist(hist);
            return self.leaf(g, h);
        }

        self.nodes.push(FlatNode::leaf(0.0));
        let me = (self.nodes.len() - 1) as u32;
        let (lrows, rrows) = rows.split_at_mut(mid);

        let need_children =
            !self.surely_leaf(depth + 1, lrows.len()) || !self.surely_leaf(depth + 1, rrows.len());
        let (lh, rh) = if need_children {
            let mut parent = hist;
            let mut child = self.alloc_hist();
            let (small, child_is_left) = if lrows.len() <= rrows.len() {
                (&*lrows, true)
            } else {
                (&*rrows, false)
            };
            histogram::accumulate(
                self.bins,
                small,
                self.grad,
                self.hess,
                &self.layout,
                &mut child,
            );
            histogram::subtract(&mut parent, &child);
            if child_is_left {
                (Some(child), Some(parent))
            } else {
                (Some(parent), Some(child))
            }
        } else {
            self.free_hist(hist);
            (None, None)
        };

        let left = self.build(lrows, depth + 1, lh);
        let right = self.build(rrows, depth + 1, rh);
        self.nodes[me as usize] = FlatNode {
            feature: feature as u32,
            left,
            right,
            value: self.bins.cut(feature, bin),
        };
        me
    }

    fn best_split(
        &self,
        hist: &[BinStat],
        n_node: usize,
        g_all: f64,
        h_all: f64,
    ) -> Option<(usize, usize)> {
        let lambda = self.cfg.lambda;
        let parent_score = g_all * g_all / (h_all + lambda);
        let min_leaf = self.cfg.min_samples_leaf;
        let mut best_gain = self.cfg.min_gain;
        let mut best = None;
        for f in 0..self.bins.n_features() {
            let stats = &hist[self.layout.feature_range(f)];
            let mut g_l = 0.0;
            let mut h_l = 0.0;
            let mut n_left = 0usize;
            for (b, s) in stats.iter().enumerate().take(stats.len().saturating_sub(1)) {
                g_l += s.a;
                h_l += s.b;
                n_left += s.n as usize;
                let n_right = n_node - n_left;
                if n_left == 0 || n_right == 0 {
                    continue;
                }
                if n_left < min_leaf || n_right < min_leaf {
                    continue;
                }
                let g_r = g_all - g_l;
                let h_r = h_all - h_l;
                let gain = g_l * g_l / (h_l + lambda) + g_r * g_r / (h_r + lambda) - parent_score;
                if gain > best_gain {
                    best_gain = gain;
                    best = Some((f, b));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Squared-loss fitting: grad = pred - target with pred = 0, hess = 1
    /// turns leaf values into (regularized) target means.
    fn fit_mean(x: &Matrix, targets: &[f64], cfg: &RegTreeConfig) -> RegTree {
        let grad: Vec<f64> = targets.iter().map(|t| -t).collect();
        let hess = vec![1.0; targets.len()];
        RegTree::fit(x, &grad, &hess, cfg)
    }

    fn fit_mean_binned(x: &Matrix, targets: &[f64], cfg: &RegTreeConfig) -> RegTree {
        let grad: Vec<f64> = targets.iter().map(|t| -t).collect();
        let hess = vec![1.0; targets.len()];
        let bins = BinIndex::build(x, 64);
        RegTree::fit_binned(&bins, &grad, &hess, cfg)
    }

    #[test]
    fn fits_step_function() {
        let x = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let t = vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let cfg = RegTreeConfig {
            lambda: 0.0,
            ..RegTreeConfig::default()
        };
        let tree = fit_mean(&x, &t, &cfg);
        assert!((tree.predict_one(&[1.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict_one(&[11.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn lambda_shrinks_leaf_values() {
        let x = Matrix::from_vec(2, 1, vec![0.0, 10.0]);
        let t = vec![4.0, 4.0];
        let tree = fit_mean(
            &x,
            &t,
            &RegTreeConfig {
                lambda: 2.0,
                max_depth: 0,
                ..RegTreeConfig::default()
            },
        );
        // Leaf value = sum(t) / (n + lambda) = 8 / 4.
        assert!((tree.predict_one(&[0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn depth_zero_is_a_single_leaf() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let t = vec![0.0, 0.0, 10.0, 10.0];
        let cfg = RegTreeConfig {
            max_depth: 0,
            lambda: 0.0,
            ..RegTreeConfig::default()
        };
        let tree = fit_mean(&x, &t, &cfg);
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict_one(&[0.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn add_scores_accumulates() {
        let x = Matrix::from_vec(2, 1, vec![0.0, 10.0]);
        let t = vec![2.0, 6.0];
        let cfg = RegTreeConfig {
            lambda: 0.0,
            ..RegTreeConfig::default()
        };
        let tree = fit_mean(&x, &t, &cfg);
        let mut scores = vec![1.0, 1.0];
        tree.add_scores(&x, 0.5, &mut scores);
        assert!((scores[0] - 2.0).abs() < 1e-9);
        assert!((scores[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let t = vec![10.0, 0.0, 0.0, 0.0];
        let cfg = RegTreeConfig {
            min_samples_leaf: 2,
            lambda: 0.0,
            ..RegTreeConfig::default()
        };
        let tree = fit_mean(&x, &t, &cfg);
        // The outlier at x=0 cannot be isolated; its leaf mean is 5.
        assert!((tree.predict_one(&[0.0]) - 5.0).abs() < 1e-9);
    }

    // ---- histogram engine ----

    #[test]
    fn binned_fits_step_function() {
        let x = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let t = vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let cfg = RegTreeConfig {
            lambda: 0.0,
            ..RegTreeConfig::default()
        };
        let tree = fit_mean_binned(&x, &t, &cfg);
        assert!((tree.predict_one(&[1.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict_one(&[11.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn binned_matches_exact_on_low_cardinality_data() {
        use spe_data::SeededRng;
        let mut rng = SeededRng::new(5);
        let n = 300;
        let mut x = Matrix::with_capacity(n, 2);
        let mut t = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.below(10) as f64;
            let b = rng.below(10) as f64;
            t.push(a * 2.0 + b);
            x.push_row(&[a, b]);
        }
        let cfg = RegTreeConfig {
            max_depth: 4,
            lambda: 0.0,
            ..RegTreeConfig::default()
        };
        let exact = fit_mean(&x, &t, &cfg);
        let binned = fit_mean_binned(&x, &t, &cfg);
        for row in x.iter_rows() {
            let a = exact.predict_one(row);
            let b = binned.predict_one(row);
            assert!((a - b).abs() < 1e-9, "exact {a} vs binned {b}");
        }
    }

    #[test]
    fn binned_min_samples_leaf_enforced() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let t = vec![10.0, 0.0, 0.0, 0.0];
        let grad: Vec<f64> = t.iter().map(|v| -v).collect();
        let hess = vec![1.0; 4];
        let cfg = RegTreeConfig {
            min_samples_leaf: 2,
            lambda: 0.0,
            ..RegTreeConfig::default()
        };
        let bins = BinIndex::build(&x, 8);
        let tree = RegTree::fit_binned(&bins, &grad, &hess, &cfg);
        assert!((tree.predict_one(&[0.0]) - 5.0).abs() < 1e-9);
    }
}
