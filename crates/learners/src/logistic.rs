//! Logistic regression via mini-batch SGD with momentum.
//!
//! Used standalone in Table V ("LR") and as the Platt-style probability
//! calibrator for the SVM. Features are standardized internally (fit on
//! the training data), so raw, arbitrarily-scaled inputs are fine.

use crate::persist::ModelSnapshot;
use crate::traits::{
    check_fit_inputs, effective_weights, weighted_positive_fraction, ConstantModel, FeatureBound,
    Learner, Model,
};
use spe_data::{Matrix, MatrixView, SeededRng, Standardizer};

/// Numerically-stable logistic sigmoid.
///
/// Public so downstream scoring paths (the serving-side quantized
/// kernel) can replay GBDT's exact link function bit-for-bit.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Logistic-regression hyper-parameters.
#[derive(Clone, Debug)]
pub struct LogisticRegressionConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            momentum: 0.9,
            l2: 1e-4,
            epochs: 40,
            batch_size: 256,
        }
    }
}

/// A trained logistic-regression model (standardizer + linear weights).
/// Public so persisted models can name the type; all state stays
/// private.
#[derive(Clone)]
pub struct LogisticModel {
    scaler: Standardizer,
    weights: Vec<f64>,
    bias: f64,
}

serde::impl_serde!(LogisticModel {
    scaler,
    weights,
    bias
});

impl LogisticModel {
    fn raw_score(&self, row_std: &[f64]) -> f64 {
        let mut z = self.bias;
        for (&w, &v) in self.weights.iter().zip(row_std) {
            z += w * v;
        }
        z
    }
}

impl Model for LogisticModel {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        let mut buf = Vec::with_capacity(x.cols());
        x.iter_rows()
            .map(|r| {
                self.scaler.transform_row_into(r, &mut buf);
                sigmoid(self.raw_score(&buf))
            })
            .collect()
    }

    fn snapshot(&self) -> Option<ModelSnapshot> {
        Some(ModelSnapshot::Logistic(self.clone()))
    }

    fn feature_bound(&self) -> FeatureBound {
        FeatureBound::Exact(self.weights.len())
    }
}

impl Learner for LogisticRegressionConfig {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        check_fit_inputs(x, y, weights);
        let w_samp = effective_weights(y.len(), weights);
        let prior = weighted_positive_fraction(y, &w_samp);
        if prior == 0.0 || prior == 1.0 {
            return Box::new(ConstantModel(prior));
        }

        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let n = y.len();
        let d = x.cols();
        // Normalize sample weights to mean 1 so the learning rate is
        // insensitive to the weight scale.
        let w_mean: f64 = w_samp.iter().sum::<f64>() / n as f64;
        let w_norm: Vec<f64> = w_samp.iter().map(|&w| w / w_mean).collect();

        let mut rng = SeededRng::new(seed);
        let mut weights_v = vec![0.0; d];
        let mut bias = (prior / (1.0 - prior)).ln();
        let mut vel = vec![0.0; d + 1];
        let mut order: Vec<usize> = (0..n).collect();
        let mut grad = vec![0.0; d + 1];

        for epoch in 0..self.epochs {
            // Cooperative budget: a partially-trained linear model is
            // still usable, so stop between epochs once time is up.
            if epoch > 0 && spe_runtime::budget_exceeded() {
                break;
            }
            rng.shuffle(&mut order);
            for batch in order.chunks(self.batch_size.max(1)) {
                grad.iter_mut().for_each(|g| *g = 0.0);
                let mut w_batch = 0.0;
                for &i in batch {
                    let row = xs.row(i);
                    let mut z = bias;
                    for (&wv, &v) in weights_v.iter().zip(row) {
                        z += wv * v;
                    }
                    let err = (sigmoid(z) - f64::from(y[i])) * w_norm[i];
                    for (g, &v) in grad.iter_mut().zip(row) {
                        *g += err * v;
                    }
                    grad[d] += err;
                    w_batch += w_norm[i];
                }
                if w_batch == 0.0 {
                    continue;
                }
                let inv = 1.0 / w_batch;
                for j in 0..d {
                    let g = grad[j] * inv + self.l2 * weights_v[j];
                    vel[j] = self.momentum * vel[j] - self.learning_rate * g;
                    weights_v[j] += vel[j];
                }
                vel[d] = self.momentum * vel[d] - self.learning_rate * grad[d] * inv;
                bias += vel[d];
            }
        }

        Box::new(LogisticModel {
            scaler,
            weights: weights_v,
            bias,
        })
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::SeededRng;

    fn gaussian_blobs(n_per: usize, sep: f64, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(2 * n_per, 2);
        let mut y = Vec::new();
        for label in [0u8, 1u8] {
            let cx = if label == 0 { -sep } else { sep };
            for _ in 0..n_per {
                x.push_row(&[rng.normal(cx, 1.0), rng.normal(0.0, 1.0)]);
                y.push(label);
            }
        }
        (x, y)
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-12);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn separates_gaussian_blobs() {
        let (x, y) = gaussian_blobs(200, 3.0, 1);
        let m = LogisticRegressionConfig::default().fit(&x, &y, 2);
        let preds = m.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_ordered_along_axis() {
        let (x, y) = gaussian_blobs(200, 2.0, 3);
        let m = LogisticRegressionConfig::default().fit(&x, &y, 4);
        let test = Matrix::from_vec(3, 2, vec![-4.0, 0.0, 0.0, 0.0, 4.0, 0.0]);
        let p = m.predict_proba(&test);
        assert!(p[0] < p[1] && p[1] < p[2], "{p:?}");
    }

    #[test]
    fn single_class_degenerates_to_constant() {
        let x = Matrix::from_vec(3, 2, vec![0.0; 6]);
        let m = LogisticRegressionConfig::default().fit(&x, &[1, 1, 1], 0);
        assert_eq!(m.predict_proba(&x), vec![1.0; 3]);
    }

    #[test]
    fn sample_weights_shift_decision() {
        // Overlapping clusters; massively up-weight positives and the
        // boundary should move toward predicting positive.
        let (x, y) = gaussian_blobs(200, 0.7, 5);
        let w: Vec<f64> = y.iter().map(|&l| if l == 1 { 20.0 } else { 1.0 }).collect();
        let unweighted = LogisticRegressionConfig::default().fit(&x, &y, 6);
        let weighted = LogisticRegressionConfig::default().fit_weighted(&x, &y, Some(&w), 6);
        let pos_rate = |m: &dyn Model| {
            m.predict(&x).iter().map(|&p| p as usize).sum::<usize>() as f64 / y.len() as f64
        };
        assert!(pos_rate(weighted.as_ref()) > pos_rate(unweighted.as_ref()) + 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = gaussian_blobs(50, 1.0, 7);
        let a = LogisticRegressionConfig::default()
            .fit(&x, &y, 9)
            .predict_proba(&x);
        let b = LogisticRegressionConfig::default()
            .fit(&x, &y, 9)
            .predict_proba(&x);
        assert_eq!(a, b);
    }
}
