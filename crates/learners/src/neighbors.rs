//! Brute-force k-nearest-neighbor search.
//!
//! Shared kernel between the KNN classifier and every distance-based
//! re-sampler in `spe-sampling` (NearMiss, ENN, TomekLink, SMOTE, ...).
//! Queries fan out across the shared `spe-runtime` pool in contiguous
//! chunks; each query is an O(n·d) scan with a bounded max-heap of size
//! k, so total work is O(q·n·d + q·n·log k). The paper's complaint about
//! distance-based methods — quadratic cost in the dataset size — is this
//! kernel run with q = n; Table V's timing column reproduces exactly
//! that behaviour.

use spe_data::matrix::squared_distance;
use spe_data::Matrix;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A neighbor hit: index into the reference set plus squared distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Row index in the reference matrix.
    pub index: usize,
    /// Squared Euclidean distance to the query.
    pub dist_sq: f64,
}

/// Max-heap entry ordered by distance (largest on top, so it can be
/// evicted when a closer point arrives).
#[derive(PartialEq)]
struct HeapEntry(Neighbor);

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .dist_sq
            .total_cmp(&other.0.dist_sq)
            .then_with(|| self.0.index.cmp(&other.0.index))
    }
}

/// Finds the `k` nearest rows of `reference` for one `query` point.
///
/// Results are sorted by ascending distance (ties broken by index).
/// `exclude` optionally removes one reference row — used for
/// leave-one-out queries where the query itself lives in the reference
/// set (ENN, TomekLink, SMOTE all need this).
pub fn knn_query(
    reference: &Matrix,
    query: &[f64],
    k: usize,
    exclude: Option<usize>,
) -> Vec<Neighbor> {
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for (i, row) in reference.iter_rows().enumerate() {
        if exclude == Some(i) {
            continue;
        }
        let d = squared_distance(query, row);
        if heap.len() < k {
            heap.push(HeapEntry(Neighbor {
                index: i,
                dist_sq: d,
            }));
        } else if let Some(top) = heap.peek() {
            if d < top.0.dist_sq {
                heap.pop();
                heap.push(HeapEntry(Neighbor {
                    index: i,
                    dist_sq: d,
                }));
            }
        }
    }
    let mut out: Vec<Neighbor> = heap.into_iter().map(|e| e.0).collect();
    out.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq).then(a.index.cmp(&b.index)));
    out
}

/// k-NN search for a batch of queries, parallelized across the shared
/// runtime pool.
///
/// Returns one neighbor list per query row. With `leave_one_out` set,
/// query row `i` excludes reference row `i` (the matrices must then be
/// the same object or at least aligned). Each query's result depends
/// only on that query, so the batch output is identical for every
/// thread count.
pub fn knn_batch(
    reference: &Matrix,
    queries: &Matrix,
    k: usize,
    leave_one_out: bool,
) -> Vec<Vec<Neighbor>> {
    knn_batch_view(reference, queries.view(), k, leave_one_out)
}

/// [`knn_batch`] over a borrowed query view — lets chunked batch
/// predictors query without materializing per-chunk matrices.
pub fn knn_batch_view(
    reference: &Matrix,
    queries: spe_data::MatrixView<'_>,
    k: usize,
    leave_one_out: bool,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(
        reference.cols(),
        queries.cols(),
        "reference/query dimensionality mismatch"
    );
    let chunks = spe_runtime::par_chunks(queries.rows(), 64, |range| {
        range
            .map(|i| {
                let excl = leave_one_out.then_some(i);
                knn_query(reference, queries.row(i), k, excl)
            })
            .collect::<Vec<Vec<Neighbor>>>()
    });
    chunks.into_iter().flatten().collect()
}

/// Number of worker threads available for data-parallel loops (the
/// shared runtime's effective parallelism for this thread).
pub fn num_threads() -> usize {
    spe_runtime::current_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::SeededRng;

    fn grid() -> Matrix {
        // Points at x = 0, 1, 2, ..., 9 on a line.
        Matrix::from_vec(10, 1, (0..10).map(|i| i as f64).collect())
    }

    #[test]
    fn finds_nearest_sorted() {
        let r = grid();
        let hits = knn_query(&r, &[3.2], 3, None);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].index, 3);
        assert_eq!(hits[1].index, 4);
        assert_eq!(hits[2].index, 2);
        assert!(hits[0].dist_sq <= hits[1].dist_sq);
    }

    #[test]
    fn exclude_removes_self() {
        let r = grid();
        let hits = knn_query(&r, r.row(5), 2, Some(5));
        assert!(hits.iter().all(|h| h.index != 5));
        assert_eq!(hits[0].index, 4); // tie with 6 broken by index
        assert_eq!(hits[1].index, 6);
    }

    #[test]
    fn k_larger_than_reference_returns_all() {
        let r = grid();
        let hits = knn_query(&r, &[0.0], 50, None);
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn batch_matches_single_queries() {
        let mut rng = SeededRng::new(1);
        let data: Vec<f64> = (0..600).map(|_| rng.uniform()).collect();
        let r = Matrix::from_vec(200, 3, data);
        let batch = knn_batch(&r, &r, 5, true);
        assert_eq!(batch.len(), 200);
        for i in [0usize, 57, 199] {
            let single = knn_query(&r, r.row(i), 5, Some(i));
            assert_eq!(batch[i], single);
        }
    }

    #[test]
    fn leave_one_out_never_returns_self() {
        let r = grid();
        let batch = knn_batch(&r, &r, 3, true);
        for (i, hits) in batch.iter().enumerate() {
            assert!(hits.iter().all(|h| h.index != i));
        }
    }

    #[test]
    fn zero_k_returns_empty() {
        let r = grid();
        assert!(knn_query(&r, &[1.0], 0, None).is_empty());
    }
}
