//! The `Learner` / `Model` trait pair every classifier implements.

use crate::persist::ModelSnapshot;
use spe_data::{BinIndex, Matrix, MatrixView, SpeError};
use std::fmt;
use std::sync::Arc;

/// How a trained model constrains the width (feature count) of the rows
/// it scores.
///
/// Serving layers check this *before* installing a model behind a fixed
/// row width, so a mismatched deploy surfaces as a typed error instead
/// of silently producing garbage scores (a tree reading past the end of
/// a row, a linear model dotted against the wrong number of weights).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureBound {
    /// Scores rows of any width (e.g. a constant model).
    Any,
    /// Reads feature indices up to `n - 1`; any row at least that wide
    /// scores correctly. Trees only record the features they actually
    /// split on, so the training width is not recoverable — this is the
    /// tightest sound bound.
    AtLeast(usize),
    /// Requires exactly `n` features (linear models, KNN).
    Exact(usize),
}

impl FeatureBound {
    /// Whether rows of `width` features satisfy this bound.
    pub fn admits(self, width: usize) -> bool {
        match self {
            Self::Any => true,
            Self::AtLeast(n) => width >= n,
            Self::Exact(n) => width == n,
        }
    }

    /// Combines member bounds into an ensemble bound: the tightest
    /// single constraint implied by both. An `Exact` member pins the
    /// ensemble; otherwise the larger `AtLeast` wins. Two conflicting
    /// `Exact` widths (not constructible by the built-in learners, which
    /// train every member on the same columns) resolve to the larger.
    pub fn merge(self, other: Self) -> Self {
        match (self, other) {
            (Self::Any, b) => b,
            (a, Self::Any) => a,
            (Self::Exact(a), Self::Exact(b)) => Self::Exact(a.max(b)),
            (Self::Exact(e), Self::AtLeast(m)) | (Self::AtLeast(m), Self::Exact(e)) => {
                Self::Exact(e.max(m))
            }
            (Self::AtLeast(a), Self::AtLeast(b)) => Self::AtLeast(a.max(b)),
        }
    }
}

impl fmt::Display for FeatureBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Any => write!(f, "any number of features"),
            Self::AtLeast(n) => write!(f, "at least {n} features"),
            Self::Exact(n) => write!(f, "exactly {n} features"),
        }
    }
}

/// A trained classifier: immutable, thread-safe, probability-scoring.
///
/// The required entry point is view-based: every model scores borrowed
/// row chunks directly, so batch predictors can fan a matrix out across
/// threads without per-chunk copies. The owned-matrix and write-into
/// forms are derived conveniences.
pub trait Model: Send + Sync {
    /// Probability of the positive (minority) class for each row of `x`.
    ///
    /// Values lie in `[0, 1]`. Implementations that natively produce a
    /// margin (SVM, AdaBoost) squash it into this range so the hardness
    /// functions of SPE remain well-defined.
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64>;

    /// [`Model::predict_proba_view`] over an owned matrix.
    ///
    /// Pure convenience: borrows `x` as a view, no copy involved.
    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.predict_proba_view(x.view())
    }

    /// Writes the probabilities for `x` into `out` (one per row).
    ///
    /// The serving engine's steady-state path: callers own the output
    /// buffer, so scoring a batch allocates nothing per call once hot
    /// models override this. The default delegates to
    /// [`Model::predict_proba_view`] and copies.
    ///
    /// # Panics
    /// Panics if `out.len() != x.rows()`.
    fn predict_proba_into(&self, x: MatrixView<'_>, out: &mut [f64]) {
        assert_eq!(out.len(), x.rows(), "output buffer must match row count");
        out.copy_from_slice(&self.predict_proba_view(x));
    }

    /// Hard 0/1 labels at the 0.5 probability threshold.
    fn predict(&self, x: &Matrix) -> Vec<u8> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| u8::from(p >= 0.5))
            .collect()
    }

    /// Number of classes `k` this model scores over. Every binary model
    /// keeps the default of 2; k-class models (one-vs-rest, native
    /// multi-class SPE) override it.
    fn n_classes(&self) -> usize {
        2
    }

    /// Writes the full class-probability distribution for `x` into
    /// `out`, row-major `[n_rows × k]`: `out[i * k + c]` is row `i`'s
    /// probability of class `c`. Rows sum to 1.
    ///
    /// The default covers every binary model by expanding the scalar
    /// positive-class probability `p` into `[1 − p, p]` — bit-exact with
    /// the historic scalar path. Models with `k > 2` must override.
    ///
    /// # Panics
    /// Panics if `out.len() != x.rows() * k`.
    fn predict_proba_k_into(&self, x: MatrixView<'_>, out: &mut [f64]) {
        let k = self.n_classes();
        assert_eq!(
            k, 2,
            "models with more than two classes must override predict_proba_k_into"
        );
        assert_eq!(
            out.len(),
            x.rows() * k,
            "output buffer must hold rows * n_classes values"
        );
        let rows = x.rows();
        // Score the positive class into the front of the buffer, then
        // expand backwards: row i's pair lands at 2i/2i+1, both past
        // every slot i' <= i still waiting to be read.
        self.predict_proba_into(x, &mut out[..rows]);
        for i in (0..rows).rev() {
            let p = out[i];
            out[2 * i + 1] = p;
            out[2 * i] = 1.0 - p;
        }
    }

    /// [`Model::predict_proba_k_into`] into a fresh row-major buffer.
    fn predict_proba_k(&self, x: &Matrix) -> Vec<f64> {
        let mut out = vec![0.0; x.rows() * self.n_classes()];
        self.predict_proba_k_into(x.view(), &mut out);
        out
    }

    /// Hard class ids by argmax over the k-way distribution. Binary
    /// models keep the historic `p >= 0.5` threshold (so ties at exactly
    /// 0.5 stay class 1); `k > 2` breaks ties toward the lowest id.
    fn predict_class(&self, x: &Matrix) -> Vec<u8> {
        let k = self.n_classes();
        if k == 2 {
            return self.predict(x);
        }
        let proba = self.predict_proba_k(x);
        proba
            .chunks_exact(k)
            .map(|row| {
                let mut best = 0usize;
                for (c, &p) in row.iter().enumerate() {
                    if p > row[best] {
                        best = c;
                    }
                }
                best as u8
            })
            .collect()
    }

    /// Serializable snapshot of this model, or `None` when the model
    /// does not support persistence.
    ///
    /// Every built-in model with a stable on-disk representation (trees,
    /// KNN, LR, SVM, GBDT and the soft-vote ensembles built from them)
    /// overrides this; the default keeps the trait object-safe and lets
    /// user-defined models opt out — the serving layer reports those as
    /// a typed "unsupported model" error rather than panicking.
    fn snapshot(&self) -> Option<ModelSnapshot> {
        None
    }

    /// The input-width constraint this model scores under.
    ///
    /// Serving layers validate it against their configured row width
    /// when a model is installed or hot-swapped. The default (`Any`)
    /// keeps user-defined models installable everywhere; every built-in
    /// model overrides it with what its structure actually requires.
    fn feature_bound(&self) -> FeatureBound {
        FeatureBound::Any
    }
}

/// A classifier *configuration* that can be trained into a [`Model`].
///
/// Configs are cheap, cloneable descriptions (hyper-parameters only);
/// `fit` never mutates the learner, so one config can train many ensemble
/// members concurrently.
pub trait Learner: Send + Sync {
    /// Trains on `(x, y)` with optional per-sample weights.
    ///
    /// `weights`, when given, must match `y.len()`; they need not be
    /// normalized. `seed` drives any internal randomness (bootstraps,
    /// initialization, feature sub-sampling).
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model>;

    /// Trains with uniform weights.
    fn fit(&self, x: &Matrix, y: &[u8], seed: u64) -> Box<dyn Model> {
        self.fit_weighted(x, y, None, seed)
    }

    /// Fallible counterpart of [`Learner::fit_weighted`]: validates the
    /// inputs and returns [`SpeError`] instead of panicking.
    ///
    /// The default implementation runs [`validate_fit_inputs`] and then
    /// delegates to `fit_weighted`; learners with extra preconditions
    /// (e.g. SPE's two-class requirement) override it to surface those
    /// as errors too.
    fn try_fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Result<Box<dyn Model>, SpeError> {
        validate_fit_inputs(x, y, weights)?;
        Ok(self.fit_weighted(x, y, weights, seed))
    }

    /// Fallible counterpart of [`Learner::fit`] (uniform weights).
    fn try_fit(&self, x: &Matrix, y: &[u8], seed: u64) -> Result<Box<dyn Model>, SpeError> {
        self.try_fit_weighted(x, y, None, seed)
    }

    /// Short display name used in experiment tables (e.g. `"DT"`).
    fn name(&self) -> &'static str;

    /// Downcast hook for learners that can train on a pre-built
    /// [`BinIndex`]. Ensembles holding `Arc<dyn Learner>` call this to
    /// decide whether to bin the dataset once and share the index across
    /// members; the default (`None`) keeps every other learner on the
    /// regular `fit` path.
    fn as_binned(&self) -> Option<&dyn BinnedLearner> {
        None
    }
}

/// Shared, thread-safe handle to a learner configuration.
pub type SharedLearner = Arc<dyn Learner>;

/// What a [`BinnedLearner`] wants from the caller-built bin index.
#[derive(Clone, Copy, Debug)]
pub struct BinRequest {
    /// Minimum training-set size for the binned path to pay off; below
    /// this the caller should use the plain `fit` path instead.
    pub min_rows: usize,
    /// Bin budget per feature to build the index with (≤ 256).
    pub max_bins: usize,
}

/// A dataset in pre-binned form: the shared [`BinIndex`] plus labels
/// (and optional weights) for **all** of its rows. Members train on row
/// subsets of this one immutable structure.
#[derive(Clone, Copy)]
pub struct BinnedProblem<'a> {
    /// Bin index built once over the full training pool.
    pub bins: &'a BinIndex,
    /// Labels, one per row of `bins`.
    pub y: &'a [u8],
    /// Optional per-sample weights, one per row of `bins`.
    pub weights: Option<&'a [f64]>,
}

/// A learner that can train on row subsets of a shared [`BinIndex`],
/// letting an ensemble amortize feature quantization across all of its
/// members. Object-safe so `Arc<dyn Learner>` holders can reach it via
/// [`Learner::as_binned`].
pub trait BinnedLearner: Send + Sync {
    /// Binning parameters, or `None` when this learner's configuration
    /// (e.g. [`SplitMethod::Exact`](crate::tree::SplitMethod)) rules the
    /// histogram path out entirely.
    fn bin_request(&self) -> Option<BinRequest>;

    /// Trains on the subset `rows` (indices into `problem.bins`, repeats
    /// allowed for bootstraps). Must be deterministic in
    /// `(problem, rows, seed)` regardless of thread count.
    fn fit_on_bins(&self, problem: &BinnedProblem<'_>, rows: &[u32], seed: u64) -> Box<dyn Model>;
}

/// Validates the structural `fit` preconditions every learner shares:
/// matching lengths, a non-empty dataset, and finite non-negative
/// weights. Single-class labels and non-finite features are *allowed*
/// here — the infallible `fit` path handles the former with a
/// [`ConstantModel`] fallback and trusts callers on the latter.
pub fn validate_basic_fit_inputs(
    x: &Matrix,
    y: &[u8],
    weights: Option<&[f64]>,
) -> Result<(), SpeError> {
    if x.rows() != y.len() {
        return Err(SpeError::DimensionMismatch {
            what: "feature/label",
            expected: x.rows(),
            got: y.len(),
        });
    }
    if y.is_empty() {
        return Err(SpeError::EmptyDataset);
    }
    if let Some(w) = weights {
        if w.len() != y.len() {
            return Err(SpeError::DimensionMismatch {
                what: "weight",
                expected: y.len(),
                got: w.len(),
            });
        }
        if !w.iter().all(|&v| v.is_finite() && v >= 0.0) {
            return Err(SpeError::InvalidWeights);
        }
    }
    Ok(())
}

/// Strict validation for the fallible `try_fit*` entry points: the
/// [basic checks](validate_basic_fit_inputs) plus rejection of
/// non-finite feature values ([`SpeError::NonFiniteFeature`], naming
/// the first offending cell) and single-class labels
/// ([`SpeError::SingleClass`], carrying the observed label histogram so
/// the error names what actually arrived instead of assuming a binary
/// label space). The panicking `fit` path deliberately stays lenient on
/// both — trees tolerate NaN ordering and a single-class fit degrades
/// to a [`ConstantModel`] — but callers who opted into typed errors get
/// them *before* training starts.
pub fn validate_fit_inputs(x: &Matrix, y: &[u8], weights: Option<&[f64]>) -> Result<(), SpeError> {
    validate_basic_fit_inputs(x, y, weights)?;
    for i in 0..x.rows() {
        if let Some(j) = x.row(i).iter().position(|v| !v.is_finite()) {
            return Err(SpeError::NonFiniteFeature { row: i, col: j });
        }
    }
    let mut counts = [0usize; 256];
    for &l in y {
        counts[l as usize] += 1;
    }
    let histogram: Vec<(u8, usize)> = (0..=255u8)
        .filter(|&l| counts[l as usize] > 0)
        .map(|l| (l, counts[l as usize]))
        .collect();
    if histogram.len() < 2 {
        return Err(SpeError::SingleClass { histogram });
    }
    Ok(())
}

/// Panicking wrapper over [`validate_basic_fit_inputs`]; called by
/// every learner on its infallible `fit` path.
pub fn check_fit_inputs(x: &Matrix, y: &[u8], weights: Option<&[f64]>) {
    if let Err(e) = validate_basic_fit_inputs(x, y, weights) {
        panic!("{e}");
    }
}

/// Returns `weights` as a vector, defaulting to uniform `1/n`.
pub(crate) fn effective_weights(n: usize, weights: Option<&[f64]>) -> Vec<f64> {
    match weights {
        Some(w) => w.to_vec(),
        None => vec![1.0 / n as f64; n],
    }
}

/// Weighted fraction of positive labels (prior probability).
pub(crate) fn weighted_positive_fraction(y: &[u8], w: &[f64]) -> f64 {
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let pos: f64 = y
        .iter()
        .zip(w)
        .filter(|(&l, _)| l != 0)
        .map(|(_, &wi)| wi)
        .sum();
    pos / total
}

/// A constant-probability model — the degenerate fallback every learner
/// returns when the training data contains a single class.
pub struct ConstantModel(pub f64);

impl Model for ConstantModel {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        vec![self.0; x.rows()]
    }

    fn predict_proba_into(&self, x: MatrixView<'_>, out: &mut [f64]) {
        assert_eq!(out.len(), x.rows(), "output buffer must match row count");
        out.fill(self.0);
    }

    fn snapshot(&self) -> Option<ModelSnapshot> {
        Some(ModelSnapshot::Constant(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_bound_admission_and_merge() {
        assert!(FeatureBound::Any.admits(0));
        assert!(FeatureBound::AtLeast(3).admits(3));
        assert!(FeatureBound::AtLeast(3).admits(7));
        assert!(!FeatureBound::AtLeast(3).admits(2));
        assert!(FeatureBound::Exact(4).admits(4));
        assert!(!FeatureBound::Exact(4).admits(5));
        assert_eq!(
            FeatureBound::Any.merge(FeatureBound::AtLeast(2)),
            FeatureBound::AtLeast(2)
        );
        assert_eq!(
            FeatureBound::AtLeast(2).merge(FeatureBound::AtLeast(5)),
            FeatureBound::AtLeast(5)
        );
        assert_eq!(
            FeatureBound::AtLeast(2).merge(FeatureBound::Exact(4)),
            FeatureBound::Exact(4)
        );
        assert_eq!(
            FeatureBound::Exact(4).merge(FeatureBound::Any),
            FeatureBound::Exact(4)
        );
        assert!(FeatureBound::Exact(9).to_string().contains("exactly 9"));
        assert!(FeatureBound::AtLeast(2).to_string().contains("at least 2"));
    }

    #[test]
    fn constant_model_outputs_constant() {
        let m = ConstantModel(0.25);
        let x = Matrix::zeros(3, 2);
        assert_eq!(m.predict_proba(&x), vec![0.25; 3]);
        assert_eq!(m.predict(&x), vec![0, 0, 0]);
        let m2 = ConstantModel(0.75);
        assert_eq!(m2.predict(&x), vec![1, 1, 1]);
    }

    #[test]
    fn uniform_weights_sum_to_one() {
        let w = effective_weights(4, None);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_positive_fraction_respects_weights() {
        let y = [1, 0, 1];
        let w = [1.0, 2.0, 1.0];
        assert!((weighted_positive_fraction(&y, &w) - 0.5).abs() < 1e-12);
        assert_eq!(weighted_positive_fraction(&y, &[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn check_fit_inputs_catches_mismatch() {
        check_fit_inputs(&Matrix::zeros(3, 1), &[0, 1], None);
    }

    #[test]
    #[should_panic(expected = "weights must be finite")]
    fn check_fit_inputs_catches_negative_weight() {
        check_fit_inputs(&Matrix::zeros(2, 1), &[0, 1], Some(&[0.5, -0.1]));
    }

    #[test]
    fn validate_fit_inputs_reports_errors_as_values() {
        assert_eq!(
            validate_fit_inputs(&Matrix::zeros(3, 1), &[0, 1], None),
            Err(SpeError::DimensionMismatch {
                what: "feature/label",
                expected: 3,
                got: 2
            })
        );
        assert_eq!(
            validate_fit_inputs(&Matrix::zeros(0, 1), &[], None),
            Err(SpeError::EmptyDataset)
        );
        assert_eq!(
            validate_fit_inputs(&Matrix::zeros(2, 1), &[0, 1], Some(&[1.0])),
            Err(SpeError::DimensionMismatch {
                what: "weight",
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            validate_fit_inputs(&Matrix::zeros(2, 1), &[0, 1], Some(&[1.0, f64::NAN])),
            Err(SpeError::InvalidWeights)
        );
        assert!(validate_fit_inputs(&Matrix::zeros(2, 1), &[0, 1], Some(&[1.0, 2.0])).is_ok());
    }

    #[test]
    fn strict_validation_rejects_non_finite_and_single_class() {
        let mut x = Matrix::zeros(3, 2);
        x.row_mut(1)[1] = f64::NAN;
        assert_eq!(
            validate_fit_inputs(&x, &[0, 1, 0], None),
            Err(SpeError::NonFiniteFeature { row: 1, col: 1 })
        );
        // The basic (panicking-path) checks let both through.
        assert!(validate_basic_fit_inputs(&x, &[0, 1, 0], None).is_ok());
        assert_eq!(
            validate_fit_inputs(&Matrix::zeros(2, 1), &[0, 0], None),
            Err(SpeError::SingleClass {
                histogram: vec![(0, 2)]
            })
        );
        assert_eq!(
            validate_fit_inputs(&Matrix::zeros(3, 1), &[7, 7, 7], None),
            Err(SpeError::SingleClass {
                histogram: vec![(7, 3)]
            })
        );
        // Two distinct k-class labels pass — the k-way trainers decide
        // whether the label space is dense enough.
        assert!(validate_fit_inputs(&Matrix::zeros(2, 1), &[3, 5], None).is_ok());
        assert!(validate_basic_fit_inputs(&Matrix::zeros(2, 1), &[0, 0], None).is_ok());
    }

    #[test]
    fn default_k_wide_path_expands_binary_probas() {
        let m = ConstantModel(0.25);
        let x = Matrix::zeros(3, 2);
        assert_eq!(m.n_classes(), 2);
        let k = m.predict_proba_k(&x);
        assert_eq!(k, vec![0.75, 0.25, 0.75, 0.25, 0.75, 0.25]);
        assert_eq!(m.predict_class(&x), m.predict(&x));
    }

    #[test]
    fn try_fit_surfaces_validation_errors() {
        struct Stub;
        impl Learner for Stub {
            fn fit_weighted(
                &self,
                _x: &Matrix,
                _y: &[u8],
                _w: Option<&[f64]>,
                _seed: u64,
            ) -> Box<dyn Model> {
                Box::new(ConstantModel(0.5))
            }
            fn name(&self) -> &'static str {
                "Stub"
            }
        }
        let err = match Stub.try_fit(&Matrix::zeros(2, 1), &[0], 0) {
            Err(e) => e,
            Ok(_) => panic!("expected validation error"),
        };
        assert!(matches!(err, SpeError::DimensionMismatch { .. }));
        let ok = Stub
            .try_fit(&Matrix::zeros(2, 1), &[0, 1], 0)
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(ok.predict_proba(&Matrix::zeros(1, 1)), vec![0.5]);
    }
}
