//! Random Forest (Breiman 2001): bagged trees + per-node feature
//! sub-sampling (√d by default).
//!
//! Paper hyper-parameter (Table II): `n_estimators = 10`.

use crate::ensemble::{
    fit_on_bins_parallel, fit_parallel, BinnedTrainJob, SoftVoteEnsemble, TrainJob,
};
use crate::traits::{check_fit_inputs, BinnedProblem, ConstantModel, Learner, Model};
use crate::tree::{DecisionTreeConfig, SplitMethod};
use spe_data::{BinIndex, Matrix, SeededRng};

/// Random-forest hyper-parameters.
#[derive(Clone, Debug)]
pub struct RandomForestConfig {
    /// Number of trees (paper: 10).
    pub n_trees: usize,
    /// Depth cap per tree.
    pub max_depth: usize,
    /// Features sampled per node; `None` = √d.
    pub max_features: Option<usize>,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Split engine for the member trees. With the histogram engine the
    /// feature matrix is quantized once and every bootstrap member
    /// trains on row ids of the shared [`BinIndex`] — no per-member
    /// matrix copies.
    pub split_method: SplitMethod,
    /// Bin budget per feature for the histogram engine.
    pub max_bins: usize,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 10,
            max_depth: 16,
            max_features: None,
            min_samples_leaf: 1,
            split_method: SplitMethod::default(),
            max_bins: spe_data::binning::MAX_BINS,
        }
    }
}

impl RandomForestConfig {
    /// Forest with `n` trees and default tree shape.
    pub fn new(n_trees: usize) -> Self {
        Self {
            n_trees,
            ..Self::default()
        }
    }
}

impl Learner for RandomForestConfig {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        check_fit_inputs(x, y, weights);
        assert!(self.n_trees > 0, "need at least one tree");
        let n_pos = y.iter().filter(|&&l| l != 0).count();
        if n_pos == 0 || n_pos == y.len() {
            return Box::new(ConstantModel(if n_pos == 0 { 0.0 } else { 1.0 }));
        }

        let d = x.cols();
        let mtry = self
            .max_features
            .unwrap_or_else(|| (d as f64).sqrt().round().max(1.0) as usize)
            .min(d);
        let tree_cfg = DecisionTreeConfig {
            max_depth: self.max_depth,
            max_features: Some(mtry),
            min_samples_leaf: self.min_samples_leaf,
            split_method: self.split_method,
            max_bins: self.max_bins,
            ..DecisionTreeConfig::default()
        };

        let n = y.len();
        let mut rng = SeededRng::new(seed);
        if self.split_method.use_histogram(n) {
            // Bin once; members share the index and differ only in their
            // bootstrap row ids and seeds. Same bootstrap rng stream and
            // seed forking as the exact path below.
            let bins = BinIndex::build(x, self.max_bins);
            let problem = BinnedProblem {
                bins: &bins,
                y,
                weights,
            };
            let jobs: Vec<BinnedTrainJob> = (0..self.n_trees)
                .map(|m| BinnedTrainJob {
                    rows: rng
                        .sample_with_replacement(n, n)
                        .into_iter()
                        .map(|i| i as u32)
                        .collect(),
                    seed: spe_runtime::fork_seed(seed.wrapping_add(101), m as u64),
                })
                .collect();
            let models = fit_on_bins_parallel(&tree_cfg, &problem, jobs);
            return Box::new(SoftVoteEnsemble::new(models));
        }
        let jobs: Vec<TrainJob> = (0..self.n_trees)
            .map(|m| {
                let idx = rng.sample_with_replacement(n, n);
                TrainJob {
                    x: x.select_rows(&idx),
                    y: idx.iter().map(|&i| y[i]).collect(),
                    w: weights.map(|w| idx.iter().map(|&i| w[i]).collect()),
                    seed: spe_runtime::fork_seed(seed.wrapping_add(101), m as u64),
                }
            })
            .collect();
        let models = fit_parallel(&tree_cfg, jobs);
        Box::new(SoftVoteEnsemble::new(models))
    }

    fn name(&self) -> &'static str {
        "RandForest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::SeededRng;

    /// 2-D two-cluster data with 8 noise features appended — feature
    /// sub-sampling must still find the signal.
    fn noisy_clusters(n_per: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(2 * n_per, 10);
        let mut y = Vec::new();
        for label in [0u8, 1u8] {
            let c = if label == 0 { -2.0 } else { 2.0 };
            for _ in 0..n_per {
                let mut row = vec![rng.normal(c, 1.0), rng.normal(c, 1.0)];
                for _ in 0..8 {
                    row.push(rng.normal(0.0, 1.0));
                }
                x.push_row(&row);
                y.push(label);
            }
        }
        (x, y)
    }

    #[test]
    fn finds_signal_among_noise_features() {
        let (x, y) = noisy_clusters(150, 1);
        let m = RandomForestConfig::new(15).fit(&x, &y, 2);
        let acc =
            m.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn single_class_constant() {
        let x = Matrix::from_vec(3, 2, vec![0.0; 6]);
        let m = RandomForestConfig::default().fit(&x, &[0, 0, 0], 0);
        assert_eq!(m.predict_proba(&x), vec![0.0; 3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_clusters(40, 3);
        let a = RandomForestConfig::new(5).fit(&x, &y, 4).predict_proba(&x);
        let b = RandomForestConfig::new(5).fit(&x, &y, 4).predict_proba(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_engine_finds_signal_among_noise_features() {
        let (x, y) = noisy_clusters(150, 1);
        let cfg = RandomForestConfig {
            split_method: crate::tree::SplitMethod::Histogram,
            ..RandomForestConfig::new(15)
        };
        let m = cfg.fit(&x, &y, 2);
        let acc =
            m.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn histogram_engine_deterministic_given_seed() {
        let (x, y) = noisy_clusters(40, 3);
        let cfg = RandomForestConfig {
            split_method: crate::tree::SplitMethod::Histogram,
            ..RandomForestConfig::new(5)
        };
        let a = cfg.fit(&x, &y, 4).predict_proba(&x);
        let b = cfg.fit(&x, &y, 4).predict_proba(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_mtry_respected() {
        let (x, y) = noisy_clusters(40, 5);
        let cfg = RandomForestConfig {
            max_features: Some(1),
            ..RandomForestConfig::new(5)
        };
        // Smoke: trains and predicts with the restricted feature pool.
        let m = cfg.fit(&x, &y, 6);
        assert_eq!(m.predict_proba(&x).len(), 80);
    }
}
