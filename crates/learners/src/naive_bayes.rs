//! Gaussian Naive Bayes with weighted moment estimates.
//!
//! Not part of the paper's classifier lineup, but a natural extra base
//! learner for the framework ("SPE can be used to boost any canonical
//! classifier"): per-class, per-feature normal likelihoods with a
//! variance floor, combined through class log-priors.

use crate::traits::{check_fit_inputs, ConstantModel, Learner, Model};
use spe_data::{Matrix, MatrixView};

/// Gaussian Naive Bayes configuration.
#[derive(Clone, Copy, Debug)]
pub struct GaussianNbConfig {
    /// Variance floor added to every per-feature variance (numerical
    /// smoothing; analogous to sklearn's `var_smoothing`).
    pub var_floor: f64,
}

impl Default for GaussianNbConfig {
    fn default() -> Self {
        Self { var_floor: 1e-9 }
    }
}

struct ClassStats {
    log_prior: f64,
    mean: Vec<f64>,
    var: Vec<f64>,
}

struct NbModel {
    classes: [ClassStats; 2],
}

impl Model for NbModel {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        x.iter_rows()
            .map(|row| {
                let mut ll = [0.0f64; 2];
                for (c, stats) in self.classes.iter().enumerate() {
                    let mut l = stats.log_prior;
                    for ((&v, &m), &s2) in row.iter().zip(&stats.mean).zip(&stats.var) {
                        let d = v - m;
                        l -= 0.5 * (d * d / s2 + s2.ln());
                    }
                    ll[c] = l;
                }
                // Log-sum-exp over the two classes.
                let m = ll[0].max(ll[1]);
                let e0 = (ll[0] - m).exp();
                let e1 = (ll[1] - m).exp();
                e1 / (e0 + e1)
            })
            .collect()
    }
}

impl Learner for GaussianNbConfig {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        _seed: u64,
    ) -> Box<dyn Model> {
        check_fit_inputs(x, y, weights);
        let n_pos = y.iter().filter(|&&l| l != 0).count();
        if n_pos == 0 || n_pos == y.len() {
            return Box::new(ConstantModel(if n_pos == 0 { 0.0 } else { 1.0 }));
        }

        let d = x.cols();
        let mut mean = [vec![0.0; d], vec![0.0; d]];
        let mut var = [vec![0.0; d], vec![0.0; d]];
        let mut totals = [0.0f64; 2];
        for (i, row) in x.iter_rows().enumerate() {
            let w = weights.map_or(1.0, |w| w[i]);
            let c = usize::from(y[i] != 0);
            totals[c] += w;
            for (m, &v) in mean[c].iter_mut().zip(row) {
                *m += w * v;
            }
        }
        for c in 0..2 {
            let t = totals[c].max(1e-12);
            for m in &mut mean[c] {
                *m /= t;
            }
        }
        for (i, row) in x.iter_rows().enumerate() {
            let w = weights.map_or(1.0, |w| w[i]);
            let c = usize::from(y[i] != 0);
            for ((s2, &m), &v) in var[c].iter_mut().zip(&mean[c]).zip(row) {
                let dv = v - m;
                *s2 += w * dv * dv;
            }
        }
        let grand = totals[0] + totals[1];
        let make = |c: usize, mean: Vec<f64>, var: Vec<f64>| {
            let t = totals[c].max(1e-12);
            ClassStats {
                log_prior: (t / grand).ln(),
                mean,
                var: var
                    .into_iter()
                    .map(|v| (v / t).max(self.var_floor.max(1e-12)))
                    .collect(),
            }
        };
        let [m0, m1] = mean;
        let [v0, v1] = var;
        Box::new(NbModel {
            classes: [make(0, m0, v0), make(1, m1, v1)],
        })
    }

    fn name(&self) -> &'static str {
        "GaussianNB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::SeededRng;

    fn blobs(n_per: usize, sep: f64, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(2 * n_per, 2);
        let mut y = Vec::new();
        for label in [0u8, 1] {
            let c = if label == 0 { -sep } else { sep };
            for _ in 0..n_per {
                x.push_row(&[rng.normal(c, 1.0), rng.normal(0.0, 1.0)]);
                y.push(label);
            }
        }
        (x, y)
    }

    #[test]
    fn separates_gaussian_blobs() {
        let (x, y) = blobs(300, 2.5, 1);
        let m = GaussianNbConfig::default().fit(&x, &y, 0);
        let acc =
            m.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_reflect_distance_to_means() {
        let (x, y) = blobs(300, 2.0, 2);
        let m = GaussianNbConfig::default().fit(&x, &y, 0);
        let probe = Matrix::from_vec(3, 2, vec![-4.0, 0.0, 0.0, 0.0, 4.0, 0.0]);
        let p = m.predict_proba(&probe);
        assert!(p[0] < 0.1);
        assert!((p[1] - 0.5).abs() < 0.2);
        assert!(p[2] > 0.9);
    }

    #[test]
    fn prior_shifts_with_class_balance() {
        // Same overlapping features; 9:1 prior pushes ambiguous points
        // toward the majority.
        let (x, _) = blobs(100, 0.0, 3);
        let y: Vec<u8> = (0..200).map(|i| u8::from(i < 20)).collect();
        let m = GaussianNbConfig::default().fit(&x, &y, 0);
        let p = m.predict_proba(&Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        assert!(p[0] < 0.3, "{}", p[0]);
    }

    #[test]
    fn weights_change_the_fit() {
        let (x, y) = blobs(100, 0.5, 4);
        let w: Vec<f64> = y.iter().map(|&l| if l == 1 { 10.0 } else { 1.0 }).collect();
        let plain = GaussianNbConfig::default().fit(&x, &y, 0);
        let weighted = GaussianNbConfig::default().fit_weighted(&x, &y, Some(&w), 0);
        let probe = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        assert!(weighted.predict_proba(&probe)[0] > plain.predict_proba(&probe)[0]);
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let x = Matrix::from_vec(4, 2, vec![1.0, 5.0, 1.0, 6.0, 1.0, -5.0, 1.0, -6.0]);
        let y = vec![1, 1, 0, 0];
        let m = GaussianNbConfig::default().fit(&x, &y, 0);
        let p = m.predict_proba(&x);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[0] > 0.5 && p[2] < 0.5);
    }

    #[test]
    fn single_class_constant() {
        let x = Matrix::zeros(3, 2);
        let m = GaussianNbConfig::default().fit(&x, &[0, 0, 0], 0);
        assert_eq!(m.predict_proba(&x), vec![0.0; 3]);
    }
}
