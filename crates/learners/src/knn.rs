//! K-nearest-neighbors classifier.
//!
//! Paper hyper-parameter (Table II): `k_neighbors = 5`. Training is a
//! memorization of the (optionally weighted) training set; prediction is
//! the weighted positive fraction among the k nearest training points.

use crate::neighbors::{knn_batch_view, Neighbor};
use crate::persist::ModelSnapshot;
use crate::traits::{check_fit_inputs, ConstantModel, FeatureBound, Learner, Model};
use spe_data::{Matrix, MatrixView};

/// Configuration for the KNN classifier.
#[derive(Clone, Debug)]
pub struct KnnConfig {
    /// Number of neighbors (paper: 5).
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self { k: 5 }
    }
}

impl KnnConfig {
    /// Creates a config with the given `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self { k }
    }
}

/// A trained KNN model: the memorized (optionally weighted) training
/// set plus `k`. Public so persisted models can name the type; all
/// state stays private.
#[derive(Clone)]
pub struct KnnModel {
    k: usize,
    x: Matrix,
    y: Vec<u8>,
    w: Option<Vec<f64>>,
}

serde::impl_serde!(KnnModel { k, x, y, w });

impl KnnModel {
    fn vote(&self, neigh: &[Neighbor]) -> f64 {
        let mut pos = 0.0;
        let mut total = 0.0;
        for h in neigh {
            let wi = self.w.as_ref().map_or(1.0, |w| w[h.index]);
            total += wi;
            if self.y[h.index] != 0 {
                pos += wi;
            }
        }
        if total > 0.0 {
            pos / total
        } else {
            0.0
        }
    }
}

impl Model for KnnModel {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        let hits = knn_batch_view(&self.x, x, self.k.min(self.x.rows()), false);
        hits.into_iter().map(|neigh| self.vote(&neigh)).collect()
    }

    fn snapshot(&self) -> Option<ModelSnapshot> {
        Some(ModelSnapshot::Knn(self.clone()))
    }

    fn feature_bound(&self) -> FeatureBound {
        // Distances are computed against the memorized training rows, so
        // query rows must match their width exactly.
        FeatureBound::Exact(self.x.cols())
    }
}

impl Learner for KnnConfig {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        _seed: u64,
    ) -> Box<dyn Model> {
        check_fit_inputs(x, y, weights);
        let n_pos = y.iter().filter(|&&l| l != 0).count();
        if n_pos == 0 || n_pos == y.len() {
            return Box::new(ConstantModel(if n_pos == 0 { 0.0 } else { 1.0 }));
        }
        Box::new(KnnModel {
            k: self.k,
            x: x.clone(),
            y: y.to_vec(),
            w: weights.map(<[f64]>::to_vec),
        })
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> (Matrix, Vec<u8>) {
        // Negatives at 0..5, positives at 10..15.
        let xs: Vec<f64> = (0..5)
            .map(f64::from)
            .chain((10..15).map(f64::from))
            .collect();
        let y = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        (Matrix::from_vec(10, 1, xs), y)
    }

    #[test]
    fn separable_clusters_classified() {
        let (x, y) = line_data();
        let m = KnnConfig::new(3).fit(&x, &y, 0);
        let test = Matrix::from_vec(2, 1, vec![1.0, 12.0]);
        let p = m.predict_proba(&test);
        assert_eq!(p[0], 0.0);
        assert_eq!(p[1], 1.0);
        assert_eq!(m.predict(&test), vec![0, 1]);
    }

    #[test]
    fn boundary_point_gets_mixed_probability() {
        let (x, y) = line_data();
        let m = KnnConfig::new(4).fit(&x, &y, 0);
        // 7.0 is between the clusters: 2 nearest from each side.
        let p = m.predict_proba(&Matrix::from_vec(1, 1, vec![7.0]));
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weights_shift_the_vote() {
        let (x, y) = line_data();
        let mut w = vec![1.0; 10];
        // Up-weight positives 3x.
        for (wi, &l) in w.iter_mut().zip(&y) {
            if l == 1 {
                *wi = 3.0;
            }
        }
        let m = KnnConfig::new(4).fit_weighted(&x, &y, Some(&w), 0);
        let p = m.predict_proba(&Matrix::from_vec(1, 1, vec![7.0]));
        assert!((p[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn single_class_returns_constant() {
        let x = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let m = KnnConfig::default().fit(&x, &[0, 0, 0], 0);
        assert_eq!(m.predict_proba(&x), vec![0.0; 3]);
    }

    #[test]
    fn k_clamped_to_train_size() {
        let x = Matrix::from_vec(2, 1, vec![0.0, 1.0]);
        let m = KnnConfig::new(50).fit(&x, &[0, 1], 0);
        let p = m.predict_proba(&Matrix::from_vec(1, 1, vec![0.5]));
        assert!((p[0] - 0.5).abs() < 1e-12);
    }
}
