//! Per-bin statistic accumulation shared by the histogram split finders
//! of the classification tree ([`crate::tree`]) and the gradient
//! regression tree ([`crate::regtree`]).
//!
//! Both trees need the same machinery: for every candidate feature, sum
//! a pair of per-sample quantities into that feature's bins
//! (weight / weighted-positive for classification, gradient / hessian
//! for regression), then scan bin prefixes for the best split. The pair
//! is kept generic as `(a, b)` here; `n` counts samples so
//! `min_samples_leaf` can be enforced without a second pass.
//!
//! Node histograms are additive, which buys the classic subtraction
//! trick: `hist(parent) = hist(left) + hist(right)`, so after computing
//! the *smaller* child's histogram the sibling comes from an O(bins)
//! subtraction instead of an O(rows · features) re-accumulation.

use spe_data::BinIndex;

/// One bin's accumulated statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub(crate) struct BinStat {
    /// First summed quantity (sample weight, or gradient).
    pub a: f64,
    /// Second summed quantity (weighted positives, or hessian).
    pub b: f64,
    /// Number of samples in the bin (bootstrap repeats count each time).
    pub n: u32,
}

/// Where each feature's bins live inside a flat histogram buffer.
pub(crate) struct HistLayout {
    /// `offsets[f]..offsets[f + 1]` is feature `f`'s slice; the final
    /// entry is the total buffer length.
    offsets: Vec<usize>,
}

impl HistLayout {
    pub fn new(bins: &BinIndex) -> Self {
        let d = bins.n_features();
        let mut offsets = Vec::with_capacity(d + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for f in 0..d {
            acc += bins.n_bins(f);
            offsets.push(acc);
        }
        Self { offsets }
    }

    /// Total buffer length covering every feature.
    #[inline]
    pub fn total(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Slice range of feature `f` inside the flat buffer.
    #[inline]
    pub fn feature_range(&self, f: usize) -> std::ops::Range<usize> {
        self.offsets[f]..self.offsets[f + 1]
    }
}

/// Fills `out` (layout-sized, will be zeroed) with per-bin sums of
/// `(a[r], b[r])` over the given rows, for every feature.
///
/// Features are processed in parallel on the shared runtime; each
/// feature's bins are summed sequentially in row order, so the result is
/// independent of thread count.
pub(crate) fn accumulate(
    bins: &BinIndex,
    rows: &[u32],
    a: &[f64],
    b: &[f64],
    layout: &HistLayout,
    out: &mut [BinStat],
) {
    debug_assert_eq!(out.len(), layout.total());
    out.fill(BinStat::default());
    // Carve the flat buffer into disjoint per-feature slices so the
    // parallel fill needs no locks.
    let mut slices: Vec<&mut [BinStat]> = Vec::with_capacity(bins.n_features());
    let mut rest = out;
    for f in 0..bins.n_features() {
        let (head, tail) = rest.split_at_mut(layout.feature_range(f).len());
        slices.push(head);
        rest = tail;
    }
    spe_runtime::par_for_each_mut(&mut slices, |f, slice| {
        accumulate_feature(bins, rows, a, b, f, slice);
    });
}

/// Fills `out` (zeroed by the caller or here) with feature `f`'s per-bin
/// sums over the given rows. Used directly by the sampled-feature mode
/// (Random Forest), where no persistent full histogram exists.
pub(crate) fn accumulate_feature(
    bins: &BinIndex,
    rows: &[u32],
    a: &[f64],
    b: &[f64],
    f: usize,
    out: &mut [BinStat],
) {
    debug_assert_eq!(out.len(), bins.n_bins(f));
    let codes = bins.feature_codes(f);
    for &r in rows {
        let r = r as usize;
        let s = &mut out[codes[r] as usize];
        s.a += a[r];
        s.b += b[r];
        s.n += 1;
    }
}

/// In-place `parent -= child`, turning the parent histogram into the
/// sibling of `child`. Counts use saturating subtraction: they can only
/// disagree when float drift has already made the stats approximate.
pub(crate) fn subtract(parent: &mut [BinStat], child: &[BinStat]) {
    debug_assert_eq!(parent.len(), child.len());
    for (p, c) in parent.iter_mut().zip(child) {
        p.a -= c.a;
        p.b -= c.b;
        p.n = p.n.saturating_sub(c.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::Matrix;

    fn small_index() -> BinIndex {
        // 6 rows, 2 features; feature values chosen so bins are obvious.
        let x = Matrix::from_vec(
            6,
            2,
            vec![
                0.0, 5.0, //
                1.0, 5.0, //
                2.0, 6.0, //
                0.0, 6.0, //
                1.0, 5.0, //
                2.0, 6.0,
            ],
        );
        BinIndex::build(&x, 8)
    }

    #[test]
    fn layout_matches_bin_counts() {
        let bins = small_index();
        let layout = HistLayout::new(&bins);
        assert_eq!(layout.total(), bins.total_bins());
        assert_eq!(layout.feature_range(0), 0..3);
        assert_eq!(layout.feature_range(1), 3..5);
    }

    #[test]
    fn accumulate_sums_per_bin() {
        let bins = small_index();
        let layout = HistLayout::new(&bins);
        let rows: Vec<u32> = (0..6).collect();
        let a = [1.0; 6];
        let b = [0.0, 1.0, 0.0, 0.0, 1.0, 1.0];
        let mut out = vec![BinStat::default(); layout.total()];
        accumulate(&bins, &rows, &a, &b, &layout, &mut out);
        // Feature 0: values 0,1,2 -> bins 0,1,2 with two rows each.
        for bin in 0..3 {
            assert_eq!(out[bin].n, 2, "bin {bin}");
            assert_eq!(out[bin].a, 2.0);
        }
        assert_eq!(out[1].b, 2.0); // both value-1 rows are positive
                                   // Feature 1: value 5 (3 rows), value 6 (3 rows).
        assert_eq!(out[3].n, 3);
        assert_eq!(out[4].n, 3);
        assert_eq!(out[4].b, 1.0); // rows 2,3,5 have value 6; only row 5 is positive
                                   // Whole-node totals agree across features.
        let tot0: f64 = out[..3].iter().map(|s| s.a).sum();
        let tot1: f64 = out[3..].iter().map(|s| s.a).sum();
        assert_eq!(tot0, tot1);
    }

    #[test]
    fn bootstrap_repeats_count_each_occurrence() {
        let bins = small_index();
        let mut out = vec![BinStat::default(); bins.n_bins(0)];
        accumulate_feature(&bins, &[0, 0, 0], &[2.0; 6], &[1.0; 6], 0, &mut out);
        assert_eq!(out[0].n, 3);
        assert_eq!(out[0].a, 6.0);
    }

    #[test]
    fn subtraction_reconstructs_sibling() {
        let bins = small_index();
        let layout = HistLayout::new(&bins);
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [0.5; 6];
        let all: Vec<u32> = (0..6).collect();
        let (left, right) = ([0u32, 2, 4], [1u32, 3, 5]);
        let mut parent = vec![BinStat::default(); layout.total()];
        let mut lh = vec![BinStat::default(); layout.total()];
        let mut rh = vec![BinStat::default(); layout.total()];
        accumulate(&bins, &all, &a, &b, &layout, &mut parent);
        accumulate(&bins, &left, &a, &b, &layout, &mut lh);
        accumulate(&bins, &right, &a, &b, &layout, &mut rh);
        subtract(&mut parent, &lh);
        for (got, want) in parent.iter().zip(&rh) {
            assert_eq!(got.n, want.n);
            assert!((got.a - want.a).abs() < 1e-12);
            assert!((got.b - want.b).abs() < 1e-12);
        }
    }
}
