//! Support vector machine: Pegasos SGD on the hinge loss, optionally in
//! a random-Fourier-feature (RFF) space approximating the RBF kernel.
//!
//! The paper uses scikit-learn's kernel `SVC(C=1000)`; exact kernel SVM
//! training is O(n²)–O(n³), so this workspace substitutes the standard
//! scalable approximation: map inputs through D random Fourier features
//! (`z(x) = √(2/D) · cos(Ωx + b)` with `Ω ~ N(0, 2γ·I)`), then train a
//! linear SVM with Pegasos. Probabilities come from a Platt-style
//! 1-D logistic fit on the training margins (see `DESIGN.md`).

use crate::logistic::sigmoid;
use crate::persist::ModelSnapshot;
use crate::traits::{
    check_fit_inputs, effective_weights, weighted_positive_fraction, ConstantModel, FeatureBound,
    Learner, Model,
};
use spe_data::{Matrix, MatrixView, SeededRng, Standardizer};

/// SVM hyper-parameters.
#[derive(Clone, Debug)]
pub struct SvmConfig {
    /// Soft-margin constant; Pegasos regularization is `λ = 1/(C·n)`.
    pub c: f64,
    /// RBF kernel width; `None` trains a plain linear SVM.
    pub gamma: Option<f64>,
    /// Number of random Fourier features when `gamma` is set.
    pub rff_dim: usize,
    /// Number of Pegasos epochs.
    pub epochs: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            c: 1000.0,
            gamma: Some(1.0),
            rff_dim: 128,
            epochs: 20,
        }
    }
}

impl SvmConfig {
    /// Linear SVM with the given `C`.
    pub fn linear(c: f64) -> Self {
        Self {
            c,
            gamma: None,
            ..Self::default()
        }
    }

    /// RBF-approximating SVM (paper setting: `C = 1000`).
    pub fn rbf(c: f64, gamma: f64) -> Self {
        Self {
            c,
            gamma: Some(gamma),
            ..Self::default()
        }
    }
}

/// Random Fourier feature map (fixed once sampled).
#[derive(Clone)]
struct RffMap {
    /// `rff_dim x d` projection matrix, row-major.
    omega: Vec<f64>,
    offsets: Vec<f64>,
    dim_in: usize,
    scale: f64,
}

impl RffMap {
    fn sample(dim_in: usize, dim_out: usize, gamma: f64, rng: &mut SeededRng) -> Self {
        let std = (2.0 * gamma).sqrt();
        let omega = (0..dim_in * dim_out)
            .map(|_| rng.normal(0.0, std))
            .collect();
        let offsets = (0..dim_out)
            .map(|_| rng.range(0.0, 2.0 * std::f64::consts::PI))
            .collect();
        Self {
            omega,
            offsets,
            dim_in,
            scale: (2.0 / dim_out as f64).sqrt(),
        }
    }

    fn transform_row_into(&self, row: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(row.len(), self.dim_in);
        out.clear();
        let d_out = self.offsets.len();
        for j in 0..d_out {
            let w = &self.omega[j * self.dim_in..(j + 1) * self.dim_in];
            let mut z = self.offsets[j];
            for (&wi, &xi) in w.iter().zip(row) {
                z += wi * xi;
            }
            out.push(self.scale * z.cos());
        }
    }
}

serde::impl_serde!(RffMap {
    omega,
    offsets,
    dim_in,
    scale
});

/// A trained (approximate-RBF) SVM: standardizer, optional RFF map,
/// linear weights and Platt calibration. Public so persisted models can
/// name the type; all state stays private.
#[derive(Clone)]
pub struct SvmModel {
    scaler: Standardizer,
    rff: Option<RffMap>,
    weights: Vec<f64>,
    bias: f64,
    /// Platt calibration: P = sigmoid(a·margin + b).
    platt_a: f64,
    platt_b: f64,
}

serde::impl_serde!(SvmModel {
    scaler,
    rff,
    weights,
    bias,
    platt_a,
    platt_b
});

impl SvmModel {
    fn margin(&self, row: &[f64], std_buf: &mut Vec<f64>, rff_buf: &mut Vec<f64>) -> f64 {
        self.scaler.transform_row_into(row, std_buf);
        let feat: &[f64] = match &self.rff {
            Some(map) => {
                map.transform_row_into(std_buf, rff_buf);
                rff_buf
            }
            None => std_buf,
        };
        let mut z = self.bias;
        for (&w, &v) in self.weights.iter().zip(feat) {
            z += w * v;
        }
        z
    }
}

impl Model for SvmModel {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        let mut std_buf = Vec::new();
        let mut rff_buf = Vec::new();
        x.iter_rows()
            .map(|r| {
                let m = self.margin(r, &mut std_buf, &mut rff_buf);
                sigmoid(self.platt_a * m + self.platt_b)
            })
            .collect()
    }

    fn snapshot(&self) -> Option<ModelSnapshot> {
        Some(ModelSnapshot::Svm(self.clone()))
    }

    fn feature_bound(&self) -> FeatureBound {
        // The standardizer was fitted on the training matrix, so its
        // per-column statistics pin the exact input width (the RFF map,
        // when present, projects from that same width).
        FeatureBound::Exact(self.scaler.means().len())
    }
}

impl Learner for SvmConfig {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        check_fit_inputs(x, y, weights);
        let w_samp = effective_weights(y.len(), weights);
        let prior = weighted_positive_fraction(y, &w_samp);
        if prior == 0.0 || prior == 1.0 {
            return Box::new(ConstantModel(prior));
        }

        let mut rng = SeededRng::new(seed);
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let n = y.len();

        // Optional RFF expansion, materialized once for training.
        let rff = self
            .gamma
            .map(|g| RffMap::sample(x.cols(), self.rff_dim, g, &mut rng));
        let feats: Matrix = match &rff {
            Some(map) => {
                let mut out = Matrix::with_capacity(n, self.rff_dim);
                let mut buf = Vec::with_capacity(self.rff_dim);
                for r in xs.iter_rows() {
                    map.transform_row_into(r, &mut buf);
                    out.push_row(&buf);
                }
                out
            }
            None => xs,
        };
        let d = feats.cols();

        // Pegasos: λ = 1/(C·n); weighted sampling keeps the expected
        // objective equal to the weighted hinge loss.
        let lambda = 1.0 / (self.c * n as f64);
        let mut w = vec![0.0; d];
        let mut bias = 0.0;
        let total_steps = self.epochs * n;
        let w_sum: f64 = w_samp.iter().sum();
        let cdf: Vec<f64> = w_samp
            .iter()
            .scan(0.0, |acc, &wi| {
                *acc += wi;
                Some(*acc)
            })
            .collect();
        for t in 1..=total_steps {
            // Weighted draw of a training example.
            let target = rng.uniform() * w_sum;
            let i = cdf.partition_point(|&c| c < target).min(n - 1);
            let eta = 1.0 / (lambda * t as f64);
            let row = feats.row(i);
            let yi = if y[i] != 0 { 1.0 } else { -1.0 };
            let mut z = bias;
            for (&wi, &v) in w.iter().zip(row) {
                z += wi * v;
            }
            let decay = 1.0 - eta * lambda;
            for wj in &mut w {
                *wj *= decay;
            }
            if yi * z < 1.0 {
                for (wj, &v) in w.iter_mut().zip(row) {
                    *wj += eta * yi * v;
                }
                bias += eta * yi * 0.1; // small unregularized bias step
            }
            // Pegasos projection onto the ball of radius 1/√λ keeps the
            // enormous early learning rates (η = 1/(λt) with tiny λ at
            // large C) from destabilizing the iterate.
            let norm_sq: f64 = w.iter().map(|v| v * v).sum();
            let radius = 1.0 / lambda.sqrt();
            if norm_sq > radius * radius {
                let scale = radius / norm_sq.sqrt();
                for wj in &mut w {
                    *wj *= scale;
                }
                bias *= scale;
            }
        }

        // Platt-style calibration on the training margins.
        let margins: Vec<f64> = feats
            .iter_rows()
            .map(|r| {
                let mut z = bias;
                for (&wi, &v) in w.iter().zip(r) {
                    z += wi * v;
                }
                z
            })
            .collect();
        let (platt_a, platt_b) = fit_platt(&margins, y, &w_samp);

        Box::new(SvmModel {
            scaler,
            rff,
            weights: w,
            bias,
            platt_a,
            platt_b,
        })
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

/// Fits `P(y=1|m) = sigmoid(a·m + b)` by weighted gradient descent.
fn fit_platt(margins: &[f64], y: &[u8], w: &[f64]) -> (f64, f64) {
    let mut a = 1.0;
    let mut b = 0.0;
    let w_total: f64 = w.iter().sum();
    for _ in 0..200 {
        let mut ga = 0.0;
        let mut gb = 0.0;
        for ((&m, &t), &wi) in margins.iter().zip(y).zip(w) {
            let err = (sigmoid(a * m + b) - f64::from(t)) * wi;
            ga += err * m;
            gb += err;
        }
        a -= 0.5 * ga / w_total;
        b -= 0.5 * gb / w_total;
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::SeededRng;

    fn blobs(n_per: usize, sep: f64, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(2 * n_per, 2);
        let mut y = Vec::new();
        for label in [0u8, 1u8] {
            let cx = if label == 0 { -sep } else { sep };
            for _ in 0..n_per {
                x.push_row(&[rng.normal(cx, 1.0), rng.normal(0.0, 1.0)]);
                y.push(label);
            }
        }
        (x, y)
    }

    fn circles(n_per: usize, seed: u64) -> (Matrix, Vec<u8>) {
        // Positives inside a ring of negatives — not linearly separable.
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(2 * n_per, 2);
        let mut y = Vec::new();
        for _ in 0..n_per {
            let a = rng.range(0.0, std::f64::consts::TAU);
            let r = rng.range(0.0, 0.8);
            x.push_row(&[r * a.cos(), r * a.sin()]);
            y.push(1);
        }
        for _ in 0..n_per {
            let a = rng.range(0.0, std::f64::consts::TAU);
            let r = rng.range(2.0, 2.8);
            x.push_row(&[r * a.cos(), r * a.sin()]);
            y.push(0);
        }
        (x, y)
    }

    fn accuracy(m: &dyn Model, x: &Matrix, y: &[u8]) -> f64 {
        m.predict(x).iter().zip(y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
    }

    #[test]
    fn linear_svm_separates_blobs() {
        let (x, y) = blobs(150, 3.0, 1);
        let m = SvmConfig::linear(10.0).fit(&x, &y, 2);
        assert!(accuracy(m.as_ref(), &x, &y) > 0.95);
    }

    #[test]
    fn rbf_svm_solves_circles_where_linear_fails() {
        let (x, y) = circles(150, 3);
        let linear = SvmConfig::linear(10.0).fit(&x, &y, 4);
        let rbf = SvmConfig::rbf(10.0, 1.0).fit(&x, &y, 4);
        let acc_lin = accuracy(linear.as_ref(), &x, &y);
        let acc_rbf = accuracy(rbf.as_ref(), &x, &y);
        assert!(acc_rbf > 0.9, "rbf accuracy {acc_rbf}");
        assert!(acc_rbf > acc_lin + 0.2, "lin {acc_lin} rbf {acc_rbf}");
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = blobs(100, 1.0, 5);
        let m = SvmConfig::default().fit(&x, &y, 6);
        for p in m.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn single_class_constant() {
        let x = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let m = SvmConfig::default().fit(&x, &[0, 0, 0], 0);
        assert_eq!(m.predict_proba(&x), vec![0.0; 3]);
    }

    #[test]
    fn platt_fit_orients_probabilities() {
        // Margins perfectly ordered: calibration must be increasing.
        let margins = vec![-2.0, -1.0, 1.0, 2.0];
        let y = [0, 0, 1, 1];
        let w = [1.0; 4];
        let (a, b) = fit_platt(&margins, &y, &w);
        assert!(a > 0.0);
        assert!(sigmoid(a * 2.0 + b) > 0.5);
        assert!(sigmoid(a * -2.0 + b) < 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(60, 1.5, 7);
        let a = SvmConfig::default().fit(&x, &y, 8).predict_proba(&x);
        let b = SvmConfig::default().fit(&x, &y, 8).predict_proba(&x);
        assert_eq!(a, b);
    }
}
