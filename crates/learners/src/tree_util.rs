//! Helpers shared between the classification and regression tree builders.

/// Midpoint that is guaranteed to satisfy `lo <= m < hi` in floating
/// point (falls back to `lo` when the average rounds up to `hi`).
#[inline]
pub(crate) fn midpoint(lo: f64, hi: f64) -> f64 {
    let m = lo + (hi - lo) / 2.0;
    if m >= hi {
        lo
    } else {
        m
    }
}

/// In-place partition; returns the count of elements satisfying the
/// predicate (moved to the front). Not stable.
pub(crate) fn partition<T, F: FnMut(&T) -> bool>(xs: &mut [T], mut pred: F) -> usize {
    let mut store = 0;
    for i in 0..xs.len() {
        if pred(&xs[i]) {
            xs.swap(store, i);
            store += 1;
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_moves_matches_front() {
        let mut xs = vec![5, 2, 8, 1, 9, 3];
        let mid = partition(&mut xs, |&v| v < 5);
        assert_eq!(mid, 3);
        assert!(xs[..mid].iter().all(|&v| v < 5));
        assert!(xs[mid..].iter().all(|&v| v >= 5));
    }

    #[test]
    fn partition_all_or_none() {
        let mut xs = vec![1, 2, 3];
        assert_eq!(partition(&mut xs, |_| true), 3);
        assert_eq!(partition(&mut xs, |_| false), 0);
    }

    #[test]
    fn midpoint_strictly_below_hi() {
        let lo = 1.0;
        let hi = 1.0 + f64::EPSILON;
        let m = midpoint(lo, hi);
        assert!(m >= lo && m < hi);
        assert!((midpoint(0.0, 2.0) - 1.0).abs() < 1e-15);
    }
}
