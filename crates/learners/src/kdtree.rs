//! kd-tree accelerated exact k-NN search.
//!
//! The paper's critique of distance-based re-sampling is its O(n²)
//! cost. In low dimension a kd-tree cuts a query from O(n·d) to roughly
//! O(log n); in high dimension (the 30-plus-feature datasets of the
//! evaluation) pruning degrades toward a full scan — which is exactly
//! why the workspace defaults to the parallel brute-force kernel and
//! keeps the kd-tree as an opt-in for low-dimensional data. The
//! `neighbors` Criterion bench quantifies the crossover.
//!
//! Classic construction: split on the widest dimension at the median,
//! leaves hold small buckets; queries prune subtrees by splitting-plane
//! distance against the current k-th best.

use crate::neighbors::Neighbor;
use spe_data::matrix::squared_distance;
use spe_data::{Matrix, SpeError};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

const LEAF_SIZE: usize = 16;

enum Node {
    Leaf {
        /// Range into `points` (indices into the original matrix).
        start: usize,
        len: usize,
    },
    Split {
        dim: usize,
        value: f64,
        left: usize,
        right: usize,
    },
}

/// An immutable kd-tree over the rows of a matrix.
pub struct KdTree<'a> {
    data: &'a Matrix,
    nodes: Vec<Node>,
    /// Row indices, permuted so every leaf owns a contiguous range.
    points: Vec<usize>,
}

impl<'a> KdTree<'a> {
    /// Builds a tree over all rows of `data`.
    ///
    /// # Panics
    /// Panics on degenerate input (no rows or no columns); prefer
    /// [`Self::try_build`] in fault-isolated paths like the online
    /// retrain loop.
    pub fn build(data: &'a Matrix) -> Self {
        Self::try_build(data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`Self::build`]: a matrix with no rows is
    /// [`SpeError::EmptyDataset`], one with rows but no columns is
    /// [`SpeError::DimensionMismatch`].
    pub fn try_build(data: &'a Matrix) -> Result<Self, SpeError> {
        if data.rows() == 0 {
            return Err(SpeError::EmptyDataset);
        }
        if data.cols() == 0 {
            return Err(SpeError::DimensionMismatch {
                what: "kd-tree dimensions",
                expected: 1,
                got: 0,
            });
        }
        let mut tree = KdTree {
            data,
            nodes: Vec::new(),
            points: (0..data.rows()).collect(),
        };
        let n = data.rows();
        tree.build_node(0, n);
        Ok(tree)
    }

    /// Builds the subtree over `points[start..start+len]`; returns its
    /// node index.
    fn build_node(&mut self, start: usize, len: usize) -> usize {
        if len <= LEAF_SIZE {
            self.nodes.push(Node::Leaf { start, len });
            return self.nodes.len() - 1;
        }
        // Widest dimension of this point set.
        let d = self.data.cols();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for &p in &self.points[start..start + len] {
            for (j, &v) in self.data.row(p).iter().enumerate() {
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
        }
        // `try_build` guarantees d >= 1, but degrade to a leaf rather
        // than unwrap: a single oversized bucket is merely slower,
        // never wrong, and cannot take a background caller down.
        let Some((dim, spread)) = (0..d)
            .map(|j| (j, hi[j] - lo[j]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
        else {
            self.nodes.push(Node::Leaf { start, len });
            return self.nodes.len() - 1;
        };
        if spread <= 0.0 {
            // All points identical: keep as one (possibly large) leaf.
            self.nodes.push(Node::Leaf { start, len });
            return self.nodes.len() - 1;
        }

        // Median split (select_nth keeps both halves non-empty).
        let mid = len / 2;
        let data = self.data;
        self.points[start..start + len]
            .select_nth_unstable_by(mid, |&a, &b| data.get(a, dim).total_cmp(&data.get(b, dim)));
        let value = data.get(self.points[start + mid], dim);

        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { start: 0, len: 0 }); // placeholder
        let left = self.build_node(start, mid);
        let right = self.build_node(start + mid, len - mid);
        self.nodes[me] = Node::Split {
            dim,
            value,
            left,
            right,
        };
        me
    }

    /// Exact k nearest neighbors of `query`, sorted by ascending
    /// distance (ties by index). `exclude` removes one row (leave-one-
    /// out), mirroring [`crate::neighbors::knn_query`].
    pub fn query(&self, query: &[f64], k: usize, exclude: Option<usize>) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        self.search(0, query, k, exclude, &mut heap);
        let mut out: Vec<Neighbor> = heap.into_iter().map(|e| e.0).collect();
        out.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq).then(a.index.cmp(&b.index)));
        out
    }

    fn search(
        &self,
        node: usize,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
        heap: &mut BinaryHeap<HeapEntry>,
    ) {
        match self.nodes[node] {
            Node::Leaf { start, len } => {
                for &p in &self.points[start..start + len] {
                    if exclude == Some(p) {
                        continue;
                    }
                    let d = squared_distance(query, self.data.row(p));
                    if heap.len() < k {
                        heap.push(HeapEntry(Neighbor {
                            index: p,
                            dist_sq: d,
                        }));
                    } else if let Some(top) = heap.peek() {
                        if d < top.0.dist_sq {
                            heap.pop();
                            heap.push(HeapEntry(Neighbor {
                                index: p,
                                dist_sq: d,
                            }));
                        }
                    }
                }
            }
            Node::Split {
                dim,
                value,
                left,
                right,
            } => {
                let diff = query[dim] - value;
                let (near, far) = if diff <= 0.0 {
                    (left, right)
                } else {
                    (right, left)
                };
                self.search(near, query, k, exclude, heap);
                // Prune the far side unless the splitting plane is closer
                // than the current k-th best.
                let plane_dist = diff * diff;
                let need_far =
                    heap.len() < k || heap.peek().is_some_and(|top| plane_dist < top.0.dist_sq);
                if need_far {
                    self.search(far, query, k, exclude, heap);
                }
            }
        }
    }
}

/// Max-heap entry (largest distance on top for eviction).
struct HeapEntry(Neighbor);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .dist_sq
            .total_cmp(&other.0.dist_sq)
            .then_with(|| self.0.index.cmp(&other.0.index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbors::knn_query;
    use spe_data::SeededRng;

    fn random_matrix(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = SeededRng::new(seed);
        Matrix::from_vec(n, d, (0..n * d).map(|_| rng.uniform()).collect())
    }

    #[test]
    fn matches_brute_force_exactly() {
        let m = random_matrix(500, 3, 1);
        let tree = KdTree::build(&m);
        let mut rng = SeededRng::new(2);
        for _ in 0..50 {
            let q = [rng.uniform(), rng.uniform(), rng.uniform()];
            let kd = tree.query(&q, 7, None);
            let brute = knn_query(&m, &q, 7, None);
            assert_eq!(kd, brute);
        }
    }

    #[test]
    fn leave_one_out_matches_brute_force() {
        let m = random_matrix(300, 2, 3);
        let tree = KdTree::build(&m);
        for i in [0usize, 150, 299] {
            let kd = tree.query(m.row(i), 5, Some(i));
            let brute = knn_query(&m, m.row(i), 5, Some(i));
            assert_eq!(kd, brute);
            assert!(kd.iter().all(|h| h.index != i));
        }
    }

    #[test]
    fn k_larger_than_points_returns_all() {
        let m = random_matrix(10, 2, 4);
        let tree = KdTree::build(&m);
        let hits = tree.query(&[0.5, 0.5], 50, None);
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn duplicate_points_handled() {
        // All-identical points would defeat median splitting.
        let m = Matrix::from_vec(40, 2, vec![1.0; 80]);
        let tree = KdTree::build(&m);
        let hits = tree.query(&[1.0, 1.0], 3, None);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|h| h.dist_sq == 0.0));
    }

    #[test]
    fn zero_k_is_empty() {
        let m = random_matrix(20, 2, 5);
        let tree = KdTree::build(&m);
        assert!(tree.query(&[0.0, 0.0], 0, None).is_empty());
    }

    #[test]
    fn try_build_reports_degenerate_input_as_errors() {
        let empty = Matrix::from_vec(0, 3, Vec::new());
        assert!(matches!(
            KdTree::try_build(&empty),
            Err(SpeError::EmptyDataset)
        ));
        let no_cols = Matrix::from_vec(4, 0, Vec::new());
        assert!(matches!(
            KdTree::try_build(&no_cols),
            Err(SpeError::DimensionMismatch { .. })
        ));
        let ok = random_matrix(30, 2, 8);
        assert!(KdTree::try_build(&ok).is_ok());
    }

    #[test]
    fn high_dimension_still_exact() {
        let m = random_matrix(200, 25, 6);
        let tree = KdTree::build(&m);
        let mut rng = SeededRng::new(7);
        let q: Vec<f64> = (0..25).map(|_| rng.uniform()).collect();
        assert_eq!(tree.query(&q, 5, None), knn_query(&m, &q, 5, None));
    }
}
