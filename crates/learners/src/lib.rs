//! From-scratch base classifiers for the self-paced-ensemble workspace.
//!
//! The paper evaluates SPE and its baselines on eight canonical
//! classifiers (§VI-A1): KNN, Decision Tree (C4.5-style), SVM, MLP,
//! AdaBoost, Bagging, Random Forest and GBDT, plus Logistic Regression in
//! Table V. None of those exist as mature Rust crates, so this crate
//! reimplements each one behind a common [`Learner`] / [`Model`] trait
//! pair. Every learner:
//!
//! - accepts optional per-sample weights (required by the boosting-based
//!   ensemble baselines),
//! - takes an explicit seed so experiments are reproducible,
//! - outputs a calibrated-ish probability of the positive class, which is
//!   what both the hardness function of SPE and the AUCPRC metric consume.
//!
//! Substitutions relative to the paper's Python stack are documented in
//! `DESIGN.md` (notably: the RBF-kernel SVM is approximated with random
//! Fourier features + linear Pegasos, and LightGBM's GBDT is an exact
//! greedy GBDT with logistic loss).

pub mod adaboost;
pub mod bagging;
pub mod binscore;
pub mod ensemble;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod forest;
pub mod gbdt;
mod histogram;
pub mod kdtree;
pub mod knn;
pub mod logistic;
pub mod mlp;
pub mod multiclass;
pub mod naive_bayes;
pub mod neighbors;
pub mod persist;
pub mod regtree;
pub mod svm;
pub mod traits;
pub mod tree;
mod tree_util;

pub use adaboost::AdaBoostConfig;
pub use bagging::BaggingConfig;
pub use binscore::CodeScorer;
pub use ensemble::{fit_parallel, SoftVoteEnsemble};
#[cfg(feature = "fault-injection")]
pub use fault::{FaultPlan, FaultyLearner, NanModel};
pub use forest::RandomForestConfig;
pub use gbdt::{GbdtConfig, GbdtModel};
pub use knn::{KnnConfig, KnnModel};
pub use logistic::sigmoid;
pub use logistic::{LogisticModel, LogisticRegressionConfig};
pub use mlp::MlpConfig;
pub use multiclass::OneVsRestModel;
pub use naive_bayes::GaussianNbConfig;
pub use persist::ModelSnapshot;
pub use regtree::RegTree;
pub use svm::{SvmConfig, SvmModel};
pub use traits::{
    BinRequest, BinnedLearner, BinnedProblem, FeatureBound, Learner, Model, SharedLearner,
};
pub use tree::{DecisionTreeConfig, NodeView, SplitCriterion, SplitMethod, TreeModel};
