//! Adaptive Boosting, binary, in the real-valued SAMME.R form
//! (Friedman/Hastie/Tibshirani's "Real AdaBoost") — the variant behind
//! scikit-learn's `AdaBoostClassifier`, which the paper uses.
//!
//! Each round the weak learner outputs class probabilities; its additive
//! contribution is the half log-odds `h_m(x) = ½·ln(p/(1−p))`, and the
//! sample weights update as `w ← w·exp(−y±·h_m(x))`. Unlike discrete
//! AdaBoost, there is no error-≥-0.5 bailout: a weak learner that is
//! wrong on the current weighting simply contributes negative log-odds
//! where it errs, so boosting proceeds on tasks (e.g. checkerboards)
//! where individual stumps start at chance level.
//!
//! Paper hyper-parameter (Table II): `n_estimators = 10`. The default
//! weak learner here is a **depth-2 tree** rather than sklearn's
//! depth-1 stump: boosted stumps form a coordinate-additive model and
//! therefore cannot rank XOR/checkerboard structure at all (AUCPRC
//! pins to prevalence no matter how many rounds), which would erase the
//! method differentiation Table II exists to show. Use
//! [`AdaBoostConfig::stumps`] for the classic stump variant.

use crate::traits::{check_fit_inputs, effective_weights, ConstantModel, Learner, Model};
use crate::tree::DecisionTreeConfig;
use spe_data::{Matrix, MatrixView};
use std::sync::Arc;

/// AdaBoost hyper-parameters.
#[derive(Clone)]
pub struct AdaBoostConfig {
    /// Number of boosting rounds (paper: 10).
    pub n_estimators: usize,
    /// Weak learner (default: depth-1 stump).
    pub base: Arc<dyn Learner>,
}

impl std::fmt::Debug for AdaBoostConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaBoostConfig")
            .field("n_estimators", &self.n_estimators)
            .field("base", &self.base.name())
            .finish()
    }
}

impl Default for AdaBoostConfig {
    fn default() -> Self {
        Self {
            n_estimators: 10,
            base: Arc::new(DecisionTreeConfig::with_depth(2)),
        }
    }
}

impl AdaBoostConfig {
    /// AdaBoost with `n` rounds over depth-2 weak trees (see the module
    /// docs for why depth 2 rather than stumps).
    pub fn new(n_estimators: usize) -> Self {
        Self {
            n_estimators,
            ..Self::default()
        }
    }

    /// Classic stump-based AdaBoost (coordinate-additive model).
    pub fn stumps(n_estimators: usize) -> Self {
        Self {
            n_estimators,
            base: Arc::new(DecisionTreeConfig::stump()),
        }
    }

    /// AdaBoost over a custom weak learner.
    pub fn with_base(n_estimators: usize, base: Arc<dyn Learner>) -> Self {
        Self { n_estimators, base }
    }
}

/// Clip for the half-log-odds contribution; sklearn clamps probabilities
/// similarly to keep a single confident stump from dominating forever.
const LOG_ODDS_CLIP: f64 = 3.0;

struct AdaBoostModel {
    members: Vec<Box<dyn Model>>,
}

impl AdaBoostModel {
    fn decision(&self, x: MatrixView<'_>) -> Vec<f64> {
        let mut acc = vec![0.0; x.rows()];
        for m in &self.members {
            for (a, p) in acc.iter_mut().zip(m.predict_proba_view(x)) {
                *a += half_log_odds(p);
            }
        }
        acc
    }
}

/// `½·ln(p/(1−p))`, clipped.
#[inline]
fn half_log_odds(p: f64) -> f64 {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    (0.5 * (p / (1.0 - p)).ln()).clamp(-LOG_ODDS_CLIP, LOG_ODDS_CLIP)
}

impl Model for AdaBoostModel {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        let scale = 1.0 / (self.members.len() as f64).max(1.0);
        self.decision(x)
            .into_iter()
            .map(|d| crate::logistic::sigmoid(2.0 * d * scale))
            .collect()
    }
}

impl Learner for AdaBoostConfig {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        check_fit_inputs(x, y, weights);
        assert!(self.n_estimators > 0, "need at least one round");
        let n_pos = y.iter().filter(|&&l| l != 0).count();
        if n_pos == 0 || n_pos == y.len() {
            return Box::new(ConstantModel(if n_pos == 0 { 0.0 } else { 1.0 }));
        }

        let n = y.len();
        let mut w = effective_weights(n, weights);
        normalize(&mut w);

        let mut members: Vec<Box<dyn Model>> = Vec::new();
        for round in 0..self.n_estimators {
            // Cooperative budget: keep the rounds boosted so far (at
            // least one) once the wall-clock deadline passes.
            if round > 0 && spe_runtime::budget_exceeded() {
                break;
            }
            let model = self
                .base
                .fit_weighted(x, y, Some(&w), seed.wrapping_add(round as u64));
            let probs = model.predict_proba(x);
            // SAMME.R weight update: w ← w · exp(−y±·h(x)).
            let mut err = 0.0;
            for ((&p, &t), wi) in probs.iter().zip(y).zip(w.iter_mut()) {
                let y_pm = if t != 0 { 1.0 } else { -1.0 };
                if (p >= 0.5) != (t != 0) {
                    err += *wi;
                }
                *wi *= (-y_pm * half_log_odds(p)).exp();
            }
            normalize(&mut w);
            members.push(model);
            if err <= 1e-12 {
                // Perfect weak learner: nothing left to boost.
                break;
            }
        }

        Box::new(AdaBoostModel { members })
    }

    fn name(&self) -> &'static str {
        "AdaBoost"
    }
}

fn normalize(w: &mut [f64]) {
    let s: f64 = w.iter().sum();
    if s > 0.0 {
        for wi in w.iter_mut() {
            *wi /= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::SeededRng;

    fn stripes(seed: u64) -> (Matrix, Vec<u8>) {
        // 1-D data with label = region parity — a single stump fails, a
        // boosted combination of stumps succeeds.
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(300, 1);
        let mut y = Vec::new();
        for _ in 0..300 {
            let v = rng.range(0.0, 4.0);
            x.push_row(&[v]);
            y.push((v as usize % 2) as u8);
        }
        (x, y)
    }

    fn accuracy(m: &dyn Model, x: &Matrix, y: &[u8]) -> f64 {
        m.predict(x).iter().zip(y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
    }

    #[test]
    fn boosting_beats_a_single_stump() {
        let (x, y) = stripes(1);
        let stump = DecisionTreeConfig::stump().fit(&x, &y, 0);
        let boosted = AdaBoostConfig::new(25).fit(&x, &y, 0);
        let a_stump = accuracy(stump.as_ref(), &x, &y);
        let a_boost = accuracy(boosted.as_ref(), &x, &y);
        assert!(a_boost > a_stump + 0.15, "stump {a_stump}, boost {a_boost}");
        assert!(a_boost > 0.9, "boost {a_boost}");
    }

    #[test]
    fn separable_data_boosts_to_perfection() {
        let x = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let m = AdaBoostConfig::new(10).fit(&x, &y, 0);
        assert_eq!(m.predict(&x), y);
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = stripes(2);
        let m = AdaBoostConfig::new(10).fit(&x, &y, 0);
        for p in m.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p), "{p}");
        }
    }

    #[test]
    fn single_class_constant() {
        let x = Matrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]);
        let m = AdaBoostConfig::default().fit(&x, &[0, 0, 0], 0);
        assert_eq!(m.predict_proba(&x), vec![0.0; 3]);
    }

    #[test]
    fn respects_initial_sample_weights() {
        // Conflicting labels at the same x; initial weights should decide
        // the prediction.
        let x = Matrix::from_vec(4, 1, vec![0.0, 0.0, 1.0, 1.0]);
        let y = vec![0, 1, 0, 1];
        let w = vec![1.0, 5.0, 1.0, 5.0];
        let m = AdaBoostConfig::new(3).fit_weighted(&x, &y, Some(&w), 0);
        let p = m.predict_proba(&x);
        assert!(p.iter().all(|&pi| pi > 0.5), "{p:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = stripes(3);
        let a = AdaBoostConfig::new(5).fit(&x, &y, 4).predict_proba(&x);
        let b = AdaBoostConfig::new(5).fit(&x, &y, 4).predict_proba(&x);
        assert_eq!(a, b);
    }
}
