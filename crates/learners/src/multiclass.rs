//! One-vs-rest composition of binary scorers into a k-class model.
//!
//! [`OneVsRestModel`] holds one binary scorer per class; class `c`'s
//! scorer outputs the probability that a row belongs to class `c`
//! (versus everything else). The k-way distribution is the per-row
//! normalization of those scores. This is the restore target of
//! [`ModelSnapshot::MultiClass`] and the serving-side shape of both
//! multi-class SPE strategies — the one-vs-rest *trainer* lives in
//! `spe-core`, next to the self-paced loop it reuses.

use crate::persist::ModelSnapshot;
use crate::traits::{FeatureBound, Model};
use spe_data::MatrixView;

/// A k-class model assembled from one binary scorer per class.
pub struct OneVsRestModel {
    per_class: Vec<Box<dyn Model>>,
}

impl OneVsRestModel {
    /// Wraps per-class scorers; element `c` scores class `c`.
    ///
    /// # Panics
    /// Panics with fewer than two scorers.
    pub fn new(per_class: Vec<Box<dyn Model>>) -> Self {
        assert!(
            per_class.len() >= 2,
            "one-vs-rest needs at least two class scorers"
        );
        Self { per_class }
    }

    /// The per-class scorers, in class-id order.
    pub fn members(&self) -> &[Box<dyn Model>] {
        &self.per_class
    }

    /// Writes each class's *raw* (unnormalized) one-vs-rest score into
    /// the row-major `[n_rows × k]` buffer.
    fn raw_scores_into(&self, x: MatrixView<'_>, out: &mut [f64]) {
        let k = self.per_class.len();
        let rows = x.rows();
        let mut scratch = vec![0.0; rows];
        for (c, member) in self.per_class.iter().enumerate() {
            member.predict_proba_into(x, &mut scratch);
            for (i, &p) in scratch.iter().enumerate() {
                out[i * k + c] = p;
            }
        }
    }
}

impl Model for OneVsRestModel {
    /// Scalar view of a k-class model: the probability of *not* being
    /// class 0. For `k = 2` this is exactly the positive-class
    /// probability; for `k > 2` it collapses the distribution to
    /// "anything but the first class".
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        let k = self.per_class.len();
        let mut full = vec![0.0; x.rows() * k];
        self.predict_proba_k_into(x, &mut full);
        full.chunks_exact(k).map(|row| 1.0 - row[0]).collect()
    }

    fn n_classes(&self) -> usize {
        self.per_class.len()
    }

    fn predict_proba_k_into(&self, x: MatrixView<'_>, out: &mut [f64]) {
        let k = self.per_class.len();
        assert_eq!(
            out.len(),
            x.rows() * k,
            "output buffer must hold rows * n_classes values"
        );
        self.raw_scores_into(x, out);
        for row in out.chunks_exact_mut(k) {
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                for p in row.iter_mut() {
                    *p /= sum;
                }
            } else {
                // Every scorer said 0: no evidence either way.
                row.fill(1.0 / k as f64);
            }
        }
    }

    fn snapshot(&self) -> Option<ModelSnapshot> {
        let per_class = self
            .per_class
            .iter()
            .map(|m| m.snapshot())
            .collect::<Option<Vec<_>>>()?;
        Some(ModelSnapshot::MultiClass { per_class })
    }

    fn feature_bound(&self) -> FeatureBound {
        self.per_class
            .iter()
            .map(|m| m.feature_bound())
            .fold(FeatureBound::Any, FeatureBound::merge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ConstantModel;
    use serde::{Deserialize, Serialize};
    use spe_data::Matrix;

    fn ovr(scores: &[f64]) -> OneVsRestModel {
        OneVsRestModel::new(
            scores
                .iter()
                .map(|&p| Box::new(ConstantModel(p)) as Box<dyn Model>)
                .collect(),
        )
    }

    #[test]
    fn normalizes_scores_per_row() {
        let m = ovr(&[0.1, 0.3, 0.6]);
        let x = Matrix::zeros(2, 1);
        assert_eq!(m.n_classes(), 3);
        let proba = m.predict_proba_k(&x);
        for row in proba.chunks_exact(3) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert_eq!(row, &[0.1, 0.3, 0.6]);
        }
        assert_eq!(m.predict_class(&x), vec![2, 2]);
        // Scalar view: 1 - P(class 0).
        assert_eq!(m.predict_proba(&x), vec![0.9, 0.9]);
    }

    #[test]
    fn all_zero_scores_fall_back_to_uniform() {
        let m = ovr(&[0.0, 0.0, 0.0, 0.0]);
        let proba = m.predict_proba_k(&Matrix::zeros(1, 1));
        assert_eq!(proba, vec![0.25; 4]);
    }

    #[test]
    fn k2_matches_binary_semantics() {
        let m = ovr(&[0.25, 0.75]);
        let x = Matrix::zeros(1, 1);
        assert_eq!(m.predict_proba(&x), vec![0.75]);
        assert_eq!(m.predict_proba_k(&x), vec![0.25, 0.75]);
    }

    #[test]
    fn snapshot_round_trips() {
        let m = ovr(&[0.2, 0.3, 0.5]);
        let snap = m.snapshot().unwrap_or_else(|| panic!("no snapshot"));
        assert_eq!(snap.kind(), "MultiClass");
        assert_eq!(snap.n_classes(), 3);
        let restored = ModelSnapshot::from_bytes(&snap.to_bytes())
            .unwrap_or_else(|e| panic!("{e}"))
            .restore();
        let x = Matrix::zeros(2, 1);
        assert_eq!(restored.n_classes(), 3);
        assert_eq!(restored.predict_proba_k(&x), m.predict_proba_k(&x));
    }

    #[test]
    #[should_panic(expected = "at least two class scorers")]
    fn rejects_single_scorer() {
        let _ = ovr(&[0.5]);
    }
}
