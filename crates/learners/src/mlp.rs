//! Multi-layer perceptron: one ReLU hidden layer, sigmoid output,
//! weighted binary cross-entropy, Adam optimizer, mini-batch training.
//!
//! Paper hyper-parameter (Table II): 128 hidden units. The paper's
//! batch-training failure mode under imbalance — minority samples appear
//! in only a few batches, so the network collapses to the majority — is
//! reproduced faithfully by this implementation (see the
//! `collapses_on_extreme_imbalance` test), which is exactly the behaviour
//! SPE's balanced subsets fix.

use crate::logistic::sigmoid;
use crate::traits::{
    check_fit_inputs, effective_weights, weighted_positive_fraction, ConstantModel, Learner, Model,
};
use spe_data::{Matrix, MatrixView, SeededRng, Standardizer};

/// MLP hyper-parameters.
#[derive(Clone, Debug)]
pub struct MlpConfig {
    /// Hidden layer width (paper: 128).
    pub hidden: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub l2: f64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: 128,
            learning_rate: 1e-2,
            epochs: 60,
            batch_size: 64,
            l2: 1e-5,
        }
    }
}

impl MlpConfig {
    /// Config with the given hidden width.
    pub fn with_hidden(hidden: usize) -> Self {
        Self {
            hidden,
            ..Self::default()
        }
    }
}

/// Flattened parameters: W1 (h x d), b1 (h), w2 (h), b2 (1).
struct Params {
    w1: Vec<f64>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    d: usize,
    h: usize,
}

impl Params {
    fn forward(&self, row: &[f64], hidden_buf: &mut Vec<f64>) -> f64 {
        hidden_buf.clear();
        for j in 0..self.h {
            let w = &self.w1[j * self.d..(j + 1) * self.d];
            let mut z = self.b1[j];
            for (&wi, &xi) in w.iter().zip(row) {
                z += wi * xi;
            }
            hidden_buf.push(z.max(0.0));
        }
        let mut out = self.b2;
        for (&w, &hval) in self.w2.iter().zip(hidden_buf.iter()) {
            out += w * hval;
        }
        out
    }
}

struct MlpModel {
    scaler: Standardizer,
    params: Params,
}

impl Model for MlpModel {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        let mut std_buf = Vec::new();
        let mut hid_buf = Vec::with_capacity(self.params.h);
        x.iter_rows()
            .map(|r| {
                self.scaler.transform_row_into(r, &mut std_buf);
                sigmoid(self.params.forward(&std_buf, &mut hid_buf))
            })
            .collect()
    }
}

/// Adam state for one parameter vector.
struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    lr: f64,
}

impl Adam {
    const B1: f64 = 0.9;
    const B2: f64 = 0.999;
    const EPS: f64 = 1e-8;

    fn new(len: usize, lr: f64) -> Self {
        Self {
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
            lr,
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        self.t += 1;
        let bc1 = 1.0 - Self::B1.powi(self.t as i32);
        let bc2 = 1.0 - Self::B2.powi(self.t as i32);
        for ((p, &g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = Self::B1 * *m + (1.0 - Self::B1) * g;
            *v = Self::B2 * *v + (1.0 - Self::B2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + Self::EPS);
        }
    }
}

impl Learner for MlpConfig {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        check_fit_inputs(x, y, weights);
        let w_samp = effective_weights(y.len(), weights);
        let prior = weighted_positive_fraction(y, &w_samp);
        if prior == 0.0 || prior == 1.0 {
            return Box::new(ConstantModel(prior));
        }

        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let n = y.len();
        let d = x.cols();
        let h = self.hidden;
        let mut rng = SeededRng::new(seed);

        // He initialization for the ReLU layer.
        let he = (2.0 / d as f64).sqrt();
        let mut params = Params {
            w1: (0..h * d).map(|_| rng.normal(0.0, he)).collect(),
            b1: vec![0.0; h],
            w2: (0..h)
                .map(|_| rng.normal(0.0, (2.0 / h as f64).sqrt()))
                .collect(),
            b2: 0.0,
            d,
            h,
        };
        let w_mean: f64 = w_samp.iter().sum::<f64>() / n as f64;
        let w_norm: Vec<f64> = w_samp.iter().map(|&w| w / w_mean).collect();

        let mut adam_w1 = Adam::new(h * d, self.learning_rate);
        let mut adam_b1 = Adam::new(h, self.learning_rate);
        let mut adam_w2 = Adam::new(h, self.learning_rate);
        let mut adam_b2 = Adam::new(1, self.learning_rate);

        let mut g_w1 = vec![0.0; h * d];
        let mut g_b1 = vec![0.0; h];
        let mut g_w2 = vec![0.0; h];
        let mut g_b2 = [0.0];
        let mut b2_param = [params.b2];
        let mut hidden = Vec::with_capacity(h);
        let mut order: Vec<usize> = (0..n).collect();

        for epoch in 0..self.epochs {
            // Cooperative budget: stop between epochs once the installed
            // wall-clock deadline passes; current weights remain valid.
            if epoch > 0 && spe_runtime::budget_exceeded() {
                break;
            }
            rng.shuffle(&mut order);
            for batch in order.chunks(self.batch_size.max(1)) {
                g_w1.iter_mut().for_each(|g| *g = 0.0);
                g_b1.iter_mut().for_each(|g| *g = 0.0);
                g_w2.iter_mut().for_each(|g| *g = 0.0);
                g_b2[0] = 0.0;
                let mut w_batch = 0.0;

                for &i in batch {
                    let row = xs.row(i);
                    let out = params.forward(row, &mut hidden);
                    // dL/d(out) for weighted BCE with sigmoid output.
                    let delta = (sigmoid(out) - f64::from(y[i])) * w_norm[i];
                    w_batch += w_norm[i];
                    g_b2[0] += delta;
                    for j in 0..h {
                        g_w2[j] += delta * hidden[j];
                        if hidden[j] > 0.0 {
                            let dh = delta * params.w2[j];
                            g_b1[j] += dh;
                            let gw = &mut g_w1[j * d..(j + 1) * d];
                            for (g, &xi) in gw.iter_mut().zip(row) {
                                *g += dh * xi;
                            }
                        }
                    }
                }
                if w_batch == 0.0 {
                    continue;
                }
                let inv = 1.0 / w_batch;
                for (g, &p) in g_w1.iter_mut().zip(&params.w1) {
                    *g = *g * inv + self.l2 * p;
                }
                for g in &mut g_b1 {
                    *g *= inv;
                }
                for (g, &p) in g_w2.iter_mut().zip(&params.w2) {
                    *g = *g * inv + self.l2 * p;
                }
                g_b2[0] *= inv;

                adam_w1.step(&mut params.w1, &g_w1);
                adam_b1.step(&mut params.b1, &g_b1);
                adam_w2.step(&mut params.w2, &g_w2);
                b2_param[0] = params.b2;
                adam_b2.step(&mut b2_param, &g_b2);
                params.b2 = b2_param[0];
            }
        }

        Box::new(MlpModel { scaler, params })
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::SeededRng;

    fn xor_cloud(n_per: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(4 * n_per, 2);
        let mut y = Vec::new();
        for &(cx, cy, l) in &[(0.0, 0.0, 0u8), (1.0, 1.0, 0), (0.0, 1.0, 1), (1.0, 0.0, 1)] {
            for _ in 0..n_per {
                x.push_row(&[rng.normal(cx, 0.1), rng.normal(cy, 0.1)]);
                y.push(l);
            }
        }
        (x, y)
    }

    #[test]
    fn learns_xor_clusters() {
        let (x, y) = xor_cloud(60, 1);
        let cfg = MlpConfig {
            hidden: 16,
            epochs: 80,
            ..MlpConfig::default()
        };
        let m = cfg.fit(&x, &y, 2);
        let acc =
            m.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn collapses_on_extreme_imbalance() {
        // 1000 negatives vs 5 positives, overlapping: plain batch
        // training predicts (almost) everything negative — the failure
        // mode the paper describes for batch learners (§III).
        let mut rng = SeededRng::new(3);
        let mut x = Matrix::with_capacity(1005, 2);
        let mut y = Vec::new();
        for _ in 0..1000 {
            x.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]);
            y.push(0);
        }
        for _ in 0..5 {
            x.push_row(&[rng.normal(0.8, 1.0), rng.normal(0.0, 1.0)]);
            y.push(1);
        }
        let cfg = MlpConfig {
            hidden: 16,
            epochs: 40,
            ..MlpConfig::default()
        };
        let m = cfg.fit(&x, &y, 4);
        let pos_preds: usize = m.predict(&x).iter().map(|&p| p as usize).sum();
        assert!(pos_preds <= 10, "predicted {pos_preds} positives");
    }

    #[test]
    fn single_class_constant() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let m = MlpConfig::with_hidden(4).fit(&x, &[1, 1, 1, 1], 0);
        assert_eq!(m.predict_proba(&x), vec![1.0; 4]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_cloud(20, 5);
        let cfg = MlpConfig {
            hidden: 8,
            epochs: 5,
            ..MlpConfig::default()
        };
        let a = cfg.fit(&x, &y, 6).predict_proba(&x);
        let b = cfg.fit(&x, &y, 6).predict_proba(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn outputs_are_probabilities() {
        let (x, y) = xor_cloud(20, 7);
        let m = MlpConfig::with_hidden(8).fit(&x, &y, 8);
        for p in m.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p), "{p}");
        }
    }
}
