//! Classification decision tree (CART) with weighted samples.
//!
//! Serves as the paper's "DT / C4.5" base classifier (entropy criterion
//! approximates C4.5's information gain on numeric features) and as the
//! building block for AdaBoost, Bagging, Random Forest and every
//! under/over-sampling ensemble baseline.
//!
//! Two split-finding engines share one [`TreeModel`] representation:
//!
//! - **Exact** ([`SplitMethod::Exact`]): per node, each candidate
//!   feature is sorted once and scanned with weighted prefix sums —
//!   O(n·d·log n) per level, every distinct value a candidate.
//! - **Histogram** ([`SplitMethod::Histogram`]): features are quantized
//!   once into ≤256 bins ([`BinIndex`]), then each node accumulates
//!   per-bin (weight, weighted-positive) stats in O(n·d) and scans bin
//!   boundaries. Sibling histograms come from parent−child subtraction,
//!   and ensembles can share one index across all members via
//!   [`BinnedLearner`].
//!
//! The trained tree is a flat arena of 24-byte nodes (leaf flag folded
//! into the feature id, threshold and leaf probability sharing one
//! slot), so `predict_proba` walks a contiguous `Vec` with no pointer
//! chasing.

use crate::histogram::{self, BinStat, HistLayout};
use crate::persist::ModelSnapshot;
use crate::traits::{
    check_fit_inputs, effective_weights, BinRequest, BinnedLearner, BinnedProblem, ConstantModel,
    FeatureBound, Learner, Model,
};
use crate::tree_util::{midpoint, partition};
use spe_data::{BinIndex, Matrix, MatrixView, SeededRng};
use std::cell::Cell;

/// Split quality criterion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitCriterion {
    /// Gini impurity `2p(1-p)` (CART default).
    Gini,
    /// Shannon entropy (information gain, ≈ C4.5 on numeric features).
    Entropy,
}

impl SplitCriterion {
    /// Impurity of a node with weighted positive fraction `p`.
    #[inline]
    pub fn impurity(self, p: f64) -> f64 {
        match self {
            SplitCriterion::Gini => 2.0 * p * (1.0 - p),
            SplitCriterion::Entropy => {
                let q = 1.0 - p;
                let mut h = 0.0;
                if p > 0.0 {
                    h -= p * p.log2();
                }
                if q > 0.0 {
                    h -= q * q.log2();
                }
                h
            }
        }
    }
}

/// Which split-finding engine a tree uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitMethod {
    /// Sort-and-scan over raw feature values at every node.
    Exact,
    /// Pre-binned histogram split finding (≤ `max_bins` thresholds per
    /// feature), regardless of training-set size.
    Histogram,
    /// Exact below `threshold` training rows, histogram at or above —
    /// small fits keep every candidate threshold, large fits get the
    /// O(n·d)-per-level path.
    Auto {
        /// Row count at which the histogram engine takes over.
        threshold: usize,
    },
}

impl SplitMethod {
    /// Default crossover for [`SplitMethod::Auto`]: below this the exact
    /// engine's extra candidate resolution is cheap enough to keep.
    pub const DEFAULT_AUTO_THRESHOLD: usize = 8192;

    /// True when a fit on `n` rows should take the histogram path.
    #[inline]
    pub fn use_histogram(self, n: usize) -> bool {
        match self {
            SplitMethod::Exact => false,
            SplitMethod::Histogram => true,
            SplitMethod::Auto { threshold } => n >= threshold,
        }
    }
}

impl Default for SplitMethod {
    fn default() -> Self {
        SplitMethod::Auto {
            threshold: Self::DEFAULT_AUTO_THRESHOLD,
        }
    }
}

/// Decision-tree hyper-parameters. Paper settings: `max_depth = 10` for
/// the standalone DT (Table II); depth-1 stumps inside AdaBoost.
#[derive(Clone, Debug)]
pub struct DecisionTreeConfig {
    /// Split criterion.
    pub criterion: SplitCriterion,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples on each side of a split.
    pub min_samples_leaf: usize,
    /// Features sampled per node (None = all; Random Forest sets √d).
    pub max_features: Option<usize>,
    /// Minimum weighted impurity decrease to accept a split.
    pub min_impurity_decrease: f64,
    /// Split-finding engine (default: histogram for large fits).
    pub split_method: SplitMethod,
    /// Bin budget per feature for the histogram engine (≤ 256).
    pub max_bins: usize,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        Self {
            criterion: SplitCriterion::Gini,
            max_depth: 10,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            min_impurity_decrease: 0.0,
            split_method: SplitMethod::default(),
            max_bins: spe_data::binning::MAX_BINS,
        }
    }
}

impl DecisionTreeConfig {
    /// Default config with the given depth cap.
    pub fn with_depth(max_depth: usize) -> Self {
        Self {
            max_depth,
            ..Self::default()
        }
    }

    /// Entropy-criterion config (the paper's C4.5 stand-in).
    pub fn c45(max_depth: usize) -> Self {
        Self {
            criterion: SplitCriterion::Entropy,
            max_depth,
            ..Self::default()
        }
    }

    /// A depth-1 decision stump (AdaBoost's default weak learner).
    pub fn stump() -> Self {
        Self::with_depth(1)
    }
}

/// Sentinel feature id marking a leaf node.
const LEAF: u32 = u32::MAX;

/// One arena node: 24 bytes, no enum discriminant. `feature == LEAF`
/// marks a leaf, in which case `value` is the positive-class probability
/// and the child indices are unused; otherwise `value` is the split
/// threshold (`<=` goes left).
#[derive(Clone, Copy, Debug)]
struct FlatNode {
    feature: u32,
    left: u32,
    right: u32,
    value: f64,
}

serde::impl_serde!(FlatNode {
    feature,
    left,
    right,
    value
});

impl FlatNode {
    #[inline]
    fn leaf(proba: f64) -> Self {
        Self {
            feature: LEAF,
            left: 0,
            right: 0,
            value: proba,
        }
    }
}

/// A trained decision tree (flat node arena; root at index 0).
#[derive(Clone)]
pub struct TreeModel {
    nodes: Vec<FlatNode>,
}

impl serde::Serialize for TreeModel {
    fn serialize(&self, w: &mut serde::Writer) {
        serde::Serialize::serialize(&self.nodes, w);
    }
}

impl serde::Deserialize for TreeModel {
    /// Decodes and structurally validates the arena: both builders push
    /// a split node before its children, so `left`/`right` must point
    /// strictly forward. Enforcing that on decode means a decoded tree
    /// can never loop or index outside the arena during prediction.
    fn deserialize(r: &mut serde::Reader<'_>) -> Result<Self, serde::DecodeError> {
        let nodes = <Vec<FlatNode> as serde::Deserialize>::deserialize(r)?;
        validate_arena(&nodes).map_err(serde::DecodeError::Invalid)?;
        Ok(Self { nodes })
    }
}

/// Checks the parent-before-child invariant of a flat tree arena: the
/// builders push a split node before its subtrees, so child indices
/// point strictly forward. [`crate::regtree::RegTree`] performs the same
/// check on its own (structurally identical) node type.
fn validate_arena(nodes: &[FlatNode]) -> Result<(), String> {
    if nodes.is_empty() {
        return Err("empty tree arena".into());
    }
    let n = nodes.len() as u32;
    for (i, node) in nodes.iter().enumerate() {
        if node.feature == LEAF {
            continue;
        }
        let i = i as u32;
        if node.left <= i || node.right <= i || node.left >= n || node.right >= n {
            return Err(format!(
                "tree node {i} has out-of-order children ({}, {})",
                node.left, node.right
            ));
        }
    }
    Ok(())
}

/// Read-only view of one flat-arena tree node, for consumers that
/// re-compile trees into other layouts (the serving-side quantized
/// kernel) without exposing the private arena representation.
///
/// Indices come from [`TreeModel::node`] / `RegTree::node`; the root is
/// node 0 and children always point strictly forward in the arena.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NodeView {
    /// A terminal node carrying the prediction (probability for
    /// classification trees, leaf weight for regression trees).
    Leaf {
        /// Predicted value.
        value: f64,
    },
    /// An internal split: `x[feature] <= threshold` goes left.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold (`<=` goes left, `NaN` goes right).
        threshold: f64,
        /// Arena index of the left child (`> self`).
        left: usize,
        /// Arena index of the right child (`> self`).
        right: usize,
    },
}

impl TreeModel {
    /// Probability of the positive class for one sample.
    #[inline]
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            let n = self.nodes[i];
            if n.feature == LEAF {
                return n.value;
            }
            i = if row[n.feature as usize] <= n.value {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    }

    /// Number of nodes (diagnostic).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached (diagnostic).
    pub fn depth(&self) -> usize {
        fn go(nodes: &[FlatNode], i: usize) -> usize {
            let n = nodes[i];
            if n.feature == LEAF {
                0
            } else {
                1 + go(nodes, n.left as usize).max(go(nodes, n.right as usize))
            }
        }
        go(&self.nodes, 0)
    }

    /// Read-only view of arena node `i` (root at 0).
    ///
    /// # Panics
    /// Panics if `i >= self.n_nodes()`.
    pub fn node(&self, i: usize) -> NodeView {
        let n = self.nodes[i];
        if n.feature == LEAF {
            NodeView::Leaf { value: n.value }
        } else {
            NodeView::Split {
                feature: n.feature as usize,
                threshold: n.value,
                left: n.left as usize,
                right: n.right as usize,
            }
        }
    }
}

impl Model for TreeModel {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        x.iter_rows().map(|r| self.predict_one(r)).collect()
    }

    fn predict_proba_into(&self, x: MatrixView<'_>, out: &mut [f64]) {
        assert_eq!(out.len(), x.rows(), "output buffer must match row count");
        for (o, r) in out.iter_mut().zip(x.iter_rows()) {
            *o = self.predict_one(r);
        }
    }

    fn snapshot(&self) -> Option<ModelSnapshot> {
        Some(ModelSnapshot::Tree(self.clone()))
    }

    fn feature_bound(&self) -> FeatureBound {
        FeatureBound::AtLeast(
            self.nodes
                .iter()
                .filter(|n| n.feature != LEAF)
                .map(|n| n.feature as usize + 1)
                .max()
                .unwrap_or(0),
        )
    }
}

/// Reusable per-fit working memory, kept in a thread-local so repeated
/// `fit` calls on one thread (ensemble members, boosting rounds) stop
/// re-allocating their sort buffers, index vectors and histogram pool.
#[derive(Default)]
pub(crate) struct TreeScratch {
    /// Exact path: (value, weight-like, second weight-like) sort buffer.
    pub sorted: Vec<(f64, f64, f64)>,
    /// Exact path: sample-index buffer partitioned in place.
    pub idx: Vec<usize>,
    /// Histogram path: row-index buffer partitioned in place.
    pub rows: Vec<u32>,
    /// Histogram path: recycled full-layout histogram buffers.
    pub hist_pool: Vec<Vec<BinStat>>,
    /// Histogram path: per-row first accumulated quantity.
    pub wa: Vec<f64>,
    /// Histogram path: per-row second accumulated quantity.
    pub wb: Vec<f64>,
}

thread_local! {
    static SCRATCH: Cell<TreeScratch> = Cell::new(TreeScratch::default());
}

/// Runs `f` with this thread's [`TreeScratch`], restoring it (with any
/// grown capacity) afterwards. A panic inside `f` loses the buffers —
/// the next fit simply starts from empty ones.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut TreeScratch) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut s = cell.take();
        let r = f(&mut s);
        cell.set(s);
        r
    })
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [u8],
    w: &'a [f64],
    cfg: &'a DecisionTreeConfig,
    rng: SeededRng,
    nodes: Vec<FlatNode>,
    /// Scratch: (value, weight, weighted positive indicator) sorted per feature.
    scratch: &'a mut Vec<(f64, f64, f64)>,
}

impl<'a> Builder<'a> {
    fn leaf(&mut self, w_pos: f64, w_total: f64) -> u32 {
        let proba = if w_total > 0.0 { w_pos / w_total } else { 0.5 };
        self.nodes.push(FlatNode::leaf(proba));
        (self.nodes.len() - 1) as u32
    }

    /// Builds the subtree over `idx` at the given depth, returning its
    /// node index.
    fn build(&mut self, idx: &mut [usize], depth: usize) -> u32 {
        let (w_pos, w_total) = self.node_weights(idx);
        let p = if w_total > 0.0 { w_pos / w_total } else { 0.0 };
        let node_impurity = self.cfg.criterion.impurity(p);

        // The budget check makes deep builds interruptible: once the
        // installed wall-clock deadline passes, every pending subtree
        // terminates as a (valid) leaf instead of splitting further.
        let stop = depth >= self.cfg.max_depth
            || idx.len() < self.cfg.min_samples_split
            || node_impurity == 0.0
            || w_total <= 0.0
            || (depth > 0 && spe_runtime::budget_exceeded());
        if stop {
            return self.leaf(w_pos, w_total);
        }

        let Some(best) = self.best_split(idx, node_impurity, w_total) else {
            return self.leaf(w_pos, w_total);
        };

        // Partition indices in place around the threshold.
        let mid = partition(idx, |&i| self.x.get(i, best.feature) <= best.threshold);
        if mid == 0 || mid == idx.len() {
            // Numeric degeneracy (shouldn't happen with midpoint
            // thresholds, but guard anyway).
            return self.leaf(w_pos, w_total);
        }

        // Reserve the split node, then build children.
        self.nodes.push(FlatNode::leaf(0.0));
        let me = (self.nodes.len() - 1) as u32;
        let (li, ri) = idx.split_at_mut(mid);
        let left = self.build(li, depth + 1);
        let right = self.build(ri, depth + 1);
        self.nodes[me as usize] = FlatNode {
            feature: best.feature as u32,
            left,
            right,
            value: best.threshold,
        };
        me
    }

    fn node_weights(&self, idx: &[usize]) -> (f64, f64) {
        let mut w_pos = 0.0;
        let mut w_total = 0.0;
        for &i in idx {
            w_total += self.w[i];
            if self.y[i] != 0 {
                w_pos += self.w[i];
            }
        }
        (w_pos, w_total)
    }

    fn best_split(&mut self, idx: &[usize], node_impurity: f64, w_total: f64) -> Option<BestSplit> {
        let d = self.x.cols();
        // Feature sub-sampling allocates per node (the rng hands back a
        // vector); the common full-feature case iterates 0..d directly.
        let sampled: Option<Vec<usize>> = match self.cfg.max_features {
            Some(m) if m < d => Some(self.rng.sample_indices(d, m)),
            _ => None,
        };
        let mut best: Option<BestSplit> = None;
        let (w_pos_all, _) = self.node_weights(idx);
        match &sampled {
            Some(fs) => {
                for &f in fs {
                    self.scan_feature(f, idx, node_impurity, w_total, w_pos_all, &mut best);
                }
            }
            None => {
                for f in 0..d {
                    self.scan_feature(f, idx, node_impurity, w_total, w_pos_all, &mut best);
                }
            }
        }
        best
    }

    fn scan_feature(
        &mut self,
        f: usize,
        idx: &[usize],
        node_impurity: f64,
        w_total: f64,
        w_pos_all: f64,
        best: &mut Option<BestSplit>,
    ) {
        let min_leaf = self.cfg.min_samples_leaf;
        // Gather and sort this node's samples by feature value.
        self.scratch.clear();
        for &i in idx {
            let pos_w = if self.y[i] != 0 { self.w[i] } else { 0.0 };
            self.scratch.push((self.x.get(i, f), self.w[i], pos_w));
        }
        self.scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

        let mut w_left = 0.0;
        let mut w_pos_left = 0.0;
        let n = self.scratch.len();
        for s in 0..n - 1 {
            let (v, wi, pi) = self.scratch[s];
            w_left += wi;
            w_pos_left += pi;
            let v_next = self.scratch[s + 1].0;
            if v == v_next {
                continue; // can't split between equal values
            }
            let count_left = s + 1;
            if count_left < min_leaf || n - count_left < min_leaf {
                continue;
            }
            let w_right = w_total - w_left;
            if w_left <= 0.0 || w_right <= 0.0 {
                continue;
            }
            let p_l = w_pos_left / w_left;
            let p_r = (w_pos_all - w_pos_left) / w_right;
            let child_imp = (w_left * self.cfg.criterion.impurity(p_l)
                + w_right * self.cfg.criterion.impurity(p_r))
                / w_total;
            // Like scikit-learn, a split is admissible when its
            // impurity decrease is >= the configured minimum; with the
            // default of 0 this allows zero-gain splits (necessary for
            // XOR-like data, where every first split has zero gain).
            let gain = node_impurity - child_imp;
            if gain >= self.cfg.min_impurity_decrease - 1e-15
                && best.as_ref().is_none_or(|b| gain > b.gain)
            {
                *best = Some(BestSplit {
                    feature: f,
                    threshold: midpoint(v, v_next),
                    gain,
                });
            }
        }
    }
}

struct BestHistSplit {
    feature: usize,
    bin: usize,
    gain: f64,
}

/// Histogram-path tree builder over a shared [`BinIndex`].
struct HistBuilder<'a> {
    bins: &'a BinIndex,
    /// Per-row sample weight (indexed by bin-index row id).
    wa: &'a [f64],
    /// Per-row weighted positive indicator.
    wb: &'a [f64],
    cfg: &'a DecisionTreeConfig,
    rng: SeededRng,
    layout: HistLayout,
    nodes: Vec<FlatNode>,
    /// Recycled full-layout histogram buffers (thread-local pool).
    pool: &'a mut Vec<Vec<BinStat>>,
    /// Scratch for single-feature histograms in sampled mode.
    feat_hist: Vec<BinStat>,
}

impl<'a> HistBuilder<'a> {
    /// True when every feature is a candidate at every node — the
    /// precondition for sibling subtraction (with per-node feature
    /// sampling the candidate sets differ between parent and child, so
    /// each node accumulates only its own sampled features instead).
    fn full_features(&self) -> bool {
        self.cfg
            .max_features
            .is_none_or(|m| m >= self.bins.n_features())
    }

    fn alloc_hist(&mut self) -> Vec<BinStat> {
        let mut h = self.pool.pop().unwrap_or_default();
        h.resize(self.layout.total(), BinStat::default());
        h
    }

    fn free_hist(&mut self, h: Vec<BinStat>) {
        self.pool.push(h);
    }

    fn push_leaf(&mut self, w_pos: f64, w_total: f64) -> u32 {
        let proba = if w_total > 0.0 { w_pos / w_total } else { 0.5 };
        self.nodes.push(FlatNode::leaf(proba));
        (self.nodes.len() - 1) as u32
    }

    /// True when a child with `n` rows at `depth` cannot split, so
    /// computing its histogram would be wasted work.
    fn surely_leaf(&self, depth: usize, n: usize) -> bool {
        depth >= self.cfg.max_depth || n < self.cfg.min_samples_split
    }

    /// Builds the subtree over `rows`; `hist_in`, when present, is this
    /// node's pre-computed histogram (from sibling subtraction).
    fn build(&mut self, rows: &mut [u32], depth: usize, hist_in: Option<Vec<BinStat>>) -> u32 {
        let mut w_pos = 0.0;
        let mut w_total = 0.0;
        for &r in rows.iter() {
            w_total += self.wa[r as usize];
            w_pos += self.wb[r as usize];
        }
        let p = if w_total > 0.0 { w_pos / w_total } else { 0.0 };
        let node_impurity = self.cfg.criterion.impurity(p);

        // Same stop set as the exact engine, including the cooperative
        // wall-clock budget check.
        let stop = depth >= self.cfg.max_depth
            || rows.len() < self.cfg.min_samples_split
            || node_impurity == 0.0
            || w_total <= 0.0
            || (depth > 0 && spe_runtime::budget_exceeded());
        if stop {
            if let Some(h) = hist_in {
                self.free_hist(h);
            }
            return self.push_leaf(w_pos, w_total);
        }

        let (best, hist) = if self.full_features() {
            let hist = match hist_in {
                Some(h) => h,
                None => {
                    let mut h = self.alloc_hist();
                    histogram::accumulate(self.bins, rows, self.wa, self.wb, &self.layout, &mut h);
                    h
                }
            };
            let best = self.best_split_full(&hist, rows.len(), node_impurity, w_total, w_pos);
            (best, Some(hist))
        } else {
            debug_assert!(hist_in.is_none());
            let best = self.best_split_sampled(rows, node_impurity, w_total, w_pos);
            (best, None)
        };

        let Some(best) = best else {
            if let Some(h) = hist {
                self.free_hist(h);
            }
            return self.push_leaf(w_pos, w_total);
        };

        // Partition rows by bin code; by the bin/cut invariant this is
        // exactly `value <= threshold` for every finite feature value.
        let codes = self.bins.feature_codes(best.feature);
        let split_bin = best.bin as u8;
        let mid = partition(rows, |&r| codes[r as usize] <= split_bin);
        if mid == 0 || mid == rows.len() {
            if let Some(h) = hist {
                self.free_hist(h);
            }
            return self.push_leaf(w_pos, w_total);
        }

        self.nodes.push(FlatNode::leaf(0.0));
        let me = (self.nodes.len() - 1) as u32;
        let (lrows, rrows) = rows.split_at_mut(mid);

        // Derive child histograms: accumulate the smaller side, get the
        // sibling by subtracting it from the parent in place.
        let need_children =
            !self.surely_leaf(depth + 1, lrows.len()) || !self.surely_leaf(depth + 1, rrows.len());
        let (lh, rh) = match hist {
            Some(mut parent) if need_children => {
                let mut child = self.alloc_hist();
                let (small, child_is_left) = if lrows.len() <= rrows.len() {
                    (&*lrows, true)
                } else {
                    (&*rrows, false)
                };
                histogram::accumulate(self.bins, small, self.wa, self.wb, &self.layout, &mut child);
                histogram::subtract(&mut parent, &child);
                if child_is_left {
                    (Some(child), Some(parent))
                } else {
                    (Some(parent), Some(child))
                }
            }
            Some(parent) => {
                self.free_hist(parent);
                (None, None)
            }
            None => (None, None),
        };

        let left = self.build(lrows, depth + 1, lh);
        let right = self.build(rrows, depth + 1, rh);
        self.nodes[me as usize] = FlatNode {
            feature: best.feature as u32,
            left,
            right,
            value: self.bins.cut(best.feature, best.bin),
        };
        me
    }

    fn best_split_full(
        &mut self,
        hist: &[BinStat],
        n_node: usize,
        node_impurity: f64,
        w_total: f64,
        w_pos_all: f64,
    ) -> Option<BestHistSplit> {
        let mut best: Option<BestHistSplit> = None;
        for f in 0..self.bins.n_features() {
            let stats = &hist[self.layout.feature_range(f)];
            if let Some((bin, gain)) =
                self.scan_bins(stats, n_node, node_impurity, w_total, w_pos_all)
            {
                if best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(BestHistSplit {
                        feature: f,
                        bin,
                        gain,
                    });
                }
            }
        }
        best
    }

    fn best_split_sampled(
        &mut self,
        rows: &[u32],
        node_impurity: f64,
        w_total: f64,
        w_pos_all: f64,
    ) -> Option<BestHistSplit> {
        let d = self.bins.n_features();
        let m = self.cfg.max_features.unwrap_or(d).min(d);
        let features = self.rng.sample_indices(d, m);
        let mut best: Option<BestHistSplit> = None;
        let mut feat_hist = std::mem::take(&mut self.feat_hist);
        for f in features {
            feat_hist.clear();
            feat_hist.resize(self.bins.n_bins(f), BinStat::default());
            histogram::accumulate_feature(self.bins, rows, self.wa, self.wb, f, &mut feat_hist);
            if let Some((bin, gain)) =
                self.scan_bins(&feat_hist, rows.len(), node_impurity, w_total, w_pos_all)
            {
                if best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(BestHistSplit {
                        feature: f,
                        bin,
                        gain,
                    });
                }
            }
        }
        self.feat_hist = feat_hist;
        best
    }

    /// Scans one feature's bin prefixes; returns the best (bin, gain).
    /// Mirrors the exact engine's admissibility rules: `min_samples_leaf`
    /// on both sides, positive weight on both sides, and a gain at least
    /// `min_impurity_decrease` (first strict maximum wins ties).
    fn scan_bins(
        &self,
        stats: &[BinStat],
        n_node: usize,
        node_impurity: f64,
        w_total: f64,
        w_pos_all: f64,
    ) -> Option<(usize, f64)> {
        let min_leaf = self.cfg.min_samples_leaf;
        let mut best: Option<(usize, f64)> = None;
        let mut w_left = 0.0;
        let mut w_pos_left = 0.0;
        let mut n_left = 0usize;
        for (b, s) in stats.iter().enumerate().take(stats.len().saturating_sub(1)) {
            w_left += s.a;
            w_pos_left += s.b;
            n_left += s.n as usize;
            let n_right = n_node - n_left;
            if n_left == 0 || n_right == 0 {
                continue; // threshold separates nothing
            }
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let w_right = w_total - w_left;
            if w_left <= 0.0 || w_right <= 0.0 {
                continue;
            }
            let p_l = w_pos_left / w_left;
            let p_r = (w_pos_all - w_pos_left) / w_right;
            let child_imp = (w_left * self.cfg.criterion.impurity(p_l)
                + w_right * self.cfg.criterion.impurity(p_r))
                / w_total;
            let gain = node_impurity - child_imp;
            if gain >= self.cfg.min_impurity_decrease - 1e-15 && best.is_none_or(|(_, g)| gain > g)
            {
                best = Some((b, gain));
            }
        }
        best
    }
}

impl DecisionTreeConfig {
    /// Histogram-path fit over a subset of a pre-built bin index.
    ///
    /// `y` and `weights` cover **all** rows of `bins`; `rows` selects the
    /// training subset (repeats allowed). Single-class subsets degrade
    /// to a [`ConstantModel`], mirroring the plain `fit` path.
    fn fit_hist(
        &self,
        bins: &BinIndex,
        y: &[u8],
        weights: Option<&[f64]>,
        rows: &[u32],
        seed: u64,
    ) -> Box<dyn Model> {
        assert_eq!(y.len(), bins.n_rows(), "label/bin-index length mismatch");
        if let Some(w) = weights {
            assert_eq!(w.len(), bins.n_rows(), "weight/bin-index length mismatch");
        }
        assert!(!rows.is_empty(), "cannot fit on an empty row subset");
        let n_pos = rows.iter().filter(|&&r| y[r as usize] != 0).count();
        if n_pos == 0 || n_pos == rows.len() {
            return Box::new(ConstantModel(if n_pos == 0 { 0.0 } else { 1.0 }));
        }

        let n = bins.n_rows();
        let nodes = with_scratch(|scratch| {
            // Per-row accumulated quantities: weight and weighted
            // positive indicator (leaf probabilities and gains are
            // ratio-based, so the weight scale is irrelevant).
            scratch.wa.clear();
            match weights {
                Some(w) => scratch.wa.extend_from_slice(w),
                None => scratch.wa.resize(n, 1.0),
            }
            scratch.wb.clear();
            scratch
                .wb
                .extend((0..n).map(|r| if y[r] != 0 { scratch.wa[r] } else { 0.0 }));
            scratch.rows.clear();
            scratch.rows.extend_from_slice(rows);

            let mut builder = HistBuilder {
                bins,
                wa: &scratch.wa,
                wb: &scratch.wb,
                cfg: self,
                rng: SeededRng::new(seed),
                layout: HistLayout::new(bins),
                nodes: Vec::new(),
                pool: &mut scratch.hist_pool,
                feat_hist: Vec::new(),
            };
            let root = builder.build(&mut scratch.rows, 0, None);
            debug_assert_eq!(root, 0);
            builder.nodes
        });
        Box::new(TreeModel { nodes })
    }
}

impl Learner for DecisionTreeConfig {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        check_fit_inputs(x, y, weights);
        if self.split_method.use_histogram(y.len()) {
            let bins = BinIndex::build(x, self.max_bins);
            let rows: Vec<u32> = (0..y.len() as u32).collect();
            return self.fit_hist(&bins, y, weights, &rows, seed);
        }
        let w = effective_weights(y.len(), weights);
        let n_pos = y.iter().filter(|&&l| l != 0).count();
        if n_pos == 0 || n_pos == y.len() {
            return Box::new(ConstantModel(if n_pos == 0 { 0.0 } else { 1.0 }));
        }
        let nodes = with_scratch(|scratch| {
            let mut builder = Builder {
                x,
                y,
                w: &w,
                cfg: self,
                rng: SeededRng::new(seed),
                nodes: Vec::new(),
                scratch: &mut scratch.sorted,
            };
            scratch.idx.clear();
            scratch.idx.extend(0..y.len());
            let root = builder.build(&mut scratch.idx, 0);
            // Both the leaf and the split path push the root node before
            // any descendant, so the root always lands at slot 0.
            debug_assert_eq!(root, 0);
            builder.nodes
        });
        Box::new(TreeModel { nodes })
    }

    fn name(&self) -> &'static str {
        "DT"
    }

    fn as_binned(&self) -> Option<&dyn BinnedLearner> {
        Some(self)
    }
}

impl BinnedLearner for DecisionTreeConfig {
    fn bin_request(&self) -> Option<BinRequest> {
        match self.split_method {
            SplitMethod::Exact => None,
            SplitMethod::Histogram => Some(BinRequest {
                min_rows: 0,
                max_bins: self.max_bins,
            }),
            SplitMethod::Auto { threshold } => Some(BinRequest {
                min_rows: threshold,
                max_bins: self.max_bins,
            }),
        }
    }

    fn fit_on_bins(&self, problem: &BinnedProblem<'_>, rows: &[u32], seed: u64) -> Box<dyn Model> {
        self.fit_hist(problem.bins, problem.y, problem.weights, rows, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<u8>) {
        // XOR pattern: needs depth >= 2.
        let pts = [(0.0, 0.0, 0u8), (0.0, 1.0, 1), (1.0, 0.0, 1), (1.0, 1.0, 0)];
        let mut x = Matrix::with_capacity(4, 2);
        let mut y = Vec::new();
        for &(a, b, l) in &pts {
            x.push_row(&[a, b]);
            y.push(l);
        }
        (x, y)
    }

    fn hist_cfg(max_depth: usize) -> DecisionTreeConfig {
        DecisionTreeConfig {
            split_method: SplitMethod::Histogram,
            ..DecisionTreeConfig::with_depth(max_depth)
        }
    }

    #[test]
    fn learns_a_threshold() {
        let x = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let m = DecisionTreeConfig::with_depth(3).fit(&x, &y, 0);
        let test = Matrix::from_vec(2, 1, vec![1.5, 10.5]);
        assert_eq!(m.predict(&test), vec![0, 1]);
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let (x, y) = xor_data();
        let m = DecisionTreeConfig::with_depth(2).fit(&x, &y, 0);
        assert_eq!(m.predict(&x), y);
    }

    #[test]
    fn stump_cannot_learn_xor() {
        let (x, y) = xor_data();
        let m = DecisionTreeConfig::stump().fit(&x, &y, 0);
        assert_ne!(m.predict(&x), y);
    }

    #[test]
    fn entropy_criterion_also_works() {
        let x = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let m = DecisionTreeConfig::c45(3).fit(&x, &y, 0);
        assert_eq!(
            m.predict(&Matrix::from_vec(2, 1, vec![0.5, 11.5])),
            vec![0, 1]
        );
    }

    #[test]
    fn single_class_returns_constant() {
        let x = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let m = DecisionTreeConfig::default().fit(&x, &[1, 1, 1], 0);
        assert_eq!(m.predict_proba(&x), vec![1.0; 3]);
    }

    #[test]
    fn respects_max_depth() {
        // Alternating labels force deep trees if allowed.
        let x = Matrix::from_vec(16, 1, (0..16).map(f64::from).collect());
        let y: Vec<u8> = (0..16).map(|i| (i % 2) as u8).collect();
        let learner = DecisionTreeConfig::with_depth(2);
        let boxed = learner.fit(&x, &y, 0);
        // Downcast trick: verify via behaviour — a depth-2 tree has at
        // most 4 leaves, so it cannot match 16 alternating labels.
        let preds = boxed.predict(&x);
        assert_ne!(preds, y);
    }

    #[test]
    fn weights_dominate_split_choice() {
        // Unweighted majority at each x is label 0, but the positives
        // carry large weight, flipping leaf probabilities.
        let x = Matrix::from_vec(4, 1, vec![0.0, 0.0, 1.0, 1.0]);
        let y = vec![0, 1, 0, 1];
        let w = vec![1.0, 9.0, 1.0, 9.0];
        let m = DecisionTreeConfig::with_depth(2).fit_weighted(&x, &y, Some(&w), 0);
        let p = m.predict_proba(&x);
        assert!(p.iter().all(|&pi| pi > 0.5), "{p:?}");
    }

    #[test]
    fn min_samples_leaf_blocks_tiny_splits() {
        let x = Matrix::from_vec(5, 1, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let y = vec![1, 0, 0, 0, 0];
        let cfg = DecisionTreeConfig {
            min_samples_leaf: 2,
            ..DecisionTreeConfig::with_depth(4)
        };
        let m = cfg.fit(&x, &y, 0);
        // The lone positive cannot be isolated: its leaf has >= 2 samples,
        // so its probability is at most 0.5.
        let p = m.predict_proba(&Matrix::from_vec(1, 1, vec![0.0]));
        assert!(p[0] <= 0.5 + 1e-12);
    }

    #[test]
    fn feature_subsampling_is_seeded() {
        let (x, y) = xor_data();
        let cfg = DecisionTreeConfig {
            max_features: Some(1),
            ..DecisionTreeConfig::with_depth(3)
        };
        let a = cfg.fit(&x, &y, 7).predict_proba(&x);
        let b = cfg.fit(&x, &y, 7).predict_proba(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_feature_values_never_split_between_ties() {
        let x = Matrix::from_vec(4, 1, vec![1.0, 1.0, 1.0, 1.0]);
        let y = vec![0, 1, 0, 1];
        let m = DecisionTreeConfig::default().fit(&x, &y, 0);
        let p = m.predict_proba(&x);
        assert!(p.iter().all(|&pi| (pi - 0.5).abs() < 1e-12));
    }

    #[test]
    fn probabilities_are_leaf_fractions() {
        // Only two distinct feature values, so only one split exists.
        let x = Matrix::from_vec(6, 1, vec![0.0, 0.0, 0.0, 5.0, 5.0, 5.0]);
        let y = vec![0, 0, 1, 1, 1, 0];
        let cfg = DecisionTreeConfig::with_depth(1);
        let m = cfg.fit(&x, &y, 0);
        let p = m.predict_proba(&Matrix::from_vec(2, 1, vec![0.0, 5.0]));
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((p[1] - 2.0 / 3.0).abs() < 1e-9);
    }

    // ---- histogram engine ----

    #[test]
    fn histogram_learns_a_threshold() {
        let x = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let m = hist_cfg(3).fit(&x, &y, 0);
        let test = Matrix::from_vec(2, 1, vec![1.5, 10.5]);
        assert_eq!(m.predict(&test), vec![0, 1]);
    }

    #[test]
    fn histogram_learns_xor() {
        let (x, y) = xor_data();
        let m = hist_cfg(2).fit(&x, &y, 0);
        assert_eq!(m.predict(&x), y);
    }

    #[test]
    fn histogram_matches_exact_on_training_data() {
        // Low-cardinality data: every distinct value gets its own bin,
        // so the histogram engine considers the same candidate
        // partitions as the exact engine and both produce identical
        // leaf assignments on the training set.
        let mut rng = SeededRng::new(42);
        let n = 400;
        let mut x = Matrix::with_capacity(n, 3);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.below(8) as f64;
            let b = rng.below(8) as f64;
            let c = rng.below(4) as f64;
            x.push_row(&[a, b, c]);
            y.push(u8::from(a + b >= 8.0));
        }
        let exact = DecisionTreeConfig {
            split_method: SplitMethod::Exact,
            ..DecisionTreeConfig::with_depth(6)
        };
        let hist = DecisionTreeConfig {
            split_method: SplitMethod::Histogram,
            ..DecisionTreeConfig::with_depth(6)
        };
        let pe = exact.fit(&x, &y, 0).predict_proba(&x);
        let ph = hist.fit(&x, &y, 0).predict_proba(&x);
        for (a, b) in pe.iter().zip(&ph) {
            assert!((a - b).abs() < 1e-9, "exact {a} vs hist {b}");
        }
    }

    #[test]
    fn histogram_subset_fit_uses_only_selected_rows() {
        // Rows outside the subset carry the opposite label; the model
        // must reflect the subset only.
        let x = Matrix::from_vec(8, 1, vec![0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0]);
        let y = vec![1, 1, 1, 1, 0, 0, 0, 0];
        let bins = BinIndex::build(&x, 16);
        let cfg = hist_cfg(3);
        let problem = BinnedProblem {
            bins: &bins,
            y: &y,
            weights: None,
        };
        // Subset flips the apparent geometry: low rows are 1, high are 0.
        let m = BinnedLearner::fit_on_bins(&cfg, &problem, &[0, 1, 4, 5], 0);
        let p = m.predict_proba(&Matrix::from_vec(2, 1, vec![0.5, 12.0]));
        assert!(p[0] > 0.5 && p[1] < 0.5, "{p:?}");
    }

    #[test]
    fn histogram_single_class_subset_is_constant() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let y = vec![0, 0, 1, 1];
        let bins = BinIndex::build(&x, 8);
        let problem = BinnedProblem {
            bins: &bins,
            y: &y,
            weights: None,
        };
        let m = BinnedLearner::fit_on_bins(&hist_cfg(3), &problem, &[2, 3], 0);
        assert_eq!(m.predict_proba(&x), vec![1.0; 4]);
    }

    #[test]
    fn histogram_respects_min_samples_leaf() {
        let x = Matrix::from_vec(5, 1, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let y = vec![1, 0, 0, 0, 0];
        let cfg = DecisionTreeConfig {
            min_samples_leaf: 2,
            ..hist_cfg(4)
        };
        let m = cfg.fit(&x, &y, 0);
        let p = m.predict_proba(&Matrix::from_vec(1, 1, vec![0.0]));
        assert!(p[0] <= 0.5 + 1e-12);
    }

    #[test]
    fn histogram_sampled_features_deterministic() {
        let mut rng = SeededRng::new(9);
        let n = 200;
        let mut x = Matrix::with_capacity(n, 4);
        let mut y = Vec::new();
        for _ in 0..n {
            let row: Vec<f64> = (0..4).map(|_| rng.below(16) as f64).collect();
            y.push(u8::from(row[0] >= 8.0));
            x.push_row(&row);
        }
        let cfg = DecisionTreeConfig {
            max_features: Some(2),
            ..hist_cfg(5)
        };
        let a = cfg.fit(&x, &y, 3).predict_proba(&x);
        let b = cfg.fit(&x, &y, 3).predict_proba(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn auto_threshold_switches_engines() {
        let cfg = DecisionTreeConfig::default();
        assert!(matches!(cfg.split_method, SplitMethod::Auto { .. }));
        assert!(!cfg.split_method.use_histogram(100));
        assert!(cfg
            .split_method
            .use_histogram(SplitMethod::DEFAULT_AUTO_THRESHOLD));
        assert!(SplitMethod::Histogram.use_histogram(1));
        assert!(!SplitMethod::Exact.use_histogram(usize::MAX));
    }

    #[test]
    fn bin_request_follows_split_method() {
        let exact = DecisionTreeConfig {
            split_method: SplitMethod::Exact,
            ..DecisionTreeConfig::default()
        };
        assert!(BinnedLearner::bin_request(&exact).is_none());
        let hist = hist_cfg(3);
        let req = BinnedLearner::bin_request(&hist).unwrap();
        assert_eq!(req.min_rows, 0);
        assert_eq!(req.max_bins, 256);
        let auto = DecisionTreeConfig::default();
        let req = BinnedLearner::bin_request(&auto).unwrap();
        assert_eq!(req.min_rows, SplitMethod::DEFAULT_AUTO_THRESHOLD);
    }

    #[test]
    fn predict_proba_view_matches_owned() {
        let x = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let m = DecisionTreeConfig::with_depth(3).fit(&x, &y, 0);
        assert_eq!(m.predict_proba(&x), m.predict_proba_view(x.view()));
        assert_eq!(
            m.predict_proba_view(x.view_rows(2..5)),
            m.predict_proba(&x.row_range(2..5))
        );
    }
}
