//! Classification decision tree (CART) with weighted samples.
//!
//! Serves as the paper's "DT / C4.5" base classifier (entropy criterion
//! approximates C4.5's information gain on numeric features) and as the
//! building block for AdaBoost, Bagging, Random Forest and every
//! under/over-sampling ensemble baseline.
//!
//! Implementation: exact greedy splits. Per node, each candidate feature
//! is sorted once and scanned with weighted prefix sums; the sample-index
//! buffer is partitioned in place, so building is allocation-light and
//! O(n·d·log n) per level.

use crate::traits::{check_fit_inputs, effective_weights, ConstantModel, Learner, Model};
use crate::tree_util::{midpoint, partition};
use spe_data::{Matrix, SeededRng};

/// Split quality criterion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitCriterion {
    /// Gini impurity `2p(1-p)` (CART default).
    Gini,
    /// Shannon entropy (information gain, ≈ C4.5 on numeric features).
    Entropy,
}

impl SplitCriterion {
    /// Impurity of a node with weighted positive fraction `p`.
    #[inline]
    pub fn impurity(self, p: f64) -> f64 {
        match self {
            SplitCriterion::Gini => 2.0 * p * (1.0 - p),
            SplitCriterion::Entropy => {
                let q = 1.0 - p;
                let mut h = 0.0;
                if p > 0.0 {
                    h -= p * p.log2();
                }
                if q > 0.0 {
                    h -= q * q.log2();
                }
                h
            }
        }
    }
}

/// Decision-tree hyper-parameters. Paper settings: `max_depth = 10` for
/// the standalone DT (Table II); depth-1 stumps inside AdaBoost.
#[derive(Clone, Debug)]
pub struct DecisionTreeConfig {
    /// Split criterion.
    pub criterion: SplitCriterion,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples on each side of a split.
    pub min_samples_leaf: usize,
    /// Features sampled per node (None = all; Random Forest sets √d).
    pub max_features: Option<usize>,
    /// Minimum weighted impurity decrease to accept a split.
    pub min_impurity_decrease: f64,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        Self {
            criterion: SplitCriterion::Gini,
            max_depth: 10,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            min_impurity_decrease: 0.0,
        }
    }
}

impl DecisionTreeConfig {
    /// Default config with the given depth cap.
    pub fn with_depth(max_depth: usize) -> Self {
        Self {
            max_depth,
            ..Self::default()
        }
    }

    /// Entropy-criterion config (the paper's C4.5 stand-in).
    pub fn c45(max_depth: usize) -> Self {
        Self {
            criterion: SplitCriterion::Entropy,
            max_depth,
            ..Self::default()
        }
    }

    /// A depth-1 decision stump (AdaBoost's default weak learner).
    pub fn stump() -> Self {
        Self::with_depth(1)
    }
}

/// Flat-array tree node.
#[derive(Clone, Copy, Debug)]
enum Node {
    Leaf {
        proba: f64,
    },
    Split {
        feature: u32,
        threshold: f64,
        /// Index of the left child; right child is `left + right_offset`.
        left: u32,
        right: u32,
    },
}

/// A trained decision tree.
pub struct TreeModel {
    nodes: Vec<Node>,
}

impl TreeModel {
    /// Probability of the positive class for one sample.
    #[inline]
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match self.nodes[i] {
                Node::Leaf { proba } => return proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[feature as usize] <= threshold {
                        left as usize
                    } else {
                        right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostic).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached (diagnostic).
    pub fn depth(&self) -> usize {
        fn go(nodes: &[Node], i: usize) -> usize {
            match nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + go(nodes, left as usize).max(go(nodes, right as usize))
                }
            }
        }
        go(&self.nodes, 0)
    }
}

impl Model for TreeModel {
    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows().map(|r| self.predict_one(r)).collect()
    }
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [u8],
    w: &'a [f64],
    cfg: &'a DecisionTreeConfig,
    rng: SeededRng,
    nodes: Vec<Node>,
    /// Scratch: (value, weight, weighted positive indicator) sorted per feature.
    scratch: Vec<(f64, f64, f64)>,
}

impl<'a> Builder<'a> {
    fn leaf(&mut self, w_pos: f64, w_total: f64) -> u32 {
        let proba = if w_total > 0.0 { w_pos / w_total } else { 0.5 };
        self.nodes.push(Node::Leaf { proba });
        (self.nodes.len() - 1) as u32
    }

    /// Builds the subtree over `idx` at the given depth, returning its
    /// node index.
    fn build(&mut self, idx: &mut [usize], depth: usize) -> u32 {
        let (w_pos, w_total) = self.node_weights(idx);
        let p = if w_total > 0.0 { w_pos / w_total } else { 0.0 };
        let node_impurity = self.cfg.criterion.impurity(p);

        // The budget check makes deep builds interruptible: once the
        // installed wall-clock deadline passes, every pending subtree
        // terminates as a (valid) leaf instead of splitting further.
        let stop = depth >= self.cfg.max_depth
            || idx.len() < self.cfg.min_samples_split
            || node_impurity == 0.0
            || w_total <= 0.0
            || (depth > 0 && spe_runtime::budget_exceeded());
        if stop {
            return self.leaf(w_pos, w_total);
        }

        let Some(best) = self.best_split(idx, node_impurity, w_total) else {
            return self.leaf(w_pos, w_total);
        };

        // Partition indices in place around the threshold.
        let mid = partition(idx, |&i| self.x.get(i, best.feature) <= best.threshold);
        if mid == 0 || mid == idx.len() {
            // Numeric degeneracy (shouldn't happen with midpoint
            // thresholds, but guard anyway).
            return self.leaf(w_pos, w_total);
        }

        // Reserve the split node, then build children.
        self.nodes.push(Node::Leaf { proba: 0.0 });
        let me = (self.nodes.len() - 1) as u32;
        let (li, ri) = idx.split_at_mut(mid);
        let left = self.build(li, depth + 1);
        let right = self.build(ri, depth + 1);
        self.nodes[me as usize] = Node::Split {
            feature: best.feature as u32,
            threshold: best.threshold,
            left,
            right,
        };
        me
    }

    fn node_weights(&self, idx: &[usize]) -> (f64, f64) {
        let mut w_pos = 0.0;
        let mut w_total = 0.0;
        for &i in idx {
            w_total += self.w[i];
            if self.y[i] != 0 {
                w_pos += self.w[i];
            }
        }
        (w_pos, w_total)
    }

    fn candidate_features(&mut self) -> Vec<usize> {
        let d = self.x.cols();
        match self.cfg.max_features {
            Some(m) if m < d => self.rng.sample_indices(d, m),
            _ => (0..d).collect(),
        }
    }

    fn best_split(&mut self, idx: &[usize], node_impurity: f64, w_total: f64) -> Option<BestSplit> {
        let mut best: Option<BestSplit> = None;
        let features = self.candidate_features();
        let min_leaf = self.cfg.min_samples_leaf;
        let (w_pos_all, _) = self.node_weights(idx);
        for f in features {
            // Gather and sort this node's samples by feature value.
            self.scratch.clear();
            for &i in idx {
                let pos_w = if self.y[i] != 0 { self.w[i] } else { 0.0 };
                self.scratch.push((self.x.get(i, f), self.w[i], pos_w));
            }
            self.scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

            let mut w_left = 0.0;
            let mut w_pos_left = 0.0;
            let n = self.scratch.len();
            for s in 0..n - 1 {
                let (v, wi, pi) = self.scratch[s];
                w_left += wi;
                w_pos_left += pi;
                let v_next = self.scratch[s + 1].0;
                if v == v_next {
                    continue; // can't split between equal values
                }
                let count_left = s + 1;
                if count_left < min_leaf || n - count_left < min_leaf {
                    continue;
                }
                let w_right = w_total - w_left;
                if w_left <= 0.0 || w_right <= 0.0 {
                    continue;
                }
                let p_l = w_pos_left / w_left;
                let p_r = (w_pos_all - w_pos_left) / w_right;
                let child_imp = (w_left * self.cfg.criterion.impurity(p_l)
                    + w_right * self.cfg.criterion.impurity(p_r))
                    / w_total;
                // Like scikit-learn, a split is admissible when its
                // impurity decrease is >= the configured minimum; with the
                // default of 0 this allows zero-gain splits (necessary for
                // XOR-like data, where every first split has zero gain).
                let gain = node_impurity - child_imp;
                if gain >= self.cfg.min_impurity_decrease - 1e-15
                    && best.as_ref().is_none_or(|b| gain > b.gain)
                {
                    best = Some(BestSplit {
                        feature: f,
                        threshold: midpoint(v, v_next),
                        gain,
                    });
                }
            }
        }
        best
    }
}

impl Learner for DecisionTreeConfig {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        check_fit_inputs(x, y, weights);
        let w = effective_weights(y.len(), weights);
        let n_pos = y.iter().filter(|&&l| l != 0).count();
        if n_pos == 0 || n_pos == y.len() {
            return Box::new(ConstantModel(if n_pos == 0 { 0.0 } else { 1.0 }));
        }
        let mut builder = Builder {
            x,
            y,
            w: &w,
            cfg: self,
            rng: SeededRng::new(seed),
            nodes: Vec::new(),
            scratch: Vec::with_capacity(y.len()),
        };
        let mut idx: Vec<usize> = (0..y.len()).collect();
        let root = builder.build(&mut idx, 0);
        // Both the leaf and the split path push the root node before any
        // descendant, so the root always lands at slot 0.
        debug_assert_eq!(root, 0);
        Box::new(TreeModel {
            nodes: builder.nodes,
        })
    }

    fn name(&self) -> &'static str {
        "DT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<u8>) {
        // XOR pattern: needs depth >= 2.
        let pts = [(0.0, 0.0, 0u8), (0.0, 1.0, 1), (1.0, 0.0, 1), (1.0, 1.0, 0)];
        let mut x = Matrix::with_capacity(4, 2);
        let mut y = Vec::new();
        for &(a, b, l) in &pts {
            x.push_row(&[a, b]);
            y.push(l);
        }
        (x, y)
    }

    #[test]
    fn learns_a_threshold() {
        let x = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let m = DecisionTreeConfig::with_depth(3).fit(&x, &y, 0);
        let test = Matrix::from_vec(2, 1, vec![1.5, 10.5]);
        assert_eq!(m.predict(&test), vec![0, 1]);
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let (x, y) = xor_data();
        let m = DecisionTreeConfig::with_depth(2).fit(&x, &y, 0);
        assert_eq!(m.predict(&x), y);
    }

    #[test]
    fn stump_cannot_learn_xor() {
        let (x, y) = xor_data();
        let m = DecisionTreeConfig::stump().fit(&x, &y, 0);
        assert_ne!(m.predict(&x), y);
    }

    #[test]
    fn entropy_criterion_also_works() {
        let x = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let m = DecisionTreeConfig::c45(3).fit(&x, &y, 0);
        assert_eq!(
            m.predict(&Matrix::from_vec(2, 1, vec![0.5, 11.5])),
            vec![0, 1]
        );
    }

    #[test]
    fn single_class_returns_constant() {
        let x = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let m = DecisionTreeConfig::default().fit(&x, &[1, 1, 1], 0);
        assert_eq!(m.predict_proba(&x), vec![1.0; 3]);
    }

    #[test]
    fn respects_max_depth() {
        // Alternating labels force deep trees if allowed.
        let x = Matrix::from_vec(16, 1, (0..16).map(f64::from).collect());
        let y: Vec<u8> = (0..16).map(|i| (i % 2) as u8).collect();
        let learner = DecisionTreeConfig::with_depth(2);
        let boxed = learner.fit(&x, &y, 0);
        // Downcast trick: verify via behaviour — a depth-2 tree has at
        // most 4 leaves, so it cannot match 16 alternating labels.
        let preds = boxed.predict(&x);
        assert_ne!(preds, y);
    }

    #[test]
    fn weights_dominate_split_choice() {
        // Unweighted majority at each x is label 0, but the positives
        // carry large weight, flipping leaf probabilities.
        let x = Matrix::from_vec(4, 1, vec![0.0, 0.0, 1.0, 1.0]);
        let y = vec![0, 1, 0, 1];
        let w = vec![1.0, 9.0, 1.0, 9.0];
        let m = DecisionTreeConfig::with_depth(2).fit_weighted(&x, &y, Some(&w), 0);
        let p = m.predict_proba(&x);
        assert!(p.iter().all(|&pi| pi > 0.5), "{p:?}");
    }

    #[test]
    fn min_samples_leaf_blocks_tiny_splits() {
        let x = Matrix::from_vec(5, 1, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let y = vec![1, 0, 0, 0, 0];
        let cfg = DecisionTreeConfig {
            min_samples_leaf: 2,
            ..DecisionTreeConfig::with_depth(4)
        };
        let m = cfg.fit(&x, &y, 0);
        // The lone positive cannot be isolated: its leaf has >= 2 samples,
        // so its probability is at most 0.5.
        let p = m.predict_proba(&Matrix::from_vec(1, 1, vec![0.0]));
        assert!(p[0] <= 0.5 + 1e-12);
    }

    #[test]
    fn feature_subsampling_is_seeded() {
        let (x, y) = xor_data();
        let cfg = DecisionTreeConfig {
            max_features: Some(1),
            ..DecisionTreeConfig::with_depth(3)
        };
        let a = cfg.fit(&x, &y, 7).predict_proba(&x);
        let b = cfg.fit(&x, &y, 7).predict_proba(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_feature_values_never_split_between_ties() {
        let x = Matrix::from_vec(4, 1, vec![1.0, 1.0, 1.0, 1.0]);
        let y = vec![0, 1, 0, 1];
        let m = DecisionTreeConfig::default().fit(&x, &y, 0);
        let p = m.predict_proba(&x);
        assert!(p.iter().all(|&pi| (pi - 0.5).abs() < 1e-12));
    }

    #[test]
    fn probabilities_are_leaf_fractions() {
        // Only two distinct feature values, so only one split exists.
        let x = Matrix::from_vec(6, 1, vec![0.0, 0.0, 0.0, 5.0, 5.0, 5.0]);
        let y = vec![0, 0, 1, 1, 1, 0];
        let cfg = DecisionTreeConfig::with_depth(1);
        let m = cfg.fit(&x, &y, 0);
        let p = m.predict_proba(&Matrix::from_vec(2, 1, vec![0.0, 5.0]));
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((p[1] - 2.0 / 3.0).abs() < 1e-9);
    }
}
