//! Model snapshots: the serializable closed-world view of every
//! built-in classifier.
//!
//! `dyn Model` trait objects cannot be serialized directly, so each
//! built-in model exposes an owned [`ModelSnapshot`] via
//! [`Model::snapshot`](crate::traits::Model::snapshot). The snapshot is
//! a plain enum over the concrete model structs — it round-trips through
//! the compact binary codec in the vendored `serde` crate and restores
//! to a fresh `Box<dyn Model>` with bit-identical predictions.
//!
//! Two deliberate design points:
//!
//! - Models without persistence support (MLP, AdaBoost, Naive Bayes,
//!   user-defined models) simply return `None` from `snapshot()`; the
//!   serving layer turns that into a typed "unsupported model" error
//!   instead of a panic.
//! - The `SelfPaced` variant stores plain data (per-member hardness
//!   weights plus member snapshots) so this crate does not depend on
//!   `spe-core`. Restoring it *here* yields a [`SoftVoteEnsemble`] —
//!   prediction-identical to the original, since SPE's combination rule
//!   is an unweighted soft vote — while `spe-serve` special-cases the
//!   variant to rebuild a typed `SelfPacedEnsemble`.
//!
//! Decoding is defensive: it is expected to run on bytes that passed an
//! envelope checksum but may still be adversarially malformed. Unknown
//! tags, empty ensembles, mismatched lengths and over-deep nesting all
//! come back as [`DecodeError`], never a panic.

use crate::ensemble::SoftVoteEnsemble;
use crate::gbdt::GbdtModel;
use crate::knn::KnnModel;
use crate::logistic::LogisticModel;
use crate::svm::SvmModel;
use crate::traits::{ConstantModel, Model};
use crate::tree::TreeModel;
use serde::{DecodeError, Deserialize, Reader, Serialize, Writer};

/// Nesting budget for ensemble-of-ensemble snapshots. Real models are
/// at most two levels deep (SPE/SoftVote over base learners); the cap
/// keeps a crafted payload from recursing the decoder off the stack.
const MAX_NESTING: usize = 16;

/// Serializable snapshot of a trained model.
///
/// Obtain one with [`Model::snapshot`]; turn it back into a scoring
/// model with [`ModelSnapshot::restore`].
#[derive(Clone)]
pub enum ModelSnapshot {
    /// Degenerate single-class model (constant probability).
    Constant(f64),
    /// Classification decision tree (flat arena).
    Tree(TreeModel),
    /// K-nearest-neighbors (memorized training set).
    Knn(KnnModel),
    /// Logistic regression (standardizer + linear weights).
    Logistic(LogisticModel),
    /// RFF + Pegasos SVM with Platt calibration.
    Svm(SvmModel),
    /// Gradient-boosted regression trees with logistic link.
    Gbdt(GbdtModel),
    /// Unweighted soft-voting ensemble (Bagging, Random Forest, ...).
    SoftVote(Vec<ModelSnapshot>),
    /// Self-paced ensemble: member snapshots plus the per-member
    /// self-paced hardness weights recorded at fit time. The weights do
    /// not affect prediction (SPE votes unweighted) but are preserved so
    /// a typed `SelfPacedEnsemble` can be rebuilt losslessly upstream.
    SelfPaced {
        /// Self-paced weight `alpha_i` for each member, in fit order.
        alphas: Vec<f64>,
        /// Member snapshots, in fit order.
        members: Vec<ModelSnapshot>,
    },
    /// K-class model in one-vs-rest form: one binary scorer per class,
    /// in class-id order (element `c` scores class `c`). Both
    /// multi-class SPE strategies snapshot to this shape — the native
    /// strategy regroups its joint members per class first — so one
    /// variant covers the whole k-way model zoo.
    MultiClass {
        /// Per-class scorer snapshots; length is the class count `k`.
        per_class: Vec<ModelSnapshot>,
    },
}

const TAG_CONSTANT: u8 = 0;
const TAG_TREE: u8 = 1;
const TAG_KNN: u8 = 2;
const TAG_LOGISTIC: u8 = 3;
const TAG_SVM: u8 = 4;
const TAG_GBDT: u8 = 5;
const TAG_SOFT_VOTE: u8 = 6;
const TAG_SELF_PACED: u8 = 7;
const TAG_MULTI_CLASS: u8 = 8;

impl ModelSnapshot {
    /// Short kind string stored in the envelope header and checked on
    /// load (`"DT"`, `"KNN"`, `"SPE"`, ...). Matches the learner
    /// display names used in the experiment tables where one exists.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Constant(_) => "Constant",
            Self::Tree(_) => "DT",
            Self::Knn(_) => "KNN",
            Self::Logistic(_) => "LR",
            Self::Svm(_) => "SVM",
            Self::Gbdt(_) => "GBDT",
            Self::SoftVote(_) => "SoftVote",
            Self::SelfPaced { .. } => "SPE",
            Self::MultiClass { .. } => "MultiClass",
        }
    }

    /// Number of ensemble members, or 1 for base models. A multi-class
    /// snapshot reports its per-class scorer count.
    pub fn n_members(&self) -> usize {
        match self {
            Self::SoftVote(members) | Self::SelfPaced { members, .. } => members.len(),
            Self::MultiClass { per_class } => per_class.len(),
            _ => 1,
        }
    }

    /// Number of classes this model scores over: the per-class scorer
    /// count for a multi-class snapshot, 2 for everything else.
    pub fn n_classes(&self) -> usize {
        match self {
            Self::MultiClass { per_class } => per_class.len(),
            _ => 2,
        }
    }

    /// Rebuilds a scoring model from the snapshot.
    ///
    /// Predictions of the restored model are bit-identical to the model
    /// the snapshot was taken from. `SelfPaced` restores as a
    /// [`SoftVoteEnsemble`] at this layer (same predictions; the typed
    /// SPE wrapper lives in `spe-core` and is rebuilt by `spe-serve`).
    pub fn restore(self) -> Box<dyn Model> {
        match self {
            Self::Constant(p) => Box::new(ConstantModel(p)),
            Self::Tree(m) => Box::new(m),
            Self::Knn(m) => Box::new(m),
            Self::Logistic(m) => Box::new(m),
            Self::Svm(m) => Box::new(m),
            Self::Gbdt(m) => Box::new(m),
            Self::SoftVote(members) | Self::SelfPaced { members, .. } => {
                let models = members.into_iter().map(Self::restore).collect();
                // Decode rejects empty member lists, and snapshot() only
                // captures live (non-empty) ensembles, so this cannot
                // panic.
                Box::new(SoftVoteEnsemble::new(models))
            }
            Self::MultiClass { per_class } => {
                let scorers = per_class.into_iter().map(Self::restore).collect();
                // Decode rejects multi-class snapshots with fewer than
                // two scorers, so this cannot panic either.
                Box::new(crate::multiclass::OneVsRestModel::new(scorers))
            }
        }
    }

    fn decode(r: &mut Reader<'_>, depth: usize) -> Result<Self, DecodeError> {
        if depth > MAX_NESTING {
            return Err(DecodeError::Invalid(format!(
                "model nesting exceeds {MAX_NESTING} levels"
            )));
        }
        let decode_members = |r: &mut Reader<'_>| -> Result<Vec<Self>, DecodeError> {
            let n = r.get_len()?;
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(Self::decode(r, depth + 1)?);
            }
            if members.is_empty() {
                return Err(DecodeError::Invalid("ensemble with zero members".into()));
            }
            Ok(members)
        };
        match r.get_u8()? {
            TAG_CONSTANT => {
                let p = r.get_f64()?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(DecodeError::Invalid(format!(
                        "constant probability {p} outside [0, 1]"
                    )));
                }
                Ok(Self::Constant(p))
            }
            TAG_TREE => Ok(Self::Tree(TreeModel::deserialize(r)?)),
            TAG_KNN => Ok(Self::Knn(KnnModel::deserialize(r)?)),
            TAG_LOGISTIC => Ok(Self::Logistic(LogisticModel::deserialize(r)?)),
            TAG_SVM => Ok(Self::Svm(SvmModel::deserialize(r)?)),
            TAG_GBDT => Ok(Self::Gbdt(GbdtModel::deserialize(r)?)),
            TAG_SOFT_VOTE => Ok(Self::SoftVote(decode_members(r)?)),
            TAG_SELF_PACED => {
                let alphas = Vec::<f64>::deserialize(r)?;
                let members = decode_members(r)?;
                if alphas.len() != members.len() {
                    return Err(DecodeError::Invalid(format!(
                        "{} alphas for {} members",
                        alphas.len(),
                        members.len()
                    )));
                }
                Ok(Self::SelfPaced { alphas, members })
            }
            TAG_MULTI_CLASS => {
                let per_class = decode_members(r)?;
                if per_class.len() < 2 {
                    return Err(DecodeError::Invalid(format!(
                        "multi-class model with {} class scorer(s)",
                        per_class.len()
                    )));
                }
                Ok(Self::MultiClass { per_class })
            }
            tag => Err(DecodeError::Invalid(format!("unknown model tag {tag}"))),
        }
    }
}

impl Serialize for ModelSnapshot {
    fn serialize(&self, w: &mut Writer) {
        match self {
            Self::Constant(p) => {
                w.put_u8(TAG_CONSTANT);
                w.put_f64(*p);
            }
            Self::Tree(m) => {
                w.put_u8(TAG_TREE);
                m.serialize(w);
            }
            Self::Knn(m) => {
                w.put_u8(TAG_KNN);
                m.serialize(w);
            }
            Self::Logistic(m) => {
                w.put_u8(TAG_LOGISTIC);
                m.serialize(w);
            }
            Self::Svm(m) => {
                w.put_u8(TAG_SVM);
                m.serialize(w);
            }
            Self::Gbdt(m) => {
                w.put_u8(TAG_GBDT);
                m.serialize(w);
            }
            Self::SoftVote(members) => {
                w.put_u8(TAG_SOFT_VOTE);
                members.serialize(w);
            }
            Self::SelfPaced { alphas, members } => {
                w.put_u8(TAG_SELF_PACED);
                alphas.serialize(w);
                members.serialize(w);
            }
            Self::MultiClass { per_class } => {
                w.put_u8(TAG_MULTI_CLASS);
                per_class.serialize(w);
            }
        }
    }
}

impl Deserialize for ModelSnapshot {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Self::decode(r, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::GbdtConfig;
    use crate::knn::KnnConfig;
    use crate::logistic::LogisticRegressionConfig;
    use crate::svm::SvmConfig;
    use crate::traits::Learner;
    use crate::tree::DecisionTreeConfig;
    use spe_data::{Matrix, SeededRng};

    fn blob_data(n: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(n, 3);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = u8::from(i % 4 == 0);
            let c = if label == 1 { 1.5 } else { -1.5 };
            x.push_row(&[
                rng.normal(c, 1.0),
                rng.normal(-c, 1.0),
                rng.normal(0.0, 1.0),
            ]);
            y.push(label);
        }
        (x, y)
    }

    fn round_trip(snap: ModelSnapshot) -> ModelSnapshot {
        ModelSnapshot::from_bytes(&snap.to_bytes()).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn base_learners_round_trip_bit_identical() {
        let (x, y) = blob_data(160, 7);
        let learners: Vec<Box<dyn Learner>> = vec![
            Box::new(DecisionTreeConfig::default()),
            Box::new(KnnConfig::default()),
            Box::new(LogisticRegressionConfig::default()),
            Box::new(SvmConfig::default()),
            Box::new(GbdtConfig::new(5)),
        ];
        for learner in learners {
            let model = learner.fit(&x, &y, 11);
            let snap = model
                .snapshot()
                .unwrap_or_else(|| panic!("{} has no snapshot", learner.name()));
            let restored = round_trip(snap).restore();
            assert_eq!(
                model.predict_proba(&x),
                restored.predict_proba(&x),
                "{} round trip drifted",
                learner.name()
            );
        }
    }

    #[test]
    fn kind_strings_are_stable() {
        let (x, y) = blob_data(80, 3);
        let snap = DecisionTreeConfig::default()
            .fit(&x, &y, 0)
            .snapshot()
            .unwrap_or_else(|| panic!("tree has no snapshot"));
        assert_eq!(snap.kind(), "DT");
        assert_eq!(ModelSnapshot::Constant(0.5).kind(), "Constant");
        assert_eq!(ModelSnapshot::SoftVote(vec![snap]).kind(), "SoftVote");
    }

    #[test]
    fn unsupported_models_return_none() {
        let (x, y) = blob_data(60, 5);
        let m = crate::mlp::MlpConfig::default().fit(&x, &y, 1);
        assert!(m.snapshot().is_none());
    }

    #[test]
    fn self_paced_restores_as_soft_vote() {
        let (x, y) = blob_data(120, 9);
        let members: Vec<ModelSnapshot> = (0..4)
            .map(|s| {
                DecisionTreeConfig::with_depth(3)
                    .fit(&x, &y, s)
                    .snapshot()
                    .unwrap_or_else(|| panic!("tree has no snapshot"))
            })
            .collect();
        let snap = ModelSnapshot::SelfPaced {
            alphas: vec![0.9, 0.7, 0.5, 0.3],
            members: members.clone(),
        };
        assert_eq!(snap.kind(), "SPE");
        assert_eq!(snap.n_members(), 4);
        let restored = round_trip(snap).restore();
        let vote = SoftVoteEnsemble::new(members.into_iter().map(ModelSnapshot::restore).collect());
        assert_eq!(restored.predict_proba(&x), vote.predict_proba(&x));
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        // Unknown tag.
        assert!(ModelSnapshot::from_bytes(&[200]).is_err());
        // Constant probability outside [0, 1].
        let mut w = Writer::new();
        w.put_u8(TAG_CONSTANT);
        w.put_f64(3.0);
        assert!(ModelSnapshot::from_bytes(&w.into_bytes()).is_err());
        // Empty soft-vote ensemble.
        let mut w = Writer::new();
        w.put_u8(TAG_SOFT_VOTE);
        w.put_u64(0);
        assert!(ModelSnapshot::from_bytes(&w.into_bytes()).is_err());
        // Alpha/member length mismatch.
        let mut w = Writer::new();
        w.put_u8(TAG_SELF_PACED);
        vec![0.5f64, 0.5].serialize(&mut w);
        w.put_u64(1);
        w.put_u8(TAG_CONSTANT);
        w.put_f64(0.5);
        assert!(ModelSnapshot::from_bytes(&w.into_bytes()).is_err());
        // Truncation at every prefix must error, never panic.
        let (x, y) = blob_data(60, 2);
        let snap = DecisionTreeConfig::with_depth(2)
            .fit(&x, &y, 0)
            .snapshot()
            .unwrap_or_else(|| panic!("tree has no snapshot"));
        let bytes = snap.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                ModelSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn over_deep_nesting_rejected() {
        // A crafted chain of one-member ensembles deeper than the cap
        // must be rejected without recursing the decoder off the stack.
        let mut w = Writer::new();
        for _ in 0..(MAX_NESTING + 2) {
            w.put_u8(TAG_SOFT_VOTE);
            w.put_u64(1);
        }
        w.put_u8(TAG_CONSTANT);
        w.put_f64(0.5);
        let err = ModelSnapshot::from_bytes(&w.into_bytes()).map(|s| s.kind());
        assert!(matches!(err, Err(DecodeError::Invalid(_))), "{err:?}");
    }
}
