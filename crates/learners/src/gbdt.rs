//! Gradient-boosted decision trees with logistic loss (Friedman 2002,
//! second-order leaf values as in LightGBM).
//!
//! Paper hyper-parameter: `boost_rounds = 10` (`GBDT10`), with a
//! validation set available for early stopping (§VI-B1). Early stopping
//! is optional here: when enabled, a stratified fraction of the training
//! data is held out internally and boosting stops once validation
//! log-loss fails to improve for `patience` consecutive rounds.

use crate::logistic::sigmoid;
use crate::persist::ModelSnapshot;
use crate::regtree::{RegTree, RegTreeConfig};
use crate::traits::{
    check_fit_inputs, effective_weights, weighted_positive_fraction, ConstantModel, FeatureBound,
    Learner, Model,
};
use crate::tree::SplitMethod;
use spe_data::{BinIndex, Matrix, MatrixView, SeededRng};

/// Early-stopping policy for GBDT.
#[derive(Clone, Copy, Debug)]
pub struct EarlyStopping {
    /// Rounds without validation improvement before stopping.
    pub patience: usize,
    /// Fraction of the training set held out for validation.
    pub fraction: f64,
}

/// GBDT hyper-parameters.
#[derive(Clone, Debug)]
pub struct GbdtConfig {
    /// Boosting rounds (paper: 10).
    pub n_rounds: usize,
    /// Shrinkage η.
    pub learning_rate: f64,
    /// Depth of each regression tree.
    pub max_depth: usize,
    /// L2 regularization λ on leaf values.
    pub lambda: f64,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Optional early stopping.
    pub early_stopping: Option<EarlyStopping>,
    /// Split engine for the per-round regression trees. The training
    /// matrix is binned once and the index is reused across all rounds.
    pub split_method: SplitMethod,
    /// Bin budget per feature for the histogram engine.
    pub max_bins: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 10,
            learning_rate: 0.3,
            max_depth: 4,
            lambda: 1.0,
            min_samples_leaf: 1,
            early_stopping: None,
            split_method: SplitMethod::default(),
            max_bins: spe_data::binning::MAX_BINS,
        }
    }
}

impl GbdtConfig {
    /// GBDT with `n` rounds and defaults otherwise.
    pub fn new(n_rounds: usize) -> Self {
        Self {
            n_rounds,
            ..Self::default()
        }
    }
}

/// A trained GBDT: base score, shrinkage and the boosted tree sequence.
/// Public so persisted models can name the type; all state stays
/// private.
#[derive(Clone)]
pub struct GbdtModel {
    f0: f64,
    eta: f64,
    trees: Vec<RegTree>,
}

serde::impl_serde!(GbdtModel { f0, eta, trees });

impl GbdtModel {
    fn raw_scores_into(&self, x: MatrixView<'_>, scores: &mut [f64]) {
        scores.fill(self.f0);
        for t in &self.trees {
            t.add_scores_view(x, self.eta, scores);
        }
    }

    /// Base score `f0` (log-odds of the weighted prior).
    pub fn base_score(&self) -> f64 {
        self.f0
    }

    /// Shrinkage η applied to every tree's contribution.
    pub fn shrinkage(&self) -> f64 {
        self.eta
    }

    /// The boosted regression trees, in boosting order.
    pub fn trees(&self) -> &[RegTree] {
        &self.trees
    }
}

impl Model for GbdtModel {
    fn predict_proba_view(&self, x: MatrixView<'_>) -> Vec<f64> {
        let mut scores = vec![0.0; x.rows()];
        self.predict_proba_into(x, &mut scores);
        scores
    }

    fn predict_proba_into(&self, x: MatrixView<'_>, out: &mut [f64]) {
        assert_eq!(out.len(), x.rows(), "output buffer must match row count");
        self.raw_scores_into(x, out);
        for s in out.iter_mut() {
            *s = sigmoid(*s);
        }
    }

    fn snapshot(&self) -> Option<ModelSnapshot> {
        Some(ModelSnapshot::Gbdt(self.clone()))
    }

    fn feature_bound(&self) -> FeatureBound {
        FeatureBound::AtLeast(
            self.trees
                .iter()
                .map(RegTree::required_features)
                .max()
                .unwrap_or(0),
        )
    }
}

impl Learner for GbdtConfig {
    fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[u8],
        weights: Option<&[f64]>,
        seed: u64,
    ) -> Box<dyn Model> {
        check_fit_inputs(x, y, weights);
        assert!(self.n_rounds > 0, "need at least one round");
        let w = effective_weights(y.len(), weights);
        let prior = weighted_positive_fraction(y, &w);
        if prior == 0.0 || prior == 1.0 {
            return Box::new(ConstantModel(prior));
        }

        // Optional internal validation split for early stopping.
        let (train_idx, val_idx): (Vec<usize>, Vec<usize>) = match self.early_stopping {
            Some(es) => stratified_holdout(y, es.fraction, seed),
            None => ((0..y.len()).collect(), Vec::new()),
        };
        let xt = x.select_rows(&train_idx);
        let yt: Vec<u8> = train_idx.iter().map(|&i| y[i]).collect();
        // Normalize to mean 1 so the hessian sums stay commensurate with
        // the fixed λ regardless of the incoming weight scale.
        let mut wt: Vec<f64> = train_idx.iter().map(|&i| w[i]).collect();
        let w_mean: f64 = wt.iter().sum::<f64>() / wt.len().max(1) as f64;
        if w_mean > 0.0 {
            for wi in &mut wt {
                *wi /= w_mean;
            }
        }
        let xv = x.select_rows(&val_idx);
        let yv: Vec<u8> = val_idx.iter().map(|&i| y[i]).collect();

        let tree_cfg = RegTreeConfig {
            max_depth: self.max_depth,
            min_samples_leaf: self.min_samples_leaf,
            lambda: self.lambda,
            ..RegTreeConfig::default()
        };
        // Histogram engine: quantize the training matrix once; every
        // boosting round then trains on the shared bin index.
        let bins = self
            .split_method
            .use_histogram(yt.len())
            .then(|| BinIndex::build(&xt, self.max_bins));

        let f0 = (prior / (1.0 - prior)).ln();
        let n = yt.len();
        let mut scores = vec![f0; n];
        let mut val_scores = vec![f0; yv.len()];
        let mut trees: Vec<RegTree> = Vec::with_capacity(self.n_rounds);
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];

        let mut best_loss = f64::INFINITY;
        let mut best_len = 0usize;
        let mut since_best = 0usize;

        for round in 0..self.n_rounds {
            // Cooperative wall-clock budget: stop adding rounds once the
            // installed TrainingBudget deadline passes, keeping whatever
            // has been boosted so far (at least one round).
            if round > 0 && spe_runtime::budget_exceeded() {
                break;
            }
            for i in 0..n {
                let p = sigmoid(scores[i]);
                grad[i] = (p - f64::from(yt[i])) * wt[i];
                hess[i] = (p * (1.0 - p)).max(1e-12) * wt[i];
            }
            let tree = match &bins {
                Some(b) => RegTree::fit_binned(b, &grad, &hess, &tree_cfg),
                None => RegTree::fit(&xt, &grad, &hess, &tree_cfg),
            };
            tree.add_scores(&xt, self.learning_rate, &mut scores);
            if let Some(es) = self.early_stopping {
                tree.add_scores(&xv, self.learning_rate, &mut val_scores);
                trees.push(tree);
                let loss = log_loss(&yv, &val_scores);
                if loss + 1e-12 < best_loss {
                    best_loss = loss;
                    best_len = trees.len();
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= es.patience {
                        break;
                    }
                }
            } else {
                trees.push(tree);
            }
        }
        if self.early_stopping.is_some() && best_len > 0 {
            trees.truncate(best_len);
        }

        Box::new(GbdtModel {
            f0,
            eta: self.learning_rate,
            trees,
        })
    }

    fn name(&self) -> &'static str {
        "GBDT"
    }
}

/// Mean log-loss of raw scores against labels.
fn log_loss(y: &[u8], raw: &[f64]) -> f64 {
    if y.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (&t, &s) in y.iter().zip(raw) {
        let p = sigmoid(s).clamp(1e-12, 1.0 - 1e-12);
        total -= if t != 0 { p.ln() } else { (1.0 - p).ln() };
    }
    total / y.len() as f64
}

/// Stratified (train, holdout) index split.
fn stratified_holdout(y: &[u8], fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut rng = SeededRng::new(seed.wrapping_mul(0x9E37).wrapping_add(17));
    let mut train = Vec::new();
    let mut val = Vec::new();
    for class in [0u8, 1u8] {
        let mut idx: Vec<usize> = (0..y.len()).filter(|&i| y[i] == class).collect();
        rng.shuffle(&mut idx);
        let n_val = ((idx.len() as f64) * fraction).round() as usize;
        // Keep at least one sample of each class in training.
        let n_val = n_val.min(idx.len().saturating_sub(1));
        val.extend_from_slice(&idx[..n_val]);
        train.extend_from_slice(&idx[n_val..]);
    }
    (train, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spe_data::SeededRng;

    fn two_moons_ish(n_per: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = SeededRng::new(seed);
        let mut x = Matrix::with_capacity(2 * n_per, 2);
        let mut y = Vec::new();
        for _ in 0..n_per {
            let t = rng.range(0.0, std::f64::consts::PI);
            x.push_row(&[
                t.cos() + rng.normal(0.0, 0.1),
                t.sin() + rng.normal(0.0, 0.1),
            ]);
            y.push(0);
        }
        for _ in 0..n_per {
            let t = rng.range(0.0, std::f64::consts::PI);
            x.push_row(&[
                1.0 - t.cos() + rng.normal(0.0, 0.1),
                0.5 - t.sin() + rng.normal(0.0, 0.1),
            ]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn fits_nonlinear_boundary() {
        let (x, y) = two_moons_ish(200, 1);
        let m = GbdtConfig::new(80).fit(&x, &y, 2);
        let acc =
            m.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn more_rounds_reduce_training_loss() {
        let (x, y) = two_moons_ish(150, 3);
        let short = GbdtConfig::new(2).fit(&x, &y, 4);
        let long = GbdtConfig::new(30).fit(&x, &y, 4);
        let loss = |m: &dyn Model| {
            let p = m.predict_proba(&x);
            -p.iter()
                .zip(&y)
                .map(|(&pi, &t)| {
                    let pi = pi.clamp(1e-12, 1.0 - 1e-12);
                    if t != 0 {
                        pi.ln()
                    } else {
                        (1.0 - pi).ln()
                    }
                })
                .sum::<f64>()
                / y.len() as f64
        };
        assert!(loss(long.as_ref()) < loss(short.as_ref()));
    }

    #[test]
    fn early_stopping_truncates_rounds() {
        let (x, y) = two_moons_ish(100, 5);
        let cfg = GbdtConfig {
            n_rounds: 200,
            early_stopping: Some(EarlyStopping {
                patience: 3,
                fraction: 0.25,
            }),
            ..GbdtConfig::default()
        };
        let boxed = cfg.fit(&x, &y, 6);
        // Can't reach into the box; train a reference without stopping
        // and verify the stopped model still performs comparably.
        let p = boxed.predict_proba(&x);
        assert_eq!(p.len(), 200);
        assert!(p.iter().all(|&pi| (0.0..=1.0).contains(&pi)));
    }

    #[test]
    fn weighted_samples_shift_prior_and_fit() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 0.0, 1.0, 1.0]);
        let y = vec![0, 1, 0, 1];
        let w = vec![1.0, 9.0, 1.0, 9.0];
        let m = GbdtConfig::new(5).fit_weighted(&x, &y, Some(&w), 0);
        let p = m.predict_proba(&x);
        assert!(p.iter().all(|&pi| pi > 0.5), "{p:?}");
    }

    #[test]
    fn single_class_constant() {
        let x = Matrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]);
        let m = GbdtConfig::default().fit(&x, &[1, 1, 1], 0);
        assert_eq!(m.predict_proba(&x), vec![1.0; 3]);
    }

    #[test]
    fn histogram_engine_fits_nonlinear_boundary() {
        let (x, y) = two_moons_ish(200, 1);
        let cfg = GbdtConfig {
            n_rounds: 80,
            split_method: SplitMethod::Histogram,
            ..GbdtConfig::default()
        };
        let m = cfg.fit(&x, &y, 2);
        let acc =
            m.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn log_loss_basics() {
        assert_eq!(log_loss(&[], &[]), 0.0);
        // Confident correct predictions -> tiny loss.
        let small = log_loss(&[1, 0], &[10.0, -10.0]);
        let big = log_loss(&[1, 0], &[-10.0, 10.0]);
        assert!(small < 1e-3);
        assert!(big > 5.0);
    }

    #[test]
    fn stratified_holdout_preserves_classes() {
        let y = [0, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        let (train, val) = stratified_holdout(&y, 0.3, 1);
        assert_eq!(train.len() + val.len(), 10);
        assert!(train.iter().any(|&i| y[i] == 1));
    }
}
